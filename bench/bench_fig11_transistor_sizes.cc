/**
 * @file
 * Reproduces Fig. 11: measured widths and lengths of the latching
 * transistors (nSA, pSA) for all six chips, next to the REM model's
 * values.  CROW is omitted as in the paper ("severely out of the
 * range").
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "eval/model_accuracy.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Fig. 11: latch transistor dimensions (nm), chips vs "
                 "REM (CROW omitted: out of range)\n\n";
    Table t({"chip", "nSA W", "nSA L", "pSA W", "pSA L", "nSA W/L",
             "pSA W/L"});
    for (const auto &row : eval::fig11Series()) {
        t.addRow({row.label, Table::num(row.nsaW, 0),
                  Table::num(row.nsaL, 0), Table::num(row.psaW, 0),
                  Table::num(row.psaL, 0),
                  Table::num(row.nsaW / row.nsaL, 2),
                  Table::num(row.psaW / row.psaL, 2)});
    }
    t.print(std::cout);

    const auto &crow = models::crowModel();
    std::cout << "\n(for reference, CROW assumes nSA "
              << crow.role(models::Role::Nsa)->w << "x"
              << crow.role(models::Role::Nsa)->l << " and precharge "
              << crow.role(models::Role::Precharge)->w << "x"
              << crow.role(models::Role::Precharge)->l << " nm)\n";
    std::cout << "Shape checks: pSA narrower than nSA on every chip; "
                 "REM (25 nm node) larger than every measured chip.\n";
    return 0;
}
