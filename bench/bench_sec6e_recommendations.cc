/**
 * @file
 * Reproduces Section VI-E: the recommendations R1-R4, each backed by
 * an executable demonstration:
 *
 *  R1 - wiring additions cost area: the I1/I2 free-track audit;
 *  R2 - SAs are interconnected: latching one SA over the shared
 *       control rails drags its rowless neighbour along;
 *  R3 - physical layout matters: column transistors first, strip
 *       element widths perpendicular;
 *  R4 - OCSA must be modelled: topology-dependent behaviour.
 *
 * Finishes with the structured proposal checker applied to two
 * representative proposals.
 */

#include <iostream>

#include "circuit/dual_sa.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "eval/recommendations.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Section VI-E: recommendations for high-fidelity "
                 "DRAM research\n\n";
    for (const auto &rec : eval::recommendations()) {
        std::cout << rec.id << ": " << rec.title << "\n    ("
                  << rec.rationale << ")\n";
    }

    // R2's executable demonstration.
    circuit::DualSaParams d;
    const auto run = circuit::simulateSharedControl(d);
    std::cout << "\nR2 demonstration - two SAs on shared control "
                 "lines, only SA A has a selected row:\n"
              << "  SA A latched its cell "
              << (run.aLatchedCorrectly ? "correctly" : "WRONG")
              << "; SA B (no row!) was dragged to a full "
              << Table::num(run.bSeparation, 2)
              << " V rail separation by the shared SAN/SAP.\n"
              << "  => per-SA control, as assumed by I3-affected "
                 "papers, does not exist on commodity chips.\n";

    // The proposal checker on two representative designs.
    std::cout << "\nProposal checker:\n";
    eval::Proposal dcc;
    dcc.name = "DCC-based PIM (AMBIT-style)";
    dcc.extraBitlinesPerExisting = 1;
    eval::Proposal careful;
    careful.name = "careful proposal";
    careful.placesElementsAfterColumns = true;
    careful.accountsForBothStackedSas = true;
    careful.modelsOcsa = true;

    for (const auto &proposal : {dcc, careful}) {
        size_t total = 0;
        std::cout << "  " << proposal.name << ":\n";
        for (const auto &chip : models::allChips()) {
            const auto findings =
                eval::checkProposal(proposal, chip);
            total += findings.size();
            for (const auto &f : findings) {
                std::cout << "    [" << chip.id << "] "
                          << f.recommendation << "/" << f.inaccuracy
                          << ": " << f.message << "\n";
            }
        }
        if (total == 0)
            std::cout << "    clean on all six chips\n";
    }
    return 0;
}
