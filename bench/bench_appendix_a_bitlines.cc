/**
 * @file
 * Reproduces Appendix A: the effect of changing bitlines.  Even if
 * halving the bitline width were possible, doubling their count still
 * extends the SA region by Eq. 1's ~33%, i.e. ~21% chip overhead on
 * B5; and on vendor A chips, REGA's extra M2 connections require
 * shrinking the M2 wires by 0.25x.
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "eval/bitline_ext.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Appendix A: cost of adding bitlines after shrinking "
                 "the existing ones\n\n";
    std::cout << "Eq. 1 (B_w = 2d): extension = "
              << Table::percent(eval::bitlineDoublingExtension())
              << " (paper: ~33%)\n\n";

    Table t({"chip", "BL width", "spacing", "extension",
             "chip overhead"});
    for (const auto &chip : models::allChips()) {
        const double spacing = chip.blPitchNm - chip.blWidthNm;
        t.addRow({chip.id, Table::num(chip.blWidthNm, 1) + " nm",
                  Table::num(spacing, 1) + " nm",
                  Table::percent(eval::bitlineDoublingExtension(
                      chip.blWidthNm, spacing)),
                  Table::percent(
                      eval::bitlineDoublingChipOverhead(chip))});
    }
    t.print(std::cout);

    std::cout << "\nB5 chip overhead: "
              << Table::percent(eval::bitlineDoublingChipOverhead(
                     models::chip("B5")))
              << " (paper: 21%)\n\n";

    std::cout << "M2 slack on vendor A (second SA set routed on M2, "
                 "~8x wider wires):\n";
    for (const char *id : {"A4", "A5"}) {
        const auto &chip = models::chip(id);
        std::cout << " - " << id << ": M2 width "
                  << Table::num(chip.m2WidthNm, 0)
                  << " nm; REGA's extra connections need a "
                  << Table::times(eval::m2ShrinkFactorForRega(chip), 2)
                  << " wire reduction (paper: 0.25x) -> feasible\n";
    }
    return 0;
}
