/**
 * @file
 * Cost-benefit audit: the latency-oriented proposals' gains per
 * percent of chip area, under their own overhead estimates vs the
 * corrected (Table II) ones.  The ranking changes are the
 * architecture-level takeaway of HiFi-DRAM's corrections.
 */

#include <iostream>

#include "arch/latency_model.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "dram/timings.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    const auto baseline =
        dram::Timings::forTopology(circuit::SaTopology::Classic);
    arch::StreamParams stream;
    stream.rowHitRate = 0.6;

    std::cout << "Cost-benefit audit (open-page controller, "
              << Table::percent(stream.rowHitRate, 0)
              << " row-hit rate, timings from the classic-SA "
                 "simulation: tRCD "
              << Table::num(baseline.tRcd, 1) << " ns, tRP "
              << Table::num(baseline.tRp, 1) << " ns)\n\n";

    Table t({"paper", "latency gain", "claimed area",
             "corrected area", "gain/area claimed",
             "gain/area corrected", "verdict"});
    for (const auto &cb : arch::costBenefitAudit(baseline, stream)) {
        const double drop = cb.gainPerAreaClaimed > 0.0
            ? cb.gainPerAreaCorrected / cb.gainPerAreaClaimed
            : 0.0;
        t.addRow({cb.paper, Table::percent(cb.latencyGain, 1),
                  Table::percent(cb.claimedOverhead, 2),
                  Table::percent(cb.correctedOverhead, 2),
                  Table::num(cb.gainPerAreaClaimed, 3),
                  Table::num(cb.gainPerAreaCorrected, 3),
                  drop > 0.5 ? "holds up"
                             : (drop > 0.1 ? "weakened"
                                           : "collapses")});
    }
    t.print(std::cout);

    std::cout << "\ngain/area = latency-gain fraction per percent of "
                 "chip area.  Proposals whose overheads the audit "
                 "multiplies (Table II) lose most of their "
                 "efficiency; the paper's point that fidelity "
                 "changes conclusions, made quantitative.\n";
    return 0;
}
