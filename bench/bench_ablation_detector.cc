/**
 * @file
 * Ablation: detector choice per vendor (Section IV-B).
 *
 * The paper imaged A4/A5 with SE but found SE contrast inadequate on
 * vendors B and C ("likely due to manufacturing processes") and
 * switched those chips to BSE.  This bench forces each detector on a
 * vendor-A and a vendor-B chip and shows the reverse-engineering
 * outcome: SE works on A4, degrades on B4; BSE recovers B4.
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "core/pipeline.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Ablation: SE vs BSE per vendor "
                 "(Table I detector assignments)\n\n";
    Table t({"chip", "detector", "topology", "devices", "bitlines",
             "verdict"});
    struct Case
    {
        const char *chip;
        int detector; // 0 = SE, 1 = BSE
    };
    for (const Case &c : {Case{"A4", 0}, Case{"A4", 1}, Case{"B4", 0},
                          Case{"B4", 1}, Case{"C5", 0},
                          Case{"C5", 1}}) {
        core::PipelineConfig config;
        config.chipId = c.chip;
        config.pairs = 3;
        config.seed = 5;
        config.detectorOverride = c.detector;
        const auto rep = core::runPipeline(config);

        const bool full = rep.topologyCorrect &&
            rep.extractedDevices == rep.trueDevices &&
            rep.bitlinesFound == rep.bitlinesTrue;
        const bool usable = rep.topologyCorrect &&
            rep.extractedDevices >= rep.trueDevices / 2;
        t.addRow({c.chip, c.detector == 0 ? "SE" : "BSE",
                  rep.topologyCorrect ? "correct" : "WRONG",
                  std::to_string(rep.extractedDevices) + "/" +
                      std::to_string(rep.trueDevices),
                  std::to_string(rep.bitlinesFound) + "/" +
                      std::to_string(rep.bitlinesTrue),
                  full ? "full recovery"
                       : (usable ? "degraded" : "unusable")});
    }
    t.print(std::cout);
    std::cout << "\nVendor A's materials give good SE contrast; "
                 "vendors B and C need BSE - matching the paper's "
                 "detector choices in Table I.\n";
    return 0;
}
