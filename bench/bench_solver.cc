/**
 * @file
 * Batched-transient-engine benchmark: wall-clock of the sensingYield
 * Monte-Carlo sweep under the lockstep BatchSimulator at several lane
 * widths, against the retained per-trial scalar engine
 * (TranParams::batchLanes <= 1), plus the forced-portable-SIMD batch.
 * Every batched row is checked for exact agreement (failures count and
 * bitwise meanSignal) with the scalar sweep, so the bench doubles as
 * an equivalence smoke test; the full run additionally pins the
 * 1024-trial goldens (failures=210, meanSignal=0.131616443).
 *
 * Numbers are transcribed into BENCH_solver.json; the "after" column
 * of the previous PR (scalar sparse engine, 392.38 ms at 1024 trials)
 * is the baseline the batched rows are compared against.
 *
 * `--quick` shrinks the trial count and rep counts for CI smoke runs.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/mismatch.hh"
#include "circuit/sense_amp.hh"
#include "circuit/solver.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/telemetry.hh"
#include "scope/fib.hh"

using namespace hifi;

namespace
{

template <typename F>
double
medianMs(F &&fn, size_t reps)
{
    std::vector<double> ms;
    for (size_t i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
    }
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
}

struct Row
{
    std::string name;
    double fastMs = 0.0;
    double referenceMs = -1.0; ///< < 0: no reference column
    std::string note;
};

int g_failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "MISMATCH: " << what << "\n";
        ++g_failures;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    hifi::telemetry::reportPeakRssAtExit();
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::cerr << "usage: " << argv[0] << " [--quick]\n";
            return 2;
        }
    }

    // Single-threaded so the numbers isolate lane batching + SIMD
    // from the chunk-level parallelism.
    const common::ScopedThreads one(1);

    // The streaming acquisition hands the Monte-Carlo engine windows
    // of kStreamWindowSlices slices at a time; keep that window equal
    // to the default lane width so a streamed window fills exactly
    // one lockstep batch and the out-of-core path never runs the
    // solver with idle lanes.
    check(circuit::TranParams{}.batchLanes ==
              static_cast<int>(scope::kStreamWindowSlices),
          "scope::kStreamWindowSlices matches the default "
          "TranParams::batchLanes (streamed windows must fill a "
          "solver batch)");

    // The BENCH_solver.json sensing-yield workload: classic SA,
    // Pelgrom coefficient 9 V*nm, 50 ps steps.
    const circuit::SaParams sa;
    circuit::MismatchParams mc;
    mc.avtVnm = 9.0;
    mc.trials = quick ? 64 : 1024;
    circuit::TranParams tran = circuit::defaultSaTran();
    tran.dt = 50e-12;

    const size_t reps = quick ? 1 : 3;
    std::vector<Row> rows;

    // Scalar per-trial reference sweep (the previous PR's fast path).
    circuit::TranParams scalar_tran = tran;
    scalar_tran.batchLanes = 1;
    circuit::YieldResult ref{};
    Row row_ref;
    row_ref.name =
        "sensing_yield_" + std::to_string(mc.trials) + "_scalar";
    row_ref.fastMs = medianMs([&] {
        ref = circuit::sensingYield(sa, mc, scalar_tran);
    }, reps);
    row_ref.note = std::to_string(ref.failures) + " failures";
    rows.push_back(row_ref);

    if (!quick) {
        // Pin the seed-deterministic goldens recorded in
        // BENCH_solver.json since the sparse-engine PR.
        check(ref.failures == 210, "scalar 1024-trial failures golden");
        check(std::abs(ref.meanSignal - 0.131616443) < 5e-10,
              "scalar 1024-trial meanSignal golden");
    }

    // Batched lockstep sweep at several lane widths; every width must
    // reproduce the scalar sweep exactly.
    for (int lanes : {4, 8, 16}) {
        circuit::TranParams bt = tran;
        bt.batchLanes = lanes;
        circuit::YieldResult got{};
        Row row;
        row.name = "sensing_yield_" + std::to_string(mc.trials) +
            "_batched_lanes_" + std::to_string(lanes);
        row.fastMs = medianMs([&] {
            got = circuit::sensingYield(sa, mc, bt);
        }, reps);
        row.referenceMs = row_ref.fastMs;
        check(got.failures == ref.failures,
              row.name + " failures vs scalar");
        check(std::memcmp(&got.meanSignal, &ref.meanSignal,
                          sizeof(double)) == 0,
              row.name + " meanSignal bitwise vs scalar");
        row.note = "isa " +
            std::string(common::simd::isaName(
                common::simd::activeIsa())) +
            ", vs per-trial scalar";
        rows.push_back(row);
    }

    // Default batch width with the SIMD lane kernels forced off: the
    // portable batched path must also be bitwise identical.
    {
        circuit::TranParams bt = tran; // default batchLanes
        circuit::YieldResult got{};
        Row row;
        row.name = "sensing_yield_" + std::to_string(mc.trials) +
            "_batched_portable";
        common::simd::ScopedForceScalar off;
        row.fastMs = medianMs([&] {
            got = circuit::sensingYield(sa, mc, bt);
        }, reps);
        row.referenceMs = row_ref.fastMs;
        check(got.failures == ref.failures,
              row.name + " failures vs scalar");
        check(std::memcmp(&got.meanSignal, &ref.meanSignal,
                          sizeof(double)) == 0,
              row.name + " meanSignal bitwise vs scalar");
        row.note = "HIFI_SIMD-off equivalent, vs per-trial scalar";
        rows.push_back(row);
    }

    // ---- Report -----------------------------------------------------
    std::cout << "\nBatched solver bench (1 thread, median of " << reps
              << "; reference = per-trial scalar sweep)\n"
              << "trials=" << mc.trials << " failures=" << ref.failures
              << " meanSignal=" << std::setprecision(17)
              << ref.meanSignal << "\n\n";
    for (const Row &r : rows) {
        std::cout << "  " << r.name << ": " << r.fastMs << " ms";
        if (r.referenceMs >= 0.0)
            std::cout << " (scalar " << r.referenceMs << " ms, "
                      << r.referenceMs / r.fastMs << "x)";
        if (!r.note.empty())
            std::cout << " [" << r.note << "]";
        std::cout << "\n";
    }

    // Machine-readable block (transcribed into BENCH_solver.json).
    std::cout << "\nJSON:\n[";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::cout << (i ? ",\n " : "\n ") << "{\"name\": \"" << r.name
                  << "\", \"fast_ms\": " << r.fastMs;
        if (r.referenceMs >= 0.0)
            std::cout << ", \"scalar_ms\": " << r.referenceMs
                      << ", \"speedup\": " << r.referenceMs / r.fastMs;
        std::cout << "}";
    }
    std::cout << "\n]\n";

    if (g_failures) {
        std::cerr << g_failures << " equivalence failure(s)\n";
        return 1;
    }
    return 0;
}
