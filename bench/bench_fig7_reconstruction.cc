/**
 * @file
 * Reproduces Figs. 7-8 / Section IV-D: end-to-end imaging capability.
 * Runs the full pipeline (virtual fab -> FIB/SEM with drift and noise
 * -> TV denoise -> MI alignment -> planar reconstruction -> reverse
 * engineering) on every chip configuration, and reports how faithfully
 * the circuit is recovered, including the Fig. 8-style cross-coupling
 * trace through gate tabs and contacts.
 */

#include <iostream>

#include "common/table.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "core/pipeline.hh"
#include "fab/mat.hh"
#include "fab/voxelizer.hh"
#include "re/mat_analyze.hh"
#include "scope/fib.hh"
#include "scope/postprocess.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Figs. 7-8: end-to-end reconstruction fidelity "
                 "(4 SA pairs per chip)\n\n";
    Table t({"chip", "topology", "strips", "bitlines", "devices",
             "x-coupling", "align(px)", "budget", "max dim err",
             "matched template"});
    bool all_ok = true;
    for (const auto &chip : models::allChips()) {
        core::PipelineConfig config;
        config.chipId = chip.id;
        config.pairs = 4;
        config.seed = 2024;
        const auto rep = core::runPipeline(config);
        all_ok &= rep.topologyCorrect && rep.crossCouplingConsistent;

        t.addRow({rep.chipId,
                  std::string(rep.topologyCorrect ? "ok " : "BAD ") +
                      (rep.extractedTopology == models::Topology::Ocsa
                           ? "(OCSA)"
                           : "(classic)"),
                  std::to_string(rep.extractedCommonGateStrips) + "/" +
                      std::to_string(rep.trueCommonGateStrips),
                  std::to_string(rep.bitlinesFound) + "/" +
                      std::to_string(rep.bitlinesTrue),
                  std::to_string(rep.extractedDevices) + "/" +
                      std::to_string(rep.trueDevices),
                  rep.crossCouplingConsistent ? "traced" : "FAILED",
                  Table::num(rep.alignmentResidualPx, 2),
                  rep.alignmentBudgetMet ? "met" : "MISSED",
                  Table::num(rep.maxDimErrorNm, 1) + " nm",
                  rep.matchedTemplate + " (" +
                      Table::num(rep.matchScore, 2) + ")"});
    }
    t.print(std::cout);
    std::cout << "\nAlignment budget: 0.77% of the slice height "
                 "(Section IV-C).  Cross-coupling is traced through "
                 "the poly tabs and contacts as in Fig. 8.\n";

    // Fig. 7a: the C5 MAT - bitlines below, honeycomb capacitors
    // above - recovered through the full noisy imaging chain.
    {
        const auto &chip = models::chip("C5");
        const auto cell = fab::buildMatSlice(
            fab::MatSpec::fromChip(chip, 8, 12));
        const double voxel = 4.0;
        const auto mats = fab::voxelize(*cell, cell->boundingBox(),
                                        {voxel, 280.0});
        scope::FibSemParams fib;
        fib.sem.detector = chip.detector;
        fib.sem.dwellUs = chip.dwellUs;
        fib.sliceVoxels = 2;
        common::Rng rng(7);
        const auto stack = scope::acquire(mats, fib, rng);
        const auto post = scope::postprocess(stack);
        re::PlanarScales scales{2.0 * voxel, voxel, voxel};
        const auto mat = re::analyzeMatRegion(post.volume, scales,
                                              chip.detector);
        std::cout << "\nFig. 7a (C5 MAT through the noisy chain): "
                  << mat.bitlines << " bitlines at "
                  << Table::num(mat.blPitchNm, 1) << " nm pitch, "
                  << mat.wordlines << " buried wordlines, "
                  << mat.capacitors << " capacitors, "
                  << (mat.honeycomb ? "honeycomb packing confirmed"
                                    : "HONEYCOMB NOT FOUND")
                  << " (row offset "
                  << Table::num(mat.rowOffsetNm, 1) << " nm)\n";
        all_ok &= mat.honeycomb;
    }
    return all_ok ? 0 : 1;
}
