/**
 * @file
 * Reproduces Fig. 13 / inaccuracies I1 and I2: the design-rule
 * free-track scan finds no room for a new bitline in either the MAT
 * (I1) or the SA region (I2), on any chip; removing an existing wire
 * restores exactly one track, confirming the scan's sensitivity.
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "fab/mat.hh"
#include "fab/sa_region.hh"
#include "layout/design_rules.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Fig. 13: free bitline tracks under design rules "
                 "(I1: MAT, I2: SA region)\n\n";

    Table t({"chip", "BL pitch", "MAT tracks (I1)",
             "SA tracks (I2)", "control (wire removed)"});
    for (const auto &chip : models::allChips()) {
        layout::DesignRules rules;
        const double spacing = chip.blPitchNm - chip.blWidthNm;
        rules.rule(layout::Layer::Metal1) = {chip.blWidthNm, spacing};

        // The scan covers the bitline band (between the outermost
        // bitlines); the generator's dicing margins are not part of
        // the packed array the paper's Fig. 13 refers to.
        auto metal_band = [](const layout::Cell &cell) {
            common::Rect band;
            for (const auto &s : cell.flatten())
                if (s.layer == layout::Layer::Metal1)
                    band = band.unite(s.rect);
            return band;
        };

        // MAT slice.
        const auto mat =
            fab::buildMatSlice(fab::MatSpec::fromChip(chip, 10, 8));
        const size_t mat_tracks = rules.freeTracks(
            *mat, layout::Layer::Metal1, metal_band(*mat));

        // SA region slice.
        fab::SaRegionTruth truth;
        const auto sa = fab::buildSaRegion(
            fab::SaRegionSpec::fromChip(chip, 5), truth);
        const size_t sa_tracks = rules.freeTracks(
            *sa, layout::Layer::Metal1, metal_band(*sa));

        // Control: drop one bitline from the MAT; a track must appear.
        fab::MatSpec control_spec = fab::MatSpec::fromChip(chip, 10, 8);
        auto control = std::make_shared<layout::Cell>("control");
        size_t kept = 0;
        for (const auto &s : mat->flatten()) {
            if (s.layer == layout::Layer::Metal1 && kept++ == 5)
                continue; // remove one wire
            layout::Shape copy = s;
            control->addShape(std::move(copy));
        }
        const size_t control_tracks = rules.freeTracks(
            *control, layout::Layer::Metal1, metal_band(*mat));

        t.addRow({chip.id, Table::num(chip.blPitchNm, 0) + " nm",
                  std::to_string(mat_tracks),
                  std::to_string(sa_tracks),
                  std::to_string(control_tracks)});
    }
    t.print(std::cout);

    std::cout << "\nConclusion (paper Section VI-B): implementing a "
                 "dual-contact cell or any extra bitline requires\n"
                 "doubling the MAT/SA region width - there is no free "
                 "space on any of the six chips.\n";
    return 0;
}
