/**
 * @file
 * Reproduces Table I (the studied chips) plus the Section IV-B
 * acquisition facts: per-chip ROI scans, slice counts, and the
 * acquisition-time model (>24 h for the 100 um^2 scans of A4/A5).
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "models/chip_data.hh"
#include "scope/fib.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Table I: studied chips (six chips, three vendors)\n";
    Table t({"ID", "Vendor", "Storage", "Yr.", "Size", "Det.", "MATs",
             "Pixl.Res."});
    for (const auto &chip : models::allChips()) {
        t.addRow({chip.id,
                  std::string(1, chip.vendor) + " (DDR" +
                      std::to_string(chip.ddr) + ")",
                  std::to_string(chip.storageGbit) + "Gb",
                  "'" + std::to_string(chip.year % 100),
                  Table::num(chip.dieAreaMm2, 0) + "mm2",
                  chip.detector == models::Detector::Se ? "SE" : "BSE",
                  chip.matsVisible ? "V." : "N.V.",
                  Table::num(chip.pixelResNm, 1) + " nm"});
    }
    t.print(std::cout);

    std::cout << "\nSection IV-B: acquisition campaigns "
              << "(mill + image time model)\n";
    Table c({"ID", "ROI", "Slice", "Dwell", "Slices", "Px/img",
             "s/slice", "Total"});
    for (const auto &chip : models::allChips()) {
        const auto cost = scope::campaignCost(chip);
        c.addRow({chip.id, Table::num(chip.roiAreaUm2, 0) + " um2",
                  Table::num(chip.sliceNm, 0) + " nm",
                  Table::num(chip.dwellUs, 0) + " us",
                  std::to_string(cost.slices),
                  Table::num(cost.pixelsPerImage / 1e3, 0) + "k",
                  Table::num(cost.secondsPerSlice, 1),
                  Table::num(cost.totalHours, 1) + " h"});
    }
    c.print(std::cout);
    std::cout << "\nPaper: the 100 um2 acquisitions (A4, A5) each took "
                 "more than 24 hours of SEM/FIB.\n";
    return 0;
}
