/**
 * @file
 * Reproduces Fig. 2c: the classic sense-amplifier activation events.
 * Simulates one full ACT -> latch & restore -> PRE cycle and prints
 * the bitline waveforms around each event.
 */

#include <iostream>

#include "circuit/sense_amp.hh"
#include "common/table.hh"
#include "common/telemetry.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using circuit::SaParams;
    using circuit::SaRun;
    using common::Table;

    SaParams params;
    params.topology = circuit::SaTopology::Classic;
    params.storeOne = true;

    const SaRun run = circuit::simulateActivation(params);
    const auto &bl = run.tran.trace("BL");
    const auto &blb = run.tran.trace("BLB");
    const auto &cn = run.tran.trace("CN");
    const auto &s = run.schedule;

    std::cout << "Fig. 2c: classic SA events (cell stores '1')\n\n";
    Table t({"event", "t (ns)", "BL (V)", "BLB (V)", "cell (V)"});
    auto row = [&](const std::string &name, double time) {
        t.addRow({name, Table::num(time * 1e9, 2),
                  Table::num(bl.at(time), 3),
                  Table::num(blb.at(time), 3),
                  Table::num(cn.at(time), 3)});
    };
    row("idle (precharged)", s.tActivate - 1e-9);
    row("1: charge sharing", s.tChargeShare + 1.5e-9);
    row("2: latching & restore", s.tLatch + 2e-9);
    row("   restore complete", s.tRestoreEnd - 0.1e-9);
    row("3: precharge + equalize", s.tEnd - 0.1e-9);
    t.print(std::cout);

    std::cout << "\ncharge-sharing signal: "
              << Table::num(run.signalBeforeLatch * 1e3, 1)
              << " mV; latched "
              << (run.latchedCorrectly ? "correctly" : "WRONG")
              << "; |BL-BLB| > 0.9 VDD after "
              << Table::num(run.tSense * 1e9, 2) << " ns from ACT\n";
    std::cout << "Note: charge sharing begins immediately on "
                 "activation - compare bench_fig9_ocsa_events.\n";
    return run.latchedCorrectly ? 0 : 1;
}
