/**
 * @file
 * Robustness sweep: end-to-end pipeline quality and campaign cost as
 * the acquisition fault rate scales from zero (clean) to 4x the
 * default model.  Reports the QC detection rate against the injected
 * ground truth, the recovery effort (retries / interpolated slices),
 * the aggregate confidence, whether the SA topology still comes out
 * right, and the re-imaging cost overhead charged to the Table-I
 * campaign estimate.
 *
 * `--quick` runs a single seed at scales {0, 1} for CI smoke tests.
 * `--telemetry <prefix>` additionally instruments the default-rate
 * run of the first seed and writes <prefix>.trace.json,
 * <prefix>.metrics.json and <prefix>.qc_audit.json (validated in CI
 * by hifi_trace_check).
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "core/pipeline.hh"

namespace
{

struct SweepPoint
{
    double scale = 0.0;
    size_t runs = 0;
    size_t slices = 0;
    size_t faultsInjected = 0;
    size_t faultsDetected = 0;
    size_t retries = 0;
    size_t interpolated = 0;
    size_t unrecoverable = 0;
    size_t topologyCorrect = 0;
    double qcConfidence = 0.0;
    double retryHours = 0.0;
    double totalHours = 0.0;

    double detectionRate() const
    {
        return faultsInjected
            ? static_cast<double>(faultsDetected) /
                static_cast<double>(faultsInjected)
            : 1.0;
    }

    double costOverhead() const
    {
        const double base = totalHours - retryHours;
        return base > 0.0 ? retryHours / base : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    bool quick = false;
    std::string telemetry_prefix;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--telemetry") == 0 &&
                   i + 1 < argc) {
            telemetry_prefix = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--telemetry <prefix>]\n";
            return 2;
        }
    }

    const std::vector<double> scales = quick
        ? std::vector<double>{0.0, 1.0}
        : std::vector<double>{0.0, 0.5, 1.0, 2.0, 4.0};
    const std::vector<uint64_t> seeds = quick
        ? std::vector<uint64_t>{42}
        : std::vector<uint64_t>{11, 42, 77};

    core::PipelineConfig base;
    base.chipId = "B5";
    base.pairs = 2;
    base.driftProbability = 0.15;

    std::cout << "Robustness sweep: B5, " << base.pairs
              << " SA pairs, fault rates scaled from the default "
                 "model, " << seeds.size() << " seed(s) per point\n\n";

    std::vector<SweepPoint> points;
    for (double scale : scales) {
        SweepPoint p;
        p.scale = scale;
        for (uint64_t seed : seeds) {
            core::PipelineConfig cfg = base;
            cfg.seed = seed;
            cfg.faults.enabled = true;
            cfg.faults = cfg.faults.scaled(scale);
            cfg.faults.enabled = true;
            if (!telemetry_prefix.empty() && scale == 1.0 &&
                seed == seeds.front()) {
                cfg.telemetry.enabled = true;
                cfg.telemetry.tracePath =
                    telemetry_prefix + ".trace.json";
                cfg.telemetry.metricsPath =
                    telemetry_prefix + ".metrics.json";
                cfg.telemetry.qcAuditPath =
                    telemetry_prefix + ".qc_audit.json";
            }

            const auto result = core::runPipelineChecked(cfg);
            if (!result.ok()) {
                std::cerr << "pipeline failed at scale " << scale
                          << " seed " << seed << ": "
                          << result.error().message << "\n";
                return 1;
            }
            const core::PipelineReport &r = result.value();
            ++p.runs;
            p.slices += r.slices;
            p.faultsInjected += r.faultsInjected;
            p.faultsDetected += r.faultsDetected;
            p.retries += r.retries;
            p.interpolated += r.slicesInterpolated;
            p.unrecoverable += r.slicesUnrecoverable;
            p.topologyCorrect += r.topologyCorrect ? 1 : 0;
            p.qcConfidence += r.qcConfidence;
            p.retryHours += r.campaign.retryHours;
            p.totalHours += r.campaign.totalHours;
        }
        p.qcConfidence /= static_cast<double>(p.runs);
        points.push_back(p);
    }

    Table t({"fault scale", "injected", "detected", "detection",
             "retries", "interp", "confidence", "topology",
             "cost overhead"});
    for (const SweepPoint &p : points) {
        t.addRow({Table::num(p.scale, 1),
                  Table::num(double(p.faultsInjected), 0),
                  Table::num(double(p.faultsDetected), 0),
                  Table::percent(p.detectionRate(), 1),
                  Table::num(double(p.retries), 0),
                  Table::num(double(p.interpolated), 0),
                  Table::num(p.qcConfidence, 3),
                  Table::num(double(p.topologyCorrect), 0) + "/" +
                      Table::num(double(p.runs), 0),
                  Table::percent(p.costOverhead(), 2)});
    }
    t.print(std::cout);

    std::cout << "\ndetection = QC-flagged first attempts / injected "
                 "first-attempt faults; cost overhead = re-imaging "
                 "hours / fault-free campaign hours.  The point of "
                 "the sweep: recovery keeps the extracted topology "
                 "correct well past the default fault rate, for a "
                 "re-imaging surcharge that stays a small fraction "
                 "of the campaign.\n";

    // Machine-readable block (transcribed into BENCH_robustness.json).
    std::cout << "\nJSON:\n[";
    for (size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        std::cout << (i ? ",\n " : "\n ") << "{\"scale\": " << p.scale
                  << ", \"runs\": " << p.runs
                  << ", \"slices\": " << p.slices
                  << ", \"faults_injected\": " << p.faultsInjected
                  << ", \"faults_detected\": " << p.faultsDetected
                  << ", \"detection_rate\": " << p.detectionRate()
                  << ", \"retries\": " << p.retries
                  << ", \"slices_interpolated\": " << p.interpolated
                  << ", \"slices_unrecoverable\": " << p.unrecoverable
                  << ", \"qc_confidence\": " << p.qcConfidence
                  << ", \"topology_correct_runs\": "
                  << p.topologyCorrect
                  << ", \"retry_hours\": " << p.retryHours
                  << ", \"total_hours\": " << p.totalHours
                  << ", \"cost_overhead\": " << p.costOverhead()
                  << "}";
    }
    std::cout << "\n]\n";

    // Any unrecoverable slice at the default rate would be a
    // regression; make the smoke run fail loudly.
    for (const SweepPoint &p : points)
        if (p.scale <= 1.0 && p.unrecoverable > 0) {
            std::cerr << "unrecoverable slices at scale " << p.scale
                      << "\n";
            return 1;
        }
    return 0;
}
