/**
 * @file
 * google-benchmark microbenchmarks for the substrates: TV denoising,
 * mutual-information registration, voxelization, transient circuit
 * simulation, and the overhead audit.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/dual_sa.hh"
#include "circuit/mismatch.hh"
#include "circuit/sense_amp.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "dram/device.hh"
#include "eval/overheads.hh"
#include "fab/sa_region.hh"
#include "fab/voxelizer.hh"
#include "image/denoise.hh"
#include "image/noise.hh"
#include "image/registration.hh"

namespace
{

using namespace hifi;

image::Image2D
noisyPattern(size_t w, size_t h)
{
    common::Rng rng(1);
    image::Image2D img(w, h, 0.1f);
    for (size_t x = 4; x < w; x += 8)
        img.fillRect(static_cast<long>(x), 0,
                     static_cast<long>(x + 4),
                     static_cast<long>(h), 0.8f);
    image::addGaussianNoise(img, 0.05, rng);
    return img;
}

void
BM_DenoiseChambolle(benchmark::State &state)
{
    const auto img = noisyPattern(
        static_cast<size_t>(state.range(0)),
        static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            image::denoiseChambolle(img, {0.05, 30}));
    }
    state.SetItemsProcessed(state.iterations() *
                            state.range(0) * state.range(0));
}
BENCHMARK(BM_DenoiseChambolle)->Arg(32)->Arg(64)->Arg(128);

void
BM_DenoiseSplitBregman(benchmark::State &state)
{
    const auto img = noisyPattern(
        static_cast<size_t>(state.range(0)),
        static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            image::denoiseSplitBregman(img, {0.05, 30}));
    }
    state.SetItemsProcessed(state.iterations() *
                            state.range(0) * state.range(0));
}
BENCHMARK(BM_DenoiseSplitBregman)->Arg(32)->Arg(64)->Arg(128);

void
BM_MiRegistration(benchmark::State &state)
{
    const auto fixed = noisyPattern(
        static_cast<size_t>(state.range(0)),
        static_cast<size_t>(state.range(0)));
    const auto moving = fixed.shifted(2, -1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            image::registerShiftMi(fixed, moving, {16, 4}));
    }
}
BENCHMARK(BM_MiRegistration)->Arg(48)->Arg(96);

void
BM_VoxelizeSaRegion(benchmark::State &state)
{
    fab::SaRegionSpec spec;
    spec.pairs = static_cast<size_t>(state.range(0));
    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fab::voxelize(*cell, truth.region, {5.0, 270.0}));
    }
}
BENCHMARK(BM_VoxelizeSaRegion)->Arg(2)->Arg(4)->Arg(8);

// ---- Thread-count scaling of the hot kernels -----------------------
// Results are bitwise-identical across thread counts (deterministic
// fixed partitions — common/parallel.hh), so these pairs measure pure
// speedup, not a numerics trade.

void
BM_DenoiseChambolleThreads(benchmark::State &state)
{
    common::ScopedThreads scoped(
        static_cast<size_t>(state.range(1)));
    const auto img = noisyPattern(
        static_cast<size_t>(state.range(0)),
        static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            image::denoiseChambolle(img, {0.05, 30}));
    }
    state.SetItemsProcessed(state.iterations() *
                            state.range(0) * state.range(0));
}
BENCHMARK(BM_DenoiseChambolleThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void
BM_MiRegistrationThreads(benchmark::State &state)
{
    common::ScopedThreads scoped(
        static_cast<size_t>(state.range(1)));
    const auto fixed = noisyPattern(
        static_cast<size_t>(state.range(0)),
        static_cast<size_t>(state.range(0)));
    const auto moving = fixed.shifted(2, -1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            image::registerShiftMi(fixed, moving, {16, 6}));
    }
}
BENCHMARK(BM_MiRegistrationThreads)
    ->Args({96, 1})
    ->Args({96, 4});

void
BM_SensingYieldThreads(benchmark::State &state)
{
    common::ScopedThreads scoped(
        static_cast<size_t>(state.range(1)));
    circuit::SaParams base;
    base.topology = circuit::SaTopology::Classic;
    circuit::MismatchParams mc;
    mc.trials = static_cast<size_t>(state.range(0));
    mc.avtVnm = 9.0;
    circuit::TranParams tp = circuit::defaultSaTran();
    tp.dt = 50e-12;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            circuit::sensingYield(base, mc, tp));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SensingYieldThreads)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4});

void
BM_TransientActivation(benchmark::State &state)
{
    circuit::SaParams params;
    params.topology = state.range(0) == 0
        ? circuit::SaTopology::Classic
        : circuit::SaTopology::OffsetCancellation;
    for (auto _ : state) {
        benchmark::DoNotOptimize(circuit::simulateActivation(params));
    }
}
BENCHMARK(BM_TransientActivation)->Arg(0)->Arg(1);

// ---- Linear-solve engine comparison --------------------------------
// Same activation, dense vs cached-symbolic sparse LU, on the three
// system sizes that matter: classic SA (~16 unknowns), OCSA (~20),
// and the shared-control dual-SA region (~30).  Results are identical
// to 1e-9 across engines (see test_circuit); the pairs measure pure
// linear-algebra cost.

void
BM_SolverActivation(benchmark::State &state)
{
    circuit::SaParams params;
    params.topology = state.range(0) == 0
        ? circuit::SaTopology::Classic
        : circuit::SaTopology::OffsetCancellation;
    circuit::TranParams tp = circuit::defaultSaTran();
    tp.solver = state.range(1) == 0 ? circuit::LinearSolver::Dense
                                    : circuit::LinearSolver::Sparse;
    circuit::SaTestbench testbench(params);
    for (auto _ : state)
        benchmark::DoNotOptimize(testbench.simulate(tp));
}
BENCHMARK(BM_SolverActivation)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void
BM_SolverDualSa(benchmark::State &state)
{
    circuit::DualSaParams params;
    circuit::TranParams tp = circuit::defaultSaTran();
    tp.solver = state.range(0) == 0 ? circuit::LinearSolver::Dense
                                    : circuit::LinearSolver::Sparse;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            circuit::simulateSharedControl(params, tp));
}
BENCHMARK(BM_SolverDualSa)->Arg(0)->Arg(1);

void
BM_SensingYieldTrials(benchmark::State &state)
{
    // Single-threaded Monte-Carlo sweep: isolates the per-chunk
    // testbench reuse + per-trial vthDelta patching from the
    // thread-scaling already covered by BM_SensingYieldThreads.
    common::ScopedThreads scoped(1);
    circuit::SaParams base;
    base.topology = circuit::SaTopology::Classic;
    circuit::MismatchParams mc;
    mc.trials = static_cast<size_t>(state.range(0));
    mc.avtVnm = 9.0;
    circuit::TranParams tp = circuit::defaultSaTran();
    tp.dt = 50e-12;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            circuit::sensingYield(base, mc, tp));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SensingYieldTrials)->Arg(256)->Arg(1024);

void
BM_DramCommandThroughput(benchmark::State &state)
{
    dram::BankConfig config;
    config.rows = 512;
    config.columns = 128;
    config.timings = {10.0, 30.0, 10.0, 4.0, 8.0};
    dram::Bank bank(config);
    double t = 0.0;
    size_t row = 0;
    for (auto _ : state) {
        bank.activate(t, row % config.rows);
        bank.write(t + 12.0, 0, static_cast<uint8_t>(row));
        bank.read(t + 17.0, 0);
        bank.precharge(t + 35.0);
        t += 50.0;
        ++row;
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_DramCommandThroughput);

void
BM_OverheadAudit(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(eval::auditAllPapers());
}
BENCHMARK(BM_OverheadAudit);

/**
 * Telemetry smoke pass: one representative run of each instrumented
 * substrate family (transient solver, virtual fab, imaging stack)
 * under a collection session, written to <prefix>.trace.json and
 * <prefix>.metrics.json.  CI validates the trace with
 * hifi_trace_check --require-prefixes solver,fab.
 */
int
telemetrySmoke(const std::string &prefix)
{
    telemetry::TelemetryConfig tcfg;
    tcfg.enabled = true;
    tcfg.tracePath = prefix + ".trace.json";
    tcfg.metricsPath = prefix + ".metrics.json";

    telemetry::Session session;
    {
        circuit::SaParams params;
        params.topology = circuit::SaTopology::Classic;
        benchmark::DoNotOptimize(
            circuit::simulateActivation(params));
        params.topology = circuit::SaTopology::OffsetCancellation;
        benchmark::DoNotOptimize(
            circuit::simulateActivation(params));

        fab::SaRegionSpec spec;
        spec.pairs = 2;
        fab::SaRegionTruth truth;
        const auto cell = fab::buildSaRegion(spec, truth);
        benchmark::DoNotOptimize(
            fab::voxelize(*cell, truth.region, {5.0, 270.0}));
    }
    const auto collected = session.finish(tcfg);
    if (!collected || collected->spans.empty()) {
        std::cerr << "telemetry smoke collected no spans\n";
        return 1;
    }
    std::cout << "telemetry: " << collected->spans.size()
              << " spans -> " << tcfg.tracePath << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    hifi::telemetry::reportPeakRssAtExit();
    std::string telemetry_prefix;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc)
            telemetry_prefix = argv[++i];
        else
            passthrough.push_back(argv[i]);
    }
    if (!telemetry_prefix.empty()) {
        if (const int rc = telemetrySmoke(telemetry_prefix))
            return rc;
    }
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
