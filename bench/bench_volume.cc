/**
 * @file
 * Out-of-core tiled-volume benchmark: streaming cross-section
 * assembly and verified read-back of a synthetic volume through the
 * TileStore, against the dense in-RAM Volume3D path.
 *
 * The headline leg assembles a 4 GiB logical volume (1024^3 floats)
 * under a bounded working set — 256 MiB of dirty write buffers plus a
 * 128 MiB resident tile cache — and asserts that the process peak RSS
 * stays under 512 MiB, an 8x reduction versus materializing the
 * volume.  Read-back cross-sections are compared bitwise against the
 * slice generator, so the leg is self-checking without ever holding
 * the dense volume.  The comparison legs assemble a 512 MiB volume
 * in RAM and through the store at two budgets; all three read-back
 * digests must be bitwise identical.
 *
 * Numbers are transcribed into BENCH_volume.json.  `--quick` shrinks
 * the volumes for CI smoke runs (the CI leg additionally runs under
 * a ulimit -v address-space ceiling).
 */

#include <chrono>
#include <cstring>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/telemetry.hh"
#include "image/image2d.hh"
#include "image/tile_store.hh"
#include "image/tiled_volume.hh"
#include "image/volume3d.hh"

using namespace hifi;

namespace
{

struct Dims
{
    size_t nx, ny, nz;
    size_t bytes() const { return nx * ny * nz * sizeof(float); }
};

/// Deterministic synthetic voxel: cheap enough to regenerate for
/// verification, varied enough that tiles do not dedup away.
float
voxel(size_t x, size_t y, size_t z)
{
    const uint32_t h = static_cast<uint32_t>(x) * 2654435761u ^
        static_cast<uint32_t>(y) * 40503u ^
        static_cast<uint32_t>(z) * 2246822519u;
    return static_cast<float>(h & 0xFFFFu) / 65536.0f;
}

image::Image2D
makeSlice(size_t x, const Dims &d)
{
    image::Image2D img(d.ny, d.nz);
    for (size_t z = 0; z < d.nz; ++z) {
        float *row = img.row(z);
        for (size_t y = 0; y < d.ny; ++y)
            row[y] = voxel(x, y, z);
    }
    return img;
}

uint64_t
fnvImage(uint64_t h, const image::Image2D &img)
{
    const auto &v = img.data();
    const auto *p = reinterpret_cast<const unsigned char *>(v.data());
    for (size_t i = 0; i < v.size() * sizeof(float); ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

double
sinceMs(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/// Cross-sections sampled for the verified read-back sweep.
std::vector<size_t>
readbackXs(const Dims &d)
{
    return {0, d.nx / 2, d.nx - 1};
}

struct LegResult
{
    uint64_t digest = 0;
    double assembleMs = 0.0;
    double readMs = 0.0;
    size_t spilledBytes = 0;
    size_t evictions = 0;
    bool verified = true;
};

int g_failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "MISMATCH: " << what << "\n";
        ++g_failures;
    }
}

/// Assemble + read back through the tile store under a budget.
LegResult
runTiled(const Dims &d, const std::string &dir, size_t storeBudget,
         size_t dirtyBudget, bool verifySlices)
{
    std::filesystem::remove_all(dir);
    LegResult leg;
    image::TileStoreConfig tc;
    tc.dir = dir;
    tc.budgetBytes = storeBudget;
    image::TileStore store(std::move(tc));

    auto made = image::TiledVolume3D::create(
        d.nx, d.ny, d.nz, store,
        image::TiledVolume3D::kDefaultTileEdge, dirtyBudget);
    if (!made.ok()) {
        check(false, "TiledVolume3D::create: " + made.error().message);
        return leg;
    }
    image::TiledVolume3D vol = made.takeValue();

    auto t0 = std::chrono::steady_clock::now();
    for (size_t x = 0; x < d.nx; ++x) {
        const auto err = vol.setCrossSection(x, makeSlice(x, d));
        if (err) {
            check(false, "setCrossSection: " + err->message);
            return leg;
        }
    }
    if (const auto err = vol.sealAll()) {
        check(false, "sealAll: " + err->message);
        return leg;
    }
    leg.assembleMs = sinceMs(t0);

    t0 = std::chrono::steady_clock::now();
    uint64_t h = 1469598103934665603ull;
    for (const size_t x : readbackXs(d)) {
        auto img = vol.crossSection(x);
        if (!img.ok()) {
            check(false, "crossSection: " + img.error().message);
            return leg;
        }
        h = fnvImage(h, img.value());
        if (verifySlices) {
            const auto expect = makeSlice(x, d);
            leg.verified = leg.verified &&
                std::memcmp(expect.data().data(),
                            img.value().data().data(),
                            expect.data().size() * sizeof(float)) ==
                    0;
        }
    }
    auto slab = vol.planarSlab(d.nz / 2, d.nz / 2 + 4);
    if (!slab.ok()) {
        check(false, "planarSlab: " + slab.error().message);
        return leg;
    }
    h = fnvImage(h, slab.value());
    leg.readMs = sinceMs(t0);
    leg.digest = h;
    leg.spilledBytes = store.stats().spilledBytes;
    leg.evictions = store.stats().evictions;

    std::filesystem::remove_all(dir);
    return leg;
}

/// The same workload fully materialized in RAM.
LegResult
runDense(const Dims &d)
{
    LegResult leg;
    auto t0 = std::chrono::steady_clock::now();
    image::Volume3D vol(d.nx, d.ny, d.nz);
    for (size_t x = 0; x < d.nx; ++x)
        vol.setCrossSection(x, makeSlice(x, d));
    leg.assembleMs = sinceMs(t0);

    t0 = std::chrono::steady_clock::now();
    uint64_t h = 1469598103934665603ull;
    for (const size_t x : readbackXs(d))
        h = fnvImage(h, vol.crossSection(x));
    h = fnvImage(h, vol.planarSlab(d.nz / 2, d.nz / 2 + 4));
    leg.readMs = sinceMs(t0);
    leg.digest = h;
    return leg;
}

struct Row
{
    std::string name;
    double assembleMs = 0.0;
    double readMs = 0.0;
    size_t logicalBytes = 0;
    size_t peakRssBytes = 0;
    size_t spilledBytes = 0;
    size_t evictions = 0;
};

double
mib(size_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

} // namespace

int
main(int argc, char **argv)
{
    hifi::telemetry::reportPeakRssAtExit();
#if defined(__GLIBC__)
    // Pin the mmap threshold so the ~1 MiB tile buffers bypass the
    // main arena: glibc's adaptive threshold would otherwise retain
    // thousands of freed tile-sized blocks in the heap, and the
    // resulting fragmentation — not live data — would dominate the
    // peak-RSS number this bench exists to measure.
    mallopt(M_MMAP_THRESHOLD, 128 << 10);
#endif
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::cerr << "usage: " << argv[0] << " [--quick]\n";
            return 2;
        }
    }

    const std::string scratch =
        (std::filesystem::temp_directory_path() / "hifi_bench_volume")
            .string();

    // Headline out-of-core leg.  Full: 4 GiB logical under a 512 MiB
    // peak-RSS ceiling (128 MiB resident tile cache + a dirty budget
    // of one 256 MiB yz tile layer + slack).  Quick: 64 MiB logical.
    const Dims big = quick ? Dims{256, 256, 256}
                           : Dims{1024, 1024, 1024};
    const size_t tileLayerBytes = ((big.ny + 63) / 64) *
        ((big.nz + 63) / 64) * 64 * 64 * 64 * sizeof(float);
    const size_t bigStoreBudget =
        quick ? (24ull << 20) : (128ull << 20);
    const size_t bigDirtyBudget = tileLayerBytes + (1ull << 20);
    constexpr size_t kRssCeiling = 512ull << 20;

    std::vector<Row> rows;

    {
        Row row;
        row.name = quick ? "tiled_64m_outofcore"
                         : "tiled_4g_outofcore";
        row.logicalBytes = big.bytes();
        const LegResult leg = runTiled(
            big, scratch + "/big", bigStoreBudget, bigDirtyBudget,
            /*verifySlices=*/true);
        row.assembleMs = leg.assembleMs;
        row.readMs = leg.readMs;
        row.spilledBytes = leg.spilledBytes;
        row.evictions = leg.evictions;
        row.peakRssBytes = telemetry::peakRssBytes();
        check(leg.verified,
              "out-of-core read-back matches the slice generator");
        if (!quick) {
            check(row.logicalBytes >= (4ull << 30),
                  "headline leg is >= 4 GiB logical");
            check(row.peakRssBytes > 0 &&
                      row.peakRssBytes <= kRssCeiling,
                  "peak RSS " + std::to_string(mib(row.peakRssBytes)) +
                      " MiB within the 512 MiB ceiling");
        }
        rows.push_back(row);
    }

    // In-RAM vs tiled comparison at a dense-feasible size; the three
    // read-back digests must agree bitwise.
    const Dims cmp = quick ? Dims{160, 160, 160} : Dims{512, 512, 512};
    const size_t budgetLow = quick ? (8ull << 20) : (64ull << 20);
    const size_t budgetHigh = quick ? (32ull << 20) : (256ull << 20);
    const size_t cmpDirty = ((cmp.ny + 63) / 64) *
            ((cmp.nz + 63) / 64) * 64 * 64 * 64 * sizeof(float) +
        (1ull << 20);

    const LegResult dense = runDense(cmp);
    {
        Row row;
        row.name = "dense_inram";
        row.logicalBytes = cmp.bytes();
        row.assembleMs = dense.assembleMs;
        row.readMs = dense.readMs;
        row.peakRssBytes = telemetry::peakRssBytes();
        rows.push_back(row);
    }
    for (const size_t budget : {budgetLow, budgetHigh}) {
        Row row;
        row.name = "tiled_budget_" +
            std::to_string(static_cast<size_t>(mib(budget))) + "m";
        row.logicalBytes = cmp.bytes();
        const LegResult leg =
            runTiled(cmp, scratch + "/" + row.name, budget, cmpDirty,
                     /*verifySlices=*/false);
        row.assembleMs = leg.assembleMs;
        row.readMs = leg.readMs;
        row.spilledBytes = leg.spilledBytes;
        row.evictions = leg.evictions;
        row.peakRssBytes = telemetry::peakRssBytes();
        check(leg.digest == dense.digest,
              row.name + " read-back digest bitwise vs dense");
        rows.push_back(row);
    }

    std::filesystem::remove_all(scratch);

    // ---- Report -----------------------------------------------------
    std::cout << "\nTiled-volume bench"
              << (quick ? " (--quick)" : "")
              << " (assembly = streamed cross-sections, read = 3 "
                 "cross-sections + one 4-slice slab)\n\n";
    for (const Row &r : rows) {
        const double writeMiBs = r.assembleMs > 0.0
            ? mib(r.logicalBytes) / (r.assembleMs / 1000.0)
            : 0.0;
        std::cout << "  " << r.name << ": assemble " << std::fixed
                  << std::setprecision(1) << r.assembleMs << " ms ("
                  << writeMiBs << " MiB/s), read " << r.readMs
                  << " ms, logical " << mib(r.logicalBytes)
                  << " MiB, peak RSS " << mib(r.peakRssBytes)
                  << " MiB";
        if (r.spilledBytes)
            std::cout << ", spilled " << mib(r.spilledBytes)
                      << " MiB, evictions " << r.evictions;
        std::cout << "\n";
    }

    // Machine-readable block (transcribed into BENCH_volume.json).
    std::cout << "\nJSON:\n[";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::cout << (i ? ",\n " : "\n ") << "{\"name\": \"" << r.name
                  << "\", \"assemble_ms\": " << std::setprecision(1)
                  << r.assembleMs << ", \"read_ms\": " << r.readMs
                  << ", \"logical_mib\": " << mib(r.logicalBytes)
                  << ", \"peak_rss_mib\": " << mib(r.peakRssBytes)
                  << ", \"spilled_mib\": " << mib(r.spilledBytes)
                  << ", \"evictions\": " << r.evictions << "}";
    }
    std::cout << "\n]\n";

    if (g_failures) {
        std::cerr << g_failures << " check failure(s)\n";
        return 1;
    }
    return 0;
}
