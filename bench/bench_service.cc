/**
 * @file
 * Campaign-service throughput and fault-tolerance cost.
 *
 * Three questions, each a JSON block consumers can track over time
 * (transcribed into BENCH_service.json):
 *
 *  1. Scheduling: wall time and jobs/min for a fixed batch across
 *     worker-fleet sizes, against the serial direct-run baseline —
 *     what the queue + shared caches buy.
 *  2. Chaos tax: the same batch under deterministic crash injection
 *     (kill probability 0.5) — what a crash-and-resume cycle costs
 *     when every stage boundary is checkpointed.
 *  3. Checkpoint codec: encode/decode latency and image size at
 *     every stage boundary — the per-stage overhead a job pays for
 *     crash safety.
 *
 * `--quick` shrinks the batch for CI smoke runs.  Exit status is
 * non-zero if any job fails, hangs, or resumes to a report that is
 * not bit-identical to the direct run.
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/telemetry.hh"
#include "core/stages.hh"
#include "service/campaign.hh"
#include "service/checkpoint.hh"

namespace
{

using hifi::core::PipelineConfig;
using hifi::service::CampaignService;
using hifi::service::JobState;
using hifi::service::ServiceConfig;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

PipelineConfig
benchJob(uint64_t seed)
{
    PipelineConfig config;
    config.chipId = "B5";
    config.pairs = 2;
    config.faults.enabled = true;
    config.seed = seed;
    return config;
}

struct FleetPoint
{
    size_t workers = 0;
    size_t jobs = 0;
    double wallSec = 0.0;
    size_t volumeCacheHits = 0;
    bool ok = true;

    double jobsPerMin() const
    {
        return wallSec > 0.0 ? 60.0 * static_cast<double>(jobs) /
                wallSec
                             : 0.0;
    }
};

struct ChaosPoint
{
    size_t jobs = 0;
    double killProbability = 0.0;
    double wallSec = 0.0;
    size_t attempts = 0;
    size_t resumes = 0;
    size_t checkpointsSaved = 0;
    bool ok = true;
};

struct CodecPoint
{
    std::string stage;
    size_t bytes = 0;
    double encodeMs = 0.0;
    double decodeMs = 0.0;
};

/// Digest of the uninterrupted direct run, shared by both campaigns.
std::vector<uint64_t>
directDigests(size_t jobs)
{
    std::vector<uint64_t> digests;
    for (size_t i = 0; i < jobs; ++i) {
        const auto run =
            hifi::core::runPipelineChecked(benchJob(100 + i));
        if (!run.ok()) {
            std::cerr << "direct run failed: " << run.error().message
                      << "\n";
            std::exit(1);
        }
        digests.push_back(hifi::core::reportDigest(run.value()));
    }
    return digests;
}

bool
runBatch(CampaignService &service, size_t jobs,
         const std::vector<uint64_t> &expect, size_t &attempts,
         size_t &resumes, size_t &checkpoints, size_t &cacheHits)
{
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < jobs; ++i) {
        const auto id = service.submit("bench-" + std::to_string(i),
                                       benchJob(100 + i));
        if (!id.ok()) {
            std::cerr << "submit failed: " << id.error().message
                      << "\n";
            return false;
        }
        ids.push_back(id.value());
    }
    bool ok = true;
    for (size_t i = 0; i < ids.size(); ++i) {
        if (!service.wait(ids[i], 600.0)) {
            std::cerr << "job " << i << " hung\n";
            ok = false;
            continue;
        }
        const auto st = service.status(ids[i]);
        attempts += st.attempts;
        resumes += st.resumes;
        checkpoints += st.checkpointsSaved;
        if (st.state != JobState::Completed) {
            std::cerr << "job " << i << " ended "
                      << hifi::service::jobStateName(st.state)
                      << "\n";
            ok = false;
        } else if (st.reportDigest != expect[i]) {
            std::cerr << "job " << i
                      << " digest differs from the direct run\n";
            ok = false;
        }
        // A resumed job skips stages, visible as fewer stage runs
        // than attempts * stages; cache hits are reported instead
        // through stagesRun < kNumStages on a fresh attempt.
        if (st.resumes == 0 &&
            st.stagesRun < hifi::core::kNumStages)
            ++cacheHits;
    }
    return ok;
}

std::vector<CodecPoint>
benchCodec(const PipelineConfig &config)
{
    std::vector<CodecPoint> points;
    auto init = hifi::core::initStagedRun(config);
    if (!init.ok())
        std::exit(1);
    auto state = init.takeValue();
    while (state.next != hifi::core::Stage::Done) {
        const auto before = state.next;
        if (hifi::core::runStage(config, state))
            std::exit(1);
        if (state.next == hifi::core::Stage::Done)
            break;
        CodecPoint p;
        p.stage = hifi::core::stageName(before);
        const auto t0 = Clock::now();
        const std::string image =
            hifi::service::encodeCheckpoint(config, state);
        p.encodeMs = secondsSince(t0) * 1e3;
        p.bytes = image.size();
        const auto t1 = Clock::now();
        auto decoded =
            hifi::service::decodeCheckpoint(image, config);
        p.decodeMs = secondsSince(t1) * 1e3;
        if (!decoded.ok()) {
            std::cerr << "decode failed at " << p.stage << ": "
                      << decoded.error().message << "\n";
            std::exit(1);
        }
        points.push_back(p);
    }
    return points;
}

} // namespace

int
main(int argc, char **argv)
{
    hifi::telemetry::reportPeakRssAtExit();
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const size_t jobs = quick ? 3 : 6;
    const std::vector<size_t> fleets =
        quick ? std::vector<size_t>{1, 2}
              : std::vector<size_t>{1, 2, 4};

    std::cout << "campaign service benchmark (" << jobs
              << " jobs, B5 x 2 pairs, faults on)\n\n";

    const auto t0 = Clock::now();
    const auto expect = directDigests(jobs);
    const double directSec = secondsSince(t0);
    std::cout << "serial direct baseline: " << directSec << " s\n";

    bool ok = true;

    std::vector<FleetPoint> fleet;
    for (const size_t workers : fleets) {
        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.volumeCacheCapacity = 2;
        cfg.cleanFrameCacheCapacity = 8;
        CampaignService service(cfg);
        FleetPoint p;
        p.workers = workers;
        p.jobs = jobs;
        size_t attempts = 0, resumes = 0, ckpts = 0;
        const auto start = Clock::now();
        p.ok = runBatch(service, jobs, expect, attempts, resumes,
                        ckpts, p.volumeCacheHits);
        p.wallSec = secondsSince(start);
        ok = ok && p.ok;
        std::cout << "fleet of " << workers << ": " << p.wallSec
                  << " s, " << p.jobsPerMin() << " jobs/min\n";
        fleet.push_back(p);
    }

    ChaosPoint chaos;
    {
        const auto dir = std::filesystem::temp_directory_path() /
            "hifi_bench_service_ckpt";
        std::filesystem::remove_all(dir);
        ServiceConfig cfg;
        cfg.workers = 2;
        cfg.checkpointDir = dir.string();
        cfg.volumeCacheCapacity = 2;
        cfg.cleanFrameCacheCapacity = 8;
        cfg.chaos.enabled = true;
        cfg.chaos.killProbability = 0.5;
        cfg.retry.maxAttempts = 8;
        cfg.retry.backoffBaseMs = 1.0;
        CampaignService service(cfg);
        chaos.jobs = jobs;
        chaos.killProbability = cfg.chaos.killProbability;
        size_t cacheHits = 0;
        const auto start = Clock::now();
        chaos.ok = runBatch(service, jobs, expect, chaos.attempts,
                            chaos.resumes, chaos.checkpointsSaved,
                            cacheHits);
        chaos.wallSec = secondsSince(start);
        ok = ok && chaos.ok;
        std::filesystem::remove_all(dir);
        std::cout << "chaos (kill 0.5): " << chaos.wallSec << " s, "
                  << chaos.attempts << " attempts, " << chaos.resumes
                  << " resumes, every report bit-identical\n";
    }

    const auto codec = benchCodec(benchJob(100));
    for (const auto &p : codec)
        std::cout << "checkpoint after " << p.stage << ": "
                  << p.bytes << " B, encode " << p.encodeMs
                  << " ms, decode " << p.decodeMs << " ms\n";

    // Machine-readable block (transcribed into BENCH_service.json).
    std::cout << "\nJSON:\n{\n \"direct_serial_sec\": " << directSec
              << ",\n \"fleet\": [";
    for (size_t i = 0; i < fleet.size(); ++i) {
        const FleetPoint &p = fleet[i];
        std::cout << (i ? ",\n  " : "\n  ")
                  << "{\"workers\": " << p.workers
                  << ", \"jobs\": " << p.jobs
                  << ", \"wall_sec\": " << p.wallSec
                  << ", \"jobs_per_min\": " << p.jobsPerMin()
                  << ", \"volume_cache_hits\": " << p.volumeCacheHits
                  << "}";
    }
    std::cout << "\n ],\n \"chaos\": {\"jobs\": " << chaos.jobs
              << ", \"kill_probability\": " << chaos.killProbability
              << ", \"wall_sec\": " << chaos.wallSec
              << ", \"attempts\": " << chaos.attempts
              << ", \"resumes\": " << chaos.resumes
              << ", \"checkpoints_saved\": " << chaos.checkpointsSaved
              << "},\n \"checkpoint\": [";
    for (size_t i = 0; i < codec.size(); ++i) {
        const CodecPoint &p = codec[i];
        std::cout << (i ? ",\n  " : "\n  ") << "{\"stage\": \""
                  << p.stage << "\", \"bytes\": " << p.bytes
                  << ", \"encode_ms\": " << p.encodeMs
                  << ", \"decode_ms\": " << p.decodeMs << "}";
    }
    std::cout << "\n ]\n}\n";

    if (!ok) {
        std::cerr << "service benchmark found regressions\n";
        return 1;
    }
    return 0;
}
