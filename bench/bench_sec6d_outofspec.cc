/**
 * @file
 * Reproduces Section VI-D: out-of-spec DRAM experiments behave
 * differently on OCSA chips.  Two experiments:
 *
 *  1. Charge-sharing timing: a study issuing back-to-back commands
 *     right after ACT assumes charge sharing starts immediately; on
 *     OCSA chips it is delayed by the offset-cancellation phase.
 *
 *  2. Bitline states: classic bitlines are either latched or
 *     precharged/equalized; OCSA bitlines visit a third, diode-
 *     connected level during OC, which breaks experiments that skip
 *     precharge to keep bitlines unperturbed.
 *
 *  3. Mismatch tolerance: the reliability consequence - sensing
 *     failure rates under Pelgrom Vth mismatch, classic vs OCSA.
 */

#include <iostream>

#include "circuit/mismatch.hh"
#include "circuit/sense_amp.hh"
#include "common/table.hh"
#include "common/telemetry.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using circuit::SaParams;
    using circuit::SaTopology;
    using common::Table;

    // --- 1. Charge-sharing delay -------------------------------------
    SaParams classic;
    classic.topology = SaTopology::Classic;
    SaParams ocsa;
    ocsa.topology = SaTopology::OffsetCancellation;

    circuit::SaSchedule sc, so;
    circuit::buildSaTestbench(classic, sc);
    circuit::buildSaTestbench(ocsa, so);
    std::cout << "Section VI-D: out-of-spec behaviour on OCSA chips\n\n"
              << "1. Charge-sharing start after ACT:\n"
              << "   classic: "
              << Table::num((sc.tChargeShare - sc.tActivate) * 1e9, 2)
              << " ns   OCSA: "
              << Table::num((so.tChargeShare - so.tActivate) * 1e9, 2)
              << " ns (delayed by the OC phase)\n\n";

    // --- 2. The third bitline state -----------------------------------
    const auto run_c = circuit::simulateActivation(classic);
    const auto run_o = circuit::simulateActivation(ocsa);
    // Probe both topologies 2 ns after ACT: a study assuming
    // immediate charge sharing sees it on the classic chip, while
    // the OCSA bitline sits at the diode-connected OC level.
    std::cout << "2. Bitline level 2 ns after ACT:\n"
              << "   classic BL = "
              << Table::num(run_c.tran.trace("BL").at(
                     sc.tActivate + 2e-9), 3)
              << " V (charge sharing already happened)\n"
              << "   OCSA    BL = "
              << Table::num(run_o.tran.trace("BL").at(
                     so.tActivate + 2e-9), 3)
              << " V (no cell signal yet; diode-connected third "
                 "state, != Vpre)\n\n";

    // --- 3. Mismatch tolerance ----------------------------------------
    circuit::MismatchParams mc;
    mc.trials = 40;
    mc.seed = 99;
    mc.avtVnm = 8.0; // stressed corner
    circuit::TranParams tp = circuit::defaultSaTran();
    tp.dt = 40e-12;

    std::cout << "3. Sensing failure rate under Vth mismatch "
              << "(A_VT = " << mc.avtVnm << " V*nm, " << mc.trials
              << " trials):\n";
    Table t({"topology", "failures", "rate", "mean |signal|"});
    for (auto topo : {SaTopology::Classic,
                      SaTopology::OffsetCancellation}) {
        SaParams p;
        p.topology = topo;
        const auto y = circuit::sensingYield(p, mc, tp);
        t.addRow({circuit::saTopologyName(topo),
                  std::to_string(y.failures) + "/" +
                      std::to_string(y.trials),
                  Table::percent(y.failureRate(), 1),
                  Table::num(y.meanSignal * 1e3, 1) + " mV"});
    }
    t.print(std::cout);
    std::cout << "\nOffset cancellation is why vendors moved to OCSA "
                 "on smaller nodes (Section V-A).\n\n";

    // --- 4. Multi-row charge sharing (ComputeDRAM-style) ---------------
    std::cout << "4. Out-of-spec two-row activation (majority-style "
                 "charge sharing, [24]):\n";
    Table m({"cells", "classic signal", "OCSA signal", "note"});
    for (const auto &[b1, b2] : {std::pair{true, true},
                                 std::pair{true, false},
                                 std::pair{false, false}}) {
        SaParams p;
        p.storeOne = b1;
        p.extraCells = {b2};
        p.topology = SaTopology::Classic;
        const double sc2 =
            circuit::simulateActivation(p, tp).signalBeforeLatch;
        p.topology = SaTopology::OffsetCancellation;
        const double so2 =
            circuit::simulateActivation(p, tp).signalBeforeLatch;
        m.addRow({std::string("{") + (b1 ? "1" : "0") + "," +
                      (b2 ? "1" : "0") + "}",
                  Table::num(sc2 * 1e3, 1) + " mV",
                  Table::num(so2 * 1e3, 1) + " mV",
                  b1 == b2 ? "agree: strong signal"
                           : "conflict: OCSA is biased, classic "
                             "cancels"});
    }
    m.print(std::cout);
    std::cout << "\nOn OCSA chips charge sharing starts from the "
                 "diode-connected level, not Vpre, so majority-based "
                 "row operations are biased (Section VI-D).\n";
    return 0;
}
