/**
 * @file
 * Imaging fast-path benchmark: wall-clock of the registration / SEM /
 * denoise kernels and the fault-injected robust-acquisition campaign,
 * compared (where one exists in-binary) against the retained reference
 * implementation, plus the opt-in pyramid search and the clean-frame
 * cache on/off.  Every fast-vs-reference pair is also checked for
 * exact result agreement, so the bench doubles as an equivalence
 * smoke test.
 *
 * Numbers are transcribed into BENCH_imaging.json; the "before"
 * column there was recorded with the identical workloads on the
 * pre-fast-path build.
 *
 * `--quick` shrinks the sweep and rep counts for CI smoke runs.
 * `--telemetry <prefix>` instruments the campaign + registration run
 * and writes <prefix>.trace.json / <prefix>.metrics.json (validated
 * in CI by hifi_trace_check); the metrics include the
 * sem.clean_cache.* and mi.* fast-path counters.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/telemetry.hh"
#include "fab/voxelizer.hh"
#include "image/denoise.hh"
#include "image/image2d.hh"
#include "image/noise.hh"
#include "image/registration.hh"
#include "image/volume3d.hh"
#include "scope/faults.hh"
#include "scope/fib.hh"
#include "scope/sem.hh"

using namespace hifi;
using image::Image2D;
using image::Volume3D;

namespace
{

Image2D
testPattern(size_t w, size_t h)
{
    Image2D img(w, h, 0.1f);
    for (size_t x = 6; x < w; x += 8)
        img.fillRect(static_cast<long>(x), 0, static_cast<long>(x + 4),
                     static_cast<long>(h), 0.8f);
    img.fillRect(10, 12, 30, 26, 0.5f);
    img.fillRect(40, 30, 90, 60, 0.35f);
    return img;
}

Volume3D
makeScene(size_t nx = 120, size_t ny = 48, size_t nz = 40)
{
    Volume3D vol(nx, ny, nz, 1.0f);
    for (size_t x = 0; x < nx; ++x) {
        const size_t s = x / 2;
        const size_t tri = s % 58 < 29 ? s % 58 : 58 - s % 58;
        const size_t bar_y = 4 + tri;
        for (size_t y = 0; y < ny; ++y) {
            for (size_t z = 0; z < nz; ++z) {
                float v = 1.0f;
                if (z >= 12 && z < 16)
                    v = 0.0f;
                else if (z >= 22 && z < 26)
                    v = 2.0f;
                else if (z >= 16 && z < 22 && (y + 2000 - s) % 20 < 3)
                    v = 3.0f;
                if (z >= 30 && z < 34 && y >= bar_y && y < bar_y + 4)
                    v = 4.0f;
                vol.at(x, y, z) = v;
            }
        }
    }
    return vol;
}

template <typename F>
double
medianMs(F &&fn, size_t reps)
{
    std::vector<double> ms;
    for (size_t i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
    }
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
}

/// Per-voxel reference SEM formation: the pre-LUT semImageClean loop.
Image2D
semImageCleanReference(const Volume3D &materials, size_t x0,
                       size_t slice_voxels,
                       const scope::SemParams &params)
{
    const bool se = params.detector == models::Detector::Se;
    const double q = se ? params.seQuality : 1.0;
    const double pivot = 0.45;
    const size_t x1 = std::min(materials.nx(), x0 + slice_voxels);
    Image2D img(materials.ny(), materials.nz());
    for (size_t z = 0; z < materials.nz(); ++z) {
        for (size_t y = 0; y < materials.ny(); ++y) {
            double sum = 0.0;
            for (size_t x = x0; x < x1; ++x) {
                const double c = scope::materialContrast(
                    fab::voxelMaterial(materials.at(x, y, z)),
                    params.detector);
                sum += pivot + (c - pivot) * q;
            }
            img.at(y, z) = static_cast<float>(
                sum / static_cast<double>(x1 - x0));
        }
    }
    return img;
}

struct Row
{
    std::string name;
    double fastMs = 0.0;
    double referenceMs = -1.0; ///< < 0: no in-binary reference
    std::string note;
};

int g_failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "MISMATCH: " << what << "\n";
        ++g_failures;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    hifi::telemetry::reportPeakRssAtExit();
    bool quick = false;
    std::string telemetry_prefix;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--telemetry") == 0 &&
                   i + 1 < argc) {
            telemetry_prefix = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--telemetry <prefix>]\n";
            return 2;
        }
    }

    // Single-threaded so the numbers isolate the algorithmic change
    // from the PR-1 parallelism.
    const common::ScopedThreads one(1);

    const Image2D clean = testPattern(128, 96);
    Image2D fixed = clean;
    image::addSensorNoise(fixed, 900.0, 0.05, 11);
    Image2D moving = clean.shifted(3, -2);
    image::addSensorNoise(moving, 900.0, 0.05, 22);

    std::vector<Row> rows;

    // ---- Registration span sweep: quantized vs reference ----------
    const std::vector<long> spans =
        quick ? std::vector<long>{4} : std::vector<long>{4, 8, 16};
    for (long max_shift : spans) {
        image::MiParams mi;
        mi.bins = 32;
        mi.maxShift = max_shift;
        const size_t reps = quick ? 3 : (max_shift >= 16 ? 5 : 9);

        std::pair<long, long> fast_shift, ref_shift;
        Row row;
        row.name =
            "register_shift_mi_maxshift_" + std::to_string(max_shift);
        row.fastMs = medianMs([&] {
            fast_shift = image::registerShiftMi(fixed, moving, mi);
        }, reps);
        row.referenceMs = medianMs([&] {
            ref_shift =
                image::registerShiftMiReference(fixed, moving, mi);
        }, quick ? 1 : 3);
        check(fast_shift == ref_shift, row.name);
        row.note = "shift (" + std::to_string(fast_shift.first) + "," +
            std::to_string(fast_shift.second) + ")";
        rows.push_back(row);
    }

    // ---- Opt-in pyramid strategy (vs exhaustive, same window) ------
    {
        image::MiParams mi;
        mi.bins = 32;
        mi.maxShift = quick ? 4 : 16;
        image::MiParams pyr = mi;
        pyr.strategy = image::MiStrategy::Pyramid;
        std::pair<long, long> p_shift, e_shift;
        Row row;
        row.name =
            "register_shift_mi_pyramid_maxshift_" +
            std::to_string(mi.maxShift);
        row.fastMs = medianMs([&] {
            p_shift = image::registerShiftMi(fixed, moving, pyr);
        }, quick ? 3 : 9);
        row.referenceMs = medianMs([&] {
            e_shift = image::registerShiftMi(fixed, moving, mi);
        }, quick ? 3 : 9);
        // Heuristic, so agreement is expected on this structured
        // pattern but not guaranteed by construction.
        row.note = p_shift == e_shift
            ? "matches exhaustive"
            : "DIVERGES from exhaustive";
        rows.push_back(row);
    }

    // ---- Plain MI ---------------------------------------------------
    {
        double fast_mi = 0.0, ref_mi = 0.0;
        Row row;
        row.name = "mutual_information";
        row.fastMs = medianMs([&] {
            fast_mi = image::mutualInformation(fixed, moving, 32);
        }, quick ? 11 : 101);
        row.referenceMs = medianMs([&] {
            ref_mi = image::mutualInformationAtShiftReference(
                fixed, moving, 0, 0, 32);
        }, quick ? 11 : 101);
        check(fast_mi == ref_mi, row.name);
        row.note = "fused one-shot, no quantized-plane build";
        rows.push_back(row);
    }

    // ---- SIMD kernels vs forced-portable-scalar --------------------
    // Each pair runs the same workload on the active ISA and with
    // ScopedForceScalar, asserting bitwise-identical output (and,
    // where a reference implementation exists in-binary, agreement
    // with it on BOTH paths).  On a non-AVX2 host or under
    // HIFI_SIMD=off the two columns simply coincide.
    {
        const std::string isa_note = std::string("isa ") +
            common::simd::isaName(common::simd::activeIsa()) +
            ", vs forced scalar";
        const size_t reps = quick ? 3 : 9;
        const image::TvParams tv{0.05, 50};

        Image2D tv_fast, tv_scalar;
        Row row_c;
        row_c.name = "denoise_chambolle_simd";
        row_c.fastMs = medianMs([&] {
            tv_fast = image::denoiseChambolle(fixed, tv);
        }, reps);
        {
            common::simd::ScopedForceScalar off;
            row_c.referenceMs = medianMs([&] {
                tv_scalar = image::denoiseChambolle(fixed, tv);
            }, reps);
        }
        check(tv_fast.data() == tv_scalar.data(), row_c.name);
        row_c.note = isa_note;
        rows.push_back(row_c);

        Row row_b;
        row_b.name = "denoise_split_bregman_simd";
        row_b.fastMs = medianMs([&] {
            tv_fast = image::denoiseSplitBregman(fixed, tv);
        }, reps);
        {
            common::simd::ScopedForceScalar off;
            row_b.referenceMs = medianMs([&] {
                tv_scalar = image::denoiseSplitBregman(fixed, tv);
            }, reps);
        }
        check(tv_fast.data() == tv_scalar.data(), row_b.name);
        row_b.note = isa_note;
        rows.push_back(row_b);

        double mi_fast = 0.0, mi_scalar = 0.0;
        const double mi_ref = image::mutualInformationAtShiftReference(
            fixed, moving, 0, 0, 32);
        Row row_mi;
        row_mi.name = "mutual_information_simd";
        row_mi.fastMs = medianMs([&] {
            mi_fast = image::mutualInformation(fixed, moving, 32);
        }, quick ? 11 : 101);
        {
            common::simd::ScopedForceScalar off;
            row_mi.referenceMs = medianMs([&] {
                mi_scalar = image::mutualInformation(fixed, moving, 32);
            }, quick ? 11 : 101);
        }
        check(mi_fast == mi_ref && mi_scalar == mi_ref, row_mi.name);
        row_mi.note = isa_note;
        rows.push_back(row_mi);
    }

    // ---- Clean SEM frame formation: LUT vs per-voxel switch --------
    const Volume3D scene = makeScene();
    const scope::SemParams sem;
    {
        Image2D fast_img, ref_img;
        Row row;
        row.name = "sem_image_clean";
        row.fastMs = medianMs([&] {
            fast_img = scope::semImageClean(scene, 0, 8, sem);
        }, quick ? 11 : 101);
        row.referenceMs = medianMs([&] {
            ref_img = semImageCleanReference(scene, 0, 8, sem);
        }, quick ? 11 : 101);
        check(fast_img.data() == ref_img.data(), row.name);
        rows.push_back(row);

        // SIMD gather-quad kernel vs forced scalar, both against the
        // per-voxel reference frame computed above.
        Image2D simd_img, scalar_img;
        Row row_s;
        row_s.name = "sem_image_clean_simd";
        row_s.fastMs = medianMs([&] {
            simd_img = scope::semImageClean(scene, 0, 8, sem);
        }, quick ? 11 : 101);
        {
            common::simd::ScopedForceScalar off;
            row_s.referenceMs = medianMs([&] {
                scalar_img = scope::semImageClean(scene, 0, 8, sem);
            }, quick ? 11 : 101);
        }
        check(simd_img.data() == ref_img.data() &&
                  scalar_img.data() == ref_img.data(),
              row_s.name);
        row_s.note = std::string("isa ") +
            common::simd::isaName(common::simd::activeIsa()) +
            ", vs forced scalar";
        rows.push_back(row_s);
    }

    // ---- Denoise (50 iterations, lambda 0.05) ----------------------
    {
        const image::TvParams tv{0.05, 50};
        const size_t reps = quick ? 3 : 9;
        Row row_c;
        row_c.name = "denoise_chambolle";
        row_c.fastMs = medianMs([&] {
            (void)image::denoiseChambolle(fixed, tv);
        }, reps);
        rows.push_back(row_c);

        Row row_b;
        row_b.name = "denoise_split_bregman";
        row_b.fastMs = medianMs([&] {
            (void)image::denoiseSplitBregman(fixed, tv);
        }, reps);
        rows.push_back(row_b);

        // Opt-in convergence exit at a practical tolerance.
        image::TvParams tol = tv;
        tol.tolerance = 1e-4;
        Row row_t;
        row_t.name = "denoise_chambolle_tol_1e-4";
        row_t.fastMs = medianMs([&] {
            (void)image::denoiseChambolle(fixed, tol);
        }, reps);
        row_t.referenceMs = row_c.fastMs;
        row_t.note = "vs fixed 50 iterations";
        rows.push_back(row_t);
    }

    // ---- Fault-injected robust acquisition campaign ----------------
    {
        scope::FibSemParams params;
        params.sliceVoxels = 2;
        params.driftProbability = 0.3;
        params.maxDriftPx = 3;
        scope::FaultParams faults;
        faults = faults.scaled(2.0);
        faults.enabled = true;
        scope::RecoveryParams recovery;
        const size_t reps = quick ? 1 : 5;

        size_t retries = 0;
        Row row;
        row.name = "acquire_robust_2x";
        row.fastMs = medianMs([&] {
            retries = scope::acquireRobust(scene, params, faults,
                                           recovery, 42)
                          .retries;
        }, reps);

        // Same campaign with the clean-frame cache disabled, to
        // isolate its contribution; the results must be identical.
        scope::RecoveryParams no_cache = recovery;
        no_cache.reuseCleanFrames = false;
        size_t retries_nc = 0;
        Row row_nc;
        row_nc.name = "acquire_robust_2x_no_clean_cache";
        row_nc.fastMs = medianMs([&] {
            retries_nc = scope::acquireRobust(scene, params, faults,
                                              no_cache, 42)
                             .retries;
        }, reps);
        check(retries == retries_nc, "clean cache changes retries");
        row.note = std::to_string(retries) + " retries";
        rows.push_back(row);
        rows.push_back(row_nc);

        // Instrumented run: spans with image./scope. prefixes plus
        // the fast-path counters land in the exported files.
        if (!telemetry_prefix.empty()) {
            telemetry::Session session;
            (void)scope::acquireRobust(scene, params, faults,
                                       recovery, 42);
            image::MiParams mi;
            mi.strategy = image::MiStrategy::Pyramid;
            (void)image::registerShiftMi(fixed, moving, mi);
            telemetry::TelemetryConfig cfg;
            cfg.enabled = true;
            cfg.tracePath = telemetry_prefix + ".trace.json";
            cfg.metricsPath = telemetry_prefix + ".metrics.json";
            const auto collected = session.finish(cfg);
            const auto &counters = collected->metrics.counters;
            for (const char *name :
                 {"sem.clean_cache.hit", "sem.clean_cache.miss",
                  "mi.pyramid.evals"}) {
                const auto it = counters.find(name);
                std::cout << "counter " << name << " = "
                          << (it == counters.end() ? 0 : it->second)
                          << "\n";
                check(it != counters.end() && it->second > 0,
                      std::string("missing counter ") + name);
            }
        }
    }

    // ---- Report -----------------------------------------------------
    std::cout << "\nImaging fast-path bench (1 thread, median of "
                 "reps; reference = retained original algorithm)\n\n";
    for (const Row &r : rows) {
        std::cout << "  " << r.name << ": " << r.fastMs << " ms";
        if (r.referenceMs >= 0.0)
            std::cout << " (reference " << r.referenceMs << " ms, "
                      << r.referenceMs / r.fastMs << "x)";
        if (!r.note.empty())
            std::cout << " [" << r.note << "]";
        std::cout << "\n";
    }

    // Machine-readable block (transcribed into BENCH_imaging.json).
    std::cout << "\nJSON:\n[";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::cout << (i ? ",\n " : "\n ") << "{\"name\": \"" << r.name
                  << "\", \"fast_ms\": " << r.fastMs;
        if (r.referenceMs >= 0.0)
            std::cout << ", \"reference_ms\": " << r.referenceMs
                      << ", \"speedup\": " << r.referenceMs / r.fastMs;
        std::cout << "}";
    }
    std::cout << "\n]\n";

    if (g_failures) {
        std::cerr << g_failures << " equivalence failure(s)\n";
        return 1;
    }
    return 0;
}
