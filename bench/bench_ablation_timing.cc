/**
 * @file
 * Ablation: how the reverse-engineered quantities change circuit
 * behaviour - the reason the paper insists on accurate W/L ratios and
 * topologies.  Sweeps (a) the latch W/L between CROW's, REM's and the
 * measured values, reporting sense latency and mismatch tolerance;
 * (b) bitline capacitance (MAT size), reporting the charge-sharing
 * signal; and (c) classic vs OCSA activation latency (the OCSA's
 * extra phases cost tRCD).
 */

#include <iostream>

#include "circuit/mismatch.hh"
#include "circuit/sense_amp.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "models/chip_data.hh"
#include "models/public_models.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using circuit::SaParams;
    using circuit::SaTopology;
    using common::Table;
    using models::Role;

    circuit::TranParams tp = circuit::defaultSaTran();
    tp.dt = 40e-12;
    circuit::MismatchParams mc;
    mc.trials = 60;
    mc.seed = 17;
    mc.avtVnm = 10.0;

    // --- (a) latch sizing source ---------------------------------------
    std::cout << "Ablation (a): latch sizing source "
                 "(classic SA, A_VT = 10 V*nm)\n";
    Table a({"sizing from", "nSA WxL", "sense lat. (ns)",
             "failure rate"});
    struct Src
    {
        const char *name;
        double w, l, pw, pl;
    };
    const auto &crow_n = *models::crowModel().role(Role::Nsa);
    const auto &crow_p = *models::crowModel().role(Role::Psa);
    const auto &rem_n = *models::remModel().role(Role::Nsa);
    const auto &rem_p = *models::remModel().role(Role::Psa);
    const auto &c4_n = *models::chip("C4").role(Role::Nsa);
    const auto &c4_p = *models::chip("C4").role(Role::Psa);
    for (const Src &src :
         {Src{"CROW (best guess)", crow_n.w, crow_n.l, crow_p.w,
              crow_p.l},
          Src{"REM (25 nm vendor)", rem_n.w, rem_n.l, rem_p.w,
              rem_p.l},
          Src{"measured C4", c4_n.w, c4_n.l, c4_p.w, c4_p.l}}) {
        SaParams p;
        p.topology = SaTopology::Classic;
        p.sizing.nsaW = src.w;
        p.sizing.nsaL = src.l;
        p.sizing.psaW = src.pw;
        p.sizing.psaL = src.pl;
        const auto run = circuit::simulateActivation(p, tp);
        const auto yield = circuit::sensingYield(p, mc, tp);
        a.addRow({src.name,
                  Table::num(src.w, 0) + "x" + Table::num(src.l, 0),
                  Table::num(run.tSense * 1e9, 2),
                  Table::percent(yield.failureRate(), 1)});
    }
    a.print(std::cout);
    std::cout << "CROW's inflated devices sense faster and fail less "
                 "than real silicon: optimistic simulations "
                 "(Section VI-A).\n\n";

    // --- (b) bitline loading -------------------------------------------
    std::cout << "Ablation (b): bitline capacitance (MAT length)\n";
    Table b({"C_BL (fF)", "signal (mV)", "sense lat. (ns)"});
    for (const double cbl : {30.0, 55.0, 85.0}) {
        SaParams p;
        p.topology = SaTopology::Classic;
        p.blCapF = cbl * 1e-15;
        const auto run = circuit::simulateActivation(p, tp);
        b.addRow({Table::num(cbl, 0),
                  Table::num(run.signalBeforeLatch * 1e3, 1),
                  Table::num(run.tSense * 1e9, 2)});
    }
    b.print(std::cout);
    std::cout << "Longer bitlines dilute the cell charge - why MAT "
                 "row counts and bitline changes matter "
                 "(Appendix A).\n\n";

    // --- (c) topology cost ----------------------------------------------
    std::cout << "Ablation (c): activation latency and energy per "
                 "topology\n";
    Table c({"topology", "ACT->latched (ns)", "restore done (ns)",
             "energy (fJ)"});
    for (const auto topo :
         {SaTopology::Classic, SaTopology::OffsetCancellation}) {
        SaParams p;
        p.topology = topo;
        const auto run = circuit::simulateActivation(p, tp);
        double energy = run.tran.sourceEnergy("Vsan") +
            run.tran.sourceEnergy("Vsap") +
            run.tran.sourceEnergy("Vpre") +
            run.tran.sourceEnergy("Vwl");
        if (topo == SaTopology::OffsetCancellation)
            energy += run.tran.sourceEnergy("Viso") +
                run.tran.sourceEnergy("Voc");
        c.addRow({circuit::saTopologyName(topo),
                  Table::num(run.tSense * 1e9, 2),
                  Table::num((run.schedule.tRestoreEnd -
                              run.schedule.tActivate) *
                                 1e9,
                             2),
                  Table::num(energy * 1e15, 1)});
    }
    c.print(std::cout);
    std::cout << "The OCSA's extra phases trade activation latency "
                 "and energy for sensing reliability - the latency, "
                 "energy and power overheads I5 papers miss "
                 "(Section VI-B).\n";
    return 0;
}
