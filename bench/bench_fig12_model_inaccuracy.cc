/**
 * @file
 * Reproduces Fig. 12: average and maximum absolute inaccuracies of the
 * REM and CROW public models against the measured chips, as W/L
 * ratios and separately widths and lengths, for DDR4 and (portability)
 * DDR5.
 *
 * Paper anchors: CROW W/L avg 236% / max 562% (C4 precharge); CROW
 * width avg 271% / max 938% ("up to 9x"); REM length avg 31% / max
 * 101% (C4 equalizer).
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "eval/model_accuracy.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Fig. 12: model inaccuracies vs measured chips\n\n";
    Table t({"model", "DDR", "W/L avg", "W/L max", "at", "W avg",
             "W max", "at", "L avg", "L max", "at"});
    for (const auto &acc : eval::fig12Summary()) {
        t.addRow({acc.model,
                  acc.ddr == 4 ? "4" : "5 (portability)",
                  Table::percent(acc.avgWl),
                  Table::percent(acc.maxWl), acc.maxWlAt,
                  Table::percent(acc.avgW), Table::percent(acc.maxW),
                  acc.maxWAt, Table::percent(acc.avgL),
                  Table::percent(acc.maxL), acc.maxLAt});
    }
    t.print(std::cout);

    const auto crow4 = eval::evaluateModel(models::crowModel(), 4);
    const auto rem4 = eval::evaluateModel(models::remModel(), 4);
    std::cout << "\nHeadlines (paper in parentheses):\n"
              << " - CROW avg W/L inaccuracy "
              << Table::percent(crow4.avgWl) << " (236%)\n"
              << " - CROW max W/L " << Table::percent(crow4.maxWl)
              << " at " << crow4.maxWlAt << " (562% at C4 precharge)\n"
              << " - CROW avg width " << Table::percent(crow4.avgW)
              << " (271%), max " << Table::percent(crow4.maxW)
              << " (938% -> 'models up to 9x inaccurate')\n"
              << " - REM avg length " << Table::percent(rem4.avgL)
              << " (31%), max " << Table::percent(rem4.maxL) << " at "
              << rem4.maxLAt << " (101% at C4 equalizer)\n"
              << " - neither model includes the OCSA topology "
                 "deployed on A4, A5, B5\n";
    return 0;
}
