/**
 * @file
 * Reproduces Fig. 6 / Section IV-A: the blind ROI identification.
 * Starting from an unknown position, FIB cross sections step across
 * the die until the morphology changes from MAT to logic; the logic
 * strip found along the wordline axis (row drivers, width W1) is
 * narrower than the strip found perpendicular (SAs, width W2), so the
 * wider region is identified as the SA region, within 2 hours/chip.
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "scope/roi_search.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Fig. 6: blind ROI search (W1 = row drivers, "
                 "W2 = SA region)\n\n";
    Table t({"chip", "W1 found", "W1 true", "W2 found", "W2 true",
             "SA = wider?", "sections", "time"});
    bool all_ok = true;
    for (const auto &chip : models::allChips()) {
        const auto result = scope::roiSearch(chip);
        all_ok &= result.saIsSecondDirection;
        t.addRow({chip.id,
                  Table::num(result.w1Nm / 1e3, 2) + " um",
                  Table::num(chip.rowDriverWidthNm / 1e3, 2) + " um",
                  Table::num(result.w2Nm / 1e3, 2) + " um",
                  Table::num(chip.saHeightNm / 1e3, 2) + " um",
                  result.saIsSecondDirection ? "yes" : "NO",
                  std::to_string(result.crossSections),
                  Table::num(result.hoursSpent, 2) + " h"});
    }
    t.print(std::cout);
    std::cout << "\nPaper: identification lasts no more than 2 hours "
                 "per chip; row drivers are typically smaller than "
                 "the SA strip.\n";
    return all_ok ? 0 : 1;
}
