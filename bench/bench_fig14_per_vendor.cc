/**
 * @file
 * Reproduces Fig. 14: research portability cost and overhead error
 * per chip/vendor, for papers whose cost/error is not always above
 * 10x (the paper omits the rest).  Also checks the two Observations:
 * CHARM's 0.45x vendor A-to-C variation on DDR5, and RBDEC's -0.47x
 * drop on A5.
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "eval/overheads.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Fig. 14: per-chip overhead variation "
                 "(papers always >10x omitted)\n\n";
    const auto audits = eval::auditUnderLimit(10.0);
    Table t({"Research", "A4", "B4", "C4", "A5", "B5", "C5"});
    for (const auto &audit : audits) {
        std::vector<std::string> row{audit.paper->name};
        for (const char *id : {"A4", "B4", "C4", "A5", "B5", "C5"}) {
            const double v = audit.perChip.at(id);
            row.push_back(Table::times(v, 2));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    const auto charm = eval::auditPaper(models::paper("CHARM"));
    const auto rbdec = eval::auditPaper(models::paper("R.B. DEC."));
    std::cout
        << "\nObservation 1: CHARM varies "
        << Table::times(charm.perChip.at("A5") - charm.perChip.at("C5"),
                        2)
        << " from vendor A to vendor C on DDR5 (paper: 0.45x)\n"
        << "Observation 2: the biggest porting reduction is R.B. DEC. "
           "on A5 at "
        << Table::times(rbdec.perChip.at("A5"), 2)
        << " (paper: -0.47x) - newer nodes afford more complex "
           "circuits\n";
    return 0;
}
