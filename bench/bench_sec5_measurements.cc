/**
 * @file
 * Reproduces Section V-B: the 835-measurement campaign across the six
 * chips - per-role drawn dimensions, effective (layout) sizes, and
 * region geometry, with repeated-measurement statistics.
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "re/measure.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;
    using models::Role;

    const auto campaign = re::measurementCampaign();
    std::cout << "Section V-B: measurement campaign - "
              << campaign.totalMeasurements
              << " measurements (paper: 835)\n\n";

    std::cout << "Drawn and effective transistor dimensions (nm):\n";
    Table t({"chip", "role", "W", "L", "W_eff", "L_eff", "W/L"});
    for (const auto &chip : models::allChips()) {
        for (size_t ri = 0;
             ri < static_cast<size_t>(Role::NumRoles); ++ri) {
            const auto role = static_cast<Role>(ri);
            const auto &d = chip.role(role);
            if (!d)
                continue;
            t.addRow({chip.id, models::roleName(role),
                      Table::num(d->w, 0), Table::num(d->l, 0),
                      Table::num(chip.effective(role, false), 0),
                      Table::num(chip.effective(role, true), 0),
                      Table::num(d->wOverL(), 2)});
        }
        t.addSeparator();
    }
    t.print(std::cout);

    std::cout << "\nRepeated-measurement quality: mean relative error "
              << Table::percent(campaign.meanRelativeError(), 1)
              << " across " << campaign.records.size()
              << " measured quantities\n";

    std::cout << "\nRegion geometry (nm):\n";
    Table r({"chip", "MAT W", "MAT H", "SA strip", "row drv",
             "transition", "BL pitch", "M2 W"});
    for (const auto &chip : models::allChips()) {
        r.addRow({chip.id, Table::num(chip.matWidthNm, 0),
                  Table::num(chip.matHeightNm, 0),
                  Table::num(chip.saHeightNm, 0),
                  Table::num(chip.rowDriverWidthNm, 0),
                  Table::num(chip.transitionNm, 0),
                  Table::num(chip.blPitchNm, 0),
                  Table::num(chip.m2WidthNm, 0)});
    }
    r.print(std::cout);
    std::cout << "\nSmallest wire height: "
              << models::chip("B5").wireHeightNm
              << " nm on B5 (Section IV-C).\n";
    return campaign.totalMeasurements == re::kPaperMeasurements ? 0 : 1;
}
