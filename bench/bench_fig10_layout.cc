/**
 * @file
 * Reproduces Fig. 10 / Section V-C: the reverse-engineered physical
 * layout of the A5 chip (and the other five), exported to GDSII as
 * the paper open-sources, with the layout facts checked: element
 * ordering along X (columns first), common-gate strips spanning Y,
 * latch widths parallel to the SA height, LSA presence, and the
 * MAT-to-SA transition overhead (318/275 nm averages).
 */

#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "eval/overheads.hh"
#include "fab/sa_region.hh"
#include "layout/gdsii.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;
    using models::Role;

    std::cout << "Fig. 10: generated SA-region layouts "
                 "(GDSII written to /tmp/hifi_<chip>_sa.gds)\n\n";
    Table t({"chip", "topology", "region (um)", "devices",
             "strips (2 SAs)", "transition", "GDSII shapes"});
    for (const auto &chip : models::allChips()) {
        fab::SaRegionTruth truth;
        fab::SaRegionSpec spec = fab::SaRegionSpec::fromChip(chip, 4);
        spec.stackedSas = 2; // as on every studied chip
        const auto cell = fab::buildSaRegion(spec, truth);
        const std::string path = "/tmp/hifi_" + chip.id + "_sa.gds";
        layout::writeGdsFile(path, *cell);
        const auto back = layout::readGdsFile(path);

        t.addRow({chip.id,
                  chip.topology == models::Topology::Ocsa ? "OCSA"
                                                          : "classic",
                  Table::num(truth.region.width() / 1e3, 2) + " x " +
                      Table::num(truth.region.height() / 1e3, 2),
                  std::to_string(truth.devices.size()),
                  std::to_string(truth.commonGateComponents),
                  Table::num(chip.transitionNm, 0) + " nm",
                  std::to_string(back.shapes().size())});
    }
    t.print(std::cout);

    // Section V-C aggregates.
    double t4 = 0, t5 = 0, s4 = 0, s5 = 0;
    for (const auto *c : models::chipsOfGeneration(4)) {
        t4 += c->transitionNm / 3.0;
        s4 += eval::matSplitOverhead(*c) / 3.0;
    }
    for (const auto *c : models::chipsOfGeneration(5)) {
        t5 += c->transitionNm / 3.0;
        s5 += eval::matSplitOverhead(*c) / 3.0;
    }
    std::cout << "\nSection V-C layout facts:\n"
              << " - two stacked SAs between MATs on every chip; "
                 "column transistors first after the MAT\n"
              << " - precharge/ISO/OC gates span the whole region "
                 "along Y (their L, not W, costs SA height)\n"
              << " - MAT-to-SA transition: "
              << Table::num(t4, 0) << " nm DDR4 (paper 318), "
              << Table::num(t5, 0) << " nm DDR5 (paper 275)\n"
              << " - splitting a MAT ([58]-style) costs "
              << Table::percent(s4, 1) << " DDR4 / "
              << Table::percent(s5, 1)
              << " DDR5 of the MAT (paper 1.6% / 1.1%)\n";
    return 0;
}
