/**
 * @file
 * Reproduces Fig. 9b: the offset-cancellation SA (OCSA) activation
 * events found on chips A4, A5, B5 - offset cancellation, delayed
 * charge sharing, pre-sensing without the bitline load, restore, and
 * the ISO+OC equalization at precharge.
 */

#include <iostream>

#include "circuit/sense_amp.hh"
#include "common/table.hh"
#include "common/telemetry.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using circuit::SaParams;
    using circuit::SaRun;
    using common::Table;

    SaParams params;
    params.topology = circuit::SaTopology::OffsetCancellation;
    params.storeOne = true;

    const SaRun run = circuit::simulateActivation(params);
    const auto &bl = run.tran.trace("BL");
    const auto &blb = run.tran.trace("BLB");
    const auto &sbl = run.tran.trace("SBL");
    const auto &sblb = run.tran.trace("SBLB");
    const auto &s = run.schedule;

    std::cout << "Fig. 9b: OCSA events (cell stores '1'; A4/A5/B5 "
                 "deploy this topology)\n\n";
    Table t({"event", "t (ns)", "BL", "BLB", "SBL", "SBLB"});
    auto row = [&](const std::string &name, double time) {
        t.addRow({name, Table::num(time * 1e9, 2),
                  Table::num(bl.at(time), 3),
                  Table::num(blb.at(time), 3),
                  Table::num(sbl.at(time), 3),
                  Table::num(sblb.at(time), 3)});
    };
    row("idle (precharged)", s.tActivate - 1e-9);
    row("1': offset cancellation", s.tOcEnd - 0.2e-9);
    row("1: charge sharing (delayed)", s.tChargeShare + 1.5e-9);
    row("2': pre-sensing (no BL load)", s.tLatch - 0.1e-9);
    row("2: restore (ISO on)", s.tRestoreEnd - 0.1e-9);
    row("3: precharge (ISO+OC equalize)", s.tEnd - 0.1e-9);
    t.print(std::cout);

    std::cout << "\nOCSA-specific facts reproduced:\n"
              << " - charge sharing starts "
              << Table::num((s.tChargeShare - s.tActivate) * 1e9, 1)
              << " ns after ACT (classic: ~0.3 ns) [Section VI-D]\n"
              << " - bitlines visit a third state during OC (diode-"
                 "connected latch), not just latched/precharged\n"
              << " - no standalone equalizer: BL/BLB converge via "
                 "ISO+OC at precharge\n";
    std::cout << "latched "
              << (run.latchedCorrectly ? "correctly" : "WRONG")
              << "; signal before pre-sensing "
              << Table::num(run.signalBeforeLatch * 1e3, 1) << " mV\n";
    return run.latchedCorrectly ? 0 : 1;
}
