/**
 * @file
 * Reproduces Table II: the 13 audited papers with their inaccuracies
 * (I1-I5), overhead error on the original technology, and porting
 * cost to newer technologies, computed from the Appendix-B formulas
 * over the measured chip geometry.
 */

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "common/telemetry.hh"
#include "eval/overheads.hh"
#include "eval/sensitivity.hh"

int
main()
{
    hifi::telemetry::reportPeakRssAtExit();
    using namespace hifi;
    using common::Table;

    std::cout << "Table II: research inaccuracies, overhead error and "
                 "portability cost\n\n";
    Table t({"Research", "Inacc.", "Error", "Port. Cost", "DDR", "Yr.",
             "(paper err)", "(paper port)"});
    for (const auto &audit : eval::auditAllPapers()) {
        const auto &p = *audit.paper;
        t.addRow({p.name, models::inaccuracyLabel(p),
                  std::isnan(audit.overheadError)
                      ? "N/A"
                      : Table::times(audit.overheadError,
                                     std::abs(audit.overheadError) < 2
                                         ? 2
                                         : 0),
                  Table::times(audit.portingCost,
                               std::abs(audit.portingCost) < 2 ? 2 : 0),
                  std::to_string(p.ddr),
                  "'" + std::to_string(p.year % 100),
                  std::isnan(p.paperError)
                      ? "N/A"
                      : Table::times(p.paperError,
                                     std::abs(p.paperError) < 2 ? 2 : 0),
                  Table::times(p.paperPortingCost,
                               std::abs(p.paperPortingCost) < 2 ? 3
                                                                : 0)});
    }
    t.print(std::cout);

    std::cout << "\nAppendix-B formulas used:\n";
    for (const auto &paper : models::allPapers()) {
        std::cout << "  " << paper.name << ": "
                  << eval::overheadFormulaDescription(paper) << "\n";
        if (paper.name == "REGA")
            std::cout << "  REGA (vendor A): "
                      << eval::overheadFormulaDescription(paper, true)
                      << "\n";
    }

    std::cout << "\nSensitivity (+-5% region geometry):\n";
    for (const auto &r : eval::overheadSensitivity(0.05)) {
        std::cout << "  " << r.quantity << ": "
                  << Table::times(r.nominal, 2) << " in ["
                  << Table::times(r.low, 2) << ", "
                  << Table::times(r.high, 2)
                  << "] - conclusion unchanged\n";
    }

    std::cout << "\nAggregate facts:\n"
              << " - papers affected by I1 need on average "
              << Table::percent(eval::i1MatExtensionOverhead())
              << " chip overhead solely for the MAT extension "
                 "(paper: 57%)\n"
              << " - worst case: CoolDRAM at "
              << Table::times(
                     eval::auditPaper(models::paper("CoolDRAM"))
                         .overheadError,
                     0)
              << " from its 0.4% original estimate (paper: 175x)\n"
              << " - 8 of 13 papers exceed 20x error/porting cost\n";
    return 0;
}
