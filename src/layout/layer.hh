/**
 * @file
 * IC layer definitions for the DRAM sense-amplifier region.
 *
 * The paper observes a limited layer stack in the SA/MAT regions
 * (Section VI-B, [49],[87],[98]): active silicon, gate poly, contacts,
 * bitline metal (M1), via1, M2, and the capacitor structures above.
 * Z ranges are representative thicknesses used by the voxelizer; the
 * paper reports wire heights down to 30 nm (B5).
 */

#ifndef HIFI_LAYOUT_LAYER_HH
#define HIFI_LAYOUT_LAYER_HH

#include <array>
#include <cstdint>
#include <string>

namespace hifi
{
namespace layout
{

/** Physical layers, bottom to top. */
enum class Layer : uint8_t
{
    Active = 0,   ///< transistor active region (diffusion)
    Gate,         ///< gate poly / buried gate
    Contact,      ///< active/gate to M1 contacts
    Metal1,       ///< bitline metal
    Via1,         ///< M1 to M2 vias
    Metal2,       ///< second metal (routing; SA2 bitlines on A4-5)
    Capacitor,    ///< storage capacitor pillars (MAT only)
    NumLayers
};

constexpr size_t kNumLayers = static_cast<size_t>(Layer::NumLayers);

/// Human-readable layer name.
const std::string &layerName(Layer layer);

/// GDSII layer number for export.
int gdsLayerNumber(Layer layer);

/// Inverse of gdsLayerNumber; throws std::invalid_argument on unknown.
Layer layerFromGdsNumber(int number);

/** Vertical extent of a layer in the IC stack (nm above substrate). */
struct LayerZ
{
    double z0;
    double z1;
};

/// Representative z extent per layer used by the voxelizer.
LayerZ layerZ(Layer layer);

} // namespace layout
} // namespace hifi

#endif // HIFI_LAYOUT_LAYER_HH
