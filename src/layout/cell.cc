#include "layout/cell.hh"

namespace hifi
{
namespace layout
{

void
Cell::flattenInto(std::vector<Shape> &out, common::Vec2 offset) const
{
    for (const auto &s : shapes_) {
        Shape moved = s;
        moved.rect = s.rect.translate(offset.x, offset.y);
        out.push_back(std::move(moved));
    }
    for (const auto &inst : instances_)
        inst.cell->flattenInto(out, offset + inst.offset);
}

std::vector<Shape>
Cell::flatten() const
{
    std::vector<Shape> out;
    flattenInto(out, {0.0, 0.0});
    return out;
}

common::Rect
Cell::boundingBox() const
{
    common::Rect box;
    for (const auto &s : flatten())
        box = box.unite(s.rect);
    return box;
}

double
Cell::areaOnLayer(Layer layer) const
{
    double area = 0.0;
    for (const auto &s : flatten())
        if (s.layer == layer)
            area += s.rect.area();
    return area;
}

size_t
Cell::countOnLayer(Layer layer) const
{
    size_t n = 0;
    for (const auto &s : flatten())
        if (s.layer == layer)
            ++n;
    return n;
}

} // namespace layout
} // namespace hifi
