#include "layout/gdsii.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace hifi
{
namespace layout
{

namespace
{

// GDSII record types used here.
enum RecordType : uint8_t
{
    kHeader = 0x00,
    kBgnLib = 0x01,
    kLibName = 0x02,
    kUnits = 0x03,
    kEndLib = 0x04,
    kBgnStr = 0x05,
    kStrName = 0x06,
    kEndStr = 0x07,
    kBoundary = 0x08,
    kSref = 0x0A,
    kLayer = 0x0D,
    kSname = 0x12,
    kDataType = 0x0E,
    kXy = 0x10,
    kEndEl = 0x11,
};

// GDSII data type codes (second byte of the record header).
enum DataType : uint8_t
{
    kNoData = 0x00,
    kInt16 = 0x02,
    kInt32 = 0x03,
    kReal8 = 0x05,
    kAscii = 0x06,
};

void
putU16(std::ostream &os, uint16_t v)
{
    const char buf[2] = {static_cast<char>(v >> 8),
                         static_cast<char>(v & 0xFF)};
    os.write(buf, 2);
}

void
putU32(std::ostream &os, uint32_t v)
{
    const char buf[4] = {
        static_cast<char>(v >> 24), static_cast<char>((v >> 16) & 0xFF),
        static_cast<char>((v >> 8) & 0xFF), static_cast<char>(v & 0xFF)};
    os.write(buf, 4);
}

void
putU64(std::ostream &os, uint64_t v)
{
    putU32(os, static_cast<uint32_t>(v >> 32));
    putU32(os, static_cast<uint32_t>(v & 0xFFFFFFFFull));
}

void
writeRecordHeader(std::ostream &os, uint16_t length, uint8_t rec_type,
                  uint8_t data_type)
{
    putU16(os, length);
    os.put(static_cast<char>(rec_type));
    os.put(static_cast<char>(data_type));
}

void
writeI16Record(std::ostream &os, uint8_t rec_type, int16_t value)
{
    writeRecordHeader(os, 6, rec_type, kInt16);
    putU16(os, static_cast<uint16_t>(value));
}

void
writeStringRecord(std::ostream &os, uint8_t rec_type,
                  const std::string &s)
{
    // Strings are padded to even length.
    const size_t padded = s.size() + (s.size() % 2);
    writeRecordHeader(os, static_cast<uint16_t>(4 + padded), rec_type,
                      kAscii);
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
    if (s.size() % 2)
        os.put('\0');
}

uint16_t
readU16(std::istream &is)
{
    unsigned char buf[2];
    is.read(reinterpret_cast<char *>(buf), 2);
    if (!is)
        throw std::runtime_error("GDSII: truncated stream");
    return static_cast<uint16_t>((buf[0] << 8) | buf[1]);
}

struct Record
{
    uint8_t type;
    uint8_t dataType;
    std::vector<unsigned char> payload;
};

Record
readRecord(std::istream &is)
{
    const uint16_t length = readU16(is);
    if (length < 4)
        throw std::runtime_error("GDSII: bad record length");
    Record rec;
    rec.type = static_cast<uint8_t>(is.get());
    rec.dataType = static_cast<uint8_t>(is.get());
    rec.payload.resize(length - 4u);
    if (!rec.payload.empty()) {
        is.read(reinterpret_cast<char *>(rec.payload.data()),
                static_cast<std::streamsize>(rec.payload.size()));
    }
    if (!is)
        throw std::runtime_error("GDSII: truncated record");
    return rec;
}

int32_t
i32At(const std::vector<unsigned char> &p, size_t off)
{
    return static_cast<int32_t>(
        (static_cast<uint32_t>(p[off]) << 24) |
        (static_cast<uint32_t>(p[off + 1]) << 16) |
        (static_cast<uint32_t>(p[off + 2]) << 8) |
        static_cast<uint32_t>(p[off + 3]));
}

int16_t
i16At(const std::vector<unsigned char> &p, size_t off)
{
    return static_cast<int16_t>(
        (static_cast<uint16_t>(p[off]) << 8) |
        static_cast<uint16_t>(p[off + 1]));
}

} // namespace

namespace detail
{

uint64_t
encodeGdsReal(double value)
{
    if (value == 0.0)
        return 0;
    uint64_t sign = 0;
    if (value < 0.0) {
        sign = 1ull << 63;
        value = -value;
    }
    // Find exponent e (base 16, excess 64) with mantissa in [1/16, 1).
    int exponent = 0;
    while (value >= 1.0) {
        value /= 16.0;
        ++exponent;
    }
    while (value < 1.0 / 16.0) {
        value *= 16.0;
        --exponent;
    }
    const auto mantissa =
        static_cast<uint64_t>(value * std::pow(2.0, 56));
    return sign |
        (static_cast<uint64_t>(exponent + 64) << 56) |
        (mantissa & 0x00FFFFFFFFFFFFFFull);
}

double
decodeGdsReal(uint64_t bits)
{
    if ((bits & 0x7FFFFFFFFFFFFFFFull) == 0)
        return 0.0;
    const bool negative = (bits >> 63) & 1;
    const int exponent = static_cast<int>((bits >> 56) & 0x7F) - 64;
    const double mantissa =
        static_cast<double>(bits & 0x00FFFFFFFFFFFFFFull) /
        std::pow(2.0, 56);
    const double value = mantissa * std::pow(16.0, exponent);
    return negative ? -value : value;
}

} // namespace detail

namespace
{

void
writeBoundary(std::ostream &os, const Shape &shape)
{
    writeRecordHeader(os, 4, kBoundary, kNoData);
    writeI16Record(os, kLayer,
                   static_cast<int16_t>(gdsLayerNumber(shape.layer)));
    writeI16Record(os, kDataType, 0);

    // Closed rectangle: 5 points, first repeated last.
    const auto &r = shape.rect;
    const auto x0 = static_cast<int32_t>(std::llround(r.x0));
    const auto y0 = static_cast<int32_t>(std::llround(r.y0));
    const auto x1 = static_cast<int32_t>(std::llround(r.x1));
    const auto y1 = static_cast<int32_t>(std::llround(r.y1));
    writeRecordHeader(os, 4 + 40, kXy, kInt32);
    const int32_t pts[10] = {x0, y0, x1, y0, x1, y1, x0, y1, x0, y0};
    for (int32_t v : pts)
        putU32(os, static_cast<uint32_t>(v));

    writeRecordHeader(os, 4, kEndEl, kNoData);
}

void
writeStructure(std::ostream &os, const Cell &cell, bool flatten)
{
    writeRecordHeader(os, 4 + 24, kBgnStr, kInt16);
    for (int i = 0; i < 12; ++i)
        putU16(os, 0);
    writeStringRecord(os, kStrName, cell.name());

    if (flatten) {
        for (const auto &shape : cell.flatten())
            writeBoundary(os, shape);
    } else {
        for (const auto &shape : cell.shapes())
            writeBoundary(os, shape);
        for (const auto &inst : cell.instances()) {
            writeRecordHeader(os, 4, kSref, kNoData);
            writeStringRecord(os, kSname, inst.cell->name());
            writeRecordHeader(os, 4 + 8, kXy, kInt32);
            putU32(os, static_cast<uint32_t>(static_cast<int32_t>(
                           std::llround(inst.offset.x))));
            putU32(os, static_cast<uint32_t>(static_cast<int32_t>(
                           std::llround(inst.offset.y))));
            writeRecordHeader(os, 4, kEndEl, kNoData);
        }
    }
    writeRecordHeader(os, 4, kEndStr, kNoData);
}

/// Emit child structures depth-first, each unique cell once.
void
emitChildren(std::ostream &os, const Cell &cell,
             std::vector<const Cell *> &done)
{
    for (const auto &inst : cell.instances()) {
        const Cell *child = inst.cell.get();
        bool seen = false;
        for (const Cell *c : done)
            if (c == child)
                seen = true;
        if (seen)
            continue;
        emitChildren(os, *child, done);
        writeStructure(os, *child, false);
        done.push_back(child);
    }
}

} // namespace

void
writeGds(std::ostream &os, const Cell &cell, const GdsOptions &options)
{
    // HEADER: GDSII version 600.
    writeI16Record(os, kHeader, 600);

    // BGNLIB: creation + modification timestamps (12 int16s); zeros keep
    // the output deterministic and diffable.
    writeRecordHeader(os, 4 + 24, kBgnLib, kInt16);
    for (int i = 0; i < 12; ++i)
        putU16(os, 0);

    writeStringRecord(os, kLibName, options.libraryName);

    // UNITS: db-units per user unit, db-unit in meters.
    writeRecordHeader(os, 4 + 16, kUnits, kReal8);
    putU64(os, detail::encodeGdsReal(1.0 / options.dbPerUserUnit));
    putU64(os, detail::encodeGdsReal(options.dbUnitMeters));

    if (!options.flatten) {
        std::vector<const Cell *> done;
        emitChildren(os, cell, done);
    }
    writeStructure(os, cell, options.flatten);
    writeRecordHeader(os, 4, kEndLib, kNoData);
}

void
writeGdsFile(const std::string &path, const Cell &cell,
             const GdsOptions &options)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("writeGdsFile: cannot open " + path);
    writeGds(os, cell, options);
}

Cell
readGds(std::istream &is)
{
    // Structures may reference earlier structures via SREF; the
    // writer emits children first, so references resolve in order.
    std::vector<std::shared_ptr<Cell>> cells;
    auto find_cell =
        [&](const std::string &name) -> std::shared_ptr<Cell> {
        for (const auto &c : cells)
            if (c->name() == name)
                return c;
        throw std::runtime_error("GDSII: SREF to unknown structure " +
                                 name);
    };
    auto payload_string = [](const Record &rec) {
        std::string out(rec.payload.begin(), rec.payload.end());
        while (!out.empty() && out.back() == '\0')
            out.pop_back();
        return out;
    };

    std::string cell_name = "unnamed";
    std::vector<Shape> shapes;
    std::vector<Instance> instances;

    enum class Element { None, Boundary, Sref };
    Element element = Element::None;
    std::string sref_name;
    Layer current_layer = Layer::Active;
    bool done = false;

    while (!done) {
        const Record rec = readRecord(is);
        switch (rec.type) {
          case kHeader:
          case kBgnLib:
          case kLibName:
          case kUnits:
          case kDataType:
            break;
          case kBgnStr:
            shapes.clear();
            instances.clear();
            cell_name = "unnamed";
            break;
          case kStrName:
            cell_name = payload_string(rec);
            break;
          case kBoundary:
            element = Element::Boundary;
            break;
          case kSref:
            element = Element::Sref;
            sref_name.clear();
            break;
          case kSname:
            sref_name = payload_string(rec);
            break;
          case kLayer:
            if (rec.payload.size() >= 2)
                current_layer = layerFromGdsNumber(i16At(rec.payload, 0));
            break;
          case kXy: {
            if (element == Element::Boundary) {
                if (rec.payload.size() < 40)
                    throw std::runtime_error(
                        "GDSII: XY too short for rect");
                const double x0 = i32At(rec.payload, 0);
                const double y0 = i32At(rec.payload, 4);
                const double x1 = i32At(rec.payload, 16);
                const double y1 = i32At(rec.payload, 20);
                shapes.emplace_back(
                    common::Rect(std::min(x0, x1), std::min(y0, y1),
                                 std::max(x0, x1), std::max(y0, y1)),
                    current_layer);
            } else if (element == Element::Sref) {
                if (rec.payload.size() < 8)
                    throw std::runtime_error(
                        "GDSII: XY too short for SREF");
                Instance inst;
                inst.cell = find_cell(sref_name);
                inst.offset = {
                    static_cast<double>(i32At(rec.payload, 0)),
                    static_cast<double>(i32At(rec.payload, 4))};
                instances.push_back(std::move(inst));
            }
            break;
          }
          case kEndEl:
            element = Element::None;
            break;
          case kEndStr: {
            auto cell = std::make_shared<Cell>(cell_name);
            for (auto &sh : shapes)
                cell->addShape(std::move(sh));
            for (auto &inst : instances)
                cell->addInstance(inst.cell, inst.offset);
            cells.push_back(std::move(cell));
            shapes.clear();
            instances.clear();
            break;
          }
          case kEndLib:
            done = true;
            break;
          default:
            // Skip unknown records (forward compatibility).
            break;
        }
    }

    if (cells.empty())
        throw std::runtime_error("GDSII: no structures in library");
    return *cells.back();
}

Cell
readGdsFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("readGdsFile: cannot open " + path);
    return readGds(is);
}

} // namespace layout
} // namespace hifi
