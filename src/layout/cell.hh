/**
 * @file
 * Layout cells: named collections of rectangles on layers, with nested
 * instances.  This is the representation the virtual fab produces and
 * the GDSII exporter serializes (the paper releases SA layouts in GDSII).
 */

#ifndef HIFI_LAYOUT_CELL_HH
#define HIFI_LAYOUT_CELL_HH

#include <memory>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "layout/layer.hh"

namespace hifi
{
namespace layout
{

/** One rectangle on a layer, optionally tagged with a net name. */
struct Shape
{
    common::Rect rect;
    Layer layer = Layer::Active;

    /// Electrical net label ("BL3", "LA", "Vpre", ...); empty = unknown.
    std::string net;

    Shape() = default;
    Shape(const common::Rect &r, Layer l, std::string n = {})
        : rect(r), layer(l), net(std::move(n))
    {}
};

/** Placement of a child cell at an XY offset (no rotation needed). */
struct Instance
{
    std::shared_ptr<const class Cell> cell;
    common::Vec2 offset;
};

/**
 * A layout cell.
 *
 * Cells are built once by the generators and then treated as immutable;
 * they are shared between instances via shared_ptr.
 */
class Cell
{
  public:
    explicit Cell(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void addShape(Shape shape) { shapes_.push_back(std::move(shape)); }

    void
    addShape(const common::Rect &r, Layer layer, std::string net = {})
    {
        shapes_.emplace_back(r, layer, std::move(net));
    }

    void
    addInstance(std::shared_ptr<const Cell> cell, common::Vec2 offset)
    {
        instances_.push_back({std::move(cell), offset});
    }

    const std::vector<Shape> &shapes() const { return shapes_; }
    const std::vector<Instance> &instances() const { return instances_; }

    /// All shapes with instances recursively resolved into one list.
    std::vector<Shape> flatten() const;

    /// Bounding box over all (flattened) shapes.
    common::Rect boundingBox() const;

    /// Sum of rectangle areas on one layer (flattened; no overlap dedup).
    double areaOnLayer(Layer layer) const;

    /// Count of flattened shapes on a layer.
    size_t countOnLayer(Layer layer) const;

  private:
    void flattenInto(std::vector<Shape> &out, common::Vec2 offset) const;

    std::string name_;
    std::vector<Shape> shapes_;
    std::vector<Instance> instances_;
};

} // namespace layout
} // namespace hifi

#endif // HIFI_LAYOUT_CELL_HH
