#include "layout/design_rules.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hifi
{
namespace layout
{

DesignRules::DesignRules()
{
    // Defaults; the fab module overrides these per process node.
    for (auto &r : rules_)
        r = {20.0, 20.0};
}

LayerRule &
DesignRules::rule(Layer layer)
{
    return rules_.at(static_cast<size_t>(layer));
}

const LayerRule &
DesignRules::rule(Layer layer) const
{
    return rules_.at(static_cast<size_t>(layer));
}

std::vector<Violation>
DesignRules::check(const Cell &cell) const
{
    std::vector<Violation> out;
    const auto shapes = cell.flatten();

    for (const auto &s : shapes) {
        const auto &r = rule(s.layer);
        const double min_dim = std::min(s.rect.width(), s.rect.height());
        if (min_dim + 1e-9 < r.minWidth) {
            std::ostringstream ss;
            ss << layerName(s.layer) << " shape " << s.net << " width "
               << min_dim << " < " << r.minWidth;
            out.push_back({Violation::Kind::Width, s.layer, ss.str()});
        }
    }

    for (size_t i = 0; i < shapes.size(); ++i) {
        for (size_t j = i + 1; j < shapes.size(); ++j) {
            const auto &a = shapes[i];
            const auto &b = shapes[j];
            if (a.layer != b.layer)
                continue;
            // Same-net shapes are allowed to touch or overlap.
            if (!a.net.empty() && a.net == b.net)
                continue;
            if (a.rect.overlaps(b.rect)) {
                std::ostringstream ss;
                ss << layerName(a.layer) << " overlap between '"
                   << a.net << "' and '" << b.net << "'";
                out.push_back(
                    {Violation::Kind::Spacing, a.layer, ss.str()});
                continue;
            }
            const double gap = a.rect.gapTo(b.rect);
            if (gap + 1e-9 < rule(a.layer).minSpacing) {
                std::ostringstream ss;
                ss << layerName(a.layer) << " spacing " << gap << " < "
                   << rule(a.layer).minSpacing << " between '" << a.net
                   << "' and '" << b.net << "'";
                out.push_back(
                    {Violation::Kind::Spacing, a.layer, ss.str()});
            }
        }
    }
    return out;
}

size_t
DesignRules::freeTracks(const Cell &cell, Layer layer,
                        const common::Rect &region) const
{
    const auto &r = rule(layer);
    const double wire_w = r.minWidth;
    const double spacing = r.minSpacing;
    if (region.height() < wire_w)
        return 0;

    // Existing shapes on the layer that matter for this region.
    std::vector<common::Rect> obstacles;
    for (const auto &s : cell.flatten()) {
        if (s.layer != layer)
            continue;
        if (s.rect.x1 > region.x0 && s.rect.x0 < region.x1)
            obstacles.push_back(s.rect);
    }

    // Scan candidate wire positions along Y at 1 nm steps, collecting
    // maximal runs of valid positions.
    const double step = 1.0;
    bool prev_free = false;
    double run_start = 0.0;
    double last_free = 0.0;
    size_t tracks = 0;
    auto close_run = [&]() {
        // A run [run_start, last_free] of valid bottom-edge positions
        // fits 1 + floor(run_length / (wire + spacing)) parallel wires.
        const double run = last_free - run_start;
        tracks += 1 + static_cast<size_t>(run / (wire_w + spacing));
    };
    for (double y = region.y0; y + wire_w <= region.y1; y += step) {
        common::Rect candidate(region.x0, y, region.x1, y + wire_w);
        // Clearance only matters in Y here; inflate in Y by the rule.
        candidate.y0 -= spacing - 1e-9;
        candidate.y1 += spacing - 1e-9;
        bool free = true;
        for (const auto &obs : obstacles) {
            if (candidate.overlaps(obs)) {
                free = false;
                break;
            }
        }
        if (free) {
            if (!prev_free)
                run_start = y;
            last_free = y;
        } else if (prev_free) {
            close_run();
        }
        prev_free = free;
    }
    if (prev_free)
        close_run();
    return tracks;
}

} // namespace layout
} // namespace hifi
