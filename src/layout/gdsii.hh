/**
 * @file
 * GDSII stream format writer and reader.
 *
 * The paper open-sources its reverse-engineered layouts "in the standard
 * GDSII format" (Section V-C), so we implement real binary GDSII:
 * BOUNDARY elements for rectangles, flattened cell hierarchy, and the
 * 8-byte excess-64 floating point encoding the format requires for the
 * UNITS record.  The reader round-trips everything the writer emits.
 */

#ifndef HIFI_LAYOUT_GDSII_HH
#define HIFI_LAYOUT_GDSII_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "layout/cell.hh"

namespace hifi
{
namespace layout
{

/** Options for GDSII export. */
struct GdsOptions
{
    /// Library name stored in the LIBNAME record.
    std::string libraryName = "HIFI-DRAM";

    /// Database units per user unit (1000 -> 1 nm grid, um user unit).
    double dbPerUserUnit = 1000.0;

    /// Database unit in meters (1 nm).
    double dbUnitMeters = 1e-9;

    /**
     * Flatten the hierarchy into one structure (legacy mode).  When
     * false, child cells become their own structures referenced with
     * SREF records, preserving the hierarchy across a round trip.
     */
    bool flatten = true;
};

/**
 * Write a cell as GDSII.
 *
 * Coordinates are snapped to the 1 nm database grid.  Net names are not
 * representable in plain BOUNDARY records and are dropped; layers map
 * via gdsLayerNumber().  With options.flatten == false, instances are
 * written as SREF records and shared children are emitted once.
 */
void writeGds(std::ostream &os, const Cell &cell,
              const GdsOptions &options = {});

/// Convenience: write to a file path; throws std::runtime_error.
void writeGdsFile(const std::string &path, const Cell &cell,
                  const GdsOptions &options = {});

/**
 * Read a GDSII stream produced by writeGds: BOUNDARY rectangles and
 * SREF instances; the top structure is the last one in the library
 * (the writer emits children first).  Throws std::runtime_error on
 * malformed input.
 */
Cell readGds(std::istream &is);

/// Convenience: read from a file path.
Cell readGdsFile(const std::string &path);

namespace detail
{

/// Encode a double as the 8-byte GDSII excess-64 real.
uint64_t encodeGdsReal(double value);

/// Decode an 8-byte GDSII excess-64 real.
double decodeGdsReal(uint64_t bits);

} // namespace detail

} // namespace layout
} // namespace hifi

#endif // HIFI_LAYOUT_GDSII_HH
