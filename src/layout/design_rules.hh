/**
 * @file
 * Design-rule checking and free-space analysis.
 *
 * Appendix A of the paper discusses IC design rules (minimum wire width
 * and spacing); inaccuracies I1/I2 hinge on whether a new bitline track
 * fits inside the MAT or SA region without violating the rules.  The
 * `freeTracks` scan quantifies Fig. 13: it slides a candidate wire of
 * minimum width across the region and counts positions where the
 * spacing rule holds against every existing shape on the layer.
 */

#ifndef HIFI_LAYOUT_DESIGN_RULES_HH
#define HIFI_LAYOUT_DESIGN_RULES_HH

#include <array>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "layout/cell.hh"

namespace hifi
{
namespace layout
{

/** Per-layer width/spacing rules, in nm. */
struct LayerRule
{
    double minWidth = 0.0;
    double minSpacing = 0.0;
};

/** One detected violation. */
struct Violation
{
    enum class Kind { Width, Spacing };

    Kind kind;
    Layer layer;
    std::string detail;
};

/** Design rules for a process. */
class DesignRules
{
  public:
    DesignRules();

    LayerRule &rule(Layer layer);
    const LayerRule &rule(Layer layer) const;

    /**
     * Check every flattened shape of `cell` for width violations and
     * every same-layer pair for spacing violations.  Shapes on the same
     * net may abut (spacing is not enforced between same-net shapes).
     */
    std::vector<Violation> check(const Cell &cell) const;

    /**
     * Count the free routing tracks for a vertical wire (running along
     * X) of `minWidth(layer)` inside `region`, given the existing
     * shapes of `cell` on `layer`.
     *
     * The scan steps the candidate wire across Y at 1 nm resolution and
     * requires `minSpacing` clearance to every existing shape that
     * overlaps the region in X.  Overlapping candidate positions are
     * merged, so the result is the number of *disjoint* insertable
     * tracks — 0 reproduces inaccuracies I1/I2.
     */
    size_t freeTracks(const Cell &cell, Layer layer,
                      const common::Rect &region) const;

  private:
    std::array<LayerRule, kNumLayers> rules_;
};

} // namespace layout
} // namespace hifi

#endif // HIFI_LAYOUT_DESIGN_RULES_HH
