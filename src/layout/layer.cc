#include "layout/layer.hh"

#include <stdexcept>

namespace hifi
{
namespace layout
{

const std::string &
layerName(Layer layer)
{
    static const std::array<std::string, kNumLayers> names = {
        "Active", "Gate", "Contact", "Metal1", "Via1", "Metal2",
        "Capacitor",
    };
    return names.at(static_cast<size_t>(layer));
}

int
gdsLayerNumber(Layer layer)
{
    // Conventional numbering: 1-based, matching the released layouts.
    return static_cast<int>(layer) + 1;
}

Layer
layerFromGdsNumber(int number)
{
    if (number < 1 || number > static_cast<int>(kNumLayers))
        throw std::invalid_argument("layerFromGdsNumber: unknown layer");
    return static_cast<Layer>(number - 1);
}

LayerZ
layerZ(Layer layer)
{
    // Representative thicknesses (nm). Wire heights in the paper are as
    // small as 30 nm; contacts/vias are short pillars between layers.
    // A 20 nm substrate clearance below the active layer keeps the
    // lowest features inside the imaged field of view under stage
    // drift.
    switch (layer) {
      case Layer::Active:
        return {20.0, 60.0};
      case Layer::Gate:
        return {60.0, 90.0};
      case Layer::Contact:
        return {90.0, 120.0};
      case Layer::Metal1:
        return {120.0, 150.0};
      case Layer::Via1:
        return {150.0, 180.0};
      case Layer::Metal2:
        return {180.0, 240.0};
      case Layer::Capacitor:
        return {240.0, 1200.0};
      default:
        throw std::invalid_argument("layerZ: unknown layer");
    }
}

} // namespace layout
} // namespace hifi
