/**
 * @file
 * Property-based scenario fuzzing for the virtual fab and RE
 * pipeline.
 *
 * A scenario is a point in the space (chip x pairs x stacked SAs x
 * process corner x silicon defect mix x acquisition faults x seed).
 * `runScenario` executes it and checks the pipeline's invariants:
 *
 *  - no crashes, typed errors only, every reported number finite;
 *  - the topology is recovered and every bitline accounted for, even
 *    with planted defects (the RE stage repairs what it flags);
 *  - every planted silicon defect is detected with the right kind and
 *    site, with no spurious detections;
 *  - cross-coupling is fully traced unless a via is missing;
 *  - dimension recovery stays within the corner-scaled measurement
 *    tolerance (re::MeasureParams::dimensionToleranceNm);
 *  - the outcome signature is a pure function of (seed, params) — in
 *    particular thread-count invariant.
 *
 * Two execution tiers keep wall-clock useful: the *direct* tier renders
 * the voxel volume at ideal contrast and runs the RE analysis on it
 * (~tens of ms, exercises fab + defects + RE), while the *full* tier
 * runs the entire FIB/SEM pipeline (~1 s, exercises everything).
 *
 * Failing scenarios shrink to a minimal reproducer with
 * `shrinkScenario`; `serializeScenario` round-trips through
 * `parseScenario` so a reproducer is a single copy-pastable line.
 */

#ifndef HIFI_CORE_FUZZ_HH
#define HIFI_CORE_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.hh"
#include "core/pipeline.hh"

namespace hifi
{
namespace core
{

/** One fuzzed scenario: everything needed to reproduce a run. */
struct ScenarioParams
{
    std::string chipId = "B5";
    size_t pairs = 4;
    size_t stackedSas = 1;
    models::ProcessCorner corner = models::ProcessCorner::Typical;

    // Silicon defect mix (counts only; the defect seed mirrors
    // `seed`).
    size_t bitlineShorts = 0;
    size_t bitlineOpens = 0;
    size_t missingVias = 0;
    size_t particles = 0;

    /// Inject acquisition faults (full tier only).
    bool faults = false;

    /// Run the full FIB/SEM pipeline instead of the direct
    /// fab -> ideal render -> RE tier.
    bool fullPipeline = false;

    uint64_t seed = 1;

    size_t defectTotal() const
    {
        return bitlineShorts + bitlineOpens + missingVias + particles;
    }
};

/// One-line, human-readable, round-trippable form:
/// "chip=B5 pairs=4 sas=1 corner=typical shorts=0 opens=0 vias=0
///  particles=0 faults=0 full=0 seed=1".
std::string serializeScenario(const ScenarioParams &params);

/// Inverse of serializeScenario; typed error on malformed input.
common::Result<ScenarioParams>
parseScenario(const std::string &line);

/**
 * Draw a random scenario.  Pure function of `seed` (counter-seeded),
 * and every drawn scenario satisfies the feasibility constraints of
 * the defect library, so a planted mix always fits.
 */
ScenarioParams sampleScenario(uint64_t seed);

/** Outcome of one scenario run. */
struct ScenarioResult
{
    ScenarioParams params;

    /// Violated invariants, human-readable; empty = scenario passed.
    std::vector<std::string> violations;

    /// Seed-pure fingerprint of the outcome (topology, devices,
    /// defects, measurements).  Identical across thread counts.
    uint64_t signature = 0;

    bool passed() const { return violations.empty(); }
};

/**
 * Execute a scenario and check every invariant.  Never throws: a
 * crash anywhere in the pipeline is reported as a violation.
 *
 * @param threads worker-thread override for the run (0 = inherit);
 *        the result signature must not depend on it.
 */
ScenarioResult runScenario(const ScenarioParams &params,
                           size_t threads = 0);

/// Predicate deciding whether a scenario still fails (used while
/// shrinking).  The default wraps runScenario.
using FailPredicate = std::function<bool(const ScenarioParams &)>;

/**
 * Greedy shrink of a failing scenario: repeatedly tries the
 * simplifying transformations (disable faults, typical corner, one
 * stacked SA, fewer pairs, drop each defect kind, the reference chip)
 * and keeps any that still fails, until a fixed point or the
 * evaluation budget is spent.  Returns the smallest still-failing
 * scenario found.
 */
ScenarioParams shrinkScenario(const ScenarioParams &failing,
                              const FailPredicate &fails,
                              size_t maxEvals = 64);

} // namespace core
} // namespace hifi

#endif // HIFI_CORE_FUZZ_HH
