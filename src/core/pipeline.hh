/**
 * @file
 * The HiFi-DRAM end-to-end pipeline: virtual fab -> FIB/SEM
 * acquisition -> post-processing -> reverse engineering -> validation
 * against the fab's ground truth.  This is the library's headline API:
 * one call reproduces the paper's methodology on a synthetic chip and
 * quantifies how faithfully the circuit is recovered.
 */

#ifndef HIFI_CORE_PIPELINE_HH
#define HIFI_CORE_PIPELINE_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hh"
#include "fab/sa_region.hh"
#include "models/chip_data.hh"
#include "re/analyze.hh"
#include "scope/postprocess.hh"

namespace hifi
{
namespace core
{

/** Pipeline configuration. */
struct PipelineConfig
{
    /// Chip dataset providing geometry, topology, detector, slicing.
    std::string chipId = "B5";

    /// SA pairs in the generated region slice.
    size_t pairs = 4;

    /// Stacked SA sets (Section V-C: real chips place 2).
    size_t stackedSas = 1;

    uint64_t seed = 1;

    /// Run the TV denoiser (disable to study its contribution).
    scope::DenoiseAlgo denoise = scope::DenoiseAlgo::Chambolle;

    /// Stage-drift step probability per slice.
    double driftProbability = 0.15;

    /**
     * Override for the in-plane voxel size; <= 0 picks automatically
     * from the chip's pixel resolution and bitline gap.
     */
    double voxelNm = -1.0;

    /**
     * Detector override: -1 uses the chip's Table I detector,
     * 0 forces SE, 1 forces BSE.  Forcing SE on vendor B/C chips
     * reproduces the poor-contrast failure that made the paper
     * switch those chips to BSE.
     */
    int detectorOverride = -1;

    /**
     * Worker threads for the hot kernels (denoise, registration, SEM
     * imaging, voxelization); 0 inherits the process-wide setting
     * (common::setNumThreads / HIFI_THREADS).  The report is
     * bitwise-identical for any value — see common/parallel.hh.
     */
    size_t threads = 0;
};

/** Per-role dimension recovery. */
struct RoleRecovery
{
    double trueW = 0.0, trueL = 0.0;
    double measuredW = 0.0, measuredL = 0.0;

    double errW() const { return std::abs(measuredW - trueW); }
    double errL() const { return std::abs(measuredL - trueL); }
};

/** Pipeline outcome. */
struct PipelineReport
{
    std::string chipId;

    models::Topology trueTopology = models::Topology::Classic;
    models::Topology extractedTopology = models::Topology::Classic;
    bool topologyCorrect = false;

    size_t trueCommonGateStrips = 0;
    size_t extractedCommonGateStrips = 0;

    size_t trueDevices = 0;
    size_t extractedDevices = 0;
    size_t bitlinesFound = 0;
    size_t bitlinesTrue = 0;

    bool crossCouplingConsistent = false;

    /// Best-matching published topology template (Section V-A) and
    /// its structural agreement score in [0, 1].
    std::string matchedTemplate;
    double matchScore = 0.0;

    size_t slices = 0;
    double alignmentResidualPx = 0.0;
    bool alignmentBudgetMet = false;

    std::map<models::Role, RoleRecovery> roles;

    /// Worst absolute dimension error across recovered roles (nm).
    double maxDimErrorNm = 0.0;

    /// Full analysis, for further inspection.
    re::RegionAnalysis analysis;
};

/// Run the full pipeline on one chip configuration.
PipelineReport runPipeline(const PipelineConfig &config);

/** Repeatability over independent acquisitions (different seeds). */
struct Repeatability
{
    size_t runs = 0;
    size_t topologyCorrect = 0;
    size_t crossCouplingTraced = 0;

    /// Per-role spread of the measured W and L across runs.
    std::map<models::Role, std::pair<common::Accumulator,
                                     common::Accumulator>>
        dims;
};

/**
 * Re-run the pipeline `runs` times with seeds base.seed, base.seed+1,
 * ... - the in-silico analogue of the paper's repeated measurements.
 */
Repeatability repeatPipeline(const PipelineConfig &base, size_t runs);

} // namespace core
} // namespace hifi

#endif // HIFI_CORE_PIPELINE_HH
