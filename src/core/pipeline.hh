/**
 * @file
 * The HiFi-DRAM end-to-end pipeline: virtual fab -> FIB/SEM
 * acquisition -> post-processing -> reverse engineering -> validation
 * against the fab's ground truth.  This is the library's headline API:
 * one call reproduces the paper's methodology on a synthetic chip and
 * quantifies how faithfully the circuit is recovered.
 */

#ifndef HIFI_CORE_PIPELINE_HH
#define HIFI_CORE_PIPELINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"
#include "fab/defects.hh"
#include "fab/sa_region.hh"
#include "models/chip_data.hh"
#include "re/analyze.hh"
#include "scope/fib.hh"
#include "scope/postprocess.hh"

namespace hifi
{
namespace core
{

/// Smallest accepted PipelineConfig::memoryBudget: one 64^3-float
/// tile layer of a paper-scale stack plus the streaming slice window
/// comfortably fit in 16 MiB.
constexpr size_t kMinMemoryBudgetBytes = 16ull << 20;

/** Pipeline configuration. */
struct PipelineConfig
{
    /// Chip dataset providing geometry, topology, detector, slicing.
    std::string chipId = "B5";

    /// SA pairs in the generated region slice.
    size_t pairs = 4;

    /// Stacked SA sets (Section V-C: real chips place 2).
    size_t stackedSas = 1;

    uint64_t seed = 1;

    /// Run the TV denoiser (disable to study its contribution).
    scope::DenoiseAlgo denoise = scope::DenoiseAlgo::Chambolle;

    /// Stage-drift step probability per slice.
    double driftProbability = 0.15;

    /**
     * Process corner the virtual fab runs at.  Typical is the clean
     * legacy fab (bit-identical); Slow/Fast apply the chip vendor's
     * models::cornerVariation preset — systematic CD bias, per-device
     * CD sigma, cross-wafer drift and line-edge roughness.
     */
    models::ProcessCorner corner = models::ProcessCorner::Typical;

    /**
     * Silicon defects to plant into the voxelized volume after the
     * fab (fab/defects.hh).  Disabled by default; when any are
     * requested the report's `siliconDefects` scores the RE stage's
     * detection against the planted ground truth.
     */
    fab::DefectParams defects;

    /**
     * Override for the in-plane voxel size; <= 0 picks automatically
     * from the chip's pixel resolution and bitline gap.
     */
    double voxelNm = -1.0;

    /**
     * Detector override: -1 uses the chip's Table I detector,
     * 0 forces SE, 1 forces BSE.  Forcing SE on vendor B/C chips
     * reproduces the poor-contrast failure that made the paper
     * switch those chips to BSE.
     */
    int detectorOverride = -1;

    /**
     * Worker threads for the hot kernels (denoise, registration, SEM
     * imaging, voxelization); 0 inherits the process-wide setting
     * (common::setNumThreads / HIFI_THREADS).  The report is
     * bitwise-identical for any value — see common/parallel.hh.
     */
    size_t threads = 0;

    /**
     * Acquisition fault model (scope/faults.hh).  Disabled by default:
     * the fault-free path takes the legacy acquisition code path and
     * stays bitwise identical to the pre-robustness pipeline.  With
     * faults enabled the pipeline switches to scope::acquireRobust —
     * QC-checked slices, bounded re-imaging, neighbour interpolation —
     * and the degradation fields of the report become meaningful.
     */
    scope::FaultParams faults;

    /// Retry/interpolation policy and QC thresholds for the robust
    /// acquisition (only used when faults.enabled).
    scope::RecoveryParams recovery;

    /**
     * Out-of-core memory budget in bytes; 0 (the default) keeps the
     * fully in-RAM pipeline.  When set, acquisition streams straight
     * into the denoise → register → assemble chain slice by slice
     * and the assembled volume lives in a spill-to-disk tile store,
     * so peak working memory is bounded by roughly this figure plus
     * the fixed per-stage state instead of by the stack size.  The
     * report is bitwise identical to the in-RAM path at any budget,
     * tile size and thread count (tests/test_volume.cc).  Budgets
     * smaller than one tile layer are rejected by validateConfig.
     */
    size_t memoryBudget = 0;

    /**
     * Directory for spilled volume tiles when memoryBudget is set;
     * empty picks a unique directory under the system temp dir that
     * is removed when the run completes.  Ignored when
     * memoryBudget == 0.
     */
    std::string spillDir;

    /**
     * Observability (common/telemetry.hh); off by default.  When
     * enabled the run is wrapped in a telemetry::Session: stage spans
     * and metric deltas land in PipelineReport::telemetry, and any
     * paths named in the config are written on completion.  Purely
     * observational — the report's data fields are bitwise identical
     * with telemetry on or off (asserted by tests/test_telemetry.cc).
     */
    telemetry::TelemetryConfig telemetry;
};

/**
 * Domain validation of a pipeline configuration: unknown chip ids,
 * zero pairs/stacked sets, out-of-range probabilities, inconsistent
 * fault/recovery parameters.  nullopt when the config is runnable.
 */
std::optional<common::Error>
validateConfig(const PipelineConfig &config);

/** Per-role dimension recovery. */
struct RoleRecovery
{
    double trueW = 0.0, trueL = 0.0;
    double measuredW = 0.0, measuredL = 0.0;

    double errW() const { return std::abs(measuredW - trueW); }
    double errL() const { return std::abs(measuredL - trueL); }
};

/** One planted silicon defect and whether the RE stage flagged it. */
struct DefectOutcome
{
    fab::PlantedDefect planted;
    bool detected = false;
};

/** Planted-vs-detected silicon defect scoring. */
struct SiliconDefectReport
{
    /// Ground truth, one entry per planted defect, with match flags.
    std::vector<DefectOutcome> planted;

    /// Everything the RE stage flagged (matched or not).
    std::vector<re::DetectedDefect> detected;

    size_t matched = 0;  ///< planted defects correctly flagged
    size_t spurious = 0; ///< detections with no planted counterpart

    /// Every planted defect was flagged with the right kind/site.
    bool
    allDetected() const
    {
        return matched == planted.size();
    }
};

/**
 * Greedy planted-vs-detected matching: fills `matched`, `spurious`
 * and the per-defect `detected` flags of a report whose `planted`
 * and `detected` lists are populated.  A detection matches when the
 * kinds agree, the sites are within a few hundred nm, and the
 * identified bitlines are compatible.  Shared by the pipeline and
 * the direct fuzz tier (core/fuzz.hh).
 */
void scoreSiliconDefects(SiliconDefectReport &report);

/** Pipeline outcome. */
struct PipelineReport
{
    std::string chipId;

    models::Topology trueTopology = models::Topology::Classic;
    models::Topology extractedTopology = models::Topology::Classic;
    bool topologyCorrect = false;

    size_t trueCommonGateStrips = 0;
    size_t extractedCommonGateStrips = 0;

    size_t trueDevices = 0;
    size_t extractedDevices = 0;
    size_t bitlinesFound = 0;
    size_t bitlinesTrue = 0;

    bool crossCouplingConsistent = false;

    /// Best-matching published topology template (Section V-A) and
    /// its structural agreement score in [0, 1].
    std::string matchedTemplate;
    double matchScore = 0.0;

    size_t slices = 0;
    double alignmentResidualPx = 0.0;
    bool alignmentBudgetMet = false;

    std::map<models::Role, RoleRecovery> roles;

    /// Worst absolute dimension error across recovered roles (nm).
    double maxDimErrorNm = 0.0;

    // ---- Robustness / degradation accounting ----------------------
    // All zero / 1.0 / false on the fault-free legacy path.

    /// Slices that needed more than one imaging attempt.
    size_t slicesRetried = 0;

    /// Total re-imaged frames (charged to the campaign cost).
    size_t retries = 0;

    /// Slices replaced by neighbour interpolation after the retry
    /// budget ran out, and their indices (seed-deterministic).
    size_t slicesInterpolated = 0;
    std::vector<size_t> interpolatedSlices;

    /// Slices no attempt nor interpolation could recover.
    size_t slicesUnrecoverable = 0;

    /// Injected-fault ground truth vs QC detection (simulator-only).
    size_t faultsInjected = 0;
    size_t faultsDetected = 0;

    /// Aggregate acquisition trust in [0, 1] (see RobustAcquisition).
    double qcConfidence = 1.0;

    /// True when any slice was interpolated or unrecoverable: the
    /// report is best-effort and downstream numbers deserve scrutiny.
    bool degraded = false;

    /// Table-I campaign cost for this chip, with re-imaging charged.
    scope::CampaignCost campaign;

    /// Silicon defect scoring (empty when config.defects is empty
    /// and the RE stage flagged nothing).
    SiliconDefectReport siliconDefects;

    /// Full analysis, for further inspection.
    re::RegionAnalysis analysis;

    /// Per-slice QC decision trail from the robust acquisition
    /// (empty on the legacy fault-free path).  Seed-pure: identical
    /// with telemetry on or off.  Export with scope::qcAuditJson().
    std::vector<scope::SliceDecision> qcAudit;

    /// Trace + metric deltas when config.telemetry.enabled; null
    /// otherwise.  Not part of the seeded result — compare reports
    /// with this field excluded.
    std::shared_ptr<const telemetry::PipelineTelemetry> telemetry;
};

/**
 * Run the full pipeline on one chip configuration.
 *
 * Throws on invalid configurations (std::out_of_range for unknown
 * chip ids, std::invalid_argument otherwise) — use runPipelineChecked
 * for typed errors instead of exceptions.
 */
PipelineReport runPipeline(const PipelineConfig &config);

/**
 * Exception-free pipeline entry point: validates the configuration up
 * front and converts any internal failure into a typed error, so
 * production callers always get either a report (possibly with
 * `degraded` set) or an Error — never a crash.
 */
common::Result<PipelineReport>
runPipelineChecked(const PipelineConfig &config);

/** Repeatability over independent acquisitions (different seeds). */
struct Repeatability
{
    size_t runs = 0;
    size_t topologyCorrect = 0;
    size_t crossCouplingTraced = 0;

    /// Per-role spread of the measured W and L across runs.
    std::map<models::Role, std::pair<common::Accumulator,
                                     common::Accumulator>>
        dims;
};

/**
 * Re-run the pipeline `runs` times with seeds base.seed, base.seed+1,
 * ... - the in-silico analogue of the paper's repeated measurements.
 */
Repeatability repeatPipeline(const PipelineConfig &base, size_t runs);

} // namespace core
} // namespace hifi

#endif // HIFI_CORE_PIPELINE_HH
