/**
 * @file
 * Staged, resumable decomposition of the HiFi-DRAM pipeline.
 *
 * The monolithic `runPipeline` is rebuilt on five explicit stages —
 * Fab, Acquire, Postprocess, Analyze, Finalize — each a pure function
 * of (config, state before the stage).  A `StagedState` carries the
 * stage cursor, the partial `PipelineReport` and the one intermediate
 * artifact the remaining stages still need, which makes three things
 * possible without changing a single output bit:
 *
 *  - the campaign service checkpoints the state after every stage and
 *    a killed job resumes from the last completed stage, bit-identical
 *    to an uninterrupted run (service/checkpoint.hh);
 *  - per-stage watchdog deadlines and typed per-stage errors, so a
 *    retry replays one stage instead of the whole campaign;
 *  - content-addressed caching of the fab stage (identical fab params
 *    produce an identical post-Fab state).
 *
 * Determinism: a stage never reads wall clock, thread ids or any
 * state outside (config, StagedState), so running the stages in one
 * process, across process restarts, or with different thread counts
 * produces bitwise-identical reports (asserted in tests/test_service).
 */

#ifndef HIFI_CORE_STAGES_HH
#define HIFI_CORE_STAGES_HH

#include <memory>
#include <optional>

#include "core/pipeline.hh"

namespace hifi
{
namespace scope
{
class CleanFrameCache;
}

namespace core
{

/** Pipeline stages, in execution order. */
enum class Stage
{
    Fab,         ///< layout + voxelize + plant defects
    Acquire,     ///< FIB/SEM slice stack (robust or legacy path)
    Postprocess, ///< denoise + register + assemble
    Analyze,     ///< reverse engineering of the volume
    Finalize,    ///< truth validation, matching, dimension scoring
    Done,
};

/// Stable lower-case stage name ("fab", "acquire", ...).
const char *stageName(Stage stage);

/// Number of runnable stages (Done excluded).
constexpr size_t kNumStages = 5;

/**
 * Everything a pipeline run carries between stages.  Artifacts are
 * held by shared_ptr so checkpointing and caching can alias them
 * without copies; a stage drops artifacts the remaining stages no
 * longer need (`materials` after Acquire, `stack` after Postprocess),
 * which bounds the checkpoint size.
 */
struct StagedState
{
    Stage next = Stage::Fab;

    /// Resolved in-plane voxel size (after Fab).
    double voxelNm = 0.0;

    /// Slice pitch in nm (after Acquire).
    double sliceThicknessNm = 0.0;

    /// Partial report; complete once next == Done.
    PipelineReport report;

    // ---- Stage artifacts ------------------------------------------
    std::shared_ptr<image::Volume3D> materials; ///< Fab -> Acquire
    std::shared_ptr<image::SliceStack> stack;   ///< Acquire -> Postpr.
    std::shared_ptr<image::Volume3D> processed; ///< Postpr. -> Analyze

    /// Postprocess -> Analyze on the memory-budgeted path
    /// (config.memoryBudget > 0): the assembled volume stays sealed
    /// in `tileStore` and Analyze materializes it just in time, so
    /// the stack and the dense volume never coexist.  Exactly one of
    /// `processed` / `processedTiled` is set after Postprocess.
    std::shared_ptr<image::TiledVolume3D> processedTiled;

    // ---- Service hooks (not serialized, not result-affecting) -----

    /// Shared clean-frame cache for the Acquire stage (null: each
    /// acquisition uses its private cache).  Cached frames are exact,
    /// so sharing never changes a report.
    scope::CleanFrameCache *cleanFrames = nullptr;

    /// Identity of `materials` for shared-cache keys; the service
    /// uses the fab-parameter digest of the job config.
    uint64_t volumeKey = 0;

    /**
     * Tile store backing `processedTiled` (and tile-referencing
     * checkpoints).  The campaign service provides one rooted under
     * its checkpoint directory so tiles survive restarts; standalone
     * memory-budgeted runs get an automatic temp-dir store (removed
     * with the state) from the Postprocess stage.  Null on the
     * in-RAM path.  Not result-affecting.
     */
    std::shared_ptr<image::TileStore> tileStore;
};

/**
 * Validate `config` and build the initial state (cursor at Fab).
 * Typed errors mirror validateConfig.
 */
common::Result<StagedState> initStagedRun(const PipelineConfig &config);

/**
 * Run the stage `state.next` points at and advance the cursor.
 * Applies the config's thread-count override for the stage and wraps
 * it in a "pipeline.stage.<name>" span.  All failures come back as
 * typed errors — internal exceptions are caught and mapped to
 * ErrorCode::Internal — so a service retry layer never sees an
 * escaping exception.  Calling with next == Done is an error.
 */
std::optional<common::Error> runStage(const PipelineConfig &config,
                                      StagedState &state);

/**
 * Seed-pure content digest (FNV-1a) of a report: every field that is
 * a function of the configuration — analysis, audit trail, campaign
 * cost, degradation accounting — and nothing that is not (the
 * telemetry attachment is excluded).  Two reports with equal digests
 * are bitwise-identical in all seeded fields; used by the service,
 * the chaos harness and the tests to assert checkpoint/resume and
 * cache hits change nothing.
 */
uint64_t reportDigest(const PipelineReport &report);

namespace detail
{
/// Stage body without the thread-override / span / exception guard —
/// the monolithic runner applies those once around the whole loop.
/// May throw; callers outside pipeline.cc want runStage instead.
std::optional<common::Error>
runStageUnguarded(const PipelineConfig &config, StagedState &state);
} // namespace detail

} // namespace core
} // namespace hifi

#endif // HIFI_CORE_STAGES_HH
