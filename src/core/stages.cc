#include "core/stages.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "fab/voxelizer.hh"
#include "re/topology_match.hh"
#include "scope/fib.hh"

namespace hifi
{
namespace core
{

using models::Role;

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Fab:
        return "fab";
      case Stage::Acquire:
        return "acquire";
      case Stage::Postprocess:
        return "postprocess";
      case Stage::Analyze:
        return "analyze";
      case Stage::Finalize:
        return "finalize";
      case Stage::Done:
        return "done";
    }
    return "unknown";
}

namespace
{

/// Span names must be string literals that outlive the session.
const char *
stageSpanName(Stage stage)
{
    switch (stage) {
      case Stage::Fab:
        return "pipeline.stage.fab";
      case Stage::Acquire:
        return "pipeline.stage.acquire";
      case Stage::Postprocess:
        return "pipeline.stage.postprocess";
      case Stage::Analyze:
        return "pipeline.stage.analyze";
      case Stage::Finalize:
        return "pipeline.stage.finalize";
      case Stage::Done:
        return "pipeline.stage.done";
    }
    return "pipeline.stage.unknown";
}

/// Voxel pick shared by the stages (pure function of the config).
double
resolveVoxelNm(const PipelineConfig &config,
               const models::ChipSpec &chip)
{
    if (config.voxelNm > 0.0)
        return config.voxelNm;
    const double bl_gap = chip.blPitchNm - chip.blWidthNm;
    return std::min({chip.pixelResNm, bl_gap / 2.5, 5.0});
}

/// Detector pick shared by Acquire and Analyze.
models::Detector
resolveDetector(const PipelineConfig &config,
                const models::ChipSpec &chip)
{
    if (config.detectorOverride == 0)
        return models::Detector::Se;
    if (config.detectorOverride == 1)
        return models::Detector::Bse;
    return chip.detector;
}

/**
 * Lazily provide the tile store of a memory-budgeted run.  The
 * campaign service installs its own store up front (rooted under the
 * checkpoint directory); a standalone run gets a per-process temp
 * directory that is removed when the last reference to the store —
 * state, checkpoints, tiled artifacts — is gone.  Where the spill
 * lives never affects a report bit.
 */
std::optional<common::Error>
ensureTileStore(const PipelineConfig &config, StagedState &state)
{
    if (state.tileStore)
        return std::nullopt;
    namespace fs = std::filesystem;

    image::TileStoreConfig tc;
    tc.budgetBytes = config.memoryBudget;
    const bool owned = config.spillDir.empty();
    if (!owned) {
        tc.dir = config.spillDir;
    } else {
        std::error_code ec;
        fs::path base = fs::temp_directory_path(ec);
        if (ec)
            base = ".";
        unsigned long long pid = 0;
#if defined(__unix__) || defined(__APPLE__)
        pid = static_cast<unsigned long long>(::getpid());
#endif
        tc.dir = (base /
                  ("hifi-spill-" + std::to_string(pid) + "-" +
                   std::to_string(config.seed)))
                     .string();
    }
    const std::string dir = tc.dir;
    state.tileStore = std::shared_ptr<image::TileStore>(
        new image::TileStore(std::move(tc)),
        [owned, dir](image::TileStore *s) {
            delete s;
            if (owned) {
                std::error_code ec;
                std::filesystem::remove_all(dir, ec);
            }
        });
    return std::nullopt;
}

// ---- Stage bodies --------------------------------------------------

std::optional<common::Error>
stageFab(const PipelineConfig &config, StagedState &state)
{
    const models::ChipSpec &chip = models::chip(config.chipId);
    PipelineReport &report = state.report;

    const double voxel = resolveVoxelNm(config, chip);
    state.voxelNm = voxel;

    const models::CornerVariation variation =
        models::cornerVariation(chip.vendor, config.corner);

    fab::SaRegionSpec spec =
        fab::SaRegionSpec::fromChip(chip, config.pairs);
    spec.stackedSas = config.stackedSas;
    spec.minGapNm = std::max(spec.minGapNm, 4.0 * voxel);
    spec.variation = variation;
    spec.jitterSeed = config.seed;

    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    report.trueCommonGateStrips = truth.commonGateComponents;
    report.trueDevices = truth.devices.size();
    report.bitlinesTrue = truth.bitlines.size();

    fab::VoxelizeParams vox;
    vox.voxelNm = voxel;
    vox.lerSigmaNm = variation.lerSigmaNm;
    vox.lerCorrLenNm = variation.lerCorrLenNm;
    vox.lerSeed = config.seed;
    // The layout legitimately overhangs the region rect by a fraction
    // of the pitch (clipped by design); corner CD bias/jitter/drift
    // and LER stretch that a little further.  The typed check only
    // needs to catch runaway geometry, so the bound is generous —
    // within it, voxelizeChecked clips exactly like the legacy
    // voxelize did, bit for bit.
    vox.outOfBoundsTolNm = 0.3 * chip.blPitchNm +
        (std::abs(variation.cdBiasFrac) +
         variation.cdDriftFracAcross + 5.0 * variation.cdSigmaFrac) *
            chip.saHeightNm +
        8.0 * variation.lerSigmaNm + 1.0;
    auto volume = fab::voxelizeChecked(*cell, truth.region, vox);
    if (!volume.ok())
        return volume.error();
    state.materials =
        std::make_shared<image::Volume3D>(volume.takeValue());

    if (config.defects.any()) {
        auto planted = fab::plantDefects(*state.materials, truth,
                                         voxel, config.defects);
        if (!planted.ok())
            return planted.error();
        for (auto &p : planted.value())
            report.siliconDefects.planted.push_back({p, false});
    }

    // Per-role truth dimension means, captured now so later stages
    // (and checkpoints) never need the layout truth again.  Latch
    // roles draw W along the gate rect's width, the rest swapped.
    std::map<Role, std::pair<double, double>> truth_sum;
    std::map<Role, size_t> truth_n;
    for (const auto &d : truth.devices) {
        const bool latch_like =
            d.role == Role::Nsa || d.role == Role::Psa ||
            d.role == Role::Lsa;
        const double w =
            latch_like ? d.gate.width() : d.gate.height();
        const double l =
            latch_like ? d.gate.height() : d.gate.width();
        truth_sum[d.role].first += w;
        truth_sum[d.role].second += l;
        ++truth_n[d.role];
    }
    for (const auto &[role, sums] : truth_sum) {
        RoleRecovery rec;
        const auto n = static_cast<double>(truth_n[role]);
        rec.trueW = sums.first / n;
        rec.trueL = sums.second / n;
        report.roles[role] = rec;
    }

    state.next = Stage::Acquire;
    return std::nullopt;
}

std::optional<common::Error>
stageAcquire(const PipelineConfig &config, StagedState &state)
{
    const models::ChipSpec &chip = models::chip(config.chipId);
    PipelineReport &report = state.report;
    const double voxel = state.voxelNm;
    const image::Volume3D &materials = *state.materials;

    scope::FibSemParams fib;
    fib.sem.detector = resolveDetector(config, chip);
    fib.sem.dwellUs = chip.dwellUs;
    fib.sem.seQuality = chip.seQuality;
    fib.sliceVoxels = std::max<size_t>(
        1, static_cast<size_t>(std::lround(chip.sliceNm / voxel)));
    fib.driftProbability = config.driftProbability;

    common::inform("pipeline " + chip.id + ": acquiring " +
                   std::to_string(materials.nx() / fib.sliceVoxels) +
                   " slices");
    auto stack = std::make_shared<image::SliceStack>();
    if (config.faults.enabled) {
        // Production path: fault injection, per-slice QC, bounded
        // re-imaging, neighbour interpolation.  Counter-seeded, so
        // the whole recovery log is a pure function of the seed.
        scope::RobustAcquisition robust = scope::acquireRobust(
            materials, fib, config.faults, config.recovery,
            config.seed, state.cleanFrames, state.volumeKey);
        *stack = std::move(robust.stack);
        report.slicesRetried = robust.slicesRetried;
        report.retries = robust.retries;
        report.slicesInterpolated = robust.slicesInterpolated;
        report.interpolatedSlices =
            std::move(robust.interpolatedSlices);
        report.slicesUnrecoverable = robust.slicesUnrecoverable;
        report.faultsInjected = robust.faultsInjected;
        report.faultsDetected = robust.faultsDetected;
        report.qcConfidence = robust.qcConfidence;
        report.qcAudit = std::move(robust.audit);
        report.degraded = robust.slicesInterpolated > 0 ||
            robust.slicesUnrecoverable > 0;
        if (report.degraded)
            common::warn("pipeline " + chip.id + ": degraded (" +
                         std::to_string(robust.slicesInterpolated) +
                         " interpolated, " +
                         std::to_string(robust.slicesUnrecoverable) +
                         " unrecoverable slices)");
    } else {
        // Legacy fault-free path, bit-identical to the pre-robustness
        // pipeline: one sequential generator threads drift and frame
        // seeds exactly as before.
        common::Rng rng(config.seed);
        *stack = scope::acquire(materials, fib, rng);
    }
    if (stack->slices.empty())
        return common::Error{
            common::ErrorCode::FailedPrecondition,
            "pipeline " + chip.id +
                ": acquisition produced no slices (volume spans " +
                std::to_string(materials.nx()) +
                " voxels, slice needs " +
                std::to_string(fib.sliceVoxels) + ")"};
    stack->sliceThicknessNm =
        static_cast<double>(fib.sliceVoxels) * voxel;
    stack->pixelResolutionNm = voxel;
    state.sliceThicknessNm = stack->sliceThicknessNm;
    report.slices = stack->slices.size();
    report.campaign = scope::campaignCost(chip);
    scope::chargeRetries(report.campaign, report.retries);

    state.stack = std::move(stack);
    state.materials.reset(); // no longer needed downstream
    state.next = Stage::Postprocess;
    return std::nullopt;
}

std::optional<common::Error>
stagePostprocess(const PipelineConfig &config, StagedState &state)
{
    const models::ChipSpec &chip = models::chip(config.chipId);
    PipelineReport &report = state.report;
    const image::SliceStack &stack = *state.stack;

    scope::PostprocessParams post;
    post.algo = config.denoise;
    post.mi.bins = 16;
    post.mi.maxShift = 6;
    if (config.memoryBudget > 0) {
        // Out-of-core path: stream denoise -> register -> assemble
        // over bounded slice windows into a tiled, spill-to-disk
        // volume.  Same per-slice arithmetic, same report bits; only
        // the peak working set changes (tests/test_volume.cc).
        if (const auto err = ensureTileStore(config, state))
            return err;
        auto streamed = scope::postprocessStreamed(
            stack, *state.tileStore, post,
            image::TiledVolume3D::kDefaultTileEdge,
            config.memoryBudget / 2);
        if (!streamed.ok())
            return streamed.error();
        scope::StreamedPostprocessResult result =
            streamed.takeValue();
        report.alignmentResidualPx = result.alignmentResidualPx;
        report.alignmentBudgetMet = result.meetsAlignmentBudget(
            stack.slices.front().height());
        state.processedTiled = std::make_shared<image::TiledVolume3D>(
            std::move(result.volume));
    } else {
        scope::PostprocessResult processed =
            scope::postprocess(stack, post);
        report.alignmentResidualPx = processed.alignmentResidualPx;
        report.alignmentBudgetMet = processed.meetsAlignmentBudget(
            stack.slices.front().height());
        state.processed = std::make_shared<image::Volume3D>(
            std::move(processed.volume));
    }
    if (!report.alignmentBudgetMet)
        common::warn("pipeline " + chip.id +
                     ": alignment residual exceeds the 0.77% budget");

    state.stack.reset(); // no longer needed downstream
    state.next = Stage::Analyze;
    return std::nullopt;
}

std::optional<common::Error>
stageAnalyze(const PipelineConfig &config, StagedState &state)
{
    const models::ChipSpec &chip = models::chip(config.chipId);
    PipelineReport &report = state.report;

    re::PlanarScales scales;
    scales.xNm = state.sliceThicknessNm;
    scales.yNm = state.voxelNm;
    scales.zNm = state.voxelNm;

    if (!state.processed && !state.processedTiled)
        return common::Error{
            common::ErrorCode::FailedPrecondition,
            "stageAnalyze: no processed volume (resume from a "
            "Postprocess checkpoint first)"};

    // The analysis kernels are in-core; on the memory-budgeted path
    // the tiled volume materializes just in time — after the stack
    // has been dropped — so the two never coexist.
    if (state.processedTiled) {
        auto dense = state.processedTiled->toDense();
        if (!dense.ok())
            return dense.error();
        state.processedTiled.reset();
        const image::Volume3D volume = dense.takeValue();
        report.analysis = re::analyzeRegion(
            volume, scales, resolveDetector(config, chip));
    } else {
        report.analysis = re::analyzeRegion(
            *state.processed, scales, resolveDetector(config, chip));
        state.processed.reset();
    }
    state.next = Stage::Finalize;
    return std::nullopt;
}

std::optional<common::Error>
stageFinalize(const PipelineConfig &config, StagedState &state)
{
    const models::ChipSpec &chip = models::chip(config.chipId);
    PipelineReport &report = state.report;

    report.extractedTopology = report.analysis.topology;
    report.topologyCorrect =
        report.extractedTopology == report.trueTopology;
    if (!report.topologyCorrect)
        common::warn("pipeline " + chip.id +
                     ": extracted topology disagrees with the truth");
    report.extractedCommonGateStrips =
        report.analysis.commonGateStrips;
    report.extractedDevices = report.analysis.devices.size();
    report.bitlinesFound = report.analysis.bitlines.size();
    report.crossCouplingConsistent =
        report.analysis.crossCouplingConsistent();

    const auto matches = re::matchTopology(report.analysis);
    if (!matches.empty()) {
        report.matchedTemplate = matches.front().candidate->name;
        report.matchScore = matches.front().score;
    }

    // Silicon defect scoring: planted ground truth vs RE detections.
    report.siliconDefects.detected = report.analysis.defects;
    scoreSiliconDefects(report.siliconDefects);
    if (!report.siliconDefects.allDetected())
        common::warn(
            "pipeline " + chip.id + ": " +
            std::to_string(report.siliconDefects.planted.size() -
                           report.siliconDefects.matched) +
            " planted silicon defect(s) escaped detection");

    // Measured dimensions vs the truth means captured in Fab.
    for (auto &[role, rec] : report.roles) {
        if (const auto dims = report.analysis.meanDims(role)) {
            rec.measuredW = dims->w;
            rec.measuredL = dims->l;
            report.maxDimErrorNm = std::max(
                {report.maxDimErrorNm, rec.errW(), rec.errL()});
        }
    }

    state.next = Stage::Done;
    return std::nullopt;
}

} // namespace

common::Result<StagedState>
initStagedRun(const PipelineConfig &config)
{
    if (const auto err = validateConfig(config))
        return common::Result<StagedState>(*err);
    StagedState state;
    const models::ChipSpec &chip = models::chip(config.chipId);
    state.report.chipId = chip.id;
    state.report.trueTopology = chip.topology;
    return common::Result<StagedState>(std::move(state));
}

namespace detail
{

std::optional<common::Error>
runStageUnguarded(const PipelineConfig &config, StagedState &state)
{
    switch (state.next) {
      case Stage::Fab:
        return stageFab(config, state);
      case Stage::Acquire:
        return stageAcquire(config, state);
      case Stage::Postprocess:
        return stagePostprocess(config, state);
      case Stage::Analyze:
        return stageAnalyze(config, state);
      case Stage::Finalize:
        return stageFinalize(config, state);
      case Stage::Done:
        break;
    }
    return common::Error{common::ErrorCode::FailedPrecondition,
                         "runStage: pipeline already completed"};
}

} // namespace detail

std::optional<common::Error>
runStage(const PipelineConfig &config, StagedState &state)
{
    if (state.next == Stage::Done)
        return common::Error{common::ErrorCode::FailedPrecondition,
                             "runStage: pipeline already completed"};
    const common::ScopedThreads threads(config.threads);
    const telemetry::Span span(stageSpanName(state.next));
    const Stage stage = state.next;
    try {
        return detail::runStageUnguarded(config, state);
    } catch (const std::exception &e) {
        return common::Error{
            common::ErrorCode::Internal,
            std::string("stage ") + stageName(stage) +
                " failed: " + e.what()};
    } catch (...) {
        return common::Error{
            common::ErrorCode::Internal,
            std::string("stage ") + stageName(stage) +
                " failed with a non-standard exception"};
    }
}

// ---- Report digest -------------------------------------------------

namespace
{

/// FNV-1a accumulator (mirrors the fuzz harness's signature hashing).
struct Fnv
{
    uint64_t h = 1469598103934665603ull;

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    }

    void
    d(double v)
    {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "bit pun");
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
    }

    void
    rect(const common::Rect &r)
    {
        d(r.x0);
        d(r.y0);
        d(r.x1);
        d(r.y1);
    }
};

} // namespace

uint64_t
reportDigest(const PipelineReport &report)
{
    Fnv f;
    f.str(report.chipId);
    f.u64(static_cast<uint64_t>(report.trueTopology));
    f.u64(static_cast<uint64_t>(report.extractedTopology));
    f.u64(report.topologyCorrect);
    f.u64(report.trueCommonGateStrips);
    f.u64(report.extractedCommonGateStrips);
    f.u64(report.trueDevices);
    f.u64(report.extractedDevices);
    f.u64(report.bitlinesFound);
    f.u64(report.bitlinesTrue);
    f.u64(report.crossCouplingConsistent);
    f.str(report.matchedTemplate);
    f.d(report.matchScore);
    f.u64(report.slices);
    f.d(report.alignmentResidualPx);
    f.u64(report.alignmentBudgetMet);
    f.u64(report.roles.size());
    for (const auto &[role, rec] : report.roles) {
        f.u64(static_cast<uint64_t>(role));
        f.d(rec.trueW);
        f.d(rec.trueL);
        f.d(rec.measuredW);
        f.d(rec.measuredL);
    }
    f.d(report.maxDimErrorNm);

    f.u64(report.slicesRetried);
    f.u64(report.retries);
    f.u64(report.slicesInterpolated);
    f.u64(report.interpolatedSlices.size());
    for (const size_t s : report.interpolatedSlices)
        f.u64(s);
    f.u64(report.slicesUnrecoverable);
    f.u64(report.faultsInjected);
    f.u64(report.faultsDetected);
    f.d(report.qcConfidence);
    f.u64(report.degraded);

    const scope::CampaignCost &c = report.campaign;
    f.u64(c.slices);
    f.d(c.pixelsPerImage);
    f.d(c.millSecondsPerSlice);
    f.d(c.imageSecondsPerSlice);
    f.d(c.secondsPerSlice);
    f.u64(c.reimagedSlices);
    f.d(c.retryHours);
    f.d(c.totalHours);

    const SiliconDefectReport &sd = report.siliconDefects;
    f.u64(sd.planted.size());
    for (const auto &p : sd.planted) {
        f.u64(static_cast<uint64_t>(p.planted.kind));
        f.rect(p.planted.footprint);
        f.u64(static_cast<uint64_t>(p.planted.bitlineA));
        f.u64(static_cast<uint64_t>(p.planted.bitlineB));
        f.u64(p.detected);
    }
    f.u64(sd.detected.size());
    for (const auto &d : sd.detected) {
        f.u64(static_cast<uint64_t>(d.kind));
        f.rect(d.where);
        f.u64(static_cast<uint64_t>(d.bitlineA));
        f.u64(static_cast<uint64_t>(d.bitlineB));
    }
    f.u64(sd.matched);
    f.u64(sd.spurious);

    const re::RegionAnalysis &a = report.analysis;
    f.u64(static_cast<uint64_t>(a.topology));
    f.u64(a.commonGateStrips);
    f.u64(a.bitlines.size());
    for (const auto &b : a.bitlines)
        f.rect(b);
    f.u64(a.devices.size());
    for (const auto &dev : a.devices) {
        f.u64(static_cast<uint64_t>(dev.role));
        f.rect(dev.gate);
        f.d(dev.wNm);
        f.d(dev.lNm);
        f.u64(static_cast<uint64_t>(dev.bitline));
        f.u64(static_cast<uint64_t>(dev.couplesTo));
    }
    f.u64(a.defects.size());
    for (const auto &d : a.defects) {
        f.u64(static_cast<uint64_t>(d.kind));
        f.rect(d.where);
        f.u64(static_cast<uint64_t>(d.bitlineA));
        f.u64(static_cast<uint64_t>(d.bitlineB));
    }

    f.u64(report.qcAudit.size());
    for (const auto &dec : report.qcAudit) {
        f.u64(dec.slice);
        f.u64(static_cast<uint64_t>(dec.injectedFault));
        f.u64(dec.accepted);
        f.u64(dec.interpolated);
        f.u64(dec.unrecoverable);
        f.u64(dec.attempts.size());
        for (const auto &att : dec.attempts) {
            f.u64(att.attempt);
            f.u64(static_cast<uint64_t>(att.fault));
            f.u64(att.contentConfirmed);
            f.u64(att.accepted);
            const image::QcMetrics &m = att.metrics;
            f.d(m.snr);
            f.d(m.focusScore);
            f.d(m.saturationFraction);
            f.d(m.deadRowFraction);
            f.d(m.stripeScore);
            f.d(m.miVsPrev);
            f.u64(static_cast<uint64_t>(m.shiftX));
            f.u64(static_cast<uint64_t>(m.shiftY));
            f.u64(m.flags);
        }
    }
    return f.h;
}

} // namespace core
} // namespace hifi
