#include "core/study.hh"

#include <cmath>
#include <sstream>

#include "core/pipeline.hh"
#include "eval/model_accuracy.hh"
#include "eval/overheads.hh"
#include "eval/recommendations.hh"
#include "re/measure.hh"
#include "scope/fib.hh"
#include "scope/prep.hh"
#include "scope/roi_search.hh"

namespace hifi
{
namespace core
{

namespace
{

std::string
pct(double v, int digits = 0)
{
    std::ostringstream ss;
    ss.precision(digits);
    ss << std::fixed << v * 100.0 << "%";
    return ss.str();
}

std::string
num(double v, int digits = 1)
{
    std::ostringstream ss;
    ss.precision(digits);
    ss << std::fixed << v;
    return ss.str();
}

} // namespace

StudyResult
runFullStudy(const StudyConfig &config)
{
    StudyResult result;
    std::ostringstream md;

    std::vector<std::string> chips = config.chips;
    if (chips.empty())
        for (const auto &c : models::allChips())
            chips.push_back(c.id);

    md << "# HiFi-DRAM study report\n\n"
       << "Deterministic reproduction run (seed " << config.seed
       << ", " << config.pairs << " SA pairs per region).\n";

    // ---- Imaging methodology ------------------------------------------
    md << "\n## Imaging methodology (Section IV)\n\n"
       << "| chip | prep | ROI identification | SA strip found | "
          "acquisition |\n|---|---|---|---|---|\n";
    for (const auto &id : chips) {
        const auto &chip = models::chip(id);
        const auto prep = scope::prepareChip(chip);
        const auto cost = scope::campaignCost(chip);
        md << "| " << id << " | " << num(prep.prepMinutes(), 0)
           << " min | ";
        if (prep.matsVisible)
            md << "optical (MATs visible), "
               << num(prep.identificationHours(), 1) << " h";
        else
            md << "blind search, " << prep.blindSearch.crossSections
               << " sections, " << num(prep.identificationHours(), 1)
               << " h";
        md << " | ";
        if (prep.matsVisible)
            md << num(chip.saHeightNm / 1e3, 2) << " um (optical)";
        else
            md << num(prep.blindSearch.saWidthNm() / 1e3, 2) << " um";
        md << " | " << num(cost.totalHours) << " h |\n";
    }

    // ---- Reverse engineering -------------------------------------------
    md << "\n## Reverse engineering (Section V)\n\n"
       << "| chip | topology | template (score) | devices | "
          "cross-coupling | max dim err |\n|---|---|---|---|---|---|\n";
    for (const auto &id : chips) {
        PipelineConfig pc;
        pc.chipId = id;
        pc.pairs = config.pairs;
        pc.seed = config.seed;
        const auto rep = runPipeline(pc);

        result.allTopologiesCorrect &= rep.topologyCorrect;
        result.allCrossCouplingsTraced &= rep.crossCouplingConsistent;
        ++result.chipsStudied;

        md << "| " << id << " | "
           << (rep.extractedTopology == models::Topology::Ocsa
                   ? "OCSA"
                   : "classic")
           << (rep.topologyCorrect ? "" : " (WRONG)") << " | "
           << rep.matchedTemplate << " (" << num(rep.matchScore, 2)
           << ") | " << rep.extractedDevices << "/" << rep.trueDevices
           << " | "
           << (rep.crossCouplingConsistent ? "traced" : "failed")
           << " | " << num(rep.maxDimErrorNm) << " nm |\n";
    }

    // ---- Measurements ----------------------------------------------------
    const auto campaign = re::measurementCampaign(config.seed);
    md << "\n## Measurements (Section V-B)\n\n"
       << campaign.totalMeasurements
       << " measurements across the chips (paper: "
       << re::kPaperMeasurements << "); repeated-measurement mean "
       << "relative error " << pct(campaign.meanRelativeError(), 1)
       << ".\n";

    // ---- Model accuracy ---------------------------------------------------
    md << "\n## Public model accuracy (Section VI-A)\n\n"
       << "| model | DDR | W/L avg | W/L max | W avg | W max | L avg "
          "| L max |\n|---|---|---|---|---|---|---|---|\n";
    for (const auto &acc : eval::fig12Summary()) {
        md << "| " << acc.model << " | " << acc.ddr << " | "
           << pct(acc.avgWl) << " | " << pct(acc.maxWl) << " ("
           << acc.maxWlAt << ") | " << pct(acc.avgW) << " | "
           << pct(acc.maxW) << " | " << pct(acc.avgL) << " | "
           << pct(acc.maxL) << " |\n";
    }

    // ---- Research audit ----------------------------------------------------
    md << "\n## Research audit (Sections VI-B/C, Table II)\n\n"
       << "| paper | inaccuracies | error | porting cost |\n"
       << "|---|---|---|---|\n";
    for (const auto &audit : eval::auditAllPapers()) {
        md << "| " << audit.paper->name << " | "
           << models::inaccuracyLabel(*audit.paper) << " | ";
        if (std::isnan(audit.overheadError))
            md << "N/A";
        else
            md << num(audit.overheadError) << "x";
        md << " | " << num(audit.portingCost) << "x |\n";
    }
    md << "\nPapers affected by I1 need "
       << pct(eval::i1MatExtensionOverhead())
       << " chip overhead for the MAT extension alone.\n";

    // ---- Recommendations -----------------------------------------------------
    md << "\n## Recommendations (Section VI-E)\n\n";
    for (const auto &rec : eval::recommendations())
        md << "- **" << rec.id << "**: " << rec.title << "\n";

    result.markdown = md.str();
    return result;
}

} // namespace core
} // namespace hifi
