#include "core/fuzz.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "fab/defects.hh"
#include "fab/voxelizer.hh"
#include "re/measure.hh"
#include "scope/sem.hh"

namespace hifi
{
namespace core
{

using models::ProcessCorner;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

std::string
serializeScenario(const ScenarioParams &p)
{
    std::ostringstream ss;
    ss << "chip=" << p.chipId << " pairs=" << p.pairs
       << " sas=" << p.stackedSas
       << " corner=" << models::cornerName(p.corner)
       << " shorts=" << p.bitlineShorts << " opens=" << p.bitlineOpens
       << " vias=" << p.missingVias << " particles=" << p.particles
       << " faults=" << (p.faults ? 1 : 0)
       << " full=" << (p.fullPipeline ? 1 : 0) << " seed=" << p.seed;
    return ss.str();
}

common::Result<ScenarioParams>
parseScenario(const std::string &line)
{
    using R = common::Result<ScenarioParams>;
    ScenarioParams p;
    std::istringstream ss(line);
    std::string token;
    size_t tokens = 0;
    while (ss >> token) {
        ++tokens;
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            return R::failure(common::ErrorCode::InvalidArgument,
                              "parseScenario: token without '=': '" +
                                  token + "'");
        const std::string key = token.substr(0, eq);
        const std::string val = token.substr(eq + 1);
        try {
            if (key == "chip") {
                p.chipId = val;
            } else if (key == "pairs") {
                p.pairs = std::stoul(val);
            } else if (key == "sas") {
                p.stackedSas = std::stoul(val);
            } else if (key == "corner") {
                bool found = false;
                for (size_t c = 0;
                     c < static_cast<size_t>(
                             ProcessCorner::NumCorners);
                     ++c) {
                    if (val ==
                        models::cornerName(
                            static_cast<ProcessCorner>(c))) {
                        p.corner = static_cast<ProcessCorner>(c);
                        found = true;
                    }
                }
                if (!found)
                    return R::failure(
                        common::ErrorCode::InvalidArgument,
                        "parseScenario: unknown corner '" + val +
                            "'");
            } else if (key == "shorts") {
                p.bitlineShorts = std::stoul(val);
            } else if (key == "opens") {
                p.bitlineOpens = std::stoul(val);
            } else if (key == "vias") {
                p.missingVias = std::stoul(val);
            } else if (key == "particles") {
                p.particles = std::stoul(val);
            } else if (key == "faults") {
                p.faults = std::stoul(val) != 0;
            } else if (key == "full") {
                p.fullPipeline = std::stoul(val) != 0;
            } else if (key == "seed") {
                p.seed = std::stoull(val);
            } else {
                return R::failure(
                    common::ErrorCode::InvalidArgument,
                    "parseScenario: unknown key '" + key + "'");
            }
        } catch (const std::exception &) {
            return R::failure(common::ErrorCode::InvalidArgument,
                              "parseScenario: bad value for '" + key +
                                  "': '" + val + "'");
        }
    }
    if (tokens == 0)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "parseScenario: empty scenario line");
    return R(std::move(p));
}

// ---------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------

ScenarioParams
sampleScenario(uint64_t seed)
{
    common::Rng rng(seed, 0xF022);
    ScenarioParams p;
    p.seed = seed;

    const auto &chips = models::allChips();
    const auto ci = std::min(
        chips.size() - 1,
        static_cast<size_t>(rng.uniform(
            0.0, static_cast<double>(chips.size()))));
    p.chipId = chips[ci].id;

    p.pairs =
        2 + std::min<size_t>(
                3, static_cast<size_t>(rng.uniform(0.0, 4.0)));
    p.stackedSas = rng.uniform() < 0.25 ? 2 : 1;
    p.corner = static_cast<ProcessCorner>(std::min<size_t>(
        2, static_cast<size_t>(rng.uniform(0.0, 3.0))));

    // Defect mix; the worst case (1 short + 2 opens = 4 bitlines)
    // always fits the minimum 2 pairs, and <= 2 missing vias always
    // have free latch contacts.
    if (rng.uniform() < 0.30)
        p.bitlineShorts = 1;
    if (rng.uniform() < 0.35)
        p.bitlineOpens = rng.uniform() < 0.2 ? 2 : 1;
    if (rng.uniform() < 0.30)
        p.missingVias = rng.uniform() < 0.2 ? 2 : 1;
    if (rng.uniform() < 0.30)
        p.particles = 1;

    p.faults = rng.uniform() < 0.25;
    p.fullPipeline = rng.uniform() < 0.04;
    return p;
}

// ---------------------------------------------------------------------
// Signatures
// ---------------------------------------------------------------------

namespace
{

struct Fnv
{
    uint64_t h = 1469598103934665603ull;

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    }

    void
    f64(double v)
    {
        uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    rect(const common::Rect &r)
    {
        f64(r.x0);
        f64(r.y0);
        f64(r.x1);
        f64(r.y1);
    }
};

uint64_t
analysisSignature(const re::RegionAnalysis &a)
{
    Fnv f;
    f.u64(static_cast<uint64_t>(a.topology));
    f.u64(a.commonGateStrips);
    f.u64(a.bitlines.size());
    for (const auto &b : a.bitlines)
        f.rect(b);
    f.u64(a.devices.size());
    for (const auto &d : a.devices) {
        f.u64(static_cast<uint64_t>(d.role));
        f.rect(d.gate);
        f.f64(d.wNm);
        f.f64(d.lNm);
        f.u64(static_cast<uint64_t>(d.bitline));
        f.u64(static_cast<uint64_t>(d.couplesTo));
    }
    f.u64(a.defects.size());
    for (const auto &d : a.defects) {
        f.u64(static_cast<uint64_t>(d.kind));
        f.rect(d.where);
        f.u64(static_cast<uint64_t>(d.bitlineA));
        f.u64(static_cast<uint64_t>(d.bitlineB));
    }
    return f.h;
}

uint64_t
reportSignature(const PipelineReport &r)
{
    Fnv f;
    f.u64(analysisSignature(r.analysis));
    f.u64(r.slices);
    f.u64(r.retries);
    f.u64(r.slicesInterpolated);
    f.u64(r.slicesUnrecoverable);
    f.u64(r.faultsInjected);
    f.f64(r.qcConfidence);
    f.f64(r.maxDimErrorNm);
    f.f64(r.matchScore);
    return f.h;
}

// ---------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------

fab::DefectParams
defectParamsOf(const ScenarioParams &p)
{
    fab::DefectParams d;
    d.seed = p.seed;
    d.bitlineShorts = p.bitlineShorts;
    d.bitlineOpens = p.bitlineOpens;
    d.missingVias = p.missingVias;
    d.particles = p.particles;
    return d;
}

/**
 * Shared invariant checks on an analysis scored against the fab
 * truth.  `tol_nm` is the corner-scaled measurement tolerance.
 */
void
checkAnalysis(const re::RegionAnalysis &analysis,
              const fab::SaRegionTruth &truth,
              const SiliconDefectReport &defects,
              const ScenarioParams &p, double tol_nm, double max_err,
              std::vector<std::string> &violations)
{
    if (analysis.topology != truth.topology)
        violations.push_back("topology not recovered");
    if (analysis.bitlines.size() != truth.bitlines.size())
        violations.push_back(
            "bitlines: found " +
            std::to_string(analysis.bitlines.size()) + " of " +
            std::to_string(truth.bitlines.size()));

    if (!defects.allDetected())
        violations.push_back(
            std::to_string(defects.planted.size() - defects.matched) +
            " planted defect(s) undetected");
    if (defects.spurious > 0)
        violations.push_back(
            std::to_string(defects.spurious) +
            " spurious defect detection(s)");

    if (p.missingVias == 0 && !analysis.crossCouplingConsistent())
        violations.push_back("cross-coupling not fully traced");

    if (!std::isfinite(max_err))
        violations.push_back("non-finite dimension error");
    else if (max_err > tol_nm)
        violations.push_back(
            "dimension error " + std::to_string(max_err) +
            " nm exceeds tolerance " + std::to_string(tol_nm) +
            " nm");
    for (const auto &d : analysis.devices)
        if (!std::isfinite(d.wNm) || !std::isfinite(d.lNm)) {
            violations.push_back("non-finite device measurement");
            break;
        }
}

/// Worst mean-dimension recovery error vs the fab truth (the direct
/// tier's analogue of PipelineReport::maxDimErrorNm).
double
maxDimError(const re::RegionAnalysis &analysis,
            const fab::SaRegionTruth &truth)
{
    using models::Role;
    std::map<Role, std::pair<double, double>> sum;
    std::map<Role, size_t> n;
    for (const auto &d : truth.devices) {
        const bool latch_like = d.role == Role::Nsa ||
            d.role == Role::Psa || d.role == Role::Lsa;
        const double w =
            latch_like ? d.gate.width() : d.gate.height();
        const double l =
            latch_like ? d.gate.height() : d.gate.width();
        sum[d.role].first += w;
        sum[d.role].second += l;
        ++n[d.role];
    }
    double worst = 0.0;
    for (const auto &[role, s] : sum) {
        const auto cnt = static_cast<double>(n[role]);
        if (const auto dims = analysis.meanDims(role)) {
            worst = std::max(
                worst, std::abs(dims->w - s.first / cnt));
            worst = std::max(
                worst, std::abs(dims->l - s.second / cnt));
        }
    }
    return worst;
}

/// Direct tier: fab -> voxelize -> defects -> ideal-contrast render
/// -> RE analysis.  No microscope simulation; isolates the fab and
/// RE layers and runs in tens of milliseconds.
void
runDirectTier(const ScenarioParams &p, const models::ChipSpec &chip,
              ScenarioResult &result)
{
    const models::CornerVariation variation =
        models::cornerVariation(chip.vendor, p.corner);

    const double bl_gap = chip.blPitchNm - chip.blWidthNm;
    const double voxel =
        std::min({chip.pixelResNm, bl_gap / 2.5, 5.0});

    fab::SaRegionSpec spec =
        fab::SaRegionSpec::fromChip(chip, p.pairs);
    spec.stackedSas = p.stackedSas;
    spec.minGapNm = std::max(spec.minGapNm, 4.0 * voxel);
    spec.variation = variation;
    spec.jitterSeed = p.seed;

    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);

    fab::VoxelizeParams vox;
    vox.voxelNm = voxel;
    vox.lerSigmaNm = variation.lerSigmaNm;
    vox.lerCorrLenNm = variation.lerCorrLenNm;
    vox.lerSeed = p.seed;
    // The layout legitimately overhangs the region rect by a fraction
    // of the pitch (clipped by design); corner CD bias/jitter/drift
    // and LER stretch that a little further.  The check only needs to
    // catch runaway geometry, so the bound is generous.
    vox.outOfBoundsTolNm = 0.3 * chip.blPitchNm +
        (std::abs(variation.cdBiasFrac) +
         variation.cdDriftFracAcross +
         5.0 * variation.cdSigmaFrac) *
            chip.saHeightNm +
        8.0 * variation.lerSigmaNm + 1.0;
    auto volume = fab::voxelizeChecked(*cell, truth.region, vox);
    if (!volume.ok()) {
        result.violations.push_back("voxelizeChecked: " +
                                    volume.error().message);
        return;
    }
    image::Volume3D materials = volume.takeValue();

    SiliconDefectReport defects;
    auto planted = fab::plantDefects(materials, truth, voxel,
                                     defectParamsOf(p));
    if (!planted.ok()) {
        result.violations.push_back("plantDefects: " +
                                    planted.error().message);
        return;
    }
    for (auto &pd : planted.value())
        defects.planted.push_back({pd, false});

    // Ideal render: every voxel at its exact material contrast.
    // Voxel values are exact small enum codes; mapping them inline
    // (instead of through the out-of-line fab::voxelMaterial) keeps
    // this loop from dominating the scenario wall-clock.
    const scope::ContrastLut lut = scope::contrastLut(chip.detector);
    constexpr int kNumMaterials =
        static_cast<int>(fab::Material::NumMaterials);
    float code_lut[kNumMaterials];
    for (int m = 0; m < kNumMaterials; ++m)
        code_lut[m] = static_cast<float>(lut[static_cast<size_t>(m)]);
    image::Volume3D ideal(materials.nx(), materials.ny(),
                          materials.nz());
    common::parallelFor(
        0, materials.nz(), 4, [&](size_t z0, size_t z1) {
            for (size_t z = z0; z < z1; ++z)
                for (size_t y = 0; y < materials.ny(); ++y)
                    for (size_t x = 0; x < materials.nx(); ++x) {
                        const int m = static_cast<int>(
                            materials.at(x, y, z) + 0.5f);
                        ideal.at(x, y, z) =
                            (m < 0 || m >= kNumMaterials)
                                ? code_lut[0]
                                : code_lut[m];
                    }
        });

    re::PlanarScales scales;
    scales.xNm = voxel;
    scales.yNm = voxel;
    scales.zNm = voxel;
    const re::RegionAnalysis analysis =
        re::analyzeRegion(ideal, scales, chip.detector);

    defects.detected = analysis.defects;
    scoreSiliconDefects(defects);

    re::MeasureParams mp;
    mp.toleranceScale = variation.measureTolScale;
    // LER physically displaces the voxelized edges relative to the
    // drawn truth; with only a handful of devices per role the mean
    // keeps a few sigma of that, on top of the quantization terms.
    const double tol_nm = mp.dimensionToleranceNm(voxel, voxel) +
        4.0 * variation.lerSigmaNm;
    const double err = maxDimError(analysis, truth);
    checkAnalysis(analysis, truth, defects, p, tol_nm, err,
                  result.violations);
    result.signature = analysisSignature(analysis);
}

/// Full tier: the entire FIB/SEM pipeline through
/// core::runPipelineChecked.
void
runFullTier(const ScenarioParams &p, const models::ChipSpec &chip,
            size_t threads, ScenarioResult &result)
{
    PipelineConfig cfg;
    cfg.chipId = p.chipId;
    cfg.pairs = p.pairs;
    cfg.stackedSas = p.stackedSas;
    cfg.corner = p.corner;
    cfg.defects = defectParamsOf(p);
    cfg.seed = p.seed;
    cfg.threads = threads;
    cfg.faults.enabled = p.faults;

    auto run = runPipelineChecked(cfg);
    if (!run.ok()) {
        result.violations.push_back("pipeline: " +
                                    run.error().message);
        return;
    }
    const PipelineReport &report = run.value();

    const models::CornerVariation variation =
        models::cornerVariation(chip.vendor, p.corner);
    re::MeasureParams mp;
    mp.toleranceScale = variation.measureTolScale;
    const double bl_gap = chip.blPitchNm - chip.blWidthNm;
    const double voxel =
        std::min({chip.pixelResNm, bl_gap / 2.5, 5.0});

    // A degraded report (interpolated or unrecoverable slices) is
    // explicitly best-effort: the recovery invariants don't apply,
    // only structural sanity does.  Injected faults that slipped past
    // QC (faultsDetected < faultsInjected) corrupt slices silently;
    // gross structure must survive them, but fine-grained results
    // (defect scoring, coupling traces, dimensions) may not.
    const bool clean_slices =
        report.faultsInjected == report.faultsDetected;
    if (!report.degraded) {
        if (report.extractedTopology != report.trueTopology)
            result.violations.push_back("topology not recovered");
        if (report.bitlinesFound != report.bitlinesTrue)
            result.violations.push_back(
                "bitlines: found " +
                std::to_string(report.bitlinesFound) + " of " +
                std::to_string(report.bitlinesTrue));
    }
    if (!report.degraded && clean_slices) {
        if (!report.siliconDefects.allDetected())
            result.violations.push_back(
                std::to_string(
                    report.siliconDefects.planted.size() -
                    report.siliconDefects.matched) +
                " planted defect(s) undetected");
        if (report.siliconDefects.spurious > 0)
            result.violations.push_back(
                std::to_string(report.siliconDefects.spurious) +
                " spurious defect detection(s)");
        if (p.missingVias == 0 && !report.crossCouplingConsistent)
            result.violations.push_back(
                "cross-coupling not fully traced");
        if (std::isfinite(report.maxDimErrorNm) &&
            report.maxDimErrorNm >
                mp.dimensionToleranceNm(chip.sliceNm, voxel))
            result.violations.push_back(
                "dimension error " +
                std::to_string(report.maxDimErrorNm) +
                " nm exceeds tolerance " +
                std::to_string(
                    mp.dimensionToleranceNm(chip.sliceNm, voxel)) +
                " nm");
    } else if (p.defectTotal() == 0 && !p.faults) {
        result.violations.push_back(
            "degraded report on a fault-free run");
    }
    if (!std::isfinite(report.maxDimErrorNm) ||
        !std::isfinite(report.matchScore) ||
        !std::isfinite(report.qcConfidence))
        result.violations.push_back("non-finite report field");
    for (const auto &d : report.analysis.devices)
        if (!std::isfinite(d.wNm) || !std::isfinite(d.lNm)) {
            result.violations.push_back(
                "non-finite device measurement");
            break;
        }
    result.signature = reportSignature(report);
}

} // namespace

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

ScenarioResult
runScenario(const ScenarioParams &params, size_t threads)
{
    ScenarioResult result;
    result.params = params;

    const models::ChipSpec *chip = models::findChip(params.chipId);
    if (chip == nullptr) {
        result.violations.push_back("unknown chip '" + params.chipId +
                                    "'");
        return result;
    }
    if (params.pairs < 2) {
        result.violations.push_back(
            "scenario needs at least 2 pairs");
        return result;
    }

    try {
        if (params.fullPipeline) {
            runFullTier(params, *chip, threads, result);
        } else {
            const common::ScopedThreads scoped(threads);
            runDirectTier(params, *chip, result);
        }
    } catch (const std::exception &e) {
        result.violations.push_back(std::string("crash: ") +
                                    e.what());
    } catch (...) {
        result.violations.push_back("crash: unknown exception");
    }
    return result;
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

ScenarioParams
shrinkScenario(const ScenarioParams &failing,
               const FailPredicate &fails, size_t maxEvals)
{
    ScenarioParams best = failing;
    size_t evals = 0;
    bool progress = true;
    while (progress && evals < maxEvals) {
        progress = false;

        std::vector<ScenarioParams> candidates;
        const auto propose = [&](auto mutate) {
            ScenarioParams c = best;
            mutate(c);
            candidates.push_back(std::move(c));
        };
        if (best.faults)
            propose([](ScenarioParams &c) { c.faults = false; });
        if (best.corner != ProcessCorner::Typical)
            propose([](ScenarioParams &c) {
                c.corner = ProcessCorner::Typical;
            });
        if (best.stackedSas > 1)
            propose([](ScenarioParams &c) { c.stackedSas = 1; });
        if (best.pairs > 2) {
            propose([](ScenarioParams &c) { c.pairs = 2; });
            propose([](ScenarioParams &c) { --c.pairs; });
        }
        if (best.bitlineShorts > 0)
            propose([](ScenarioParams &c) { c.bitlineShorts = 0; });
        if (best.bitlineOpens > 0)
            propose([](ScenarioParams &c) { c.bitlineOpens = 0; });
        if (best.missingVias > 0)
            propose([](ScenarioParams &c) { c.missingVias = 0; });
        if (best.particles > 0)
            propose([](ScenarioParams &c) { c.particles = 0; });
        if (best.chipId != "B5")
            propose([](ScenarioParams &c) { c.chipId = "B5"; });
        if (best.fullPipeline)
            propose(
                [](ScenarioParams &c) { c.fullPipeline = false; });

        for (const auto &c : candidates) {
            if (evals >= maxEvals)
                break;
            ++evals;
            if (fails(c)) {
                best = c;
                progress = true;
                break; // restart from the smaller scenario
            }
        }
    }
    return best;
}

} // namespace core
} // namespace hifi
