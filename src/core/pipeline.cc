#include "core/pipeline.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "fab/voxelizer.hh"
#include "re/topology_match.hh"
#include "scope/fib.hh"

namespace hifi
{
namespace core
{

using models::Role;

std::optional<common::Error>
validateConfig(const PipelineConfig &config)
{
    using common::Error;
    using common::ErrorCode;
    if (models::findChip(config.chipId) == nullptr)
        return Error{ErrorCode::NotFound,
                     "PipelineConfig: unknown chipId '" +
                         config.chipId + "'"};
    if (config.pairs == 0)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: pairs must be > 0"};
    if (config.stackedSas == 0)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: stackedSas must be > 0"};
    if (!(config.driftProbability >= 0.0) ||
        !(config.driftProbability <= 1.0))
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: driftProbability outside "
                     "[0, 1]"};
    if (config.detectorOverride < -1 || config.detectorOverride > 1)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: detectorOverride must be "
                     "-1, 0 or 1"};
    if (config.corner < models::ProcessCorner::Slow ||
        config.corner >= models::ProcessCorner::NumCorners)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: corner out of range"};
    if (const auto err = fab::validate(config.defects))
        return err;
    // Rough feasibility of the defect mix: shorts claim two adjacent
    // bitlines and opens one, out of 2*pairs; missing vias each need
    // a distinct latch coupling contact (two per pair).
    if (2 * config.defects.bitlineShorts + config.defects.bitlineOpens >
        2 * config.pairs)
        return Error{ErrorCode::FailedPrecondition,
                     "PipelineConfig: defect mix needs more bitlines "
                     "than 'pairs' provides"};
    if (config.defects.missingVias > 2 * config.pairs)
        return Error{ErrorCode::FailedPrecondition,
                     "PipelineConfig: more missing vias than latch "
                     "coupling contacts"};
    if (const auto err = scope::validate(config.faults))
        return err;
    if (const auto err = scope::validate(config.recovery))
        return err;
    return std::nullopt;
}

/**
 * Greedy planted-vs-detected matching.  A detection matches a planted
 * defect when the kinds agree, the sites are close (a missing via is
 * reported at the orphaned gate, a few hundred nm from the erased
 * contact), and the identified bitlines are compatible.
 */
void
scoreSiliconDefects(SiliconDefectReport &rep)
{
    std::vector<char> used(rep.detected.size(), 0);
    for (auto &out : rep.planted) {
        const auto &p = out.planted;
        for (size_t i = 0; i < rep.detected.size(); ++i) {
            if (used[i])
                continue;
            const auto &d = rep.detected[i];
            if (d.kind != p.kind)
                continue;
            const common::Vec2 pc = p.footprint.center();
            const common::Vec2 dc = d.where.center();
            if (std::abs(pc.x - dc.x) > 400.0 ||
                std::abs(pc.y - dc.y) > 400.0)
                continue;
            // Bitline compatibility, when both sides identified any.
            std::vector<long> pb, db;
            for (long b : {p.bitlineA, p.bitlineB})
                if (b >= 0)
                    pb.push_back(b);
            for (long b : {d.bitlineA, d.bitlineB})
                if (b >= 0)
                    db.push_back(b);
            bool compatible = pb.empty() || db.empty();
            for (long a : pb)
                for (long b : db)
                    compatible = compatible || a == b;
            if (!compatible)
                continue;
            used[i] = 1;
            out.detected = true;
            ++rep.matched;
            break;
        }
    }
    for (char u : used)
        if (!u)
            ++rep.spurious;
}

namespace
{

/// Pipeline body; assumes the configuration already validated.
PipelineReport
runValidatedPipeline(const PipelineConfig &config)
{
    const telemetry::Span span("pipeline.run");
    const common::ScopedThreads threads(config.threads);
    const models::ChipSpec &chip = models::chip(config.chipId);

    PipelineReport report;
    report.chipId = chip.id;
    report.trueTopology = chip.topology;

    // ---- 1. Virtual fab -------------------------------------------
    // Pick a voxel small enough to resolve the bitline gaps.
    double voxel = config.voxelNm;
    if (voxel <= 0.0) {
        const double bl_gap = chip.blPitchNm - chip.blWidthNm;
        voxel = std::min({chip.pixelResNm, bl_gap / 2.5, 5.0});
    }

    const models::CornerVariation variation =
        models::cornerVariation(chip.vendor, config.corner);

    fab::SaRegionSpec spec =
        fab::SaRegionSpec::fromChip(chip, config.pairs);
    spec.stackedSas = config.stackedSas;
    spec.minGapNm = std::max(spec.minGapNm, 4.0 * voxel);
    spec.variation = variation;
    spec.jitterSeed = config.seed;

    fab::SaRegionTruth truth;
    const auto cell = fab::buildSaRegion(spec, truth);
    report.trueCommonGateStrips = truth.commonGateComponents;
    report.trueDevices = truth.devices.size();
    report.bitlinesTrue = truth.bitlines.size();

    fab::VoxelizeParams vox;
    vox.voxelNm = voxel;
    vox.lerSigmaNm = variation.lerSigmaNm;
    vox.lerCorrLenNm = variation.lerCorrLenNm;
    vox.lerSeed = config.seed;
    image::Volume3D materials =
        fab::voxelize(*cell, truth.region, vox);

    if (config.defects.any()) {
        auto planted = fab::plantDefects(materials, truth, voxel,
                                         config.defects);
        if (!planted.ok())
            throw std::invalid_argument(planted.error().message);
        for (auto &p : planted.value())
            report.siliconDefects.planted.push_back({p, false});
    }

    // ---- 2. FIB/SEM acquisition ------------------------------------
    scope::FibSemParams fib;
    fib.sem.detector = chip.detector;
    if (config.detectorOverride == 0)
        fib.sem.detector = models::Detector::Se;
    else if (config.detectorOverride == 1)
        fib.sem.detector = models::Detector::Bse;
    fib.sem.dwellUs = chip.dwellUs;
    fib.sem.seQuality = chip.seQuality;
    fib.sliceVoxels = std::max<size_t>(
        1, static_cast<size_t>(std::lround(chip.sliceNm / voxel)));
    fib.driftProbability = config.driftProbability;

    common::inform("pipeline " + chip.id + ": acquiring " +
                   std::to_string(materials.nx() / fib.sliceVoxels) +
                   " slices");
    image::SliceStack stack;
    if (config.faults.enabled) {
        // Production path: fault injection, per-slice QC, bounded
        // re-imaging, neighbour interpolation.  Counter-seeded, so
        // the whole recovery log is a pure function of the seed.
        scope::RobustAcquisition robust = scope::acquireRobust(
            materials, fib, config.faults, config.recovery,
            config.seed);
        stack = std::move(robust.stack);
        report.slicesRetried = robust.slicesRetried;
        report.retries = robust.retries;
        report.slicesInterpolated = robust.slicesInterpolated;
        report.interpolatedSlices =
            std::move(robust.interpolatedSlices);
        report.slicesUnrecoverable = robust.slicesUnrecoverable;
        report.faultsInjected = robust.faultsInjected;
        report.faultsDetected = robust.faultsDetected;
        report.qcConfidence = robust.qcConfidence;
        report.qcAudit = std::move(robust.audit);
        report.degraded = robust.slicesInterpolated > 0 ||
            robust.slicesUnrecoverable > 0;
        if (report.degraded)
            common::warn("pipeline " + chip.id + ": degraded (" +
                         std::to_string(robust.slicesInterpolated) +
                         " interpolated, " +
                         std::to_string(robust.slicesUnrecoverable) +
                         " unrecoverable slices)");
    } else {
        // Legacy fault-free path, bit-identical to the pre-robustness
        // pipeline: one sequential generator threads drift and frame
        // seeds exactly as before.
        common::Rng rng(config.seed);
        stack = scope::acquire(materials, fib, rng);
    }
    stack.sliceThicknessNm =
        static_cast<double>(fib.sliceVoxels) * voxel;
    stack.pixelResolutionNm = voxel;
    report.slices = stack.slices.size();
    report.campaign = scope::campaignCost(chip);
    scope::chargeRetries(report.campaign, report.retries);

    // ---- 3. Post-processing ----------------------------------------
    scope::PostprocessParams post;
    post.algo = config.denoise;
    post.mi.bins = 16;
    post.mi.maxShift = 6;
    const scope::PostprocessResult processed =
        scope::postprocess(stack, post);
    report.alignmentResidualPx = processed.alignmentResidualPx;
    report.alignmentBudgetMet = processed.meetsAlignmentBudget(
        stack.slices.front().height());
    if (!report.alignmentBudgetMet)
        common::warn("pipeline " + chip.id +
                     ": alignment residual exceeds the 0.77% budget");

    // ---- 4. Reverse engineering -------------------------------------
    re::PlanarScales scales;
    scales.xNm = stack.sliceThicknessNm;
    scales.yNm = voxel;
    scales.zNm = voxel;
    report.analysis =
        re::analyzeRegion(processed.volume, scales, fib.sem.detector);

    // ---- 5. Validation against the fab truth -------------------------
    report.extractedTopology = report.analysis.topology;
    report.topologyCorrect =
        report.extractedTopology == report.trueTopology;
    if (!report.topologyCorrect)
        common::warn("pipeline " + chip.id +
                     ": extracted topology disagrees with the truth");
    report.extractedCommonGateStrips =
        report.analysis.commonGateStrips;
    report.extractedDevices = report.analysis.devices.size();
    report.bitlinesFound = report.analysis.bitlines.size();
    report.crossCouplingConsistent =
        report.analysis.crossCouplingConsistent();

    const auto matches = re::matchTopology(report.analysis);
    if (!matches.empty()) {
        report.matchedTemplate = matches.front().candidate->name;
        report.matchScore = matches.front().score;
    }

    // Silicon defect scoring: planted ground truth vs RE detections.
    report.siliconDefects.detected = report.analysis.defects;
    scoreSiliconDefects(report.siliconDefects);
    if (!report.siliconDefects.allDetected())
        common::warn(
            "pipeline " + chip.id + ": " +
            std::to_string(report.siliconDefects.planted.size() -
                           report.siliconDefects.matched) +
            " planted silicon defect(s) escaped detection");

    // Per-role dimension recovery vs. the generated (clipped) truth.
    std::map<Role, std::pair<double, double>> truth_sum;
    std::map<Role, size_t> truth_n;
    for (const auto &d : truth.devices) {
        const bool latch_like =
            d.role == Role::Nsa || d.role == Role::Psa ||
            d.role == Role::Lsa;
        // Drawn gate rects encode W x L per orientation.
        const double w =
            latch_like ? d.gate.width() : d.gate.height();
        const double l =
            latch_like ? d.gate.height() : d.gate.width();
        truth_sum[d.role].first += w;
        truth_sum[d.role].second += l;
        ++truth_n[d.role];
    }

    for (const auto &[role, sums] : truth_sum) {
        RoleRecovery rec;
        const auto n = static_cast<double>(truth_n[role]);
        rec.trueW = sums.first / n;
        rec.trueL = sums.second / n;
        if (const auto dims = report.analysis.meanDims(role)) {
            rec.measuredW = dims->w;
            rec.measuredL = dims->l;
            report.maxDimErrorNm = std::max(
                {report.maxDimErrorNm, rec.errW(), rec.errL()});
        }
        report.roles[role] = rec;
    }
    return report;
}

/**
 * End an active session into the report: attach the collected spans
 * and metric deltas, and write the QC audit trail if a path was
 * configured (the trace / metrics files are written by finish()).
 */
void
finishTelemetry(telemetry::Session &session,
                const PipelineConfig &config, PipelineReport &report)
{
    report.telemetry = session.finish(config.telemetry);
    if (!config.telemetry.qcAuditPath.empty())
        telemetry::writeTextFile(config.telemetry.qcAuditPath,
                                 scope::qcAuditJson(report.qcAudit));
}

} // namespace

PipelineReport
runPipeline(const PipelineConfig &config)
{
    std::optional<telemetry::Session> session;
    if (config.telemetry.enabled)
        session.emplace();
    {
        const telemetry::Span vspan("pipeline.validate");
        if (const auto err = validateConfig(config)) {
            // Preserve the legacy exception taxonomy: unknown chip
            // ids used to surface as std::out_of_range from
            // models::chip.
            if (err->code == common::ErrorCode::NotFound)
                throw std::out_of_range(err->message);
            throw std::invalid_argument(err->message);
        }
    }
    PipelineReport report = runValidatedPipeline(config);
    if (session)
        finishTelemetry(*session, config, report);
    return report;
}

common::Result<PipelineReport>
runPipelineChecked(const PipelineConfig &config)
{
    std::optional<telemetry::Session> session;
    if (config.telemetry.enabled)
        session.emplace();
    {
        const telemetry::Span vspan("pipeline.validate");
        if (const auto err = validateConfig(config))
            return common::Result<PipelineReport>(*err);
    }
    try {
        PipelineReport report = runValidatedPipeline(config);
        if (session)
            finishTelemetry(*session, config, report);
        return common::Result<PipelineReport>(std::move(report));
    } catch (const std::exception &e) {
        return common::Result<PipelineReport>::failure(
            common::ErrorCode::Internal,
            std::string("pipeline failed: ") + e.what());
    }
}

} // namespace core
} // namespace hifi

namespace hifi
{
namespace core
{

Repeatability
repeatPipeline(const PipelineConfig &base, size_t runs)
{
    Repeatability rep;
    rep.runs = runs;
    for (size_t i = 0; i < runs; ++i) {
        PipelineConfig config = base;
        config.seed = base.seed + i;
        const auto report = runPipeline(config);
        if (report.topologyCorrect)
            ++rep.topologyCorrect;
        if (report.crossCouplingConsistent)
            ++rep.crossCouplingTraced;
        for (const auto &[role, rr] : report.roles) {
            if (rr.measuredW <= 0.0)
                continue;
            auto &[w_acc, l_acc] = rep.dims[role];
            w_acc.add(rr.measuredW);
            l_acc.add(rr.measuredL);
        }
    }
    return rep;
}

} // namespace core
} // namespace hifi
