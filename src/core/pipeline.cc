#include "core/pipeline.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/parallel.hh"
#include "core/stages.hh"
#include "fab/voxelizer.hh"
#include "scope/fib.hh"

namespace hifi
{
namespace core
{

std::optional<common::Error>
validateConfig(const PipelineConfig &config)
{
    using common::Error;
    using common::ErrorCode;
    if (models::findChip(config.chipId) == nullptr)
        return Error{ErrorCode::NotFound,
                     "PipelineConfig: unknown chipId '" +
                         config.chipId + "'"};
    if (config.pairs == 0)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: pairs must be > 0"};
    if (config.stackedSas == 0)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: stackedSas must be > 0"};
    if (!(config.driftProbability >= 0.0) ||
        !(config.driftProbability <= 1.0))
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: driftProbability outside "
                     "[0, 1]"};
    if (config.detectorOverride < -1 || config.detectorOverride > 1)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: detectorOverride must be "
                     "-1, 0 or 1"};
    if (config.corner < models::ProcessCorner::Slow ||
        config.corner >= models::ProcessCorner::NumCorners)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: corner out of range"};
    if (const auto err = fab::validate(config.defects))
        return err;
    // Rough feasibility of the defect mix: shorts claim two adjacent
    // bitlines and opens one, out of 2*pairs; missing vias each need
    // a distinct latch coupling contact (two per pair).
    if (2 * config.defects.bitlineShorts + config.defects.bitlineOpens >
        2 * config.pairs)
        return Error{ErrorCode::FailedPrecondition,
                     "PipelineConfig: defect mix needs more bitlines "
                     "than 'pairs' provides"};
    if (config.defects.missingVias > 2 * config.pairs)
        return Error{ErrorCode::FailedPrecondition,
                     "PipelineConfig: more missing vias than latch "
                     "coupling contacts"};
    if (const auto err = scope::validate(config.faults))
        return err;
    if (const auto err = scope::validate(config.recovery))
        return err;
    if (config.memoryBudget != 0 &&
        config.memoryBudget < kMinMemoryBudgetBytes)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: memoryBudget below the " +
                         std::to_string(kMinMemoryBudgetBytes >> 20) +
                         " MiB floor (one tile layer plus the "
                         "streaming window)"};
    if (!config.spillDir.empty() && config.memoryBudget == 0)
        return Error{ErrorCode::InvalidArgument,
                     "PipelineConfig: spillDir set but memoryBudget "
                     "is 0 (in-RAM path spills nothing)"};
    return std::nullopt;
}

/**
 * Greedy planted-vs-detected matching.  A detection matches a planted
 * defect when the kinds agree, the sites are close (a missing via is
 * reported at the orphaned gate, a few hundred nm from the erased
 * contact), and the identified bitlines are compatible.
 */
void
scoreSiliconDefects(SiliconDefectReport &rep)
{
    std::vector<char> used(rep.detected.size(), 0);
    for (auto &out : rep.planted) {
        const auto &p = out.planted;
        for (size_t i = 0; i < rep.detected.size(); ++i) {
            if (used[i])
                continue;
            const auto &d = rep.detected[i];
            if (d.kind != p.kind)
                continue;
            const common::Vec2 pc = p.footprint.center();
            const common::Vec2 dc = d.where.center();
            if (std::abs(pc.x - dc.x) > 400.0 ||
                std::abs(pc.y - dc.y) > 400.0)
                continue;
            // Bitline compatibility, when both sides identified any.
            std::vector<long> pb, db;
            for (long b : {p.bitlineA, p.bitlineB})
                if (b >= 0)
                    pb.push_back(b);
            for (long b : {d.bitlineA, d.bitlineB})
                if (b >= 0)
                    db.push_back(b);
            bool compatible = pb.empty() || db.empty();
            for (long a : pb)
                for (long b : db)
                    compatible = compatible || a == b;
            if (!compatible)
                continue;
            used[i] = 1;
            out.detected = true;
            ++rep.matched;
            break;
        }
    }
    for (char u : used)
        if (!u)
            ++rep.spurious;
}

namespace
{

/**
 * Pipeline body; assumes the configuration already validated.  The
 * stage bodies live in core/stages.cc — this runner drives them
 * back-to-back through one span and one thread-count override, so an
 * uninterrupted run produces the exact trace shape (and, stage by
 * stage, the exact report) the monolithic implementation did.  The
 * campaign service drives the same bodies one runStage call at a
 * time, checkpointing between them.
 */
common::Result<PipelineReport>
runValidatedPipeline(const PipelineConfig &config)
{
    const telemetry::Span span("pipeline.run");
    const common::ScopedThreads threads(config.threads);

    StagedState state;
    const models::ChipSpec &chip = models::chip(config.chipId);
    state.report.chipId = chip.id;
    state.report.trueTopology = chip.topology;
    while (state.next != Stage::Done)
        if (const auto err = detail::runStageUnguarded(config, state))
            return common::Result<PipelineReport>(*err);
    return common::Result<PipelineReport>(std::move(state.report));
}

/// Map a typed error onto the exception taxonomy the throwing entry
/// point has always used: unknown ids surface as std::out_of_range,
/// bad parameters as std::invalid_argument.
[[noreturn]] void
throwLegacy(const common::Error &err)
{
    if (err.code == common::ErrorCode::NotFound)
        throw std::out_of_range(err.message);
    if (err.code == common::ErrorCode::InvalidArgument ||
        err.code == common::ErrorCode::FailedPrecondition)
        throw std::invalid_argument(err.message);
    throw std::runtime_error(err.message);
}

/**
 * End an active session into the report: attach the collected spans
 * and metric deltas, and write the QC audit trail if a path was
 * configured (the trace / metrics files are written by finish()).
 */
void
finishTelemetry(telemetry::Session &session,
                const PipelineConfig &config, PipelineReport &report)
{
    report.telemetry = session.finish(config.telemetry);
    if (!config.telemetry.qcAuditPath.empty())
        telemetry::writeTextFile(config.telemetry.qcAuditPath,
                                 scope::qcAuditJson(report.qcAudit));
}

} // namespace

PipelineReport
runPipeline(const PipelineConfig &config)
{
    // Bind the session to this thread (and, via the pool, to every
    // fan-out it spawns) so concurrent runs attribute their spans
    // and metric deltas to their own sessions.
    std::optional<telemetry::Session> session;
    std::optional<telemetry::SessionBind> bind;
    if (config.telemetry.enabled) {
        session.emplace();
        bind.emplace(*session);
    }
    {
        const telemetry::Span vspan("pipeline.validate");
        if (const auto err = validateConfig(config))
            throwLegacy(*err);
    }
    auto result = runValidatedPipeline(config);
    if (!result.ok())
        throwLegacy(result.error());
    PipelineReport report = result.takeValue();
    if (session)
        finishTelemetry(*session, config, report);
    return report;
}

common::Result<PipelineReport>
runPipelineChecked(const PipelineConfig &config)
{
    std::optional<telemetry::Session> session;
    std::optional<telemetry::SessionBind> bind;
    if (config.telemetry.enabled) {
        session.emplace();
        bind.emplace(*session);
    }
    {
        const telemetry::Span vspan("pipeline.validate");
        if (const auto err = validateConfig(config))
            return common::Result<PipelineReport>(*err);
    }
    try {
        auto result = runValidatedPipeline(config);
        if (!result.ok())
            return result;
        PipelineReport report = result.takeValue();
        if (session)
            finishTelemetry(*session, config, report);
        return common::Result<PipelineReport>(std::move(report));
    } catch (const std::exception &e) {
        return common::Result<PipelineReport>::failure(
            common::ErrorCode::Internal,
            std::string("pipeline failed: ") + e.what());
    }
}

} // namespace core
} // namespace hifi

namespace hifi
{
namespace core
{

Repeatability
repeatPipeline(const PipelineConfig &base, size_t runs)
{
    Repeatability rep;
    rep.runs = runs;
    for (size_t i = 0; i < runs; ++i) {
        PipelineConfig config = base;
        config.seed = base.seed + i;
        const auto report = runPipeline(config);
        if (report.topologyCorrect)
            ++rep.topologyCorrect;
        if (report.crossCouplingConsistent)
            ++rep.crossCouplingTraced;
        for (const auto &[role, rr] : report.roles) {
            if (rr.measuredW <= 0.0)
                continue;
            auto &[w_acc, l_acc] = rep.dims[role];
            w_acc.add(rr.measuredW);
            l_acc.add(rr.measuredL);
        }
    }
    return rep;
}

} // namespace core
} // namespace hifi
