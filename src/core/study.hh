/**
 * @file
 * The full HiFi-DRAM study in one call: for each configured chip, run
 * the blind ROI search, the acquisition-cost model, and the
 * end-to-end reverse-engineering pipeline; then the measurement
 * campaign, the public-model accuracy analysis, the 13-paper audit,
 * and the recommendations — rendered as one markdown report (the
 * closest artifact to regenerating the paper itself).
 */

#ifndef HIFI_CORE_STUDY_HH
#define HIFI_CORE_STUDY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hifi
{
namespace core
{

/** Study configuration. */
struct StudyConfig
{
    uint64_t seed = 2024;

    /// SA pairs per generated region.
    size_t pairs = 3;

    /// Chip ids to study; empty = all six.
    std::vector<std::string> chips;
};

/** Study outcome. */
struct StudyResult
{
    std::string markdown;

    bool allTopologiesCorrect = true;
    bool allCrossCouplingsTraced = true;
    size_t chipsStudied = 0;
};

/// Run the study and render the report.
StudyResult runFullStudy(const StudyConfig &config = {});

} // namespace core
} // namespace hifi

#endif // HIFI_CORE_STUDY_HH
