/**
 * @file
 * Intensity segmentation and connected components (Section V-A step i:
 * "determine color intensities that correspond to gates, wires and
 * vias").
 */

#ifndef HIFI_RE_SEGMENTATION_HH
#define HIFI_RE_SEGMENTATION_HH

#include <vector>

#include "fab/materials.hh"
#include "image/image2d.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace re
{

/**
 * Binary mask of the pixels whose intensity classifies (nearest
 * contrast level for the detector) as the given material.
 *
 * When `binary_vs_oxide` is set the decision is a per-layer threshold
 * between the target material and the oxide background, modelling the
 * analyst's per-layer intensity calibration (Section V-A step i).
 * This matters under BSE, where active silicon and polysilicon have
 * similar atomic numbers: within a known layer slab the only question
 * is material-vs-background.
 */
image::Image2D materialMask(const image::Image2D &intensity,
                            fab::Material material,
                            models::Detector detector,
                            bool binary_vs_oxide = true);

/**
 * Otsu's automatic threshold on an intensity image: maximizes the
 * between-class variance of the two-class split.  Lets the analysis
 * calibrate per-layer thresholds from the data itself instead of a
 * known contrast table (the analyst's real situation).
 */
float otsuThreshold(const image::Image2D &intensity,
                    size_t bins = 64);

/**
 * Morphological opening (erosion then dilation) along the Y axis
 * only, removing noise bridges between features stacked at the
 * bitline pitch.  X (the FIB slicing axis) is left untouched: at
 * 20 nm slices the common-gate strips are only ~2 slices long and
 * isotropic erosion would destroy them.
 */
image::Image2D morphologicalOpen(const image::Image2D &mask,
                                 size_t radius = 1);

/** A connected component of a binary mask. */
struct Component
{
    // Pixel-space bounding box [x0, x1) x [y0, y1).
    size_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    size_t pixels = 0;

    size_t width() const { return x1 - x0; }
    size_t height() const { return y1 - y0; }
    double centerX() const { return 0.5 * double(x0 + x1); }
    double centerY() const { return 0.5 * double(y0 + y1); }
};

/**
 * 4-connected components of a mask (pixels > 0.5), ignoring
 * components smaller than `min_pixels`.
 */
std::vector<Component> connectedComponents(const image::Image2D &mask,
                                           size_t min_pixels = 4);

/**
 * Sub-pixel run measurement: length (in pixels) of the bright run of
 * `mask` passing through (cx, cy), along X (`along_x`) or Y, with the
 * run edges refined on the `intensity` image by half-maximum
 * interpolation.  Returns 0 when (cx, cy) is not inside a run.
 */
double measureRun(const image::Image2D &intensity,
                  const image::Image2D &mask, size_t cx, size_t cy,
                  bool along_x);

} // namespace re
} // namespace hifi

#endif // HIFI_RE_SEGMENTATION_HH
