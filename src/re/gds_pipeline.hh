/**
 * @file
 * Analyze a layout straight from a GDSII file: read, voxelize, render
 * a clean image volume, and run the reverse-engineering analysis.
 * This is how a downstream user consumes the paper's open-sourced
 * layouts without any microscope at all.
 */

#ifndef HIFI_RE_GDS_PIPELINE_HH
#define HIFI_RE_GDS_PIPELINE_HH

#include <string>

#include "re/analyze.hh"

namespace hifi
{
namespace re
{

/**
 * Read a GDSII file and analyze it at the given voxel pitch under a
 * noise-free SE rendering.
 */
RegionAnalysis analyzeGdsFile(const std::string &path,
                              double voxel_nm = 5.0);

} // namespace re
} // namespace hifi

#endif // HIFI_RE_GDS_PIPELINE_HH
