/**
 * @file
 * MAT-region analysis (Fig. 7a): from a reconstructed volume of a
 * memory array, identify the bitlines, the buried wordlines, and the
 * storage capacitors - including the honeycomb packing the paper
 * observes on C5 ("arranged in a honeycomb structure and placed
 * above the bitlines").
 */

#ifndef HIFI_RE_MAT_ANALYZE_HH
#define HIFI_RE_MAT_ANALYZE_HH

#include "image/volume3d.hh"
#include "re/analyze.hh"

namespace hifi
{
namespace re
{

/** What the MAT analysis recovers. */
struct MatAnalysis
{
    size_t bitlines = 0;   ///< M1 lines spanning the region in X
    size_t wordlines = 0;  ///< gate strips spanning the region in Y
    size_t capacitors = 0; ///< capacitor-layer pillars

    /// Mean bitline pitch (nm).
    double blPitchNm = 0.0;

    /// Honeycomb: odd capacitor columns offset by half a pitch.
    bool honeycomb = false;

    /// Measured row offset between adjacent capacitor columns (nm).
    double rowOffsetNm = 0.0;
};

/**
 * Analyze a reconstructed MAT volume (from fab::buildMatSlice through
 * the imaging chain, or rendered clean).
 */
MatAnalysis analyzeMatRegion(const image::Volume3D &recon,
                             const PlanarScales &scales,
                             models::Detector detector);

} // namespace re
} // namespace hifi

#endif // HIFI_RE_MAT_ANALYZE_HH
