#include "re/analyze.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/telemetry.hh"
#include "layout/layer.hh"
#include "re/segmentation.hh"

namespace hifi
{
namespace re
{

using models::Role;
using models::Topology;

size_t
RegionAnalysis::countRole(Role role) const
{
    size_t n = 0;
    for (const auto &d : devices)
        if (d.role == role)
            ++n;
    return n;
}

std::optional<models::Dims>
RegionAnalysis::meanDims(Role role) const
{
    double w = 0.0, l = 0.0;
    size_t n = 0;
    for (const auto &d : devices) {
        if (d.role == role && d.wNm > 0.0 && d.lNm > 0.0) {
            w += d.wNm;
            l += d.lNm;
            ++n;
        }
    }
    if (n == 0)
        return std::nullopt;
    return models::Dims{w / static_cast<double>(n),
                        l / static_cast<double>(n)};
}

bool
RegionAnalysis::crossCouplingConsistent() const
{
    bool any = false;
    for (const auto &d : devices) {
        if (d.role != Role::Nsa && d.role != Role::Psa)
            continue;
        if (d.couplesTo < 0 || d.bitline < 0)
            return false;
        if (d.couplesTo == d.bitline)
            return false;
        // The partner device of the same role must mirror us.
        bool mirrored = false;
        for (const auto &o : devices) {
            if (&o != &d && o.role == d.role &&
                o.bitline == d.couplesTo && o.couplesTo == d.bitline) {
                mirrored = true;
                break;
            }
        }
        if (!mirrored)
            return false;
        any = true;
    }
    return any;
}

namespace
{

struct Slab
{
    image::Image2D intensity;
    image::Image2D mask;
    std::vector<Component> comps;
};

Slab
makeSlab(const image::Volume3D &vol, layout::Layer layer,
         fab::Material material, models::Detector detector,
         const PlanarScales &scales, size_t min_pixels)
{
    const telemetry::Span span("re.segmentation");
    const layout::LayerZ z = layout::layerZ(layer);
    const double shrink = 0.2 * (z.z1 - z.z0);
    auto z0 = static_cast<size_t>((z.z0 + shrink) / scales.zNm);
    auto z1 = static_cast<size_t>(
        std::ceil((z.z1 - shrink) / scales.zNm));
    z0 = std::min(z0, vol.nz() - 1);
    z1 = std::max(z0 + 1, std::min(z1, vol.nz()));

    Slab slab;
    slab.intensity = vol.planarSlab(z0, z1);
    slab.mask = morphologicalOpen(
        materialMask(slab.intensity, material, detector));
    slab.comps = connectedComponents(slab.mask, min_pixels);
    return slab;
}

common::Rect
toNm(const Component &c, const PlanarScales &s)
{
    return common::Rect(static_cast<double>(c.x0) * s.xNm,
                        static_cast<double>(c.y0) * s.yNm,
                        static_cast<double>(c.x1) * s.xNm,
                        static_cast<double>(c.y1) * s.yNm);
}

} // namespace

RegionAnalysis
analyzeRegion(const image::Volume3D &recon, const PlanarScales &scales,
              models::Detector detector)
{
    const telemetry::Span span("re.analyze");
    if (recon.empty())
        throw std::invalid_argument("analyzeRegion: empty volume");

    using fab::Material;
    using layout::Layer;

    // (i) Layer slabs and material masks.
    const Slab active = makeSlab(recon, Layer::Active,
                                 Material::Silicon, detector, scales, 4);
    const Slab gate = makeSlab(recon, Layer::Gate,
                               Material::Polysilicon, detector, scales,
                               4);
    const Slab contact = makeSlab(recon, Layer::Contact,
                                  Material::Tungsten, detector, scales,
                                  2);
    const Slab metal = makeSlab(recon, Layer::Metal1, Material::Copper,
                                detector, scales, 4);

    const double region_w =
        static_cast<double>(recon.nx()) * scales.xNm;
    const double region_h =
        static_cast<double>(recon.ny()) * scales.yNm;

    RegionAnalysis out;

    // (ii) Bitline anchors: M1 components spanning the region in X.
    std::vector<common::Rect> bitlines;
    for (const auto &c : metal.comps) {
        const common::Rect r = toNm(c, scales);
        if (r.width() >= 0.85 * region_w)
            bitlines.push_back(r);
    }
    std::sort(bitlines.begin(), bitlines.end(),
              [](const common::Rect &a, const common::Rect &b) {
                  return a.y0 < b.y0;
              });
    out.bitlines = bitlines;

    // Nearest bitline by centre distance, within one pitch.
    double pitch_nm = region_h;
    for (size_t i = 0; i + 1 < bitlines.size(); ++i) {
        pitch_nm = std::min(pitch_nm, bitlines[i + 1].center().y -
                                          bitlines[i].center().y);
    }
    auto bitline_at = [&, pitch_nm](double y_nm) -> long {
        long best = -1;
        double best_d = pitch_nm;
        for (size_t i = 0; i < bitlines.size(); ++i) {
            const double d = std::abs(y_nm - bitlines[i].center().y);
            if (d < best_d) {
                best_d = d;
                best = static_cast<long>(i);
            }
        }
        return best;
    };

    // (iv) Gate classes: common-gate strips vs small gates.
    std::vector<Component> strips, small_gates;
    for (const auto &c : gate.comps) {
        const common::Rect r = toNm(c, scales);
        if (r.height() >= 0.8 * region_h)
            strips.push_back(c);
        else
            small_gates.push_back(c);
    }
    std::sort(strips.begin(), strips.end(),
              [](const Component &a, const Component &b) {
                  return a.x0 < b.x0;
              });
    out.commonGateStrips = strips.size();

    // (vii) Topology: three independent strips = OCSA; one bridged
    // component (containing the precharge and equalizer bars) =
    // classic.
    out.topology = strips.size() >= 3 ? Topology::Ocsa
                                      : Topology::Classic;

    // Strip bars: x-runs of the gate mask at mid height (the classic
    // PEQ bridge only exists at the region edge).
    struct Bar
    {
        size_t x0, x1; // pixel bounds
    };
    std::vector<Bar> bars;
    const size_t mid_y = recon.ny() / 2;
    for (const auto &s : strips) {
        bool in_run = false;
        size_t run_start = 0;
        for (size_t x = s.x0; x <= s.x1 && x < gate.mask.width();
             ++x) {
            const bool on =
                x < s.x1 && gate.mask.at(x, mid_y) > 0.5f;
            if (on && !in_run) {
                in_run = true;
                run_start = x;
            } else if (!on && in_run) {
                in_run = false;
                bars.push_back({run_start, x});
            }
        }
    }
    std::sort(bars.begin(), bars.end(),
              [](const Bar &a, const Bar &b) { return a.x0 < b.x0; });

    // Role order along X (Section V-C: column first, then for OCSA
    // the ISO and OC strips, the latch, and the precharge).  With two
    // stacked SAs the layout is mirrored, so bars in the right half
    // carry the template in reverse.
    std::vector<Role> bar_roles;
    if (out.topology == Topology::Ocsa)
        bar_roles = {Role::Iso, Role::Oc, Role::Precharge};
    else
        bar_roles = {Role::Precharge, Role::Equalizer};

    // A mirrored (two-stacked-SA) region has its bars in symmetric
    // pairs: bar i and bar n-1-i reflect about the region centre.
    const double nx_px = static_cast<double>(recon.nx());
    auto bar_center = [](const Bar &b) {
        return 0.5 * static_cast<double>(b.x0 + b.x1);
    };
    bool mirrored = bars.size() >= 2 && bars.size() % 2 == 0;
    if (mirrored) {
        for (size_t i = 0; i < bars.size() / 2; ++i) {
            const double sum = bar_center(bars[i]) +
                bar_center(bars[bars.size() - 1 - i]);
            if (std::abs(sum - nx_px) > 0.1 * nx_px) {
                mirrored = false;
                break;
            }
        }
    }

    auto role_of_bar = [&](size_t bi) {
        size_t idx = bi;
        if (mirrored && bi >= bars.size() / 2)
            idx = bars.size() - 1 - bi; // reversed in the mirror half
        return idx < bar_roles.size() ? bar_roles[idx]
                                      : Role::Precharge;
    };

    // Strip devices: active segments under each bar.
    for (size_t bi = 0; bi < bars.size(); ++bi) {
        const Role role = role_of_bar(bi);
        const auto bar_cx =
            static_cast<size_t>((bars[bi].x0 + bars[bi].x1) / 2);
        for (const auto &a : active.comps) {
            if (bar_cx < a.x0 || bar_cx >= a.x1)
                continue;
            const auto cy = static_cast<size_t>(a.centerY());
            if (active.mask.at(bar_cx, cy) <= 0.5f)
                continue;
            ExtractedDevice dev;
            dev.role = role;
            dev.gate = toNm(a, scales);
            dev.wNm = measureRun(active.intensity, active.mask,
                                 bar_cx, cy, false) *
                scales.yNm;
            dev.lNm = measureRun(gate.intensity, gate.mask, bar_cx,
                                 cy, true) *
                scales.xNm;
            dev.bitline = bitline_at(a.centerY() * scales.yNm);
            out.devices.push_back(dev);
        }
    }

    // (iii)/(iv) Small gates grouped per active region.
    struct GateOnActive
    {
        const Component *gate;
        const Component *active;
    };
    std::vector<std::vector<const Component *>> gates_per_active(
        active.comps.size());
    for (const auto &g : small_gates) {
        for (size_t ai = 0; ai < active.comps.size(); ++ai) {
            const auto &a = active.comps[ai];
            if (g.centerX() >= a.x0 && g.centerX() < a.x1 &&
                g.centerY() >= a.y0 && g.centerY() < a.y1) {
                gates_per_active[ai].push_back(&g);
                break;
            }
        }
    }

    // (vi) Latch pairs: two gates on one active.  Measure W along X
    // at the gate's body centre row and L along Y at the body centre
    // column; trace the cross-coupling through contacts.
    std::vector<ExtractedDevice> latch, singles;
    for (size_t ai = 0; ai < active.comps.size(); ++ai) {
        const auto &gats = gates_per_active[ai];
        const auto &act = active.comps[ai];
        if (gats.size() == 2) {
            for (const auto *g : gats) {
                // Gate body: the intersection with the active.
                const size_t bx0 = std::max(g->x0, act.x0);
                const size_t bx1 = std::min(g->x1, act.x1);
                const size_t by0 = std::max(g->y0, act.y0);
                const size_t by1 = std::min(g->y1, act.y1);
                const size_t cx = (bx0 + bx1) / 2;
                const size_t cy = (by0 + by1) / 2;

                ExtractedDevice dev;
                dev.role = Role::Nsa; // refined below
                dev.gate = toNm(*g, scales);
                dev.wNm = measureRun(gate.intensity, gate.mask, cx,
                                     cy, true) *
                    scales.xNm;
                dev.lNm = measureRun(gate.intensity, gate.mask, cx,
                                     cy, false) *
                    scales.yNm;

                // Contacts overlapping the gate component trace the
                // poly tab to the partner bitline.
                for (const auto &ct : contact.comps) {
                    const bool overlaps = ct.centerX() >= g->x0 &&
                        ct.centerX() < g->x1 &&
                        ct.centerY() >= g->y0 && ct.centerY() < g->y1;
                    if (!overlaps)
                        continue;
                    const long bl =
                        bitline_at(ct.centerY() * scales.yNm);
                    if (bl >= 0)
                        dev.couplesTo = bl;
                }
                latch.push_back(dev);
            }
        } else if (gats.size() == 1) {
            const auto *g = gats.front();
            ExtractedDevice dev;
            dev.role = Role::Column; // refined below
            dev.gate = toNm(*g, scales);
            dev.bitline =
                bitline_at(g->centerY() * scales.yNm);
            singles.push_back(dev);
        }
    }

    // Latch devices within one active serve the two bitlines of the
    // pair: each side's own bitline is the partner's coupling target.
    for (size_t i = 0; i + 1 < latch.size(); i += 2) {
        latch[i].bitline = latch[i + 1].couplesTo;
        latch[i + 1].bitline = latch[i].couplesTo;
    }

    // (viii) nSA vs pSA: split the latch devices by measured width
    // (1-D two-means); the wider cluster is the NMOS latch.
    if (!latch.empty()) {
        std::vector<double> widths;
        for (const auto &d : latch)
            widths.push_back(d.wNm);
        const auto [mn, mx] =
            std::minmax_element(widths.begin(), widths.end());
        double lo = *mn, hi = *mx;
        if (hi - lo > 0.12 * hi) {
            // Two-means on widths.
            for (int it = 0; it < 16; ++it) {
                double slo = 0.0, shi = 0.0;
                size_t nlo = 0, nhi = 0;
                for (double w : widths) {
                    if (std::abs(w - lo) < std::abs(w - hi)) {
                        slo += w;
                        ++nlo;
                    } else {
                        shi += w;
                        ++nhi;
                    }
                }
                if (nlo)
                    lo = slo / static_cast<double>(nlo);
                if (nhi)
                    hi = shi / static_cast<double>(nhi);
            }
            for (auto &d : latch) {
                d.role = std::abs(d.wNm - hi) <= std::abs(d.wNm - lo)
                             ? Role::Nsa
                             : Role::Psa;
            }
        }
        for (auto &d : latch)
            out.devices.push_back(d);
    }

    // (v) Column transistors are the multiplexers nearest the MATs:
    // before the first strip, and with a mirrored second SA also
    // after the last strip.  Everything else is the LSA datapath.
    double first_strip_x = region_w, last_strip_x = 0.0;
    for (const auto &bar : bars) {
        first_strip_x = std::min(
            first_strip_x, static_cast<double>(bar.x0) * scales.xNm);
        last_strip_x = std::max(
            last_strip_x, static_cast<double>(bar.x1) * scales.xNm);
    }
    double latch_min_x = region_w;
    for (const auto &d : latch)
        latch_min_x = std::min(latch_min_x, d.gate.x0);
    // Classic single-SA regions have their strips after the latch;
    // fall back to the latch boundary there.
    const double left_limit = std::min(first_strip_x, latch_min_x);
    for (auto &d : singles) {
        const double cx = d.gate.center().x;
        if (cx < left_limit || (mirrored && cx > last_strip_x)) {
            d.role = Role::Column;
            // W along Y, L along X (series device in the bitline).
            const auto px = static_cast<size_t>(
                d.gate.center().x / scales.xNm);
            const auto py = static_cast<size_t>(
                d.gate.center().y / scales.yNm);
            d.wNm = measureRun(gate.intensity, gate.mask, px, py,
                               false) *
                scales.yNm;
            d.lNm = measureRun(gate.intensity, gate.mask, px, py,
                               true) *
                scales.xNm;
        } else {
            d.role = Role::Lsa;
            const auto px = static_cast<size_t>(
                d.gate.center().x / scales.xNm);
            const auto py = static_cast<size_t>(
                d.gate.center().y / scales.yNm);
            d.wNm = measureRun(gate.intensity, gate.mask, px, py,
                               true) *
                scales.xNm;
            d.lNm = measureRun(gate.intensity, gate.mask, px, py,
                               false) *
                scales.yNm;
        }
        out.devices.push_back(d);
    }

    return out;
}

} // namespace re
} // namespace hifi
