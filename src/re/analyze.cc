#include "re/analyze.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/telemetry.hh"
#include "layout/layer.hh"
#include "re/segmentation.hh"

namespace hifi
{
namespace re
{

using models::Role;
using models::Topology;

size_t
RegionAnalysis::countRole(Role role) const
{
    size_t n = 0;
    for (const auto &d : devices)
        if (d.role == role)
            ++n;
    return n;
}

std::optional<models::Dims>
RegionAnalysis::meanDims(Role role) const
{
    double w = 0.0, l = 0.0;
    size_t n = 0;
    for (const auto &d : devices) {
        if (d.role == role && d.wNm > 0.0 && d.lNm > 0.0) {
            w += d.wNm;
            l += d.lNm;
            ++n;
        }
    }
    if (n == 0)
        return std::nullopt;
    return models::Dims{w / static_cast<double>(n),
                        l / static_cast<double>(n)};
}

bool
RegionAnalysis::crossCouplingConsistent() const
{
    bool any = false;
    for (const auto &d : devices) {
        if (d.role != Role::Nsa && d.role != Role::Psa)
            continue;
        if (d.couplesTo < 0 || d.bitline < 0)
            return false;
        if (d.couplesTo == d.bitline)
            return false;
        // The partner device of the same role must mirror us.
        bool mirrored = false;
        for (const auto &o : devices) {
            if (&o != &d && o.role == d.role &&
                o.bitline == d.couplesTo && o.couplesTo == d.bitline) {
                mirrored = true;
                break;
            }
        }
        if (!mirrored)
            return false;
        any = true;
    }
    return any;
}

namespace
{

struct Slab
{
    image::Image2D intensity;
    image::Image2D mask;
    std::vector<Component> comps;
};

Slab
makeSlab(const image::Volume3D &vol, layout::Layer layer,
         fab::Material material, models::Detector detector,
         const PlanarScales &scales, size_t min_pixels)
{
    const telemetry::Span span("re.segmentation");
    const layout::LayerZ z = layout::layerZ(layer);
    const double shrink = 0.2 * (z.z1 - z.z0);
    auto z0 = static_cast<size_t>((z.z0 + shrink) / scales.zNm);
    auto z1 = static_cast<size_t>(
        std::ceil((z.z1 - shrink) / scales.zNm));
    z0 = std::min(z0, vol.nz() - 1);
    z1 = std::max(z0 + 1, std::min(z1, vol.nz()));

    Slab slab;
    slab.intensity = vol.planarSlab(z0, z1);
    slab.mask = morphologicalOpen(
        materialMask(slab.intensity, material, detector));
    slab.comps = connectedComponents(slab.mask, min_pixels);
    return slab;
}

common::Rect
toNm(const Component &c, const PlanarScales &s)
{
    return common::Rect(static_cast<double>(c.x0) * s.xNm,
                        static_cast<double>(c.y0) * s.yNm,
                        static_cast<double>(c.x1) * s.xNm,
                        static_cast<double>(c.y1) * s.yNm);
}

/**
 * Vertical mask run at (px, py), robust to degenerate columns.  A
 * feature whose drawn edge straddles a FIB slice boundary leaves a
 * partially-filled slice whose diluted intensity fragments the mask,
 * collapsing the run at that column far below the feature height.
 * When the centre-column run comes out shorter than 60% of the
 * component's extent, re-measure across the component's columns and
 * take the longest run instead.  Healthy features measure identically
 * (the guard never fires), so the typical-corner path is unchanged.
 */
double
robustVerticalRun(const image::Image2D &intensity,
                  const image::Image2D &mask, size_t x0, size_t x1,
                  size_t px, size_t py, size_t extent_rows)
{
    double run = measureRun(intensity, mask, px, py, false);
    if (run >= 0.6 * static_cast<double>(extent_rows))
        return run;
    for (size_t x = x0; x <= x1 && x < mask.width(); ++x)
        run = std::max(run, measureRun(intensity, mask, x, py, false));
    return run;
}

} // namespace

RegionAnalysis
analyzeRegion(const image::Volume3D &recon, const PlanarScales &scales,
              models::Detector detector)
{
    const telemetry::Span span("re.analyze");
    if (recon.empty())
        throw std::invalid_argument("analyzeRegion: empty volume");

    using fab::Material;
    using layout::Layer;

    // (i) Layer slabs and material masks.
    const Slab active = makeSlab(recon, Layer::Active,
                                 Material::Silicon, detector, scales, 4);
    const Slab gate = makeSlab(recon, Layer::Gate,
                               Material::Polysilicon, detector, scales,
                               4);
    const Slab contact = makeSlab(recon, Layer::Contact,
                                  Material::Tungsten, detector, scales,
                                  2);
    const Slab metal = makeSlab(recon, Layer::Metal1, Material::Copper,
                                detector, scales, 4);

    const double region_w =
        static_cast<double>(recon.nx()) * scales.xNm;
    const double region_h =
        static_cast<double>(recon.ny()) * scales.yNm;

    RegionAnalysis out;

    // (ii) Bitline anchors: M1 components spanning the region in X.
    // Components that deviate from the expected geometry are silicon
    // defect candidates: a double-height full-span component is two
    // bitlines merged by a short, and collinear partial components
    // that reunite to a full span are one bitline broken by an open.
    std::vector<common::Rect> full_span, partial;
    for (const auto &c : metal.comps) {
        const common::Rect r = toNm(c, scales);
        if (r.width() >= 0.85 * region_w)
            full_span.push_back(r);
        else if (r.width() >= 0.05 * region_w)
            partial.push_back(r);
    }
    std::vector<double> heights;
    for (const auto &r : full_span)
        heights.push_back(r.height());
    for (const auto &r : partial)
        heights.push_back(r.height());
    double med_h = 0.0;
    if (!heights.empty()) {
        std::sort(heights.begin(), heights.end());
        med_h = heights[heights.size() / 2];
    }

    // Defects found while repairing the anchors; bitline indices are
    // resolved once the repaired list is sorted.
    struct PendingDefect
    {
        fab::DefectKind kind;
        common::Rect where;
        double yA, yB; // bitline centre y (nm); yB < 0 if unused
    };
    std::vector<PendingDefect> pending;

    std::vector<common::Rect> bitlines;
    for (const auto &r : full_span) {
        if (med_h <= 0.0 || r.height() <= 1.75 * med_h) {
            bitlines.push_back(r);
            continue;
        }
        // Bitline short: split the merged component back into its
        // two lines and locate the bridge (mask runs at the midline).
        const common::Rect top(r.x0, r.y0, r.x1, r.y0 + med_h);
        const common::Rect bot(r.x0, r.y1 - med_h, r.x1, r.y1);
        bitlines.push_back(top);
        bitlines.push_back(bot);
        const auto clamp_py = [&](double y_nm) {
            return static_cast<size_t>(std::min(
                y_nm / scales.yNm,
                static_cast<double>(metal.mask.height() - 1)));
        };
        const size_t mid_py = clamp_py(r.center().y);
        const size_t top_py = clamp_py(top.center().y);
        const size_t bot_py = clamp_py(bot.center().y);
        // A column is a bridge only if the mask is on all the way
        // from one line's centre to the other's — edge fray from
        // roughness or blur lights the midline without connecting.
        const auto column_bridges = [&](size_t x) {
            for (size_t y = top_py; y <= bot_py; ++y)
                if (metal.mask.at(x, y) <= 0.5f)
                    return false;
            return true;
        };
        const auto px0 = static_cast<size_t>(r.x0 / scales.xNm);
        const auto px1 = std::min(
            static_cast<size_t>(r.x1 / scales.xNm),
            metal.mask.width());
        // Report the extent of the bridging columns, not the whole
        // midline run: roughness fray can stretch the run across the
        // entire region while only the actual short connects, and a
        // region-wide rect would mislocate the defect.
        bool in_run = false;
        bool run_bridges = false;
        size_t bridge_x0 = 0, bridge_x1 = 0;
        for (size_t x = px0; x <= px1; ++x) {
            const bool on =
                x < px1 && metal.mask.at(x, mid_py) > 0.5f;
            if (on && !in_run) {
                in_run = true;
                run_bridges = false;
            }
            if (on && column_bridges(x)) {
                if (!run_bridges)
                    bridge_x0 = x;
                bridge_x1 = x;
                run_bridges = true;
            }
            if (!on && in_run) {
                in_run = false;
                if (!run_bridges)
                    continue;
                pending.push_back(
                    {fab::DefectKind::BitlineShort,
                     common::Rect(
                         static_cast<double>(bridge_x0) * scales.xNm,
                         top.y1,
                         static_cast<double>(bridge_x1 + 1) *
                             scales.xNm,
                         bot.y0),
                     top.center().y, bot.center().y});
            }
        }
    }

    // Bitline opens: group the partial components by row (same
    // bitline iff centres within ~half a line height) and reunite
    // groups that jointly span the region.
    std::sort(partial.begin(), partial.end(),
              [](const common::Rect &a, const common::Rect &b) {
                  return a.center().y < b.center().y;
              });
    for (size_t i = 0; i < partial.size();) {
        size_t j = i + 1;
        while (j < partial.size() &&
               partial[j].center().y - partial[i].center().y <
                   0.75 * med_h)
            ++j;
        std::vector<common::Rect> group(partial.begin() + i,
                                        partial.begin() + j);
        i = j;
        double ux0 = group.front().x0, ux1 = group.front().x1;
        double uy0 = group.front().y0, uy1 = group.front().y1;
        for (const auto &g : group) {
            ux0 = std::min(ux0, g.x0);
            ux1 = std::max(ux1, g.x1);
            uy0 = std::min(uy0, g.y0);
            uy1 = std::max(uy1, g.y1);
        }
        if (group.size() < 2 || ux1 - ux0 < 0.85 * region_w)
            continue; // stray fragment, not a broken bitline
        const common::Rect repaired(ux0, uy0, ux1, uy1);
        bitlines.push_back(repaired);
        std::sort(group.begin(), group.end(),
                  [](const common::Rect &a, const common::Rect &b) {
                      return a.x0 < b.x0;
                  });
        for (size_t k = 0; k + 1 < group.size(); ++k) {
            if (group[k + 1].x0 <= group[k].x1)
                continue;
            pending.push_back({fab::DefectKind::BitlineOpen,
                               common::Rect(group[k].x1, uy0,
                                            group[k + 1].x0, uy1),
                               repaired.center().y, -1.0});
        }
    }

    std::sort(bitlines.begin(), bitlines.end(),
              [](const common::Rect &a, const common::Rect &b) {
                  return a.y0 < b.y0;
              });
    out.bitlines = bitlines;

    // Nearest bitline by centre distance, within one pitch.
    double pitch_nm = region_h;
    for (size_t i = 0; i + 1 < bitlines.size(); ++i) {
        pitch_nm = std::min(pitch_nm, bitlines[i + 1].center().y -
                                          bitlines[i].center().y);
    }
    auto bitline_at = [&, pitch_nm](double y_nm) -> long {
        long best = -1;
        double best_d = pitch_nm;
        for (size_t i = 0; i < bitlines.size(); ++i) {
            const double d = std::abs(y_nm - bitlines[i].center().y);
            if (d < best_d) {
                best_d = d;
                best = static_cast<long>(i);
            }
        }
        return best;
    };

    // Resolve the anchor-repair defects to bitline indices now that
    // the repaired list is sorted.
    for (const auto &p : pending) {
        DetectedDefect d;
        d.kind = p.kind;
        d.where = p.where;
        d.bitlineA = bitline_at(p.yA);
        if (p.yB >= 0.0)
            d.bitlineB = bitline_at(p.yB);
        out.defects.push_back(d);
    }

    // Particle scan: a contact-slab component dwarfing a via is a
    // conductive particle, not a legitimate contact.  Flag it and
    // keep it out of the cross-coupling trace below.
    std::vector<char> is_particle(contact.comps.size(), 0);
    for (size_t ci = 0; ci < contact.comps.size(); ++ci) {
        const common::Rect r = toNm(contact.comps[ci], scales);
        if (std::min(r.width(), r.height()) < 70.0)
            continue;
        is_particle[ci] = 1;
        out.defects.push_back(
            {fab::DefectKind::Particle, r, -1, -1});
    }

    // (iv) Gate classes: common-gate strips vs small gates.
    std::vector<Component> strips, small_gates;
    for (const auto &c : gate.comps) {
        const common::Rect r = toNm(c, scales);
        if (r.height() >= 0.8 * region_h)
            strips.push_back(c);
        else
            small_gates.push_back(c);
    }
    std::sort(strips.begin(), strips.end(),
              [](const Component &a, const Component &b) {
                  return a.x0 < b.x0;
              });

    // (iv-b) Rejoin strips severed by the opening.  The classic PEQ
    // strap lives at the region edge; when a shrunk process corner
    // leaves it only two voxel rows tall the Y-opening erases it and
    // the bridged pair shows up as two strips.  The raw (pre-open)
    // mask still carries the strap, so merge adjacent strips that it
    // connects wall-to-wall inside an edge band.
    if (strips.size() >= 2) {
        const image::Image2D raw_gate = materialMask(
            gate.intensity, Material::Polysilicon, detector);
        const size_t ny = raw_gate.height();
        const auto band = std::max<size_t>(
            1, static_cast<size_t>(std::ceil(20.0 / scales.yNm)));
        const auto bridged = [&](const Component &a,
                                 const Component &b) {
            if (b.x0 <= a.x1 + 1)
                return true; // touching or overlapping in x
            const auto column_on = [&](size_t x, size_t y0,
                                       size_t y1) {
                for (size_t y = y0; y < y1; ++y)
                    if (raw_gate.at(x, y) > 0.5f)
                        return true;
                return false;
            };
            bool top = true, bottom = true;
            for (size_t x = a.x1 + 1; x < b.x0 && (top || bottom);
                 ++x) {
                if (top && !column_on(x, ny - std::min(band, ny), ny))
                    top = false;
                if (bottom && !column_on(x, 0, std::min(band, ny)))
                    bottom = false;
            }
            return top || bottom;
        };
        std::vector<Component> merged;
        for (const auto &s : strips) {
            if (!merged.empty() && bridged(merged.back(), s)) {
                Component &m = merged.back();
                m.x1 = std::max(m.x1, s.x1);
                m.y0 = std::min(m.y0, s.y0);
                m.y1 = std::max(m.y1, s.y1);
                m.pixels += s.pixels;
            } else {
                merged.push_back(s);
            }
        }
        strips = std::move(merged);
    }
    out.commonGateStrips = strips.size();

    // (vii) Topology: three independent strips = OCSA; one bridged
    // component (containing the precharge and equalizer bars) =
    // classic.
    out.topology = strips.size() >= 3 ? Topology::Ocsa
                                      : Topology::Classic;

    // Strip bars: x-runs of the gate mask at mid height (the classic
    // PEQ bridge only exists at the region edge).
    struct Bar
    {
        size_t x0, x1; // pixel bounds
    };
    std::vector<Bar> bars;
    const size_t mid_y = recon.ny() / 2;
    for (const auto &s : strips) {
        bool in_run = false;
        size_t run_start = 0;
        for (size_t x = s.x0; x <= s.x1 && x < gate.mask.width();
             ++x) {
            const bool on =
                x < s.x1 && gate.mask.at(x, mid_y) > 0.5f;
            if (on && !in_run) {
                in_run = true;
                run_start = x;
            } else if (!on && in_run) {
                in_run = false;
                bars.push_back({run_start, x});
            }
        }
    }
    std::sort(bars.begin(), bars.end(),
              [](const Bar &a, const Bar &b) { return a.x0 < b.x0; });

    // Role order along X (Section V-C: column first, then for OCSA
    // the ISO and OC strips, the latch, and the precharge).  With two
    // stacked SAs the layout is mirrored, so bars in the right half
    // carry the template in reverse.
    std::vector<Role> bar_roles;
    if (out.topology == Topology::Ocsa)
        bar_roles = {Role::Iso, Role::Oc, Role::Precharge};
    else
        bar_roles = {Role::Precharge, Role::Equalizer};

    // A mirrored (two-stacked-SA) region has its bars in symmetric
    // pairs: bar i and bar n-1-i reflect about the region centre.
    const double nx_px = static_cast<double>(recon.nx());
    auto bar_center = [](const Bar &b) {
        return 0.5 * static_cast<double>(b.x0 + b.x1);
    };
    bool mirrored = bars.size() >= 2 && bars.size() % 2 == 0;
    if (mirrored) {
        for (size_t i = 0; i < bars.size() / 2; ++i) {
            const double sum = bar_center(bars[i]) +
                bar_center(bars[bars.size() - 1 - i]);
            if (std::abs(sum - nx_px) > 0.1 * nx_px) {
                mirrored = false;
                break;
            }
        }
    }

    auto role_of_bar = [&](size_t bi) {
        size_t idx = bi;
        if (mirrored && bi >= bars.size() / 2)
            idx = bars.size() - 1 - bi; // reversed in the mirror half
        return idx < bar_roles.size() ? bar_roles[idx]
                                      : Role::Precharge;
    };

    // Strip devices: active segments under each bar.
    for (size_t bi = 0; bi < bars.size(); ++bi) {
        const Role role = role_of_bar(bi);
        const auto bar_cx =
            static_cast<size_t>((bars[bi].x0 + bars[bi].x1) / 2);
        for (const auto &a : active.comps) {
            if (bar_cx < a.x0 || bar_cx >= a.x1)
                continue;
            const auto cy = static_cast<size_t>(a.centerY());
            if (active.mask.at(bar_cx, cy) <= 0.5f)
                continue;
            ExtractedDevice dev;
            dev.role = role;
            dev.gate = toNm(a, scales);
            dev.wNm = robustVerticalRun(active.intensity, active.mask,
                                        a.x0, a.x1, bar_cx, cy,
                                        a.y1 - a.y0 + 1) *
                scales.yNm;
            dev.lNm = measureRun(gate.intensity, gate.mask, bar_cx,
                                 cy, true) *
                scales.xNm;
            dev.bitline = bitline_at(a.centerY() * scales.yNm);
            out.devices.push_back(dev);
        }
    }

    // (iii)/(iv) Small gates grouped per active region.
    struct GateOnActive
    {
        const Component *gate;
        const Component *active;
    };
    std::vector<std::vector<const Component *>> gates_per_active(
        active.comps.size());
    for (const auto &g : small_gates) {
        for (size_t ai = 0; ai < active.comps.size(); ++ai) {
            const auto &a = active.comps[ai];
            if (g.centerX() >= a.x0 && g.centerX() < a.x1 &&
                g.centerY() >= a.y0 && g.centerY() < a.y1) {
                gates_per_active[ai].push_back(&g);
                break;
            }
        }
    }

    // (vi) Latch pairs: two gates on one active.  Measure W along X
    // at the gate's body centre row and L along Y at the body centre
    // column; trace the cross-coupling through contacts.
    std::vector<ExtractedDevice> latch, singles;
    std::vector<std::pair<double, double>> latch_act_y; // nm, per dev
    for (size_t ai = 0; ai < active.comps.size(); ++ai) {
        const auto &gats = gates_per_active[ai];
        const auto &act = active.comps[ai];
        if (gats.size() == 2) {
            for (const auto *g : gats) {
                // Gate body: the intersection with the active.
                const size_t bx0 = std::max(g->x0, act.x0);
                const size_t bx1 = std::min(g->x1, act.x1);
                const size_t by0 = std::max(g->y0, act.y0);
                const size_t by1 = std::min(g->y1, act.y1);
                const size_t cx = (bx0 + bx1) / 2;
                const size_t cy = (by0 + by1) / 2;

                ExtractedDevice dev;
                dev.role = Role::Nsa; // refined below
                dev.gate = toNm(*g, scales);
                dev.wNm = measureRun(gate.intensity, gate.mask, cx,
                                     cy, true) *
                    scales.xNm;
                dev.lNm = robustVerticalRun(gate.intensity, gate.mask,
                                            bx0, bx1, cx, cy,
                                            by1 - by0 + 1) *
                    scales.yNm;

                // Contacts overlapping the gate component trace the
                // poly tab to the partner bitline.  Particle blobs
                // are not contacts and must not fake a coupling.
                for (size_t ci = 0; ci < contact.comps.size(); ++ci) {
                    if (is_particle[ci])
                        continue;
                    const auto &ct = contact.comps[ci];
                    const bool overlaps = ct.centerX() >= g->x0 &&
                        ct.centerX() < g->x1 &&
                        ct.centerY() >= g->y0 && ct.centerY() < g->y1;
                    if (!overlaps)
                        continue;
                    const long bl =
                        bitline_at(ct.centerY() * scales.yNm);
                    if (bl >= 0)
                        dev.couplesTo = bl;
                }
                latch.push_back(dev);
                latch_act_y.emplace_back(
                    static_cast<double>(act.y0) * scales.yNm,
                    static_cast<double>(act.y1) * scales.yNm);
            }
        } else if (gats.size() == 1) {
            const auto *g = gats.front();
            ExtractedDevice dev;
            dev.role = Role::Column; // refined below
            dev.gate = toNm(*g, scales);
            dev.bitline =
                bitline_at(g->centerY() * scales.yNm);
            singles.push_back(dev);
        }
    }

    // Latch devices within one active serve the two bitlines of the
    // pair: each side's own bitline is the partner's coupling target.
    for (size_t i = 0; i + 1 < latch.size(); i += 2) {
        latch[i].bitline = latch[i + 1].couplesTo;
        latch[i + 1].bitline = latch[i].couplesTo;
    }

    // Missing-via scan: a latch gate with no coupling contact is an
    // unfilled via.  The partner's own bitline (unresolvable through
    // the broken link) is repaired from the pair's active extent: the
    // shared active overlaps exactly the pair's two bitlines.
    for (size_t i = 0; i + 1 < latch.size(); i += 2) {
        for (size_t s = 0; s < 2; ++s) {
            ExtractedDevice &broken = latch[i + s];
            ExtractedDevice &partner = latch[i + 1 - s];
            if (broken.couplesTo >= 0)
                continue;
            if (partner.bitline < 0) {
                const auto [ay0, ay1] = latch_act_y[i + s];
                for (size_t bi = 0; bi < bitlines.size(); ++bi) {
                    const double cy = bitlines[bi].center().y;
                    if (cy < ay0 || cy > ay1 ||
                        static_cast<long>(bi) == broken.bitline)
                        continue;
                    partner.bitline = static_cast<long>(bi);
                    break;
                }
            }
            out.defects.push_back({fab::DefectKind::MissingVia,
                                   broken.gate, broken.bitline,
                                   partner.bitline});
        }
    }

    // (viii) nSA vs pSA: split the latch devices by measured width
    // (1-D two-means); the wider cluster is the NMOS latch.
    if (!latch.empty()) {
        std::vector<double> widths;
        for (const auto &d : latch)
            widths.push_back(d.wNm);
        const auto [mn, mx] =
            std::minmax_element(widths.begin(), widths.end());
        double lo = *mn, hi = *mx;
        if (hi - lo > 0.12 * hi) {
            // Two-means on widths.
            for (int it = 0; it < 16; ++it) {
                double slo = 0.0, shi = 0.0;
                size_t nlo = 0, nhi = 0;
                for (double w : widths) {
                    if (std::abs(w - lo) < std::abs(w - hi)) {
                        slo += w;
                        ++nlo;
                    } else {
                        shi += w;
                        ++nhi;
                    }
                }
                if (nlo)
                    lo = slo / static_cast<double>(nlo);
                if (nhi)
                    hi = shi / static_cast<double>(nhi);
            }
            for (auto &d : latch) {
                d.role = std::abs(d.wNm - hi) <= std::abs(d.wNm - lo)
                             ? Role::Nsa
                             : Role::Psa;
            }
        }
        for (auto &d : latch)
            out.devices.push_back(d);
    }

    // (v) Column transistors are the multiplexers nearest the MATs:
    // before the first strip, and with a mirrored second SA also
    // after the last strip.  Everything else is the LSA datapath.
    double first_strip_x = region_w, last_strip_x = 0.0;
    for (const auto &bar : bars) {
        first_strip_x = std::min(
            first_strip_x, static_cast<double>(bar.x0) * scales.xNm);
        last_strip_x = std::max(
            last_strip_x, static_cast<double>(bar.x1) * scales.xNm);
    }
    double latch_min_x = region_w;
    for (const auto &d : latch)
        latch_min_x = std::min(latch_min_x, d.gate.x0);
    // Classic single-SA regions have their strips after the latch;
    // fall back to the latch boundary there.
    const double left_limit = std::min(first_strip_x, latch_min_x);
    for (auto &d : singles) {
        const double cx = d.gate.center().x;
        const auto px =
            static_cast<size_t>(d.gate.center().x / scales.xNm);
        const auto py =
            static_cast<size_t>(d.gate.center().y / scales.yNm);
        const auto gx0 =
            static_cast<size_t>(d.gate.x0 / scales.xNm);
        const auto gx1 =
            static_cast<size_t>(d.gate.x1 / scales.xNm);
        const auto grows = static_cast<size_t>(
            (d.gate.y1 - d.gate.y0) / scales.yNm) +
            1;
        if (cx < left_limit || (mirrored && cx > last_strip_x)) {
            d.role = Role::Column;
            // W along Y, L along X (series device in the bitline).
            d.wNm = robustVerticalRun(gate.intensity, gate.mask,
                                      gx0, gx1, px, py, grows) *
                scales.yNm;
            d.lNm = measureRun(gate.intensity, gate.mask, px, py,
                               true) *
                scales.xNm;
        } else {
            d.role = Role::Lsa;
            d.wNm = measureRun(gate.intensity, gate.mask, px, py,
                               true) *
                scales.xNm;
            d.lNm = robustVerticalRun(gate.intensity, gate.mask,
                                      gx0, gx1, px, py, grows) *
                scales.yNm;
        }
        out.devices.push_back(d);
    }

    return out;
}

} // namespace re
} // namespace hifi
