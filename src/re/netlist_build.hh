/**
 * @file
 * From reverse-engineered geometry to a working analog netlist: builds
 * a sense-amplifier testbench whose topology and transistor sizing
 * come from a RegionAnalysis, closing the paper's loop between imaging
 * and high-fidelity simulation.
 */

#ifndef HIFI_RE_NETLIST_BUILD_HH
#define HIFI_RE_NETLIST_BUILD_HH

#include "circuit/sense_amp.hh"
#include "re/analyze.hh"

namespace hifi
{
namespace re
{

/**
 * Produce SA testbench parameters from an analysis: the extracted
 * topology plus the mean measured W/L of each role.  Roles the
 * analysis lacks keep the values from `base`.
 */
circuit::SaParams saParamsFromAnalysis(
    const RegionAnalysis &analysis,
    const circuit::SaParams &base = {});

} // namespace re
} // namespace hifi

#endif // HIFI_RE_NETLIST_BUILD_HH
