/**
 * @file
 * Reverse engineering of an SA region from a reconstructed volume
 * (Section V-A, steps i-viii).
 *
 * The analysis pipeline:
 *  (i)    segment planar layer slabs into material masks;
 *  (ii)   anchor on the MAT bitlines (M1 components spanning the
 *         region in X);
 *  (iii)  extract transistors: gate components over active regions;
 *  (iv)   classify: multiplexer (single gate per active), common-gate
 *         strips (gates spanning the region in Y), coupled pairs
 *         (two gates sharing an active);
 *  (v)    column transistors: the multiplexers nearest the MAT;
 *  (vi)   latch: coupled pairs, cross-coupling traced through the
 *         contacts that join each gate's poly tab to the partner
 *         bitline (Fig. 8);
 *  (vii)  precharge/equalizer vs ISO/OC: by strip count and order;
 *         one bridged component = classic PEQ, three independent
 *         strips = OCSA;
 *  (viii) pSA identified as the narrower latch cluster.
 */

#ifndef HIFI_RE_ANALYZE_HH
#define HIFI_RE_ANALYZE_HH

#include <optional>
#include <vector>

#include "common/geometry.hh"
#include "fab/defects.hh"
#include "image/volume3d.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace re
{

/** nm per voxel along each axis of the reconstructed volume. */
struct PlanarScales
{
    double xNm = 20.0; ///< slice pitch (FIB)
    double yNm = 5.0;  ///< SEM pixel
    double zNm = 5.0;  ///< SEM pixel
};

/** One reverse-engineered transistor. */
struct ExtractedDevice
{
    models::Role role = models::Role::Nsa;
    common::Rect gate;      ///< nm, planar bounding box
    double wNm = 0.0;
    double lNm = 0.0;
    long bitline = -1;      ///< served bitline index, when known
    long couplesTo = -1;    ///< latch: bitline driving the gate
};

/**
 * A silicon defect flagged by the analysis.  `where` is the anomaly's
 * planar footprint: the bridge for a short, the gap for an open, the
 * orphaned gate for a missing via, the blob for a particle.
 */
struct DetectedDefect
{
    fab::DefectKind kind = fab::DefectKind::BitlineShort;
    common::Rect where; ///< nm, planar footprint of the anomaly
    long bitlineA = -1; ///< affected bitlines, when identifiable
    long bitlineB = -1;
};

/** Full analysis result for one region. */
struct RegionAnalysis
{
    models::Topology topology = models::Topology::Classic;
    size_t commonGateStrips = 0;

    std::vector<common::Rect> bitlines; ///< nm, sorted by Y
    std::vector<ExtractedDevice> devices;

    /// Silicon defects flagged during extraction.  Bitline shorts and
    /// opens are *repaired* for the rest of the analysis (the merged
    /// component split, the broken line reunited), so the topology
    /// and measurements still come out; missing vias leave their
    /// latch device with couplesTo = -1.
    std::vector<DetectedDefect> defects;

    size_t countRole(models::Role role) const;

    /// Mean measured dimensions of a role (nullopt if absent).
    std::optional<models::Dims> meanDims(models::Role role) const;

    /// True when every traced latch pair is properly cross-coupled
    /// (gate of each side driven by the partner's bitline).
    bool crossCouplingConsistent() const;
};

/**
 * Analyze a reconstructed (denoised, aligned) volume.
 *
 * @param recon    volume from scope::postprocess
 * @param scales   physical voxel pitch per axis
 * @param detector detector the stack was acquired with
 */
RegionAnalysis analyzeRegion(const image::Volume3D &recon,
                             const PlanarScales &scales,
                             models::Detector detector);

} // namespace re
} // namespace hifi

#endif // HIFI_RE_ANALYZE_HH
