#include "re/segmentation.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "scope/sem.hh"

namespace hifi
{
namespace re
{

image::Image2D
materialMask(const image::Image2D &intensity, fab::Material material,
             models::Detector detector, bool binary_vs_oxide)
{
    image::Image2D mask(intensity.width(), intensity.height(), 0.0f);
    if (binary_vs_oxide) {
        const double threshold = 0.5 *
            (scope::materialContrast(material, detector) +
             scope::materialContrast(fab::Material::Oxide, detector));
        const bool bright = scope::materialContrast(material, detector)
            > scope::materialContrast(fab::Material::Oxide, detector);
        for (size_t y = 0; y < intensity.height(); ++y) {
            for (size_t x = 0; x < intensity.width(); ++x) {
                const bool on = bright
                    ? intensity.at(x, y) > threshold
                    : intensity.at(x, y) < threshold;
                mask.at(x, y) = on ? 1.0f : 0.0f;
            }
        }
        return mask;
    }
    const scope::ContrastLut lut = scope::contrastLut(detector);
    for (size_t y = 0; y < intensity.height(); ++y) {
        for (size_t x = 0; x < intensity.width(); ++x) {
            const fab::Material m = scope::classifyIntensity(
                intensity.at(x, y), lut, true);
            mask.at(x, y) = (m == material) ? 1.0f : 0.0f;
        }
    }
    return mask;
}

float
otsuThreshold(const image::Image2D &intensity, size_t bins)
{
    if (intensity.empty() || bins < 2)
        throw std::invalid_argument("otsuThreshold: bad input");
    const float lo = intensity.minValue();
    const float hi = intensity.maxValue();
    if (hi <= lo)
        return lo;

    std::vector<double> hist(bins, 0.0);
    for (float v : intensity.data()) {
        auto b = static_cast<size_t>((v - lo) / (hi - lo) *
                                     static_cast<float>(bins));
        if (b >= bins)
            b = bins - 1;
        hist[b] += 1.0;
    }
    const double total = static_cast<double>(intensity.size());

    double sum_all = 0.0;
    for (size_t b = 0; b < bins; ++b)
        sum_all += static_cast<double>(b) * hist[b];

    // Track the plateau of maximal between-class variance and return
    // its midpoint: between two well-separated modes every split is
    // equivalent, and the midpoint is the robust choice.
    double w0 = 0.0, sum0 = 0.0, best_var = -1.0;
    size_t best_first = 0, best_last = 0;
    for (size_t b = 0; b + 1 < bins; ++b) {
        w0 += hist[b];
        if (w0 <= 0.0)
            continue;
        const double w1 = total - w0;
        if (w1 <= 0.0)
            break;
        sum0 += static_cast<double>(b) * hist[b];
        const double mu0 = sum0 / w0;
        const double mu1 = (sum_all - sum0) / w1;
        const double var = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        // Relative comparison: at these magnitudes an absolute
        // epsilon would vanish below one ULP.
        if (var > best_var * (1.0 + 1e-12)) {
            best_var = var;
            best_first = best_last = b;
        } else if (var >= best_var * (1.0 - 1e-12)) {
            best_last = b;
        }
    }
    const double mid =
        0.5 * static_cast<double>(best_first + best_last);
    return lo + (hi - lo) *
        static_cast<float>(mid + 1.0) / static_cast<float>(bins);
}

image::Image2D
morphologicalOpen(const image::Image2D &mask, size_t radius)
{
    const long r = static_cast<long>(radius);
    const long w = static_cast<long>(mask.width());
    const long h = static_cast<long>(mask.height());
    auto pass = [&](const image::Image2D &in, bool erode) {
        image::Image2D out(in.width(), in.height(), 0.0f);
        for (long y = 0; y < h; ++y) {
            for (long x = 0; x < w; ++x) {
                bool hit = erode;
                for (long dy = -r; dy <= r; ++dy) {
                    const bool v = in.clampedAt(x, y + dy) > 0.5f;
                    if (erode && !v) {
                        hit = false;
                        break;
                    }
                    if (!erode && v) {
                        hit = true;
                        break;
                    }
                }
                out.at(x, y) = hit ? 1.0f : 0.0f;
            }
        }
        return out;
    };
    return pass(pass(mask, true), false);
}

std::vector<Component>
connectedComponents(const image::Image2D &mask, size_t min_pixels)
{
    const size_t w = mask.width();
    const size_t h = mask.height();
    std::vector<int> label(w * h, -1);
    std::vector<Component> out;

    std::vector<size_t> stack;
    for (size_t start = 0; start < w * h; ++start) {
        if (mask.data()[start] <= 0.5f || label[start] >= 0)
            continue;
        // Flood fill.
        Component comp;
        comp.x0 = comp.x1 = start % w;
        comp.y0 = comp.y1 = start / w;
        comp.x1 += 1;
        comp.y1 += 1;
        const int id = static_cast<int>(out.size());
        stack.clear();
        stack.push_back(start);
        label[start] = id;
        while (!stack.empty()) {
            const size_t p = stack.back();
            stack.pop_back();
            const size_t px = p % w, py = p / w;
            ++comp.pixels;
            comp.x0 = std::min(comp.x0, px);
            comp.y0 = std::min(comp.y0, py);
            comp.x1 = std::max(comp.x1, px + 1);
            comp.y1 = std::max(comp.y1, py + 1);

            const size_t nbrs[4] = {
                px > 0 ? p - 1 : p, px + 1 < w ? p + 1 : p,
                py > 0 ? p - w : p, py + 1 < h ? p + w : p};
            for (size_t n : nbrs) {
                if (n != p && mask.data()[n] > 0.5f && label[n] < 0) {
                    label[n] = id;
                    stack.push_back(n);
                }
            }
        }
        out.push_back(comp);
    }

    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Component &c) {
                                 return c.pixels < min_pixels;
                             }),
              out.end());
    return out;
}

namespace
{

/**
 * Refine one run edge: the boundary lies between in-pixel `a` and
 * out-pixel `b` (1-D indices along the scan axis).  Interpolate the
 * half-maximum crossing between the two intensity samples.
 */
double
edgeOffset(double v_in, double v_out, double half)
{
    const double denom = v_in - v_out;
    if (std::abs(denom) < 1e-9)
        return 0.5;
    return std::clamp((v_in - half) / denom, 0.0, 1.0);
}

} // namespace

double
measureRun(const image::Image2D &intensity, const image::Image2D &mask,
           size_t cx, size_t cy, bool along_x)
{
    if (mask.at(cx, cy) <= 0.5f)
        return 0.0;
    const long len = static_cast<long>(along_x ? mask.width()
                                               : mask.height());
    auto mask_at = [&](long i) {
        return along_x ? mask.at(static_cast<size_t>(i), cy)
                       : mask.at(cx, static_cast<size_t>(i));
    };
    auto val_at = [&](long i) {
        const long c = std::clamp(i, 0l, len - 1);
        return static_cast<double>(
            along_x ? intensity.at(static_cast<size_t>(c), cy)
                    : intensity.at(cx, static_cast<size_t>(c)));
    };

    const long c0 = static_cast<long>(along_x ? cx : cy);
    long lo = c0, hi = c0;
    while (lo > 0 && mask_at(lo - 1) > 0.5f)
        --lo;
    while (hi + 1 < len && mask_at(hi + 1) > 0.5f)
        ++hi;

    // Inside level: sample at the run centre; outside: past each edge.
    const long mid = (lo + hi) / 2;
    const double v_in = val_at(mid);
    const double v_lo_out = val_at(lo - 2);
    const double v_hi_out = val_at(hi + 2);

    const double half_lo = 0.5 * (v_in + v_lo_out);
    const double half_hi = 0.5 * (v_in + v_hi_out);

    // Edge positions in pixel coordinates (pixel i spans [i, i+1)).
    const double left = static_cast<double>(lo) -
        edgeOffset(val_at(lo), val_at(lo - 1), half_lo) + 0.5;
    const double right = static_cast<double>(hi) +
        edgeOffset(val_at(hi), val_at(hi + 1), half_hi) + 0.5;
    return right - left;
}

} // namespace re
} // namespace hifi
