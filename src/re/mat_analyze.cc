#include "re/mat_analyze.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "layout/layer.hh"
#include "re/segmentation.hh"

namespace hifi
{
namespace re
{

MatAnalysis
analyzeMatRegion(const image::Volume3D &recon,
                 const PlanarScales &scales,
                 models::Detector detector)
{
    if (recon.empty())
        throw std::invalid_argument("analyzeMatRegion: empty volume");

    using fab::Material;
    using layout::Layer;

    auto slab_of = [&](Layer layer, Material material,
                       size_t min_px) {
        const auto z = layout::layerZ(layer);
        auto z0 = static_cast<size_t>(z.z0 / scales.zNm);
        auto z1 = static_cast<size_t>(
            std::ceil(std::min(z.z1,
                               static_cast<double>(recon.nz()) *
                                   scales.zNm) /
                      scales.zNm));
        z0 = std::min(z0, recon.nz() - 1);
        z1 = std::max(z0 + 1, std::min(z1, recon.nz()));
        const auto intensity = recon.planarSlab(z0, z1);
        const auto mask = morphologicalOpen(
            materialMask(intensity, material, detector));
        return connectedComponents(mask, min_px);
    };

    const double region_w =
        static_cast<double>(recon.nx()) * scales.xNm;
    const double region_h =
        static_cast<double>(recon.ny()) * scales.yNm;

    MatAnalysis out;

    // Bitlines: M1 spanning X.
    std::vector<double> bl_centers;
    for (const auto &c :
         slab_of(Layer::Metal1, Material::Copper, 8)) {
        if (static_cast<double>(c.width()) * scales.xNm >=
            0.85 * region_w) {
            ++out.bitlines;
            bl_centers.push_back(c.centerY() * scales.yNm);
        }
    }
    std::sort(bl_centers.begin(), bl_centers.end());
    if (bl_centers.size() > 1) {
        out.blPitchNm = (bl_centers.back() - bl_centers.front()) /
            static_cast<double>(bl_centers.size() - 1);
    }

    // Buried wordlines: gate strips spanning Y.
    for (const auto &c :
         slab_of(Layer::Gate, Material::Polysilicon, 8)) {
        if (static_cast<double>(c.height()) * scales.yNm >=
            0.85 * region_h)
            ++out.wordlines;
    }

    // Capacitors: pillars on the capacitor layer, clustered into
    // columns by X to test the honeycomb offset.
    std::map<long, std::vector<double>> columns; // x-bucket -> y list
    for (const auto &c : slab_of(Layer::Capacitor,
                                 Material::CapacitorMetal, 4)) {
        ++out.capacitors;
        const double cx = c.centerX() * scales.xNm;
        const double cy = c.centerY() * scales.yNm;
        const long bucket = std::lround(cx / 25.0); // ~column pitch
        columns[bucket].push_back(cy);
    }

    if (columns.size() >= 2 && out.blPitchNm > 0.0) {
        // Mean y (mod pitch) per column; adjacent columns should
        // alternate by half a pitch in a honeycomb.
        std::vector<double> phases;
        for (const auto &[bucket, ys] : columns) {
            double sum = 0.0;
            for (double y : ys)
                sum += std::fmod(y, out.blPitchNm);
            phases.push_back(sum / static_cast<double>(ys.size()));
        }
        double offset_sum = 0.0;
        size_t n = 0;
        for (size_t i = 0; i + 1 < phases.size(); ++i) {
            double d = std::abs(phases[i + 1] - phases[i]);
            d = std::min(d, out.blPitchNm - d); // wraparound
            offset_sum += d;
            ++n;
        }
        out.rowOffsetNm = n ? offset_sum / static_cast<double>(n)
                            : 0.0;
        out.honeycomb =
            std::abs(out.rowOffsetNm - out.blPitchNm / 2.0) <
            0.25 * out.blPitchNm;
    }
    return out;
}

} // namespace re
} // namespace hifi
