#include "re/netlist_build.hh"

#include "common/telemetry.hh"

namespace hifi
{
namespace re
{

using models::Role;

circuit::SaParams
saParamsFromAnalysis(const RegionAnalysis &analysis,
                     const circuit::SaParams &base)
{
    const telemetry::Span span("re.netlist_build");
    circuit::SaParams params = base;
    params.topology = analysis.topology == models::Topology::Ocsa
        ? circuit::SaTopology::OffsetCancellation
        : circuit::SaTopology::Classic;

    auto apply = [&](Role role, double &w, double &l) {
        if (const auto dims = analysis.meanDims(role)) {
            w = dims->w;
            l = dims->l;
        }
    };
    apply(Role::Nsa, params.sizing.nsaW, params.sizing.nsaL);
    apply(Role::Psa, params.sizing.psaW, params.sizing.psaL);
    apply(Role::Precharge, params.sizing.preW, params.sizing.preL);
    apply(Role::Equalizer, params.sizing.eqW, params.sizing.eqL);
    apply(Role::Column, params.sizing.colW, params.sizing.colL);
    apply(Role::Iso, params.sizing.isoW, params.sizing.isoL);
    apply(Role::Oc, params.sizing.ocW, params.sizing.ocL);
    return params;
}

} // namespace re
} // namespace hifi
