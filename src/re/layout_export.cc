#include "re/layout_export.hh"

#include "layout/gdsii.hh"

namespace hifi
{
namespace re
{

std::shared_ptr<layout::Cell>
layoutFromAnalysis(const RegionAnalysis &analysis,
                   const std::string &cell_name)
{
    auto cell = std::make_shared<layout::Cell>(cell_name);

    for (size_t i = 0; i < analysis.bitlines.size(); ++i) {
        cell->addShape(analysis.bitlines[i], layout::Layer::Metal1,
                       "BL" + std::to_string(i));
    }

    for (const auto &dev : analysis.devices) {
        const std::string net = models::roleName(dev.role);
        cell->addShape(dev.gate, layout::Layer::Gate, net);

        // Active reconstructed from the measured dimensions around
        // the gate centre, in the device's orientation: latch-like
        // devices have W along X, series devices W along Y.
        const auto c = dev.gate.center();
        const bool latch_like = dev.role == models::Role::Nsa ||
            dev.role == models::Role::Psa ||
            dev.role == models::Role::Lsa;
        const double ext_x = latch_like ? dev.wNm : dev.lNm;
        const double ext_y = latch_like ? dev.lNm : dev.wNm;
        if (ext_x > 0.0 && ext_y > 0.0) {
            cell->addShape(
                common::Rect(c.x - ext_x / 2.0 - 30.0,
                             c.y - ext_y / 2.0,
                             c.x + ext_x / 2.0 + 30.0,
                             c.y + ext_y / 2.0),
                layout::Layer::Active, net + ".active");
        }
    }
    return cell;
}

void
writeAnalysisGds(const std::string &path,
                 const RegionAnalysis &analysis,
                 const std::string &cell_name)
{
    const auto cell = layoutFromAnalysis(analysis, cell_name);
    layout::writeGdsFile(path, *cell);
}

} // namespace re
} // namespace hifi
