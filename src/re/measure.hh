/**
 * @file
 * The measurement campaign of Section V-B: 835 size measurements
 * across the six chips using repeated analyst measurements.
 *
 * Plan (summing to exactly 835):
 *  - every present transistor role on every chip, W and L, measured
 *    10 times each: 39 role instances x 2 dims x 10 = 780;
 *  - 8 region measurements per chip (MAT width/height, SA height,
 *    row-driver width, transition, bitline pitch/width, M2 width):
 *    48;
 *  - one die-size measurement per chip: 6;
 *  - the minimum wire height (observed on B5): 1.
 *
 * Repeated measurements are jittered at half the chip's pixel
 * resolution, modelling analyst variance in Dragonfly.
 */

#ifndef HIFI_RE_MEASURE_HH
#define HIFI_RE_MEASURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace re
{

/**
 * Campaign knobs, previously hard-coded in the implementation.  The
 * defaults reproduce the paper's campaign draw-for-draw; the
 * tolerance scale widens acceptance bands at non-typical process
 * corners (models::CornerVariation::measureTolScale).
 */
struct MeasureParams
{
    /// Analyst jitter on a transistor measurement, as a fraction of
    /// the chip's pixel resolution.
    double jitterScale = 0.5;

    /// Jitter scale for region-level pitch/width measurements (long
    /// averaged features are steadier than single edges).
    double regionJitterScale = 0.2;

    /// Jitter scale for the die-edge measurement.
    double dieJitterScale = 10.0;

    /// Jitter scale for the minimum-wire-height measurement.
    double wireJitterScale = 0.25;

    /// Repetitions per transistor dimension.
    size_t repetitions = 10;

    /**
     * Corner-aware widening of acceptance tolerances.  1.0 at the
     * typical corner; slow/fast corners set this from the vendor's
     * models::CornerVariation::measureTolScale.
     */
    double toleranceScale = 1.0;

    /**
     * Acceptance tolerance (nm) for one recovered dimension, given
     * the FIB slice pitch and SEM pixel size of the acquisition.
     * Half-maximum edge interpolation is good to about half a pixel
     * per edge plus a slice-quantization term; the corner scale
     * widens the band where line-edge roughness moves real edges.
     */
    double
    dimensionToleranceNm(double sliceNm, double pixelNm) const
    {
        return (0.6 * sliceNm + 1.2 * pixelNm) * toleranceScale;
    }
};

/** One measured quantity with its repeated samples. */
struct MeasurementRecord
{
    std::string chipId;
    std::string target;  ///< e.g. "nSA.W" or "region.saHeight"
    double nominalNm = 0.0;
    common::Accumulator samples;
};

/** The full campaign. */
struct Campaign
{
    std::vector<MeasurementRecord> records;
    size_t totalMeasurements = 0;

    /// Mean absolute relative error of sample means vs nominal.
    double meanRelativeError() const;
};

/// Run the full six-chip campaign (deterministic given the seed).
/// The default MeasureParams reproduce the historical campaign
/// draw-for-draw.
Campaign measurementCampaign(uint64_t seed = 2024,
                             const MeasureParams &params = {});

/// The paper's measurement count.
constexpr size_t kPaperMeasurements = 835;

} // namespace re
} // namespace hifi

#endif // HIFI_RE_MEASURE_HH
