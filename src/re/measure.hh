/**
 * @file
 * The measurement campaign of Section V-B: 835 size measurements
 * across the six chips using repeated analyst measurements.
 *
 * Plan (summing to exactly 835):
 *  - every present transistor role on every chip, W and L, measured
 *    10 times each: 39 role instances x 2 dims x 10 = 780;
 *  - 8 region measurements per chip (MAT width/height, SA height,
 *    row-driver width, transition, bitline pitch/width, M2 width):
 *    48;
 *  - one die-size measurement per chip: 6;
 *  - the minimum wire height (observed on B5): 1.
 *
 * Repeated measurements are jittered at half the chip's pixel
 * resolution, modelling analyst variance in Dragonfly.
 */

#ifndef HIFI_RE_MEASURE_HH
#define HIFI_RE_MEASURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace re
{

/** One measured quantity with its repeated samples. */
struct MeasurementRecord
{
    std::string chipId;
    std::string target;  ///< e.g. "nSA.W" or "region.saHeight"
    double nominalNm = 0.0;
    common::Accumulator samples;
};

/** The full campaign. */
struct Campaign
{
    std::vector<MeasurementRecord> records;
    size_t totalMeasurements = 0;

    /// Mean absolute relative error of sample means vs nominal.
    double meanRelativeError() const;
};

/// Run the full six-chip campaign (deterministic given the seed).
Campaign measurementCampaign(uint64_t seed = 2024);

/// The paper's measurement count.
constexpr size_t kPaperMeasurements = 835;

} // namespace re
} // namespace hifi

#endif // HIFI_RE_MEASURE_HH
