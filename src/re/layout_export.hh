/**
 * @file
 * Reconstructed-layout export: turn a RegionAnalysis into a layout
 * cell and write it as GDSII.  This mirrors what the paper actually
 * open-sources - the layouts on https://comsec.ethz.ch/hifi-dram are
 * *reverse-engineered* reconstructions, not fab data.
 */

#ifndef HIFI_RE_LAYOUT_EXPORT_HH
#define HIFI_RE_LAYOUT_EXPORT_HH

#include <memory>
#include <string>

#include "layout/cell.hh"
#include "re/analyze.hh"

namespace hifi
{
namespace re
{

/**
 * Build a layout cell from the analysis: bitlines on M1 and one gate
 * rectangle per extracted device (its bounding box), with active
 * rectangles reconstructed from the measured W/L at the device
 * position.  Net names encode the inferred roles.
 */
std::shared_ptr<layout::Cell>
layoutFromAnalysis(const RegionAnalysis &analysis,
                   const std::string &cell_name = "RE_SA_REGION");

/// Convenience: reconstruct and write to a GDSII file.
void writeAnalysisGds(const std::string &path,
                      const RegionAnalysis &analysis,
                      const std::string &cell_name = "RE_SA_REGION");

} // namespace re
} // namespace hifi

#endif // HIFI_RE_LAYOUT_EXPORT_HH
