/**
 * @file
 * Topology template matching (Section V-A).
 *
 * When the paper found extra elements on B5/A4/A5, it searched the
 * published corpus of sense-amplifier designs and "could finally
 * pin-point the reverse-engineered circuits to one design".  This
 * module makes that step algorithmic: a library of structural
 * templates for published SA topologies, and a matcher that scores an
 * extracted RegionAnalysis against each template using
 *
 *  - the number of independent common-gate components,
 *  - the per-SA device-role multiset (devices per bitline pair),
 *  - the presence/absence of a standalone equalizer,
 *  - the latch cross-coupling pattern.
 */

#ifndef HIFI_RE_TOPOLOGY_MATCH_HH
#define HIFI_RE_TOPOLOGY_MATCH_HH

#include <map>
#include <string>
#include <vector>

#include "re/analyze.hh"

namespace hifi
{
namespace re
{

/** Structural template of a published SA topology. */
struct TopologyTemplate
{
    std::string name;
    std::string reference; ///< literature pointer
    models::Topology family = models::Topology::Classic;

    /// Independent common-gate components in the region.
    size_t commonGateComponents = 1;

    /// Devices per bitline pair, by role (latch devices count 2).
    std::map<models::Role, size_t> devicesPerPair;

    /// Standalone equalizer present?
    bool hasEqualizer = true;

    /// Cross-coupled latch (always true for real SAs; kept for
    /// completeness against degenerate extractions).
    bool crossCoupledLatch = true;
};

/**
 * The template library: the classic SA [42], the deployed OCSA [45],
 * and two further published variants that the matcher must be able to
 * reject (an isolation-SA used by CLR-DRAM-style proposals and a
 * bitline-precharge-only design).
 */
const std::vector<TopologyTemplate> &topologyLibrary();

/** Score of one template against an analysis. */
struct MatchScore
{
    const TopologyTemplate *candidate = nullptr;

    /// 1.0 = perfect structural agreement.
    double score = 0.0;

    /// Human-readable mismatch notes.
    std::vector<std::string> mismatches;
};

/**
 * Score every library template against the analysis, best first.
 * The number of SA pairs is inferred from the latch device count.
 */
std::vector<MatchScore> matchTopology(const RegionAnalysis &analysis);

/// Best-matching template (throws if the library is empty).
const TopologyTemplate &bestMatch(const RegionAnalysis &analysis);

} // namespace re
} // namespace hifi

#endif // HIFI_RE_TOPOLOGY_MATCH_HH
