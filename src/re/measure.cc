#include "re/measure.hh"

#include <cmath>

#include "common/rng.hh"
#include "common/telemetry.hh"

namespace hifi
{
namespace re
{

double
Campaign::meanRelativeError() const
{
    if (records.empty())
        return 0.0;
    double sum = 0.0;
    size_t n = 0;
    for (const auto &r : records) {
        if (r.nominalNm <= 0.0)
            continue;
        sum += std::abs(r.samples.mean() / r.nominalNm - 1.0);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

namespace
{

void
addRecord(Campaign &campaign, common::Rng &rng,
          const std::string &chip_id, const std::string &target,
          double nominal, double jitter, size_t reps)
{
    MeasurementRecord rec;
    rec.chipId = chip_id;
    rec.target = target;
    rec.nominalNm = nominal;
    for (size_t i = 0; i < reps; ++i)
        rec.samples.add(rng.gaussian(nominal, jitter));
    campaign.totalMeasurements += reps;
    campaign.records.push_back(std::move(rec));
}

} // namespace

Campaign
measurementCampaign(uint64_t seed, const MeasureParams &params)
{
    const telemetry::Span span("re.measure");
    common::Rng rng(seed);
    Campaign campaign;

    for (const auto &chip : models::allChips()) {
        const double jitter = chip.pixelResNm * params.jitterScale;

        // Transistor dimensions: `repetitions` per dimension.
        for (size_t ri = 0;
             ri < static_cast<size_t>(models::Role::NumRoles); ++ri) {
            const auto role = static_cast<models::Role>(ri);
            const auto &dims = chip.role(role);
            if (!dims)
                continue;
            addRecord(campaign, rng, chip.id,
                      models::roleName(role) + ".W", dims->w, jitter,
                      params.repetitions);
            addRecord(campaign, rng, chip.id,
                      models::roleName(role) + ".L", dims->l, jitter,
                      params.repetitions);
        }

        // Region dimensions: one careful measurement each.
        addRecord(campaign, rng, chip.id, "region.matWidth",
                  chip.matWidthNm, jitter, 1);
        addRecord(campaign, rng, chip.id, "region.matHeight",
                  chip.matHeightNm, jitter, 1);
        addRecord(campaign, rng, chip.id, "region.saHeight",
                  chip.saHeightNm, jitter, 1);
        addRecord(campaign, rng, chip.id, "region.rowDriverWidth",
                  chip.rowDriverWidthNm, jitter, 1);
        addRecord(campaign, rng, chip.id, "region.transition",
                  chip.transitionNm, jitter, 1);
        addRecord(campaign, rng, chip.id, "region.blPitch",
                  chip.blPitchNm, jitter * params.regionJitterScale,
                  1);
        addRecord(campaign, rng, chip.id, "region.blWidth",
                  chip.blWidthNm, jitter * params.regionJitterScale,
                  1);
        addRecord(campaign, rng, chip.id, "region.m2Width",
                  chip.m2WidthNm, jitter * params.regionJitterScale,
                  1);

        // Die size (nm-scale number is enormous; store in mm^2-like
        // nominal by measuring the die edge instead).
        addRecord(campaign, rng, chip.id, "die.edge",
                  std::sqrt(chip.dieAreaNm2()),
                  jitter * params.dieJitterScale, 1);
    }

    // The minimum wire height, observed on B5 (30 nm).
    addRecord(campaign, rng, "B5", "wire.height",
              models::chip("B5").wireHeightNm,
              models::chip("B5").pixelResNm * params.wireJitterScale,
              1);

    return campaign;
}

} // namespace re
} // namespace hifi
