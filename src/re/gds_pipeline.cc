#include "re/gds_pipeline.hh"

#include "fab/voxelizer.hh"
#include "layout/gdsii.hh"
#include "scope/sem.hh"

namespace hifi
{
namespace re
{

RegionAnalysis
analyzeGdsFile(const std::string &path, double voxel_nm)
{
    const layout::Cell cell = layout::readGdsFile(path);
    const common::Rect bounds = cell.boundingBox();

    fab::VoxelizeParams vox;
    vox.voxelNm = voxel_nm;
    const auto materials = fab::voxelize(cell, bounds, vox);

    // Noise-free rendering: the GDSII is already the ground truth.
    image::Volume3D intensity(materials.nx(), materials.ny(),
                              materials.nz());
    for (size_t z = 0; z < materials.nz(); ++z)
        for (size_t y = 0; y < materials.ny(); ++y)
            for (size_t x = 0; x < materials.nx(); ++x)
                intensity.at(x, y, z) = static_cast<float>(
                    scope::materialContrast(
                        fab::voxelMaterial(materials.at(x, y, z)),
                        models::Detector::Se));

    PlanarScales scales{voxel_nm, voxel_nm, voxel_nm};
    return analyzeRegion(intensity, scales, models::Detector::Se);
}

} // namespace re
} // namespace hifi
