#include "re/topology_match.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/telemetry.hh"

namespace hifi
{
namespace re
{

using models::Role;
using models::Topology;

const std::vector<TopologyTemplate> &
topologyLibrary()
{
    static const std::vector<TopologyTemplate> library = [] {
        std::vector<TopologyTemplate> lib;

        TopologyTemplate classic;
        classic.name = "classic SA";
        classic.reference = "Keeth et al., DRAM Circuit Design [42]";
        classic.family = Topology::Classic;
        classic.commonGateComponents = 1; // bridged PEQ
        classic.devicesPerPair = {
            {Role::Column, 2}, {Role::Nsa, 2},       {Role::Psa, 2},
            {Role::Precharge, 1}, {Role::Equalizer, 1},
        };
        classic.hasEqualizer = true;
        lib.push_back(classic);

        TopologyTemplate ocsa;
        ocsa.name = "offset-cancellation SA";
        ocsa.reference = "Kim, Song, Jung, TVLSI 2019 [45]";
        ocsa.family = Topology::Ocsa;
        ocsa.commonGateComponents = 3; // ISO, OC, PRE
        ocsa.devicesPerPair = {
            {Role::Column, 2}, {Role::Iso, 1},  {Role::Oc, 1},
            {Role::Nsa, 2},    {Role::Psa, 2},  {Role::Precharge, 1},
        };
        ocsa.hasEqualizer = false;
        lib.push_back(ocsa);

        // Variants the matcher must reject on the studied chips.
        TopologyTemplate iso_sa;
        iso_sa.name = "isolation SA (research proposal)";
        iso_sa.reference = "CLR-DRAM-style isolated latch [66]";
        iso_sa.family = Topology::Classic;
        iso_sa.commonGateComponents = 2; // PEQ + ISO strips
        iso_sa.devicesPerPair = {
            {Role::Column, 2}, {Role::Iso, 2},       {Role::Nsa, 2},
            {Role::Psa, 2},    {Role::Precharge, 1},
            {Role::Equalizer, 1},
        };
        iso_sa.hasEqualizer = true;
        lib.push_back(iso_sa);

        TopologyTemplate pre_only;
        pre_only.name = "precharge-only SA (no equalizer)";
        pre_only.reference = "PF-DRAM-style precharge-free ideas [81]";
        pre_only.family = Topology::Classic;
        pre_only.commonGateComponents = 1;
        pre_only.devicesPerPair = {
            {Role::Column, 2}, {Role::Nsa, 2},       {Role::Psa, 2},
            {Role::Precharge, 1},
        };
        pre_only.hasEqualizer = false;
        lib.push_back(pre_only);

        return lib;
    }();
    return library;
}

namespace
{

/// Per-pair device counts of an analysis (latch count sets the pairs).
std::map<Role, double>
devicesPerPair(const RegionAnalysis &analysis, size_t &pairs_out)
{
    const size_t nsa = analysis.countRole(Role::Nsa);
    pairs_out = std::max<size_t>(1, nsa / 2);
    std::map<Role, double> out;
    for (size_t ri = 0; ri < static_cast<size_t>(Role::NumRoles);
         ++ri) {
        const Role role = static_cast<Role>(ri);
        if (role == Role::Lsa)
            continue; // datapath, not part of the SA circuit
        const size_t n = analysis.countRole(role);
        if (n)
            out[role] =
                static_cast<double>(n) / static_cast<double>(pairs_out);
    }
    return out;
}

} // namespace

std::vector<MatchScore>
matchTopology(const RegionAnalysis &analysis)
{
    const telemetry::Span span("re.topology_match");
    size_t pairs = 1;
    const auto observed = devicesPerPair(analysis, pairs);

    std::vector<MatchScore> scores;
    for (const auto &tmpl : topologyLibrary()) {
        MatchScore ms;
        ms.candidate = &tmpl;
        double score = 1.0;

        // Common-gate component count: strong discriminator.  The
        // template describes one SA set; chips place two stacked
        // sets, so an exact multiple (x1 or x2) also matches.
        const bool strips_match =
            analysis.commonGateStrips == tmpl.commonGateComponents ||
            analysis.commonGateStrips ==
                2 * tmpl.commonGateComponents;
        if (!strips_match) {
            score -= 0.35;
            std::ostringstream ss;
            ss << "common-gate components: observed "
               << analysis.commonGateStrips << ", template has "
               << tmpl.commonGateComponents << " per SA set";
            ms.mismatches.push_back(ss.str());
        }

        // Equalizer presence.
        const bool observed_eq =
            analysis.countRole(Role::Equalizer) > 0;
        if (observed_eq != tmpl.hasEqualizer) {
            score -= 0.25;
            ms.mismatches.push_back(
                observed_eq ? "observed an equalizer the template "
                              "lacks"
                            : "template expects an equalizer");
        }

        // Device multiset: penalize each per-pair count difference.
        std::map<Role, double> expected;
        for (const auto &[role, n] : tmpl.devicesPerPair)
            expected[role] = static_cast<double>(n);
        for (const auto &[role, n] : expected) {
            const auto it = observed.find(role);
            const double got = it == observed.end() ? 0.0 : it->second;
            const double err = std::abs(got - n) / n;
            if (err > 0.25) {
                score -= std::min(0.15, 0.1 * err);
                std::ostringstream ss;
                ss << models::roleName(role) << ": " << got
                   << " per pair vs " << n;
                ms.mismatches.push_back(ss.str());
            }
        }
        for (const auto &[role, got] : observed) {
            if (!expected.count(role)) {
                score -= 0.15;
                ms.mismatches.push_back(
                    "unexpected " + models::roleName(role) +
                    " devices");
            }
        }

        // Cross-coupling.
        if (tmpl.crossCoupledLatch &&
            !analysis.crossCouplingConsistent()) {
            score -= 0.10;
            ms.mismatches.push_back("latch cross-coupling not traced");
        }

        ms.score = std::max(0.0, score);
        scores.push_back(std::move(ms));
    }
    std::stable_sort(scores.begin(), scores.end(),
                     [](const MatchScore &a, const MatchScore &b) {
                         return a.score > b.score;
                     });
    return scores;
}

const TopologyTemplate &
bestMatch(const RegionAnalysis &analysis)
{
    const auto scores = matchTopology(analysis);
    if (scores.empty())
        throw std::logic_error("bestMatch: empty template library");
    return *scores.front().candidate;
}

} // namespace re
} // namespace hifi
