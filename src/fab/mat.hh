/**
 * @file
 * MAT (memory array tile) slice generator: bitlines on M1, buried
 * wordline gates (BCAT), and storage capacitors arranged in the
 * honeycomb lattice the paper images on C5 (Fig. 7a, [4], [77]).
 *
 * Used for the imaging-capability demonstrations and for the Fig. 13
 * free-space audit (no spare bitline track fits in the MAT).
 */

#ifndef HIFI_FAB_MAT_HH
#define HIFI_FAB_MAT_HH

#include <memory>

#include "layout/cell.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace fab
{

/** Geometry of a generated MAT slice. */
struct MatSpec
{
    size_t bitlines = 8;
    size_t wordlines = 12;

    double blPitchNm = 39.0;
    double blWidthNm = 26.0;
    double wlPitchNm = 58.0;
    double wlWidthNm = 30.0;

    /// Capacitor pillar diameter (drawn as a square of this side).
    double capSizeNm = 30.0;

    static MatSpec fromChip(const models::ChipSpec &chip,
                            size_t bitlines = 8, size_t wordlines = 12);
};

/**
 * Build the MAT slice: wordline strips on the gate layer (BCAT),
 * bitlines on M1, and one capacitor per cell on the capacitor layer,
 * offset every other wordline by half a bitline pitch (honeycomb).
 */
std::shared_ptr<layout::Cell> buildMatSlice(const MatSpec &spec);

} // namespace fab
} // namespace hifi

#endif // HIFI_FAB_MAT_HH
