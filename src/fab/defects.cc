#include "fab/defects.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/rng.hh"
#include "common/telemetry.hh"
#include "fab/materials.hh"
#include "layout/layer.hh"

namespace hifi
{
namespace fab
{

const std::string &
defectKindName(DefectKind kind)
{
    static const std::array<std::string,
                            static_cast<size_t>(DefectKind::NumKinds)>
        names = {"bitline-short", "bitline-open", "missing-via",
                 "particle"};
    return names.at(static_cast<size_t>(kind));
}

std::optional<common::Error>
validate(const DefectParams &params)
{
    using common::Error;
    using common::ErrorCode;
    if (params.particleDiameterNm <= 0.0)
        return Error{ErrorCode::InvalidArgument,
                     "DefectParams: particleDiameterNm must be > 0"};
    if (params.total() > 64)
        return Error{ErrorCode::InvalidArgument,
                     "DefectParams: more than 64 defects requested"};
    return std::nullopt;
}

namespace
{

/// Per-defect RNG stream id, unique across kinds and instances.
uint64_t
stream(DefectKind kind, size_t instance)
{
    return (static_cast<uint64_t>(kind) << 32) | instance;
}

struct Stamper
{
    image::Volume3D &vol;
    const common::Rect &region;
    double v;

    void
    fill(const common::Rect &r, layout::Layer layer, float value)
    {
        const layout::LayerZ z = layout::layerZ(layer);
        const auto clampi = [](double a, size_t hi) {
            return static_cast<size_t>(
                std::clamp(a, 0.0, static_cast<double>(hi)));
        };
        const size_t x0 = clampi((r.x0 - region.x0) / v, vol.nx());
        const size_t x1 =
            clampi(std::ceil((r.x1 - region.x0) / v), vol.nx());
        const size_t y0 = clampi((r.y0 - region.y0) / v, vol.ny());
        const size_t y1 =
            clampi(std::ceil((r.y1 - region.y0) / v), vol.ny());
        const size_t z0 = clampi(z.z0 / v, vol.nz());
        const size_t z1 = clampi(std::ceil(z.z1 / v), vol.nz());
        for (size_t zz = z0; zz < z1; ++zz)
            for (size_t yy = y0; yy < y1; ++yy)
                for (size_t xx = x0; xx < x1; ++xx)
                    vol.at(xx, yy, zz) = value;
    }

    void
    disc(double cx, double cy, double diameter, layout::Layer layer,
         float value)
    {
        const layout::LayerZ z = layout::layerZ(layer);
        const double rad = 0.5 * diameter;
        const auto clampi = [](double a, size_t hi) {
            return static_cast<size_t>(
                std::clamp(a, 0.0, static_cast<double>(hi)));
        };
        const size_t x0 = clampi((cx - rad - region.x0) / v, vol.nx());
        const size_t x1 = clampi(
            std::ceil((cx + rad - region.x0) / v), vol.nx());
        const size_t y0 = clampi((cy - rad - region.y0) / v, vol.ny());
        const size_t y1 = clampi(
            std::ceil((cy + rad - region.y0) / v), vol.ny());
        const size_t z0 = clampi(z.z0 / v, vol.nz());
        const size_t z1 = clampi(std::ceil(z.z1 / v), vol.nz());
        for (size_t yy = y0; yy < y1; ++yy) {
            const double py =
                region.y0 + (static_cast<double>(yy) + 0.5) * v - cy;
            for (size_t xx = x0; xx < x1; ++xx) {
                const double px = region.x0 +
                    (static_cast<double>(xx) + 0.5) * v - cx;
                if (px * px + py * py > rad * rad)
                    continue;
                for (size_t zz = z0; zz < z1; ++zz)
                    vol.at(xx, yy, zz) = value;
            }
        }
    }
};

} // namespace

common::Result<std::vector<PlantedDefect>>
plantDefects(image::Volume3D &vol, const SaRegionTruth &truth,
             double voxelNm, const DefectParams &params)
{
    using R = common::Result<std::vector<PlantedDefect>>;
    const telemetry::Span span("fab.defects");

    if (const auto err = validate(params))
        return R(*err);
    if (vol.empty() || voxelNm <= 0.0)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "plantDefects: empty volume or bad voxel "
                          "size");
    std::vector<PlantedDefect> planted;
    if (!params.any())
        return R(std::move(planted));

    const common::Rect &region = truth.region;
    const size_t n_bl = truth.bitlines.size();
    const double v = voxelNm;
    Stamper stamp{vol, region, v};

    // Feature sizes chosen to survive segmentation: several voxels
    // wide so blur and the morphological opening cannot erase them.
    const double cut_nm = std::max(6.0 * v, 30.0);

    // Resolvability bookkeeping: one structural defect per bitline,
    // pairwise-disjoint footprints.
    std::vector<bool> bl_used(n_bl, false);
    std::vector<common::Rect> claimed;
    const auto claim = [&](const common::Rect &r) {
        const common::Rect guard = r.inflate(60.0);
        for (const auto &c : claimed)
            if (!guard.intersect(c).empty())
                return false;
        claimed.push_back(guard);
        return true;
    };
    // Middle band: clear of the column muxes and LSA at the region
    // ends, where the layout is densest.
    const auto band_x = [&](common::Rng &rng) {
        return region.x0 +
            region.width() * rng.uniform(0.3, 0.7);
    };
    constexpr int kTries = 256;

    // Bitline shorts: copper bridge joining two adjacent bitlines.
    for (size_t i = 0; i < params.bitlineShorts; ++i) {
        common::Rng rng(params.seed,
                        stream(DefectKind::BitlineShort, i));
        bool placed = false;
        for (int t = 0; t < kTries && !placed; ++t) {
            if (n_bl < 2)
                break;
            const auto b = static_cast<size_t>(
                rng.uniform(0.0, static_cast<double>(n_bl - 1)));
            if (b + 1 >= n_bl || bl_used[b] || bl_used[b + 1])
                continue;
            const double xc = band_x(rng);
            const common::Rect &lo = truth.bitlines[b];
            const common::Rect &hi = truth.bitlines[b + 1];
            const common::Rect bridge(
                xc - 0.5 * cut_nm, std::min(lo.y0, hi.y0),
                xc + 0.5 * cut_nm, std::max(lo.y1, hi.y1));
            if (!claim(bridge))
                continue;
            stamp.fill(bridge, layout::Layer::Metal1,
                       static_cast<float>(Material::Copper));
            bl_used[b] = bl_used[b + 1] = true;
            planted.push_back({DefectKind::BitlineShort, bridge,
                               static_cast<long>(b),
                               static_cast<long>(b + 1)});
            placed = true;
        }
        if (!placed)
            return R::failure(
                common::ErrorCode::FailedPrecondition,
                "plantDefects: no room for bitline short #" +
                    std::to_string(i) + " (" +
                    std::to_string(n_bl) + " bitlines)");
    }

    // Bitline opens: etch a gap out of one bitline.
    for (size_t i = 0; i < params.bitlineOpens; ++i) {
        common::Rng rng(params.seed,
                        stream(DefectKind::BitlineOpen, i));
        bool placed = false;
        for (int t = 0; t < kTries && !placed; ++t) {
            if (n_bl == 0)
                break;
            const auto b = static_cast<size_t>(
                rng.uniform(0.0, static_cast<double>(n_bl)));
            if (b >= n_bl || bl_used[b])
                continue;
            const double xc = band_x(rng);
            const common::Rect &bl = truth.bitlines[b];
            const common::Rect gap(xc - 0.5 * cut_nm, bl.y0 - v,
                                   xc + 0.5 * cut_nm, bl.y1 + v);
            if (!claim(gap))
                continue;
            stamp.fill(gap, layout::Layer::Metal1,
                       static_cast<float>(Material::Oxide));
            bl_used[b] = true;
            planted.push_back({DefectKind::BitlineOpen, gap,
                               static_cast<long>(b), -1});
            placed = true;
        }
        if (!placed)
            return R::failure(
                common::ErrorCode::FailedPrecondition,
                "plantDefects: no room for bitline open #" +
                    std::to_string(i) + " (" +
                    std::to_string(n_bl) + " bitlines)");
    }

    // Missing vias: erase a latch cross-coupling contact.
    std::vector<const PlacedDevice *> via_candidates;
    for (const auto &d : truth.devices)
        if (!d.couplingContact.empty())
            via_candidates.push_back(&d);
    std::vector<bool> via_used(via_candidates.size(), false);
    for (size_t i = 0; i < params.missingVias; ++i) {
        common::Rng rng(params.seed,
                        stream(DefectKind::MissingVia, i));
        bool placed = false;
        for (int t = 0; t < kTries && !placed; ++t) {
            if (via_candidates.empty())
                break;
            const auto ci = static_cast<size_t>(rng.uniform(
                0.0, static_cast<double>(via_candidates.size())));
            if (ci >= via_candidates.size() || via_used[ci])
                continue;
            const PlacedDevice &dev = *via_candidates[ci];
            const common::Rect cut = dev.couplingContact.inflate(v);
            if (!claim(cut))
                continue;
            stamp.fill(cut, layout::Layer::Contact,
                       static_cast<float>(Material::Oxide));
            via_used[ci] = true;
            planted.push_back({DefectKind::MissingVia, cut,
                               static_cast<long>(dev.bitline),
                               static_cast<long>(dev.couplesTo)});
            placed = true;
        }
        if (!placed)
            return R::failure(
                common::ErrorCode::FailedPrecondition,
                "plantDefects: no free coupling contact for missing "
                "via #" +
                    std::to_string(i) + " (" +
                    std::to_string(via_candidates.size()) +
                    " candidates)");
    }

    // Particles: an oversized conductive blob in the contact slab.
    // Keep clear of drawn gates and contacts so the blob cannot fake
    // a cross-coupling path.
    for (size_t i = 0; i < params.particles; ++i) {
        common::Rng rng(params.seed,
                        stream(DefectKind::Particle, i));
        const double dia = params.particleDiameterNm;
        bool placed = false;
        for (int t = 0; t < kTries && !placed; ++t) {
            // Dense layouts (small pitch, many latch tabs) can leave
            // almost no clearance in the middle band; fall back to
            // the whole region for the second half of the tries.
            const bool wide = t >= kTries / 2;
            const double cx = wide
                ? region.x0 + region.width() * rng.uniform(0.05, 0.95)
                : band_x(rng);
            const double cy = region.y0 +
                region.height() *
                    (wide ? rng.uniform(0.05, 0.95)
                          : rng.uniform(0.15, 0.85));
            const common::Rect foot(cx - 0.5 * dia, cy - 0.5 * dia,
                                    cx + 0.5 * dia, cy + 0.5 * dia);
            // Only the latch gates and their poly tabs matter: the
            // cross-coupling trace consults contact-slab blobs that
            // overlap a latch gate component, so a particle there
            // could fake (or mask) a coupling.  Strip, column and
            // LSA gates never touch the contact logic.
            bool clear = true;
            for (const auto &d : truth.devices) {
                if (d.couplingContact.empty())
                    continue;
                const common::Rect tab(
                    std::min(d.gate.x0, d.couplingContact.x0),
                    std::min(d.gate.y0, d.couplingContact.y0),
                    std::max(d.gate.x1, d.couplingContact.x1),
                    std::max(d.gate.y1, d.couplingContact.y1));
                if (!foot.intersect(tab.inflate(30.0)).empty()) {
                    clear = false;
                    break;
                }
            }
            if (!clear || !claim(foot))
                continue;
            stamp.disc(cx, cy, dia, layout::Layer::Contact,
                       static_cast<float>(Material::Tungsten));
            planted.push_back({DefectKind::Particle, foot, -1, -1});
            placed = true;
        }
        if (!placed)
            return R::failure(
                common::ErrorCode::FailedPrecondition,
                "plantDefects: no room for particle #" +
                    std::to_string(i));
    }

    return R(std::move(planted));
}

} // namespace fab
} // namespace hifi
