/**
 * @file
 * Silicon defect library: physically plausible manufacturing defects
 * stamped into the voxelized volume, with exact ground truth returned
 * so the reverse-engineering stage can be scored on detection and
 * classification.
 *
 * Four defect kinds (the classic DRAM-periphery failure modes):
 *  - bitline short:  a copper bridge joining two adjacent bitlines
 *    in the M1 slab;
 *  - bitline open:   a gap etched out of one bitline;
 *  - missing via:    a latch cross-coupling contact that was never
 *    filled (erased from the Contact slab);
 *  - particle:       an oversized conductive blob landed in the
 *    Contact slab.
 *
 * All placement draws are counter-seeded per defect instance, so a
 * planted scenario is reproducible from (seed, params) alone.
 */

#ifndef HIFI_FAB_DEFECTS_HH
#define HIFI_FAB_DEFECTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "common/result.hh"
#include "fab/sa_region.hh"
#include "image/volume3d.hh"

namespace hifi
{
namespace fab
{

/** Kinds of silicon defect the library can plant. */
enum class DefectKind
{
    BitlineShort = 0,
    BitlineOpen,
    MissingVia,
    Particle,
    NumKinds
};

const std::string &defectKindName(DefectKind kind);

/** How many defects of each kind to plant, and where the draws come
 * from.  All zero (the default) leaves the volume untouched. */
struct DefectParams
{
    uint64_t seed = 1;

    size_t bitlineShorts = 0;
    size_t bitlineOpens = 0;
    size_t missingVias = 0;
    size_t particles = 0;

    /// Diameter of a particle defect (nm); must dwarf a contact so
    /// the RE stage can tell them apart.
    double particleDiameterNm = 140.0;

    size_t total() const
    {
        return bitlineShorts + bitlineOpens + missingVias + particles;
    }
    bool any() const { return total() > 0; }
};

/// Domain check; nullopt when valid.
std::optional<common::Error> validate(const DefectParams &params);

/** Ground truth of one planted defect. */
struct PlantedDefect
{
    DefectKind kind = DefectKind::BitlineShort;

    /// Region-coordinate footprint (nm) of the stamped change.
    common::Rect footprint;

    /// Affected bitline indices: shorts join A and B; opens break A;
    /// a missing via disconnects the gate on A's side from B.  -1
    /// when not applicable (particles).
    long bitlineA = -1;
    long bitlineB = -1;
};

/**
 * Stamp the requested defects into the voxelized volume (in place)
 * and return the exact ground truth.
 *
 * Placement respects resolvability constraints — defects land in the
 * middle band of the region, on distinct bitlines, with disjoint
 * footprints, and particles avoid drawn gates — so every planted
 * defect is detectable in principle.  Returns FailedPrecondition when
 * the region cannot host the requested defect mix (too few bitlines
 * or latch contacts, or no room left after the constraints).
 *
 * @param vol     voxel volume from fab::voxelize, modified in place
 * @param truth   the generating fab's ground truth (for geometry)
 * @param voxelNm voxel edge length used to build `vol`
 */
common::Result<std::vector<PlantedDefect>>
plantDefects(image::Volume3D &vol, const SaRegionTruth &truth,
             double voxelNm, const DefectParams &params);

} // namespace fab
} // namespace hifi

#endif // HIFI_FAB_DEFECTS_HH
