#include "fab/mat.hh"

#include <stdexcept>
#include <string>

namespace hifi
{
namespace fab
{

using common::Rect;
using layout::Layer;

MatSpec
MatSpec::fromChip(const models::ChipSpec &chip, size_t bitlines,
                  size_t wordlines)
{
    MatSpec spec;
    spec.bitlines = bitlines;
    spec.wordlines = wordlines;
    spec.blPitchNm = chip.blPitchNm;
    spec.blWidthNm = chip.blWidthNm;
    spec.wlPitchNm = chip.blPitchNm * 1.5; // 6F^2: 3F vs 2F pitches
    spec.wlWidthNm = chip.blPitchNm * 0.75;
    spec.capSizeNm = chip.blPitchNm * 0.8;
    return spec;
}

std::shared_ptr<layout::Cell>
buildMatSlice(const MatSpec &spec)
{
    if (spec.bitlines == 0 || spec.wordlines == 0)
        throw std::invalid_argument("buildMatSlice: empty MAT");

    auto cell = std::make_shared<layout::Cell>("MAT_SLICE");
    const double margin = spec.blPitchNm;
    const double width =
        static_cast<double>(spec.wordlines) * spec.wlPitchNm +
        2.0 * margin;
    const double height =
        static_cast<double>(spec.bitlines) * spec.blPitchNm +
        2.0 * margin;

    // Bitlines along X on M1.
    for (size_t b = 0; b < spec.bitlines; ++b) {
        const double yc = margin +
            static_cast<double>(b) * spec.blPitchNm +
            spec.blWidthNm / 2.0;
        cell->addShape(Rect(0.0, yc - spec.blWidthNm / 2.0, width,
                            yc + spec.blWidthNm / 2.0),
                       Layer::Metal1, "BL" + std::to_string(b));
    }

    // Buried wordline strips along Y on the gate layer (BCAT).
    for (size_t w = 0; w < spec.wordlines; ++w) {
        const double xc = margin +
            static_cast<double>(w) * spec.wlPitchNm +
            spec.wlWidthNm / 2.0;
        cell->addShape(Rect(xc - spec.wlWidthNm / 2.0, 0.0,
                            xc + spec.wlWidthNm / 2.0, height),
                       Layer::Gate, "WL" + std::to_string(w));
    }

    // Capacitors: one per cell, honeycomb packing (odd columns offset
    // by half a bitline pitch).
    const double cs = spec.capSizeNm;
    for (size_t w = 0; w < spec.wordlines; ++w) {
        for (size_t b = 0; b < spec.bitlines; ++b) {
            const double xc = margin +
                (static_cast<double>(w) + 0.5) * spec.wlPitchNm;
            double yc = margin +
                static_cast<double>(b) * spec.blPitchNm +
                spec.blWidthNm / 2.0;
            if (w % 2 == 1)
                yc += spec.blPitchNm / 2.0;
            cell->addShape(Rect(xc - cs / 2.0, yc - cs / 2.0,
                                xc + cs / 2.0, yc + cs / 2.0),
                           Layer::Capacitor);
        }
    }
    return cell;
}

} // namespace fab
} // namespace hifi
