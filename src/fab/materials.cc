#include "fab/materials.hh"

#include <array>

namespace hifi
{
namespace fab
{

const std::string &
materialName(Material m)
{
    static const std::array<std::string, kNumMaterials> names = {
        "oxide", "silicon", "polysilicon", "tungsten", "copper",
        "capacitor-metal",
    };
    return names.at(static_cast<size_t>(m));
}

Material
materialForLayer(layout::Layer layer)
{
    using layout::Layer;
    switch (layer) {
      case Layer::Active:
        return Material::Silicon;
      case Layer::Gate:
        return Material::Polysilicon;
      case Layer::Contact:
      case Layer::Via1:
        return Material::Tungsten;
      case Layer::Metal1:
      case Layer::Metal2:
        return Material::Copper;
      case Layer::Capacitor:
        return Material::CapacitorMetal;
      default:
        return Material::Oxide;
    }
}

double
lerScale(Material m)
{
    switch (m) {
      case Material::Polysilicon:
        return 1.0;
      case Material::Silicon:
        return 0.8;
      case Material::CapacitorMetal:
        return 0.7;
      case Material::Copper:
        return 0.6;
      case Material::Tungsten:
        return 0.5;
      case Material::Oxide:
      default:
        return 0.0;
    }
}

} // namespace fab
} // namespace hifi
