/**
 * @file
 * Virtual fab: parametric generator of sense-amplifier-region layouts.
 *
 * The generator produces a physically plausible slice of the SA strip
 * between two MATs, with the layout facts the paper reverse engineers
 * (Section V):
 *
 *  - bitlines (M1) run along X through the region, at the MAT pitch;
 *  - column-mux transistors are the first elements after the MAT,
 *    staggered over four X slots (one per bitline in a group of 4);
 *  - latch devices are coupled pairs sharing one active region, with
 *    their width along X and gate-poly tabs cross-coupling each gate
 *    to the partner bitline through a contact (Fig. 8); adjacent
 *    pairs are staggered over two X sub-columns, as in Fig. 10;
 *  - precharge / isolation / offset-cancellation devices are
 *    common-gate strips spanning the whole region along Y, with one
 *    folded active segment per bitline pair;
 *  - classic chips bridge the precharge and equalizer strips into one
 *    PEQ-driven component; OCSA chips have three independent strips
 *    (ISO, OC, PRE) and no equalizer;
 *  - an LSA block (next datapath stage) sits at the far end.
 *
 * The generator returns both the layout cell and the exact ground
 * truth (device rectangles, roles, strip count), which the reverse-
 * engineering pipeline is validated against.
 */

#ifndef HIFI_FAB_SA_REGION_HH
#define HIFI_FAB_SA_REGION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.hh"
#include "layout/cell.hh"
#include "models/chip_data.hh"
#include "models/process.hh"

namespace hifi
{
namespace fab
{

/** Geometry of the generated SA-region slice. */
struct SaRegionSpec
{
    models::Topology topology = models::Topology::Classic;

    /// Sense-amplifier pairs in the slice (2 bitlines per pair).
    size_t pairs = 4;

    /**
     * Stacked SA sets between the two MATs (Section V-C: all studied
     * chips place two).  With 2, even pairs are served by SA1 (near
     * the left MAT) and odd pairs by the mirrored SA2 (near the right
     * MAT): layout MAT | SA1 | SA2 | MAT.
     */
    size_t stackedSas = 1;

    double blPitchNm = 39.0;
    double blWidthNm = 26.0;
    double transitionNm = 330.0;

    /**
     * Minimum gap kept between independent features so that they stay
     * resolvable at the imaging resolution (the pipeline sets this to
     * a few pixels).  Device widths that would violate it are clipped
     * and the clipped value recorded in the truth.
     */
    double minGapNm = 16.0;

    /**
     * Process variation: per-device gaussian jitter (sigma, nm)
     * applied to drawn widths and lengths.  The jittered values are
     * recorded in the truth, so validation stays exact.  0 disables.
     */
    double dimJitterNm = 0.0;

    /// Seed for the jitter draw (only used when dimJitterNm > 0 or
    /// variation.cdSigmaFrac > 0).
    uint64_t jitterSeed = 1;

    /**
     * Process-corner variation (models::cornerVariation preset or
     * custom): systematic CD bias, random per-device CD sigma and
     * cross-wafer CD drift are applied to the drawn dimensions here
     * (and recorded in the truth, so validation stays exact); the
     * LER fields are consumed by the voxelizer.  The default
     * (typical corner, all zero) reproduces the clean fab
     * bit-for-bit.
     */
    models::CornerVariation variation;

    // Drawn transistor dimensions (W, L in nm).
    models::Dims nsa{210, 52};
    models::Dims psa{150, 48};
    models::Dims pre{260, 39};
    models::Dims eq{250, 62};  ///< classic only
    models::Dims col{180, 38};
    models::Dims iso{300, 36}; ///< OCSA only
    models::Dims oc{120, 40};  ///< OCSA only
    models::Dims lsa{240, 45};

    /// Populate from a measured chip dataset.
    static SaRegionSpec fromChip(const models::ChipSpec &chip,
                                 size_t pairs = 4);
};

/** Ground-truth record of one placed transistor. */
struct PlacedDevice
{
    models::Role role = models::Role::Nsa;
    common::Rect gate;    ///< drawn gate rectangle (the W x L body)
    common::Rect active;  ///< active region it sits on
    size_t bitline = 0;   ///< index of the bitline it serves
    size_t couplesTo = 0; ///< latch only: bitline driving the gate

    /// Latch only: the contact joining this gate's poly tab to the
    /// partner bitline (Fig. 8).  Empty for non-latch devices.  The
    /// defect library erases exactly this rect for a missing-via
    /// defect.
    common::Rect couplingContact;
};

/** Ground truth for a generated region. */
struct SaRegionTruth
{
    models::Topology topology = models::Topology::Classic;
    common::Rect region;                ///< full region bounds
    std::vector<common::Rect> bitlines; ///< M1 bitline rects, by index
    std::vector<PlacedDevice> devices;

    /// Independent common-gate components (1 classic, 3 OCSA, per
    /// stacked SA set).
    size_t commonGateComponents = 0;

    size_t countRole(models::Role role) const;
};

/**
 * Build the SA-region slice.
 *
 * @param spec  geometry (possibly from SaRegionSpec::fromChip)
 * @param truth filled with the exact generated ground truth
 */
std::shared_ptr<layout::Cell> buildSaRegion(const SaRegionSpec &spec,
                                            SaRegionTruth &truth);

} // namespace fab
} // namespace hifi

#endif // HIFI_FAB_SA_REGION_HH
