/**
 * @file
 * Rasterizes a layout cell into a 3-D material volume, the "silicon"
 * the microscope simulator images.
 */

#ifndef HIFI_FAB_VOXELIZER_HH
#define HIFI_FAB_VOXELIZER_HH

#include "fab/materials.hh"
#include "image/volume3d.hh"
#include "layout/cell.hh"

namespace hifi
{
namespace fab
{

/** Voxelization settings. */
struct VoxelizeParams
{
    /// Edge length of a voxel (nm); isotropic.
    double voxelNm = 5.0;

    /// Vertical extent of the volume (nm above substrate).
    double zMaxNm = 270.0;
};

/**
 * Rasterize the flattened cell into a material volume.  Voxel values
 * are Material enum codes stored as floats; the background is Oxide.
 * Shapes are painted in layer z-order, later layers over earlier ones
 * (they occupy different z slabs anyway).
 *
 * The volume origin coincides with `bounds.x0/y0`; voxel (x,y,z)
 * covers [x*v, (x+1)*v) nm etc.
 */
image::Volume3D voxelize(const layout::Cell &cell,
                         const common::Rect &bounds,
                         const VoxelizeParams &params = {});

/// Material of a voxel value (clamped to the enum range).
Material voxelMaterial(float value);

} // namespace fab
} // namespace hifi

#endif // HIFI_FAB_VOXELIZER_HH
