/**
 * @file
 * Rasterizes a layout cell into a 3-D material volume, the "silicon"
 * the microscope simulator images.
 *
 * With a non-zero line-edge-roughness sigma the drawn edges are
 * perturbed by a smooth, per-edge value-noise profile (correlation
 * length `lerCorrLenNm`), scaled per material by fab::lerScale.  All
 * roughness draws are counter-seeded pure functions of
 * (lerSeed, shape index, edge, knot), so the rasterized volume is
 * identical at any thread count and any scenario is reproducible from
 * its parameters alone.
 */

#ifndef HIFI_FAB_VOXELIZER_HH
#define HIFI_FAB_VOXELIZER_HH

#include <cstdint>

#include "common/result.hh"
#include "fab/materials.hh"
#include "image/volume3d.hh"
#include "layout/cell.hh"

namespace hifi
{
namespace fab
{

/** Voxelization settings. */
struct VoxelizeParams
{
    /// Edge length of a voxel (nm); isotropic.
    double voxelNm = 5.0;

    /// Vertical extent of the volume (nm above substrate).
    double zMaxNm = 270.0;

    /// Line-edge roughness amplitude (nm, 1 sigma); 0 disables and
    /// keeps the rasterization bit-identical to the clean fab.
    double lerSigmaNm = 0.0;

    /// LER correlation length along an edge (nm).
    double lerCorrLenNm = 40.0;

    /// Seed for the roughness draws (counter-seeded per shape/edge).
    uint64_t lerSeed = 1;

    /**
     * How far (nm) a drawn shape may extend beyond the volume bounds
     * before voxelizeChecked treats the clip as an error.  Line-edge
     * roughness legally pushes edges a few sigma out of bounds, so
     * callers enabling LER should allow at least ~4 x lerSigmaNm.
     */
    double outOfBoundsTolNm = 0.0;
};

/**
 * Rasterize the flattened cell into a material volume.  Voxel values
 * are Material enum codes stored as floats; the background is Oxide.
 * Shapes are painted in layer z-order, later layers over earlier ones
 * (they occupy different z slabs anyway).
 *
 * The volume origin coincides with `bounds.x0/y0`; voxel (x,y,z)
 * covers [x*v, (x+1)*v) nm etc.
 *
 * Shapes crossing the volume boundary are silently clipped (the
 * legacy contract); use voxelizeChecked to get a typed error instead.
 */
image::Volume3D voxelize(const layout::Cell &cell,
                         const common::Rect &bounds,
                         const VoxelizeParams &params = {});

/**
 * Validated rasterization: like voxelize, but invalid inputs (empty
 * bounds, non-positive voxel size) and shapes that extend beyond the
 * volume bounds by more than `params.outOfBoundsTolNm` produce a
 * typed error instead of an exception or a silent clip.  Shapes
 * within the tolerance are clipped exactly as voxelize clips them.
 */
common::Result<image::Volume3D>
voxelizeChecked(const layout::Cell &cell, const common::Rect &bounds,
                const VoxelizeParams &params = {});

/// Material of a voxel value (clamped to the enum range).
Material voxelMaterial(float value);

} // namespace fab
} // namespace hifi

#endif // HIFI_FAB_VOXELIZER_HH
