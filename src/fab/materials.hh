/**
 * @file
 * Material identities used by the voxelizer and the microscope
 * simulator.  Each layout layer maps to a material; SEM contrast is a
 * property of the material and the detector (SE vs BSE).
 */

#ifndef HIFI_FAB_MATERIALS_HH
#define HIFI_FAB_MATERIALS_HH

#include <cstdint>
#include <string>

#include "layout/layer.hh"

namespace hifi
{
namespace fab
{

/** Materials appearing in the SA region cross sections. */
enum class Material : uint8_t
{
    Oxide = 0,     ///< inter-layer dielectric (background)
    Silicon,       ///< active regions (doped Si)
    Polysilicon,   ///< gates
    Tungsten,      ///< contacts and vias
    Copper,        ///< M1 / M2 wires
    CapacitorMetal,///< storage capacitor electrodes
    NumMaterials
};

constexpr size_t kNumMaterials =
    static_cast<size_t>(Material::NumMaterials);

const std::string &materialName(Material m);

/// Material deposited on each layout layer.
Material materialForLayer(layout::Layer layer);

/**
 * Relative line-edge-roughness susceptibility of a material's drawn
 * edges, scaling models::CornerVariation::lerSigmaNm in the
 * voxelizer.  Etched polysilicon is the roughest (1.0); damascene
 * copper and CMP-polished tungsten come out smoother; the oxide
 * background has no drawn edges at all (0.0).
 */
double lerScale(Material m);

} // namespace fab
} // namespace hifi

#endif // HIFI_FAB_MATERIALS_HH
