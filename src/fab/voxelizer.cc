#include "fab/voxelizer.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"

namespace hifi
{
namespace fab
{

namespace
{

/// Edge ids for the LER noise streams of one shape.
enum EdgeId : uint64_t
{
    kEdgeX0 = 0,
    kEdgeX1,
    kEdgeY0,
    kEdgeY1
};

/**
 * Smooth line-edge roughness profile: value noise with knots every
 * `corrLen` nm along the edge, each knot a counter-seeded gaussian
 * draw.  Pure function of (seed, shape, edge, knot) — independent of
 * evaluation order and thread count.
 */
double
lerOffsetNm(uint64_t seed, uint64_t shape, uint64_t edge, double t_nm,
            double corr_len_nm, double sigma_nm)
{
    const double t = std::max(0.0, t_nm) / corr_len_nm;
    const auto k0 = static_cast<uint64_t>(t);
    const double frac = t - static_cast<double>(k0);
    auto knot = [&](uint64_t k) {
        common::Rng rng(seed, ((shape * 4 + edge) << 24) | k);
        return rng.gaussian(0.0, sigma_nm);
    };
    return knot(k0) * (1.0 - frac) + knot(k0 + 1) * frac;
}

struct VoxelBox
{
    size_t x0, x1, y0, y1, z0, z1;
    float mat;

    // LER edge-offset tables (nm), indexed relative to the box's
    // voxel bounds: xoff*[yy - y0], yoff*[xx - x0].  Empty when the
    // shape rasterizes crisp edges.
    std::vector<double> xoff0, xoff1, yoff0, yoff1;
    common::Rect rect; ///< drawn rect (nm), for the rough-edge test
};

image::Volume3D
rasterize(const layout::Cell &cell, const common::Rect &bounds,
          const VoxelizeParams &params)
{
    const telemetry::Span span("fab.voxelize");
    const double v = params.voxelNm;
    const auto nx = static_cast<size_t>(
        std::ceil(bounds.width() / v));
    const auto ny = static_cast<size_t>(
        std::ceil(bounds.height() / v));
    const auto nz = static_cast<size_t>(
        std::ceil(params.zMaxNm / v));

    image::Volume3D vol(nx, ny, nz,
                        static_cast<float>(Material::Oxide));

    const double sigma = params.lerSigmaNm;
    const double corr = std::max(params.lerCorrLenNm, 2.0 * v);

    // Clip every drawn shape to voxel index boxes once, serially.
    std::vector<VoxelBox> boxes;
    size_t shape_idx = 0;
    for (const auto &shape : cell.flatten()) {
        const uint64_t sid = shape_idx++;
        const Material mat = materialForLayer(shape.layer);
        const double mat_sigma = sigma * lerScale(mat);
        const layout::LayerZ z = layout::layerZ(shape.layer);

        // Inflate the candidate rect by the largest credible edge
        // excursion so rough edges are not cut at the crisp bbox.
        const double guard = mat_sigma > 0.0 ? 4.0 * mat_sigma : 0.0;
        const common::Rect r =
            shape.rect.inflate(guard).intersect(bounds);
        if (r.empty())
            continue;

        VoxelBox box;
        box.mat = static_cast<float>(mat);
        box.rect = shape.rect;
        box.x0 = static_cast<size_t>(
            std::max(0.0, (r.x0 - bounds.x0) / v));
        box.y0 = static_cast<size_t>(
            std::max(0.0, (r.y0 - bounds.y0) / v));
        box.z0 = static_cast<size_t>(std::max(0.0, z.z0 / v));
        box.x1 = std::min(
            nx, static_cast<size_t>(std::ceil((r.x1 - bounds.x0) / v)));
        box.y1 = std::min(
            ny, static_cast<size_t>(std::ceil((r.y1 - bounds.y0) / v)));
        box.z1 = std::min(
            nz, static_cast<size_t>(std::ceil(z.z1 / v)));

        if (mat_sigma > 0.0 && box.x1 > box.x0 && box.y1 > box.y0) {
            // Precompute the four edge profiles over the box span;
            // the rasterizer then tests voxel centres against the
            // perturbed edges.
            box.xoff0.resize(box.y1 - box.y0);
            box.xoff1.resize(box.y1 - box.y0);
            for (size_t yy = box.y0; yy < box.y1; ++yy) {
                const double cy =
                    bounds.y0 + (static_cast<double>(yy) + 0.5) * v;
                box.xoff0[yy - box.y0] = lerOffsetNm(
                    params.lerSeed, sid, kEdgeX0, cy, corr, mat_sigma);
                box.xoff1[yy - box.y0] = lerOffsetNm(
                    params.lerSeed, sid, kEdgeX1, cy, corr, mat_sigma);
            }
            box.yoff0.resize(box.x1 - box.x0);
            box.yoff1.resize(box.x1 - box.x0);
            for (size_t xx = box.x0; xx < box.x1; ++xx) {
                const double cx =
                    bounds.x0 + (static_cast<double>(xx) + 0.5) * v;
                box.yoff0[xx - box.x0] = lerOffsetNm(
                    params.lerSeed, sid, kEdgeY0, cx, corr, mat_sigma);
                box.yoff1[xx - box.x0] = lerOffsetNm(
                    params.lerSeed, sid, kEdgeY1, cx, corr, mat_sigma);
            }
        }
        boxes.push_back(std::move(box));
    }

    // Rasterize z-slab parallel: each slab owns its voxels and paints
    // every shape in drawing order, so the per-voxel last writer (and
    // therefore the volume) is identical at any thread count.
    common::parallelFor(0, nz, 8, [&](size_t slab0, size_t slab1) {
        for (const auto &box : boxes) {
            const size_t zb = std::max(box.z0, slab0);
            const size_t ze = std::min(box.z1, slab1);
            if (zb >= ze)
                continue;
            if (box.xoff0.empty()) {
                // Crisp edges: the exact legacy index-box fill.
                for (size_t zz = zb; zz < ze; ++zz)
                    for (size_t yy = box.y0; yy < box.y1; ++yy)
                        for (size_t xx = box.x0; xx < box.x1; ++xx)
                            vol.at(xx, yy, zz) = box.mat;
                continue;
            }
            for (size_t yy = box.y0; yy < box.y1; ++yy) {
                const double cy = bounds.y0 +
                    (static_cast<double>(yy) + 0.5) *
                        params.voxelNm;
                const double ex0 =
                    box.rect.x0 + box.xoff0[yy - box.y0];
                const double ex1 =
                    box.rect.x1 + box.xoff1[yy - box.y0];
                for (size_t xx = box.x0; xx < box.x1; ++xx) {
                    const double cx = bounds.x0 +
                        (static_cast<double>(xx) + 0.5) *
                            params.voxelNm;
                    if (cx < ex0 || cx >= ex1)
                        continue;
                    const double ey0 =
                        box.rect.y0 + box.yoff0[xx - box.x0];
                    const double ey1 =
                        box.rect.y1 + box.yoff1[xx - box.x0];
                    if (cy < ey0 || cy >= ey1)
                        continue;
                    for (size_t zz = zb; zz < ze; ++zz)
                        vol.at(xx, yy, zz) = box.mat;
                }
            }
        }
    });
    return vol;
}

/// Largest distance (nm) a rect extends beyond the bounds.
double
boundsOverflowNm(const common::Rect &r, const common::Rect &bounds)
{
    return std::max({0.0, bounds.x0 - r.x0, r.x1 - bounds.x1,
                     bounds.y0 - r.y0, r.y1 - bounds.y1});
}

} // namespace

image::Volume3D
voxelize(const layout::Cell &cell, const common::Rect &bounds,
         const VoxelizeParams &params)
{
    if (bounds.empty())
        throw std::invalid_argument("voxelize: empty bounds");
    if (params.voxelNm <= 0.0)
        throw std::invalid_argument("voxelize: bad voxel size");
    return rasterize(cell, bounds, params);
}

common::Result<image::Volume3D>
voxelizeChecked(const layout::Cell &cell, const common::Rect &bounds,
                const VoxelizeParams &params)
{
    using R = common::Result<image::Volume3D>;
    if (bounds.empty())
        return R::failure(common::ErrorCode::InvalidArgument,
                          "voxelizeChecked: empty bounds");
    if (params.voxelNm <= 0.0)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "voxelizeChecked: bad voxel size");
    if (params.outOfBoundsTolNm < 0.0)
        return R::failure(common::ErrorCode::InvalidArgument,
                          "voxelizeChecked: negative bounds "
                          "tolerance");

    size_t idx = 0;
    for (const auto &shape : cell.flatten()) {
        const double overflow =
            boundsOverflowNm(shape.rect, bounds);
        if (overflow > params.outOfBoundsTolNm)
            return R::failure(
                common::ErrorCode::FailedPrecondition,
                "voxelizeChecked: shape #" + std::to_string(idx) +
                    " on layer " + layout::layerName(shape.layer) +
                    (shape.net.empty() ? std::string()
                                       : " (net " + shape.net + ")") +
                    " extends " + std::to_string(overflow) +
                    " nm beyond the volume bounds (tolerance " +
                    std::to_string(params.outOfBoundsTolNm) + " nm)");
        ++idx;
    }
    return R(rasterize(cell, bounds, params));
}

Material
voxelMaterial(float value)
{
    const long code = std::lround(value);
    if (code < 0 || code >= static_cast<long>(kNumMaterials))
        return Material::Oxide;
    return static_cast<Material>(code);
}

} // namespace fab
} // namespace hifi
