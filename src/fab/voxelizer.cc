#include "fab/voxelizer.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "common/telemetry.hh"

namespace hifi
{
namespace fab
{

image::Volume3D
voxelize(const layout::Cell &cell, const common::Rect &bounds,
         const VoxelizeParams &params)
{
    const telemetry::Span span("fab.voxelize");
    if (bounds.empty())
        throw std::invalid_argument("voxelize: empty bounds");
    if (params.voxelNm <= 0.0)
        throw std::invalid_argument("voxelize: bad voxel size");

    const double v = params.voxelNm;
    const auto nx = static_cast<size_t>(
        std::ceil(bounds.width() / v));
    const auto ny = static_cast<size_t>(
        std::ceil(bounds.height() / v));
    const auto nz = static_cast<size_t>(
        std::ceil(params.zMaxNm / v));

    image::Volume3D vol(nx, ny, nz,
                        static_cast<float>(Material::Oxide));

    // Clip every drawn shape to voxel index boxes once, serially.
    struct VoxelBox
    {
        size_t x0, x1, y0, y1, z0, z1;
        float mat;
    };
    std::vector<VoxelBox> boxes;
    for (const auto &shape : cell.flatten()) {
        const common::Rect r = shape.rect.intersect(bounds);
        if (r.empty())
            continue;
        const layout::LayerZ z = layout::layerZ(shape.layer);

        VoxelBox box;
        box.mat = static_cast<float>(materialForLayer(shape.layer));
        box.x0 = static_cast<size_t>(
            std::max(0.0, (r.x0 - bounds.x0) / v));
        box.y0 = static_cast<size_t>(
            std::max(0.0, (r.y0 - bounds.y0) / v));
        box.z0 = static_cast<size_t>(std::max(0.0, z.z0 / v));
        box.x1 = std::min(
            nx, static_cast<size_t>(std::ceil((r.x1 - bounds.x0) / v)));
        box.y1 = std::min(
            ny, static_cast<size_t>(std::ceil((r.y1 - bounds.y0) / v)));
        box.z1 = std::min(
            nz, static_cast<size_t>(std::ceil(z.z1 / v)));
        boxes.push_back(box);
    }

    // Rasterize z-slab parallel: each slab owns its voxels and paints
    // every shape in drawing order, so the per-voxel last writer (and
    // therefore the volume) is identical at any thread count.
    common::parallelFor(0, nz, 8, [&](size_t slab0, size_t slab1) {
        for (const auto &box : boxes) {
            const size_t zb = std::max(box.z0, slab0);
            const size_t ze = std::min(box.z1, slab1);
            for (size_t zz = zb; zz < ze; ++zz)
                for (size_t yy = box.y0; yy < box.y1; ++yy)
                    for (size_t xx = box.x0; xx < box.x1; ++xx)
                        vol.at(xx, yy, zz) = box.mat;
        }
    });
    return vol;
}

Material
voxelMaterial(float value)
{
    const long code = std::lround(value);
    if (code < 0 || code >= static_cast<long>(kNumMaterials))
        return Material::Oxide;
    return static_cast<Material>(code);
}

} // namespace fab
} // namespace hifi
