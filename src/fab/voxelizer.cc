#include "fab/voxelizer.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace fab
{

image::Volume3D
voxelize(const layout::Cell &cell, const common::Rect &bounds,
         const VoxelizeParams &params)
{
    if (bounds.empty())
        throw std::invalid_argument("voxelize: empty bounds");
    if (params.voxelNm <= 0.0)
        throw std::invalid_argument("voxelize: bad voxel size");

    const double v = params.voxelNm;
    const auto nx = static_cast<size_t>(
        std::ceil(bounds.width() / v));
    const auto ny = static_cast<size_t>(
        std::ceil(bounds.height() / v));
    const auto nz = static_cast<size_t>(
        std::ceil(params.zMaxNm / v));

    image::Volume3D vol(nx, ny, nz,
                        static_cast<float>(Material::Oxide));

    for (const auto &shape : cell.flatten()) {
        const common::Rect r = shape.rect.intersect(bounds);
        if (r.empty())
            continue;
        const layout::LayerZ z = layout::layerZ(shape.layer);
        const auto mat = static_cast<float>(
            materialForLayer(shape.layer));

        const auto x0 = static_cast<size_t>(
            std::max(0.0, (r.x0 - bounds.x0) / v));
        const auto y0 = static_cast<size_t>(
            std::max(0.0, (r.y0 - bounds.y0) / v));
        const auto z0 = static_cast<size_t>(
            std::max(0.0, z.z0 / v));
        const auto x1 = std::min(
            nx, static_cast<size_t>(std::ceil((r.x1 - bounds.x0) / v)));
        const auto y1 = std::min(
            ny, static_cast<size_t>(std::ceil((r.y1 - bounds.y0) / v)));
        const auto z1 = std::min(
            nz, static_cast<size_t>(std::ceil(z.z1 / v)));

        for (size_t zz = z0; zz < z1; ++zz)
            for (size_t yy = y0; yy < y1; ++yy)
                for (size_t xx = x0; xx < x1; ++xx)
                    vol.at(xx, yy, zz) = mat;
    }
    return vol;
}

Material
voxelMaterial(float value)
{
    const long code = std::lround(value);
    if (code < 0 || code >= static_cast<long>(kNumMaterials))
        return Material::Oxide;
    return static_cast<Material>(code);
}

} // namespace fab
} // namespace hifi
