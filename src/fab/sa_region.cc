#include "fab/sa_region.hh"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hh"
#include "common/telemetry.hh"

namespace hifi
{
namespace fab
{

using common::Rect;
using layout::Layer;
using models::Role;
using models::Topology;

namespace
{

constexpr double kActiveExt = 30.0;  ///< source/drain extension (nm)
constexpr double kZoneGap = 100.0;   ///< gap between element zones
constexpr double kTabWidth = 30.0;   ///< cross-coupling gate tab width
constexpr double kContact = 20.0;    ///< contact side
constexpr double kSourceGap = 60.0;  ///< latch shared-source gap

} // namespace

size_t
SaRegionTruth::countRole(Role role) const
{
    size_t n = 0;
    for (const auto &d : devices)
        if (d.role == role)
            ++n;
    return n;
}

SaRegionSpec
SaRegionSpec::fromChip(const models::ChipSpec &chip, size_t pairs)
{
    SaRegionSpec spec;
    spec.topology = chip.topology;
    spec.pairs = pairs;
    spec.blPitchNm = chip.blPitchNm;
    spec.blWidthNm = chip.blWidthNm;
    spec.transitionNm = chip.transitionNm;
    spec.nsa = *chip.role(Role::Nsa);
    spec.psa = *chip.role(Role::Psa);
    spec.pre = *chip.role(Role::Precharge);
    if (chip.role(Role::Equalizer))
        spec.eq = *chip.role(Role::Equalizer);
    spec.col = *chip.role(Role::Column);
    if (chip.role(Role::Iso))
        spec.iso = *chip.role(Role::Iso);
    if (chip.role(Role::Oc))
        spec.oc = *chip.role(Role::Oc);
    spec.lsa = *chip.role(Role::Lsa);
    return spec;
}

std::shared_ptr<layout::Cell>
buildSaRegion(const SaRegionSpec &spec, SaRegionTruth &truth)
{
    const telemetry::Span span("fab.build_region");
    if (spec.pairs == 0)
        throw std::invalid_argument("buildSaRegion: zero pairs");
    if (spec.stackedSas != 1 && spec.stackedSas != 2)
        throw std::invalid_argument("buildSaRegion: stackedSas must "
                                    "be 1 or 2");

    const size_t n_bl = 2 * spec.pairs;
    const double pitch = spec.blPitchNm;
    const double margin = pitch;
    const double region_h =
        2.0 * margin + (static_cast<double>(n_bl) - 1.0) * pitch +
        spec.blWidthNm;

    auto cell = std::make_shared<layout::Cell>(
        spec.topology == Topology::Classic ? "SA_REGION_CLASSIC"
                                           : "SA_REGION_OCSA");

    // Process variation: systematic corner CD bias, cross-wafer CD
    // drift, and per-device dimension jitter — all recorded in the
    // truth through the drawn rectangles, so validation stays exact.
    // Draw order is unchanged when the corner knobs are zero, keeping
    // the clean fab bit-identical.
    common::Rng jitter_rng(spec.jitterSeed);
    const models::CornerVariation &var = spec.variation;
    double total_w_hint = 1.0; // patched once the X budget is known
    auto jittered = [&](models::Dims d, double x_hint = -1.0) {
        double scale = 1.0 + var.cdBiasFrac;
        if (var.cdDriftFracAcross != 0.0 && x_hint >= 0.0)
            scale += var.cdDriftFracAcross *
                (x_hint / total_w_hint - 0.5);
        if (scale != 1.0) {
            d.w *= scale;
            d.l *= scale;
        }
        if (spec.dimJitterNm > 0.0) {
            d.w = std::max(10.0, d.w + jitter_rng.gaussian(
                                           0.0, spec.dimJitterNm));
            d.l = std::max(8.0, d.l + jitter_rng.gaussian(
                                          0.0, spec.dimJitterNm));
        }
        if (var.cdSigmaFrac > 0.0) {
            d.w = std::max(
                10.0, d.w * (1.0 + jitter_rng.gaussian(
                                       0.0, var.cdSigmaFrac)));
            d.l = std::max(
                8.0, d.l * (1.0 + jitter_rng.gaussian(
                                      0.0, var.cdSigmaFrac)));
        }
        return d;
    };
    truth = SaRegionTruth{};
    truth.topology = spec.topology;

    auto bl_center = [&](size_t i) {
        return margin + static_cast<double>(i) * pitch +
            spec.blWidthNm / 2.0;
    };
    auto pair_center = [&](size_t pair) {
        return (bl_center(2 * pair) + bl_center(2 * pair + 1)) / 2.0;
    };

    const bool ocsa = spec.topology == Topology::Ocsa;

    // ------- X budget ------------------------------------------------
    double x = spec.transitionNm;

    // Column zone: four staggered slots.
    const double col_slot = spec.col.l + 2.0 * kZoneGap;
    const double col_x = x;
    x += 4.0 * col_slot + kZoneGap;

    double iso_x = -1.0, oc_x = -1.0;
    if (ocsa) {
        iso_x = x;
        x += spec.iso.l + kZoneGap;
        oc_x = x;
        x += spec.oc.l + kZoneGap;
    }

    // Latch pairs are staggered over two sub-columns (Fig. 10), so
    // each latch zone is two pair-structures wide.
    const double nsa_pair_w =
        2.0 * spec.nsa.w + kSourceGap + 2.0 * kActiveExt;
    const double psa_pair_w =
        2.0 * spec.psa.w + kSourceGap + 2.0 * kActiveExt;
    const double nsa_x = x;
    x += 2.0 * nsa_pair_w + 2.0 * kZoneGap;
    const double psa_x = x;
    x += 2.0 * psa_pair_w + 2.0 * kZoneGap;

    const double pre_x = x;
    x += spec.pre.l + kZoneGap;
    double eq_x = -1.0;
    if (!ocsa) {
        eq_x = x;
        x += spec.eq.l + kZoneGap;
    }

    const double lsa_x = x;
    x += spec.lsa.w + kZoneGap + margin;
    const double region_w = x;

    // With two stacked SAs the region is SA1 followed by its mirror
    // image (MAT | SA1 | SA2 | MAT); even pairs belong to SA1, odd
    // pairs to SA2.
    const bool two_sas = spec.stackedSas == 2;
    const double total_w = two_sas ? 2.0 * region_w : region_w;
    total_w_hint = total_w;
    auto place = [&](const Rect &r, bool sa2) {
        return sa2 ? Rect(total_w - r.x1, r.y0, total_w - r.x0, r.y1)
                   : r;
    };
    auto in_sa2 = [&](size_t pair) {
        return two_sas && (pair % 2 == 1);
    };
    /// Physical wafer position of a zone x (mirrored for SA2), for
    /// the cross-wafer CD drift gradient.
    auto phys_x = [&](double x, bool sa2) {
        return sa2 ? total_w - x : x;
    };

    truth.region = Rect(0.0, 0.0, total_w, region_h);

    // ------- Bitlines -------------------------------------------------
    for (size_t i = 0; i < n_bl; ++i) {
        const double yc = bl_center(i);
        const Rect bl(0.0, yc - spec.blWidthNm / 2.0, total_w,
                      yc + spec.blWidthNm / 2.0);
        cell->addShape(bl, Layer::Metal1, "BL" + std::to_string(i));
        truth.bitlines.push_back(bl);
    }

    // ------- Column multiplexers ---------------------------------------
    for (size_t i = 0; i < n_bl; ++i) {
        const bool sa2 = in_sa2(i / 2);
        const models::Dims d = jittered(
            spec.col,
            phys_x(col_x + static_cast<double>(i % 4) * col_slot,
                   sa2));
        const double col_w =
            std::min(d.w, 4.0 * pitch - 2.0 * spec.minGapNm);
        const double yc = bl_center(i);
        const double gx =
            col_x + static_cast<double>(i % 4) * col_slot + kZoneGap;
        const Rect gate = place(
            Rect(gx, yc - col_w / 2.0, gx + d.l, yc + col_w / 2.0),
            sa2);
        const Rect active =
            place(Rect(gx - kActiveExt, yc - col_w / 2.0,
                       gx + d.l + kActiveExt, yc + col_w / 2.0),
                  sa2);
        cell->addShape(active, Layer::Active);
        cell->addShape(gate, Layer::Gate, "YI" + std::to_string(i % 4));
        cell->addShape(place(Rect(gx - kActiveExt, yc - kContact / 2.0,
                                  gx - kActiveExt + kContact,
                                  yc + kContact / 2.0),
                             sa2),
                       Layer::Contact);
        cell->addShape(place(Rect(gx + d.l + kActiveExt - kContact,
                                  yc - kContact / 2.0,
                                  gx + d.l + kActiveExt,
                                  yc + kContact / 2.0),
                             sa2),
                       Layer::Contact);
        truth.devices.push_back({Role::Column, gate, active, i, i});
    }

    // ------- Common-gate strips -----------------------------------------
    // One folded active segment per bitline pair keeps the segments
    // resolvable at the slice's pitch; the drawn (clipped) width is
    // recorded in the truth.
    auto add_strip = [&](Role role, double sx, double length,
                         double want_w, const std::string &net,
                         bool sa2) {
        cell->addShape(place(Rect(sx, 0.0, sx + length, region_h),
                             sa2),
                       Layer::Gate, net);
        for (size_t pair = 0; pair < spec.pairs; ++pair) {
            if (in_sa2(pair) != sa2)
                continue;
            const double w = std::min(
                jittered({want_w, length}, phys_x(sx, sa2)).w,
                2.0 * pitch - spec.minGapNm);
            const double yc = pair_center(pair);
            const Rect active =
                place(Rect(sx - kActiveExt, yc - w / 2.0,
                           sx + length + kActiveExt, yc + w / 2.0),
                      sa2);
            cell->addShape(active, Layer::Active);
            cell->addShape(
                place(Rect(sx + length + kActiveExt - kContact,
                           yc - kContact / 2.0,
                           sx + length + kActiveExt,
                           yc + kContact / 2.0),
                      sa2),
                Layer::Contact);
            const Rect body = place(
                Rect(sx, yc - w / 2.0, sx + length, yc + w / 2.0),
                sa2);
            truth.devices.push_back(
                {role, body, active, 2 * pair, 2 * pair});
        }
    };

    for (size_t set = 0; set < spec.stackedSas; ++set) {
        const bool sa2 = set == 1;
        const std::string sfx = sa2 ? "2" : "";
        if (ocsa) {
            add_strip(Role::Iso, iso_x, spec.iso.l, spec.iso.w,
                      "ISO" + sfx, sa2);
            add_strip(Role::Oc, oc_x, spec.oc.l, spec.oc.w,
                      "OC" + sfx, sa2);
            add_strip(Role::Precharge, pre_x, spec.pre.l, spec.pre.w,
                      "PRE" + sfx, sa2);
        } else {
            add_strip(Role::Precharge, pre_x, spec.pre.l, spec.pre.w,
                      "PEQ" + sfx, sa2);
            add_strip(Role::Equalizer, eq_x, spec.eq.l, spec.eq.w,
                      "PEQ" + sfx, sa2);
            // Bridge the two strips at the region edge: one PEQ
            // control per SA set.
            cell->addShape(place(Rect(pre_x, region_h - 15.0,
                                      eq_x + spec.eq.l, region_h),
                                 sa2),
                           Layer::Gate, "PEQ" + sfx);
        }
    }
    truth.commonGateComponents =
        (ocsa ? 3 : 1) * spec.stackedSas;

    // ------- Latch pairs --------------------------------------------------
    auto add_latch_pair = [&](Role role, double zone_x, double pair_w,
                              const models::Dims &dims, size_t pair) {
        const bool sa2 = in_sa2(pair);
        // Stagger: every second pair *within its SA set* shifts one
        // pair-structure to the right.
        const double lx = zone_x + kActiveExt +
            ((pair / spec.stackedSas) % 2 == 1 ? pair_w + kZoneGap
                                               : 0.0);
        const size_t a = 2 * pair;
        const size_t b = 2 * pair + 1;
        const double yp = pair_center(pair);

        const Rect active = place(
            Rect(lx - kActiveExt, yp - dims.l / 2.0 - 8.0,
                 lx + 2.0 * dims.w + kSourceGap + kActiveExt,
                 yp + dims.l / 2.0 + 8.0),
            sa2);
        cell->addShape(active, Layer::Active);

        const Rect gate_a = place(Rect(lx, yp - dims.l / 2.0,
                                       lx + dims.w,
                                       yp + dims.l / 2.0),
                                  sa2);
        const Rect gate_b = place(
            Rect(lx + dims.w + kSourceGap, yp - dims.l / 2.0,
                 lx + 2.0 * dims.w + kSourceGap, yp + dims.l / 2.0),
            sa2);
        const std::string prefix =
            (role == Role::Nsa ? "nSA" : "pSA") + std::to_string(pair);
        cell->addShape(gate_a, Layer::Gate, prefix + "a");
        cell->addShape(gate_b, Layer::Gate, prefix + "b");

        // Shared-source contact between the gates.
        const double sx = lx + dims.w + kSourceGap / 2.0;
        cell->addShape(place(Rect(sx - kContact / 2.0,
                                  yp - kContact / 2.0,
                                  sx + kContact / 2.0,
                                  yp + kContact / 2.0),
                             sa2),
                       Layer::Contact);

        // Cross-coupling tabs and contacts (Fig. 8): device A's gate
        // reaches bitline b, device B's gate reaches bitline a.
        const double yb = bl_center(b);
        cell->addShape(place(Rect(lx, yp, lx + kTabWidth, yb + 10.0),
                             sa2),
                       Layer::Gate, prefix + "a");
        const Rect contact_a = place(Rect(lx, yb - kContact / 2.0,
                                          lx + kTabWidth,
                                          yb + kContact / 2.0),
                                     sa2);
        cell->addShape(contact_a, Layer::Contact);
        const double ya = bl_center(a);
        const double bx = lx + dims.w + kSourceGap;
        cell->addShape(place(Rect(bx, ya - 10.0, bx + kTabWidth, yp),
                             sa2),
                       Layer::Gate, prefix + "b");
        const Rect contact_b = place(Rect(bx, ya - kContact / 2.0,
                                          bx + kTabWidth,
                                          ya + kContact / 2.0),
                                     sa2);
        cell->addShape(contact_b, Layer::Contact);

        truth.devices.push_back(
            {role, gate_a, active, a, b, contact_a});
        truth.devices.push_back(
            {role, gate_b, active, b, a, contact_b});
    };

    for (size_t pair = 0; pair < spec.pairs; ++pair) {
        add_latch_pair(Role::Nsa, nsa_x, nsa_pair_w,
                       jittered(spec.nsa,
                                phys_x(nsa_x, in_sa2(pair))),
                       pair);
        add_latch_pair(Role::Psa, psa_x, psa_pair_w,
                       jittered(spec.psa,
                                phys_x(psa_x, in_sa2(pair))),
                       pair);
    }

    // ------- LSA block (next datapath stage, Section V-C) ---------------
    for (size_t pair = 0; pair < spec.pairs; ++pair) {
        const bool sa2 = in_sa2(pair);
        const models::Dims d = jittered(spec.lsa, phys_x(lsa_x, sa2));
        const double yp = pair_center(pair);
        const Rect gate = place(Rect(lsa_x, yp - d.l / 2.0,
                                     lsa_x + d.w, yp + d.l / 2.0),
                                sa2);
        const Rect active =
            place(Rect(lsa_x - kActiveExt, yp - d.l / 2.0,
                       lsa_x + d.w + kActiveExt, yp + d.l / 2.0),
                  sa2);
        cell->addShape(active, Layer::Active);
        cell->addShape(gate, Layer::Gate, "LSA" + std::to_string(pair));
        truth.devices.push_back(
            {Role::Lsa, gate, active, 2 * pair, 2 * pair});
    }

    return cell;
}

} // namespace fab
} // namespace hifi
