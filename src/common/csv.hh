/**
 * @file
 * Tiny CSV writer, used by the examples to dump waveforms and sweep
 * results for external plotting.
 */

#ifndef HIFI_COMMON_CSV_HH
#define HIFI_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace hifi
{
namespace common
{

/** Streams rows of doubles (plus a header) to a CSV file. */
class CsvWriter
{
  public:
    /// Opens `path` for writing; throws std::runtime_error on failure.
    CsvWriter(const std::string &path,
              const std::vector<std::string> &columns);

    void addRow(const std::vector<double> &values);

    size_t rows() const { return rows_; }

  private:
    std::ofstream out_;
    size_t columns_;
    size_t rows_ = 0;
};

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_CSV_HH
