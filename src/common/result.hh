/**
 * @file
 * Typed error handling for the library's validated entry points.
 *
 * The pipeline's robustness contract (ISSUE 3) is that bad inputs and
 * degraded acquisitions produce *typed* outcomes, never crashes or
 * silent garbage.  `Result<T>` is a minimal success-or-error sum type:
 * callers that want exceptions can keep using the throwing wrappers,
 * while production callers branch on `ok()` and inspect the `Error`.
 */

#ifndef HIFI_COMMON_RESULT_HH
#define HIFI_COMMON_RESULT_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace hifi
{
namespace common
{

/// Coarse error classification, stable across message rewording.
enum class ErrorCode
{
    InvalidArgument, ///< a parameter is out of its documented domain
    NotFound,        ///< a named entity (e.g. chip id) does not exist
    FailedPrecondition, ///< inputs are individually valid but inconsistent
    DataLoss,        ///< an acquisition lost data beyond recovery
    Internal,        ///< unexpected failure inside the pipeline
    ResourceExhausted, ///< a queue/budget limit rejected the request
    Cancelled,         ///< the caller cancelled the work in flight
    DeadlineExceeded,  ///< a stage overran its configured deadline
};

inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidArgument:
        return "invalid-argument";
      case ErrorCode::NotFound:
        return "not-found";
      case ErrorCode::FailedPrecondition:
        return "failed-precondition";
      case ErrorCode::DataLoss:
        return "data-loss";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::ResourceExhausted:
        return "resource-exhausted";
      case ErrorCode::Cancelled:
        return "cancelled";
      case ErrorCode::DeadlineExceeded:
        return "deadline-exceeded";
    }
    return "unknown";
}

/**
 * Retry classification for the campaign service: transient failures
 * (flaky acquisition internals, lost data, overruns) are worth a
 * bounded retry; everything else is a permanent property of the
 * request and retrying cannot change the outcome.
 */
inline bool
isTransient(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Internal:
      case ErrorCode::DataLoss:
      case ErrorCode::DeadlineExceeded:
        return true;
      default:
        return false;
    }
}

/** One typed error: a code plus a human-readable message. */
struct Error
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

/**
 * Success-or-error sum type.  Holds either a `T` or an `Error`; the
 * accessors assert the active alternative (`value()` on an error
 * throws std::logic_error so misuse fails loudly, not silently).
 */
template <typename T> class Result
{
  public:
    Result(T value) : state_(std::move(value)) {}
    Result(Error error) : state_(std::move(error)) {}

    static Result
    failure(ErrorCode code, std::string message)
    {
        return Result(Error{code, std::move(message)});
    }

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const
    {
        if (!ok())
            throw std::logic_error("Result::value on error: " +
                                   std::get<Error>(state_).message);
        return std::get<T>(state_);
    }

    T &
    value()
    {
        if (!ok())
            throw std::logic_error("Result::value on error: " +
                                   std::get<Error>(state_).message);
        return std::get<T>(state_);
    }

    /// Move the value out (for expensive payloads like reports).
    T
    takeValue()
    {
        return std::move(value());
    }

    const Error &
    error() const
    {
        if (ok())
            throw std::logic_error("Result::error on success");
        return std::get<Error>(state_);
    }

  private:
    std::variant<T, Error> state_;
};

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_RESULT_HH
