/**
 * @file
 * Deterministic thread-pool parallelism for the hot kernels.
 *
 * Every substrate that fans work out (denoising, registration, SEM
 * frame formation, voxelization, Monte-Carlo sweeps) must produce
 * bitwise-identical output at any thread count, or the reproduction
 * stops being a reproduction.  The contract that guarantees this:
 *
 *  - Work over an index range [begin, end) is split into chunks of a
 *    caller-fixed `grain`; chunk boundaries depend only on the range
 *    and the grain, never on the thread count or on scheduling.
 *  - Chunks may execute on any thread in any order, so a chunk body
 *    must only write state owned by its chunk (or reduce through
 *    parallelReduce, which combines partials in chunk-index order).
 *  - Anything random inside a chunk draws from a counter-seeded RNG
 *    stream (see Rng(seed, stream)), not from a shared generator.
 *
 * The pool itself is deliberately work-stealing-free: a single atomic
 * chunk cursor hands out chunk indices, the calling thread
 * participates, and `threads == 1` (or a nested call from inside a
 * worker) degrades to plain serial execution of the same chunks in
 * the same order.
 *
 * Thread-count selection, in priority order: ScopedThreads override >
 * setNumThreads() > the HIFI_THREADS environment variable >
 * std::thread::hardware_concurrency().
 *
 * Instrumentation: while a telemetry session is active
 * (common/telemetry.hh) the pool records "pool.jobs", "pool.chunks",
 * "pool.worker_busy_ns", the "pool.chunks_per_job" histogram and the
 * "pool.workers" gauge.  Collection is purely observational — it
 * never alters partitioning or scheduling, so outputs stay bitwise
 * identical with telemetry on or off (asserted in test_parallel).
 */

#ifndef HIFI_COMMON_PARALLEL_HH
#define HIFI_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace hifi
{
namespace common
{

/// Number of grain-sized chunks covering n items (0 for n == 0).
size_t chunkCount(size_t n, size_t grain);

/**
 * Half-open index range of chunk `chunk` over [begin, end) with the
 * given grain.  Chunks tile the range exactly: chunk i covers
 * [begin + i*grain, min(end, begin + (i+1)*grain)).
 */
std::pair<size_t, size_t> chunkBounds(size_t begin, size_t end,
                                      size_t grain, size_t chunk);

/** Fixed-partition thread pool; see the file comment for the rules. */
class ThreadPool
{
  public:
    /// The process-wide pool used by parallelFor / parallelReduce.
    static ThreadPool &global();

    /// @param threads 0 picks HIFI_THREADS or hardware concurrency.
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Configured worker count (>= 1); 1 means fully serial.
    size_t numThreads() const;

    /// Stop the workers and relaunch with a new count (0 = auto).
    void resize(size_t threads);

    /**
     * Execute body(chunk) for every chunk in [0, chunks), blocking
     * until all chunks ran.  The calling thread participates.  The
     * first exception thrown by any chunk is rethrown here (remaining
     * unclaimed chunks are skipped).  Safe to call from inside a
     * chunk body: nested calls run serially on the calling thread.
     */
    void run(size_t chunks, const std::function<void(size_t)> &body);

  private:
    struct Impl;
    Impl *impl_;
};

/// Configure the global pool (0 = auto from HIFI_THREADS / hardware).
void setNumThreads(size_t threads);

/// Current global worker count (>= 1).
size_t numThreads();

/** RAII thread-count override; `threads == 0` leaves the pool alone. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(size_t threads);
    ~ScopedThreads();

    ScopedThreads(const ScopedThreads &) = delete;
    ScopedThreads &operator=(const ScopedThreads &) = delete;

  private:
    size_t previous_ = 0;
    bool active_ = false;
};

/**
 * Run body(chunkBegin, chunkEnd) over grain-sized chunks of
 * [begin, end) on the global pool.  Chunk boundaries are thread-count
 * independent; bodies writing disjoint per-index state therefore give
 * bitwise-identical results at any thread count.
 */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)> &body);

/// parallelFor variant whose body also receives the chunk index.
void parallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)> &body);

/**
 * Deterministic parallel reduction: `map(chunkBegin, chunkEnd)`
 * produces one partial per chunk; partials are combined with
 * `combine(acc, partial)` serially in chunk-index order, so the
 * result is independent of the thread count (floating-point sums
 * included).
 */
template <typename T, typename Map, typename Combine>
T
parallelReduce(size_t begin, size_t end, size_t grain, T init,
               Map map, Combine combine)
{
    const size_t n = end > begin ? end - begin : 0;
    const size_t chunks = chunkCount(n, grain);
    if (chunks == 0)
        return init;
    std::vector<T> partial(chunks);
    parallelForChunks(begin, end, grain,
                      [&](size_t chunk, size_t b, size_t e) {
                          partial[chunk] = map(b, e);
                      });
    T acc = std::move(init);
    for (auto &p : partial)
        acc = combine(std::move(acc), std::move(p));
    return acc;
}

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_PARALLEL_HH
