/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * HiFi-DRAM needs reproducible noise for the microscope simulator and for
 * Monte-Carlo mismatch analysis.  We use the xoshiro256++ generator with a
 * SplitMix64 seeder: fast, tiny state, well-tested statistical quality.
 */

#ifndef HIFI_COMMON_RNG_HH
#define HIFI_COMMON_RNG_HH

#include <cstdint>

namespace hifi
{
namespace common
{

/** xoshiro256++ PRNG with convenience distributions. */
class Rng
{
  public:
    /// Seed deterministically; the same seed yields the same stream.
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /**
     * Counter-seeded substream `stream` of `seed`: (seed, 0),
     * (seed, 1), ... are decorrelated generators that depend only on
     * the two values.  The parallel kernels give each pixel row /
     * Monte-Carlo trial its own substream, which makes their noise
     * independent of how chunks are scheduled across threads.
     */
    Rng(uint64_t seed, uint64_t stream);

    /// Next raw 64-bit value.
    uint64_t next();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n).
    uint64_t below(uint64_t n);

    /// Standard normal via Box-Muller (cached second value).
    double gaussian();

    /// Normal with given mean and standard deviation.
    double gaussian(double mean, double sigma);

    /**
     * Poisson-distributed count with given mean.
     *
     * Uses Knuth's product method for small means and a gaussian
     * approximation for large means (> 50), which is the regime SEM
     * electron counts live in.
     */
    uint64_t poisson(double mean);

  private:
    uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_RNG_HH
