/**
 * @file
 * Streaming statistics accumulators and simple histograms.
 *
 * Used by the measurement module (835 size measurements in the paper) and
 * by the evaluation module to aggregate inaccuracies across chips.
 */

#ifndef HIFI_COMMON_STATS_HH
#define HIFI_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace hifi
{
namespace common
{

/** Welford-style streaming accumulator: mean/variance/min/max. */
class Accumulator
{
  public:
    void add(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /// Population variance (n in the denominator).
    double variance() const;
    double stddev() const;

    /// Merge another accumulator into this one.
    void merge(const Accumulator &o);

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-range histogram with uniform bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);

    size_t bins() const { return counts_.size(); }
    size_t count(size_t bin) const { return counts_.at(bin); }
    size_t total() const { return total_; }
    double binLow(size_t bin) const;
    double binHigh(size_t bin) const;

    /// Index of the most populated bin.
    size_t modeBin() const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

/// Median of a copy of the values (empty -> 0).
double median(std::vector<double> values);

/// Arithmetic mean (empty -> 0).
double mean(const std::vector<double> &values);

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_STATS_HH
