#include "common/rng.hh"

#include <cmath>

namespace hifi
{
namespace common
{

namespace
{

/// SplitMix64 step, used to expand the seed into the xoshiro state.
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

Rng::Rng(uint64_t seed, uint64_t stream)
{
    // Hash (seed, stream) into one 64-bit value through two
    // independent SplitMix64 walks so adjacent stream ids decorrelate.
    uint64_t a = seed;
    uint64_t b = stream ^ 0xD2B74407B1CE6E93ull;
    uint64_t s = splitMix64(a) ^ splitMix64(b);
    for (auto &word : state_)
        word = splitMix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    if (n == 0)
        return 0;
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double k = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * k;
    hasSpare_ = true;
    return u * k;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean > 50.0) {
        // Gaussian approximation; accurate to well below SEM shot noise.
        double v = gaussian(mean, std::sqrt(mean));
        return v < 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
    }
    // Knuth's product method.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= uniform();
    } while (p > limit);
    return k - 1;
}

} // namespace common
} // namespace hifi
