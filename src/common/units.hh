/**
 * @file
 * Physical units used throughout HiFi-DRAM.
 *
 * All geometric quantities are stored in nanometers (double), areas in
 * square nanometers, time in seconds, voltages in volts, capacitance in
 * farads, and currents in amperes.  The constants below make intent
 * explicit at construction sites, e.g. `3.4 * units::um`.
 */

#ifndef HIFI_COMMON_UNITS_HH
#define HIFI_COMMON_UNITS_HH

namespace hifi
{
namespace units
{

/// Length. Base unit: nanometer.
constexpr double nm = 1.0;
constexpr double um = 1e3 * nm;
constexpr double mm = 1e6 * nm;

/// Area. Base unit: square nanometer.
constexpr double nm2 = nm * nm;
constexpr double um2 = um * um;
constexpr double mm2 = mm * mm;

/// Time. Base unit: second.
constexpr double s = 1.0;
constexpr double ms = 1e-3 * s;
constexpr double us = 1e-6 * s;
constexpr double ns = 1e-9 * s;
constexpr double ps = 1e-12 * s;

/// Electrical.
constexpr double V = 1.0;
constexpr double mV = 1e-3 * V;
constexpr double A = 1.0;
constexpr double uA = 1e-6 * A;
constexpr double F = 1.0;
constexpr double fF = 1e-15 * F;
constexpr double pF = 1e-12 * F;
constexpr double Ohm = 1.0;
constexpr double kOhm = 1e3 * Ohm;

/// Storage.
constexpr double Gbit = 1.0;

/// Convert an area in nm^2 to mm^2 (for die-level reporting).
constexpr double
toMm2(double area_nm2)
{
    return area_nm2 / mm2;
}

/// Convert an area in nm^2 to um^2.
constexpr double
toUm2(double area_nm2)
{
    return area_nm2 / um2;
}

/// Convert a length in nm to um.
constexpr double
toUm(double length_nm)
{
    return length_nm / um;
}

} // namespace units
} // namespace hifi

#endif // HIFI_COMMON_UNITS_HH
