#include "common/parallel.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/telemetry.hh"

namespace hifi
{
namespace common
{

namespace
{

/**
 * Pool instrumentation (registered once, referenced lock-free after).
 * Purely observational: the counters never feed back into chunk
 * partitioning or scheduling, so enabling telemetry cannot perturb
 * the deterministic-output contract (asserted in test_parallel).
 * There is no steal/queue-depth metric because the pool is
 * work-stealing-free by design: one atomic chunk cursor, one job at
 * a time (see the header comment).
 */
struct PoolMetrics
{
    telemetry::Counter &jobs;       ///< fan-outs posted (incl. serial)
    telemetry::Counter &chunks;     ///< chunk bodies executed
    telemetry::Counter &busyNs;     ///< summed per-worker busy time
    telemetry::Histogram &chunksPerJob;
    telemetry::Gauge &workers;

    static PoolMetrics &
    get()
    {
        static PoolMetrics *metrics = new PoolMetrics{
            telemetry::registry().counter("pool.jobs"),
            telemetry::registry().counter("pool.chunks"),
            telemetry::registry().counter("pool.worker_busy_ns"),
            telemetry::registry().histogram(
                "pool.chunks_per_job",
                {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
            telemetry::registry().gauge("pool.workers")};
        return *metrics;
    }
};

uint64_t
busyClockNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// True while this thread is executing chunks of some job; nested
/// parallel calls from such a thread run serially to avoid deadlock.
thread_local bool t_inside_pool = false;

size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("HIFI_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

size_t
chunkCount(size_t n, size_t grain)
{
    if (n == 0)
        return 0;
    const size_t g = grain ? grain : 1;
    return (n + g - 1) / g;
}

std::pair<size_t, size_t>
chunkBounds(size_t begin, size_t end, size_t grain, size_t chunk)
{
    const size_t g = grain ? grain : 1;
    const size_t b = begin + chunk * g;
    const size_t e = b + g < end ? b + g : end;
    return {b < end ? b : end, e};
}

struct ThreadPool::Impl
{
    /// One fan-out; heap-shared so late-waking workers can observe a
    /// drained job even after run() has returned.
    struct Job
    {
        const std::function<void(size_t)> *body = nullptr;
        size_t chunks = 0;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::atomic<bool> abort{false};
        std::exception_ptr error; // guarded by the pool mutex

        /// Telemetry session binding of the submitting thread,
        /// re-applied on every worker so spans/metrics produced by
        /// the fan-out are attributed to the submitting job.
        uint64_t telemetryBinding = 0;
    };

    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable finished;
    std::vector<std::thread> workers;
    std::shared_ptr<Job> job;       // nullptr when idle
    uint64_t generation = 0;        // bumped per posted job
    size_t threads = 1;             // configured count, >= 1
    bool started = false;
    bool stopping = false;

    /// Serializes concurrent run() callers (one job at a time).
    std::mutex gate;

    void
    work(Job &j)
    {
        const bool instrumented = telemetry::enabled();
        const telemetry::detail::ScopedSessionBinding bind(
            j.telemetryBinding);
        const uint64_t t0 = instrumented ? busyClockNs() : 0;
        size_t executed = 0;

        t_inside_pool = true;
        for (;;) {
            const size_t i = j.next.fetch_add(1);
            if (i >= j.chunks)
                break;
            if (!j.abort.load(std::memory_order_relaxed)) {
                try {
                    (*j.body)(i);
                    ++executed;
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!j.error)
                        j.error = std::current_exception();
                    j.abort = true;
                }
            }
            if (j.done.fetch_add(1) + 1 == j.chunks) {
                std::lock_guard<std::mutex> lock(mutex);
                finished.notify_all();
            }
        }
        t_inside_pool = false;

        if (instrumented && executed > 0) {
            PoolMetrics &m = PoolMetrics::get();
            m.chunks.add(executed);
            m.busyNs.add(busyClockNs() - t0);
        }
    }

    void
    workerLoop()
    {
        uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            wake.wait(lock, [&] {
                return stopping || (job && generation != seen);
            });
            if (stopping)
                return;
            seen = generation;
            const std::shared_ptr<Job> j = job;
            lock.unlock();
            work(*j);
            lock.lock();
        }
    }

    void
    start()
    {
        if (started || threads <= 1)
            return;
        started = true;
        workers.reserve(threads - 1);
        for (size_t i = 0; i + 1 < threads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wake.notify_all();
        for (auto &w : workers)
            w.join();
        workers.clear();
        started = false;
        stopping = false;
    }
};

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(size_t threads) : impl_(new Impl)
{
    impl_->threads = threads ? threads : defaultThreadCount();
}

ThreadPool::~ThreadPool()
{
    impl_->stop();
    delete impl_;
}

size_t
ThreadPool::numThreads() const
{
    return impl_->threads;
}

void
ThreadPool::resize(size_t threads)
{
    std::lock_guard<std::mutex> gate(impl_->gate);
    impl_->stop();
    impl_->threads = threads ? threads : defaultThreadCount();
}

void
ThreadPool::run(size_t chunks, const std::function<void(size_t)> &body)
{
    if (chunks == 0)
        return;
    // Serial paths: tiny jobs, single-thread config, or a nested call
    // from inside a worker (which would otherwise deadlock waiting on
    // the pool it is running on).  Chunk order matches the cursor
    // order of the parallel path, so outputs are identical.
    const bool instrumented = telemetry::enabled();
    if (instrumented) {
        PoolMetrics &m = PoolMetrics::get();
        m.jobs.add(1);
        m.chunksPerJob.observe(static_cast<double>(chunks));
        m.workers.set(static_cast<double>(impl_->threads));
    }
    if (chunks == 1 || t_inside_pool || impl_->threads <= 1) {
        const uint64_t t0 = instrumented ? busyClockNs() : 0;
        for (size_t i = 0; i < chunks; ++i)
            body(i);
        if (instrumented) {
            PoolMetrics &m = PoolMetrics::get();
            m.chunks.add(chunks);
            m.busyNs.add(busyClockNs() - t0);
        }
        return;
    }

    std::lock_guard<std::mutex> gate(impl_->gate);
    auto job = std::make_shared<Impl::Job>();
    job->body = &body;
    job->chunks = chunks;
    job->telemetryBinding = telemetry::detail::currentSessionBinding();
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->start();
        impl_->job = job;
        ++impl_->generation;
    }
    impl_->wake.notify_all();

    impl_->work(*job); // the caller is a worker too

    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->finished.wait(lock, [&] {
        return job->done.load() == job->chunks;
    });
    impl_->job.reset();
    const std::exception_ptr error = job->error;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

void
setNumThreads(size_t threads)
{
    ThreadPool::global().resize(threads);
}

size_t
numThreads()
{
    return ThreadPool::global().numThreads();
}

ScopedThreads::ScopedThreads(size_t threads)
{
    if (threads == 0)
        return;
    previous_ = numThreads();
    active_ = true;
    setNumThreads(threads);
}

ScopedThreads::~ScopedThreads()
{
    if (active_)
        setNumThreads(previous_);
}

void
parallelForChunks(size_t begin, size_t end, size_t grain,
                  const std::function<void(size_t, size_t, size_t)> &body)
{
    const size_t n = end > begin ? end - begin : 0;
    const size_t chunks = chunkCount(n, grain);
    if (chunks == 0)
        return;
    ThreadPool::global().run(chunks, [&](size_t chunk) {
        const auto [b, e] = chunkBounds(begin, end, grain, chunk);
        body(chunk, b, e);
    });
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &body)
{
    parallelForChunks(begin, end, grain,
                      [&](size_t, size_t b, size_t e) { body(b, e); });
}

} // namespace common
} // namespace hifi
