#include "common/csv.hh"

#include <stdexcept>

namespace hifi
{
namespace common
{

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &columns)
    : out_(path), columns_(columns.size())
{
    if (!out_)
        throw std::runtime_error("CsvWriter: cannot open " + path);
    if (columns.empty())
        throw std::invalid_argument("CsvWriter: no columns");
    for (size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out_ << ",";
        out_ << columns[i];
    }
    out_ << "\n";
}

void
CsvWriter::addRow(const std::vector<double> &values)
{
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            out_ << ",";
        out_ << values[i];
    }
    out_ << "\n";
    ++rows_;
}

} // namespace common
} // namespace hifi
