/**
 * @file
 * Minimal logging with gem5-style levels: inform() for normal status,
 * warn() for suspicious-but-survivable conditions, debug() for
 * development chatter.  Off by default so library output stays clean;
 * benches and examples can raise the verbosity.
 *
 * Messages go to a pluggable sink (stderr by default; tests install a
 * capture buffer via CaptureLog).  Warnings are additionally counted
 * in the telemetry metrics registry — "log.warnings" overall plus
 * "log.warnings.<subsystem>" for the tagged overloads — so
 * warnCount() is a proper counter that survives silencing and shows
 * up in exported metrics.
 */

#ifndef HIFI_COMMON_LOG_HH
#define HIFI_COMMON_LOG_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace hifi
{
namespace common
{

/// Logging verbosity, in increasing chattiness.
enum class LogLevel
{
    Silent = 0,
    Warn,
    Inform,
    Debug,
};

/// Global verbosity (default Silent).
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Pluggable sink invoked for every message that passes the level
 * filter.  Passing nullptr restores the default stderr sink.  The
 * sink may be called from any thread; calls are serialized.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;
void setLogSink(LogSink sink);

/// Prefix messages with a wall-clock timestamp (default off).
void setLogTimestamps(bool enabled);

/// Status message, printed at Inform and above.
void inform(const std::string &message);

/// Development chatter, printed at Debug only.
void debug(const std::string &message);

/// Suspicious condition, printed at Warn and above.
void warn(const std::string &message);

/// Tagged warning: counted under "log.warnings.<subsystem>" in the
/// metrics registry and prefixed with the tag when printed.
void warn(const std::string &subsystem, const std::string &message);

/// Count of warnings emitted since start (even when silenced).
size_t warnCount();

/**
 * RAII capture sink for tests: while alive, every filtered-in message
 * is appended to messages() instead of reaching stderr.  Restores the
 * previous sink on destruction.  Raise the level yourself if you
 * need to capture inform()/debug().
 */
class CaptureLog
{
  public:
    CaptureLog();
    ~CaptureLog();

    CaptureLog(const CaptureLog &) = delete;
    CaptureLog &operator=(const CaptureLog &) = delete;

    struct Entry
    {
        LogLevel level;
        std::string message;
    };

    /// Captured messages, in emission order.
    std::vector<Entry> messages() const;

  private:
    struct State;
    std::shared_ptr<State> state_;
};

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_LOG_HH
