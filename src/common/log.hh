/**
 * @file
 * Minimal logging with gem5-style levels: inform() for normal status,
 * warn() for suspicious-but-survivable conditions.  Off by default so
 * library output stays clean; benches and examples can raise the
 * verbosity.
 */

#ifndef HIFI_COMMON_LOG_HH
#define HIFI_COMMON_LOG_HH

#include <string>

namespace hifi
{
namespace common
{

/// Logging verbosity, in increasing chattiness.
enum class LogLevel
{
    Silent = 0,
    Warn,
    Inform,
};

/// Global verbosity (default Silent).
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Status message, printed at Inform and above.
void inform(const std::string &message);

/// Suspicious condition, printed at Warn and above.
void warn(const std::string &message);

/// Count of warnings emitted since start (even when silenced).
size_t warnCount();

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_LOG_HH
