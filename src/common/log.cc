#include "common/log.hh"

#include <atomic>
#include <iostream>

namespace hifi
{
namespace common
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Silent};
std::atomic<size_t> g_warns{0};

} // namespace

LogLevel
logLevel()
{
    return g_level.load();
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level);
}

void
inform(const std::string &message)
{
    if (logLevel() >= LogLevel::Inform)
        std::cerr << "info: " << message << "\n";
}

void
warn(const std::string &message)
{
    ++g_warns;
    if (logLevel() >= LogLevel::Warn)
        std::cerr << "warn: " << message << "\n";
}

size_t
warnCount()
{
    return g_warns.load();
}

} // namespace common
} // namespace hifi
