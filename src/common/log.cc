#include "common/log.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

#include "common/telemetry.hh"

namespace hifi
{
namespace common
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Silent};
std::atomic<bool> g_timestamps{false};

/// Sink storage; leaked so logging stays safe during static
/// destruction of other translation units.
struct SinkState
{
    std::mutex mu;
    LogSink sink; // empty = default stderr sink
};

SinkState &
sinkState()
{
    static SinkState *state = new SinkState;
    return *state;
}

std::string
timestampPrefix()
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
        1000;
    std::tm tm{};
    localtime_r(&secs, &tm);
    char buf[48];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02d %02d:%02d:%02d.%03d ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(ms));
    return buf;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Inform: return "info: ";
      case LogLevel::Debug: return "debug: ";
      default: return "";
    }
}

void
emit(LogLevel level, const std::string &message)
{
    if (logLevel() < level)
        return;
    std::string line;
    if (g_timestamps.load(std::memory_order_relaxed))
        line += timestampPrefix();
    line += levelTag(level);
    line += message;

    SinkState &state = sinkState();
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.sink)
        state.sink(level, line);
    else
        std::cerr << line << "\n";
}

telemetry::Counter &
warnCounter()
{
    static telemetry::Counter &counter =
        telemetry::registry().counter("log.warnings");
    return counter;
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load();
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level);
}

void
setLogSink(LogSink sink)
{
    SinkState &state = sinkState();
    std::lock_guard<std::mutex> lock(state.mu);
    state.sink = std::move(sink);
}

void
setLogTimestamps(bool enabled)
{
    g_timestamps.store(enabled, std::memory_order_relaxed);
}

void
inform(const std::string &message)
{
    emit(LogLevel::Inform, message);
}

void
debug(const std::string &message)
{
    emit(LogLevel::Debug, message);
}

void
warn(const std::string &message)
{
    warnCounter().add();
    emit(LogLevel::Warn, message);
}

void
warn(const std::string &subsystem, const std::string &message)
{
    warnCounter().add();
    telemetry::registry()
        .counter("log.warnings." + subsystem)
        .add();
    emit(LogLevel::Warn, "[" + subsystem + "] " + message);
}

size_t
warnCount()
{
    return warnCounter().value();
}

// ---- CaptureLog ----------------------------------------------------

struct CaptureLog::State
{
    std::mutex mu;
    std::vector<Entry> entries;
    LogSink previous;
};

CaptureLog::CaptureLog() : state_(std::make_shared<State>())
{
    // Swap in a capturing sink; remember the previous one so nested
    // captures unwind correctly.
    SinkState &sink = sinkState();
    std::shared_ptr<State> state = state_;
    std::lock_guard<std::mutex> lock(sink.mu);
    state_->previous = sink.sink;
    sink.sink = [state](LogLevel level, const std::string &message) {
        std::lock_guard<std::mutex> guard(state->mu);
        state->entries.push_back({level, message});
    };
}

CaptureLog::~CaptureLog()
{
    SinkState &sink = sinkState();
    std::lock_guard<std::mutex> lock(sink.mu);
    sink.sink = state_->previous;
}

std::vector<CaptureLog::Entry>
CaptureLog::messages() const
{
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->entries;
}

} // namespace common
} // namespace hifi
