/**
 * @file
 * Minimal 2-D/3-D geometry primitives used by the layout, fab, imaging
 * and reverse-engineering modules.
 *
 * Coordinate convention (matches Fig. 10 of the paper): X runs along the
 * bitline direction (the "height" of the SA region), Y runs along the MAT
 * edge (the direction common-gate strips span), Z is the out-of-plane IC
 * stacking direction (layers).
 */

#ifndef HIFI_COMMON_GEOMETRY_HH
#define HIFI_COMMON_GEOMETRY_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace hifi
{
namespace common
{

/** 2-D vector with double components (nanometers). */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    Vec2() = default;
    Vec2(double x_, double y_) : x(x_), y(y_) {}

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(double k) const { return {x * k, y * k}; }
    bool operator==(const Vec2 &o) const { return x == o.x && y == o.y; }

    double norm() const { return std::sqrt(x * x + y * y); }
};

/** 3-D integer index (voxel coordinates). */
struct Vec3i
{
    int x = 0;
    int y = 0;
    int z = 0;

    Vec3i() = default;
    Vec3i(int x_, int y_, int z_) : x(x_), y(y_), z(z_) {}

    bool operator==(const Vec3i &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }
};

/**
 * Axis-aligned rectangle in the XY plane, in nanometers.
 *
 * Stored as [x0, x1) x [y0, y1).  An empty rectangle has x1 <= x0 or
 * y1 <= y0.
 */
struct Rect
{
    double x0 = 0.0;
    double y0 = 0.0;
    double x1 = 0.0;
    double y1 = 0.0;

    Rect() = default;
    Rect(double x0_, double y0_, double x1_, double y1_)
        : x0(x0_), y0(y0_), x1(x1_), y1(y1_)
    {}

    /// Construct from an origin and a size.
    static Rect
    fromSize(double x, double y, double w, double h)
    {
        return Rect(x, y, x + w, y + h);
    }

    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
    double area() const { return empty() ? 0.0 : width() * height(); }
    bool empty() const { return x1 <= x0 || y1 <= y0; }

    Vec2 center() const { return {(x0 + x1) * 0.5, (y0 + y1) * 0.5}; }

    bool
    contains(const Vec2 &p) const
    {
        return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
    }

    bool
    overlaps(const Rect &o) const
    {
        return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
    }

    /// Intersection; empty Rect if disjoint.
    Rect
    intersect(const Rect &o) const
    {
        Rect r(std::max(x0, o.x0), std::max(y0, o.y0),
               std::min(x1, o.x1), std::min(y1, o.y1));
        if (r.empty())
            return Rect();
        return r;
    }

    /// Smallest rectangle covering both.
    Rect
    unite(const Rect &o) const
    {
        if (empty())
            return o;
        if (o.empty())
            return *this;
        return Rect(std::min(x0, o.x0), std::min(y0, o.y0),
                    std::max(x1, o.x1), std::max(y1, o.y1));
    }

    /// Rectangle grown by `margin` on every side (may be negative).
    Rect
    inflate(double margin) const
    {
        return Rect(x0 - margin, y0 - margin, x1 + margin, y1 + margin);
    }

    /// Rectangle translated by (dx, dy).
    Rect
    translate(double dx, double dy) const
    {
        return Rect(x0 + dx, y0 + dy, x1 + dx, y1 + dy);
    }

    /**
     * Minimum gap between this rectangle and another along the axes.
     * Returns 0 when the rectangles overlap or touch.
     */
    double
    gapTo(const Rect &o) const
    {
        double dx = std::max({o.x0 - x1, x0 - o.x1, 0.0});
        double dy = std::max({o.y0 - y1, y0 - o.y1, 0.0});
        return std::hypot(dx, dy);
    }

    bool
    operator==(const Rect &o) const
    {
        return x0 == o.x0 && y0 == o.y0 && x1 == o.x1 && y1 == o.y1;
    }
};

std::ostream &operator<<(std::ostream &os, const Rect &r);
std::ostream &operator<<(std::ostream &os, const Vec2 &v);

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_GEOMETRY_HH
