#include "common/geometry.hh"

namespace hifi
{
namespace common
{

std::ostream &
operator<<(std::ostream &os, const Rect &r)
{
    os << "Rect(" << r.x0 << ", " << r.y0 << ", " << r.x1 << ", "
       << r.y1 << ")";
    return os;
}

std::ostream &
operator<<(std::ostream &os, const Vec2 &v)
{
    os << "(" << v.x << ", " << v.y << ")";
    return os;
}

} // namespace common
} // namespace hifi
