#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace common
{

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::merge(const Accumulator &o)
{
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += o.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ += o.n_;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        throw std::invalid_argument("Histogram: bad range or bin count");
}

void
Histogram::add(double x)
{
    if (x < lo_ || x >= hi_)
        return;
    const double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<size_t>(frac * static_cast<double>(bins()));
    if (bin >= bins())
        bin = bins() - 1;
    ++counts_[bin];
    ++total_;
}

double
Histogram::binLow(size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
        static_cast<double>(bins());
}

double
Histogram::binHigh(size_t bin) const
{
    return binLow(bin + 1);
}

size_t
Histogram::modeBin() const
{
    return static_cast<size_t>(
        std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    const size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    double hi = values[mid];
    if (values.size() % 2 == 1)
        return hi;
    double lo = *std::max_element(values.begin(), values.begin() + mid);
    return 0.5 * (lo + hi);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace common
} // namespace hifi
