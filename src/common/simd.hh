/**
 * @file
 * SIMD dispatch layer for the imaging and solver hot loops.
 *
 * The vector kernels (TV interior rows, the MI histogram index
 * computation, SEM LUT shading, and the batched transient solver's
 * lane kernels — MOSFET stamping, the replayed LU factor/solve, and
 * the Newton state update in src/circuit) are compiled as AVX2
 * function multiversions next to their portable scalar forms and
 * selected at runtime.  The selection is:
 *
 *  - compile-time: AVX2 bodies exist only when the compiler supports
 *    per-function target attributes on x86-64 (HIFI_SIMD_AVX2_COMPILED);
 *    elsewhere only the scalar forms are built;
 *  - runtime: the CPU must actually report AVX2
 *    (__builtin_cpu_supports), checked once and cached;
 *  - environment: HIFI_SIMD=off|0|scalar forces the scalar paths, the
 *    escape hatch for debugging or for pinning a run to the portable
 *    code (any other value, or unset, means "best available").
 *
 * Every vector kernel in this codebase preserves the scalar kernel's
 * operation order per output element (element-wise IEEE add/sub/mul/
 * div/sqrt are exactly rounded, integer histogram counts are exact
 * under any accumulation order, and no FMA contraction is introduced),
 * so results are bitwise identical on either path — asserted by
 * tests/test_image.cc and the bench_imaging equivalence checks.
 */

#ifndef HIFI_COMMON_SIMD_HH
#define HIFI_COMMON_SIMD_HH

// Compile-time capability: GCC/Clang on x86-64 can compile AVX2
// bodies per-function via __attribute__((target("avx2"))) without
// raising the baseline of the whole translation unit.
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
#define HIFI_SIMD_AVX2_COMPILED 1
#define HIFI_AVX2_TARGET __attribute__((target("avx2")))
#else
#define HIFI_SIMD_AVX2_COMPILED 0
#define HIFI_AVX2_TARGET
#endif

namespace hifi
{
namespace common
{
namespace simd
{

/// Instruction-set level a kernel call site may dispatch to.
enum class Isa
{
    Scalar,
    Avx2,
};

/**
 * The ISA the dispatch layer currently selects: the best level that is
 * compiled in AND reported by the CPU AND not disabled via HIFI_SIMD
 * or an active ScopedForceScalar.  Cheap enough for per-row dispatch
 * (one cached value plus one relaxed atomic load).
 */
Isa activeIsa();

/// Convenience: activeIsa() == Isa::Avx2.
bool avx2();

/// "avx2" or "scalar", for bench/telemetry labels.
const char *isaName(Isa isa);

/**
 * Force the scalar paths for the lifetime of this object (nestable,
 * thread-safe).  The SIMD-vs-scalar equivalence tests run every kernel
 * under both settings in one process and assert bitwise equality.
 */
class ScopedForceScalar
{
  public:
    ScopedForceScalar();
    ~ScopedForceScalar();
    ScopedForceScalar(const ScopedForceScalar &) = delete;
    ScopedForceScalar &operator=(const ScopedForceScalar &) = delete;
};

} // namespace simd
} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_SIMD_HH
