#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hifi
{
namespace common
{
namespace simd
{

namespace
{

/// Nesting depth of active ScopedForceScalar guards (process-wide).
std::atomic<int> g_forceScalar{0};

bool
envDisabled()
{
    const char *env = std::getenv("HIFI_SIMD");
    if (!env)
        return false;
    return std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "scalar") == 0;
}

/// Hardware + environment capability, resolved once per process.
Isa
detectIsa()
{
    if (envDisabled())
        return Isa::Scalar;
#if HIFI_SIMD_AVX2_COMPILED
    if (__builtin_cpu_supports("avx2"))
        return Isa::Avx2;
#endif
    return Isa::Scalar;
}

} // namespace

Isa
activeIsa()
{
    static const Isa detected = detectIsa();
    if (detected != Isa::Scalar &&
        g_forceScalar.load(std::memory_order_relaxed) > 0)
        return Isa::Scalar;
    return detected;
}

bool
avx2()
{
    return activeIsa() == Isa::Avx2;
}

const char *
isaName(Isa isa)
{
    return isa == Isa::Avx2 ? "avx2" : "scalar";
}

ScopedForceScalar::ScopedForceScalar()
{
    g_forceScalar.fetch_add(1, std::memory_order_relaxed);
}

ScopedForceScalar::~ScopedForceScalar()
{
    g_forceScalar.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace simd
} // namespace common
} // namespace hifi
