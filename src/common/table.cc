#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hifi
{
namespace common
{

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        throw std::invalid_argument("Table: empty header");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        throw std::invalid_argument("Table: row width mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    separators_.push_back(rows_.size());
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_sep = [&]() {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << "+" << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c]
               << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    print_sep();
    print_row(header_);
    print_sep();
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end() && r != 0) {
            print_sep();
        }
        print_row(rows_[r]);
    }
    print_sep();
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
Table::times(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v << "x";
    return ss.str();
}

std::string
Table::percent(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
    return ss.str();
}

} // namespace common
} // namespace hifi
