/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to regenerate
 * the paper's tables and figure series in a readable, diffable format.
 */

#ifndef HIFI_COMMON_TABLE_HH
#define HIFI_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace hifi
{
namespace common
{

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"ID", "Vendor", "Size"});
 *   t.addRow({"A4", "A (DDR4)", "34 mm2"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /// Insert a horizontal separator after the last added row.
    void addSeparator();

    size_t rows() const { return rows_.size(); }

    void print(std::ostream &os) const;

    /// Format a double with fixed precision.
    static std::string num(double v, int precision = 2);

    /// Format a multiplier like "175x" or "-0.25x".
    static std::string times(double v, int precision = 2);

    /// Format a percentage like "236%".
    static std::string percent(double v, int precision = 0);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separators_;
};

} // namespace common
} // namespace hifi

#endif // HIFI_COMMON_TABLE_HH
