#include "common/telemetry.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/log.hh"

namespace hifi
{
namespace telemetry
{

namespace detail
{
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace
{

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Session id the calling thread is bound to (0 = unbound).
thread_local uint64_t t_boundSession = 0;

/**
 * Registry of the currently active sessions.  The hot paths only
 * read the two atomics; the set behind the mutex is touched on
 * session construction / teardown.  `sole` caches the id of the
 * single active session (0 when none or several), which is what
 * unbound threads attribute their records to.
 */
struct ActiveSessions
{
    std::mutex mu;
    std::vector<uint64_t> ids;
    std::atomic<uint64_t> sole{0};
    std::atomic<uint64_t> nextId{1};
};

ActiveSessions &
activeSessions()
{
    static ActiveSessions *active = new ActiveSessions;
    return *active;
}

/// Per-histogram routed accumulation (buckets mirror the global
/// histogram's layout).
struct HistogramAccum
{
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
};

/// One session's routed metric deltas on one thread.
struct SessionDelta
{
    std::map<const Counter *, uint64_t> counters;
    std::map<const Histogram *, HistogramAccum> histograms;
};

/// One thread's span buffer.  Appends are owner-thread-only except
/// for the mutex, which a drain takes briefly; buffers are leaked on
/// purpose (bounded by the number of threads ever created) so worker
/// thread_local destruction order can never invalidate them.
struct ThreadBuffer
{
    std::mutex mu;
    std::vector<SpanRecord> records;
    std::map<uint64_t, SessionDelta> deltas; ///< by session id
    uint32_t tid = 0;
    uint32_t depth = 0; ///< owner thread only
};

struct BufferRegistry
{
    std::mutex mu;
    std::vector<ThreadBuffer *> buffers;
    uint32_t nextTid = 1;
};

BufferRegistry &
bufferRegistry()
{
    static BufferRegistry *reg = new BufferRegistry;
    return *reg;
}

ThreadBuffer &
localBuffer()
{
    thread_local ThreadBuffer *buf = [] {
        auto *b = new ThreadBuffer;
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mu);
        b->tid = reg.nextTid++;
        reg.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

/**
 * Instrument pointer -> registered name, populated by the Registry
 * on first registration.  Routed deltas are keyed by pointer on the
 * hot path and materialized to names only at session finish.
 */
struct InstrumentNames
{
    std::mutex mu;
    std::map<const void *, std::string> names;
};

InstrumentNames &
instrumentNames()
{
    static InstrumentNames *names = new InstrumentNames;
    return *names;
}

void
recordInstrumentName(const void *instrument, const std::string &name)
{
    InstrumentNames &reg = instrumentNames();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.names.emplace(instrument, name);
}

std::string
lookupInstrumentName(const void *instrument)
{
    InstrumentNames &reg = instrumentNames();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.names.find(instrument);
    return it != reg.names.end() ? it->second : std::string();
}

/// CAS add for pre-C++20-libstdc++ compatibility on atomic<double>.
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

// ---- Span ----------------------------------------------------------

void
Span::begin(const char *name)
{
    name_ = name;
    startNs_ = nowNs();
    ThreadBuffer &buf = localBuffer();
    depth_ = buf.depth++;
    active_ = true;
}

void
Span::end()
{
    const uint64_t end_ns = nowNs();
    ThreadBuffer &buf = localBuffer();
    --buf.depth;
    SpanRecord rec;
    rec.name = name_;
    rec.tid = buf.tid;
    rec.depth = depth_;
    // Absolute timestamp; the owning session subtracts its own
    // origin when it drains (sessions can overlap, so there is no
    // single global origin any more).
    rec.startNs = startNs_;
    rec.durationNs = end_ns > startNs_ ? end_ns - startNs_ : 0;
    rec.session = t_boundSession
        ? t_boundSession
        : activeSessions().sole.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.records.push_back(rec);
}

void
clearTrace()
{
    BufferRegistry &reg = bufferRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (ThreadBuffer *buf : reg.buffers) {
        std::lock_guard<std::mutex> blk(buf->mu);
        buf->records.clear();
        buf->deltas.clear();
    }
}

// ---- Session binding and routed deltas -----------------------------

namespace detail
{

void
routeCounterAdd(const Counter *counter, uint64_t n)
{
    const uint64_t session = t_boundSession;
    if (session == 0)
        return;
    ThreadBuffer &buf = localBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.deltas[session].counters[counter] += n;
}

void
routeHistogramObserve(const Histogram *histogram, double x)
{
    const uint64_t session = t_boundSession;
    if (session == 0)
        return;
    ThreadBuffer &buf = localBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    HistogramAccum &acc = buf.deltas[session].histograms[histogram];
    const std::vector<double> &edges = histogram->edges();
    if (acc.buckets.empty())
        acc.buckets.assign(edges.size() + 1, 0);
    size_t i = 0;
    while (i < edges.size() && x > edges[i])
        ++i;
    ++acc.buckets[i];
    ++acc.count;
    acc.sum += x;
}

uint64_t
currentSessionBinding()
{
    return t_boundSession;
}

ScopedSessionBinding::ScopedSessionBinding(uint64_t session)
    : previous_(t_boundSession)
{
    t_boundSession = session;
}

ScopedSessionBinding::~ScopedSessionBinding()
{
    t_boundSession = previous_;
}

} // namespace detail

SessionBind::SessionBind(Session &session)
    : previous_(t_boundSession)
{
    t_boundSession = session.id();
    session.bound_.store(true, std::memory_order_relaxed);
}

SessionBind::~SessionBind()
{
    t_boundSession = previous_;
}

// ---- Histogram -----------------------------------------------------

Histogram::Histogram(std::vector<double> upperEdges)
    : edges_(std::move(upperEdges)), buckets_(edges_.size() + 1)
{
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()),
                 edges_.end());
    // buckets_ was sized before the dedupe; extra slots stay zero.
}

void
Histogram::observe(double x)
{
    size_t i = 0;
    while (i < edges_.size() && x > edges_[i])
        ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, x);
    if (enabled())
        detail::routeHistogramObserve(this, x);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(edges_.size() + 1, 0);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

// ---- Registry ------------------------------------------------------

struct Registry::Impl
{
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
Registry::global()
{
    static Registry *reg = new Registry;
    return *reg;
}

Registry::Impl &
Registry::impl() const
{
    static Impl *impl = new Impl;
    return *impl;
}

Counter &
Registry::counter(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto &slot = i.counters[name];
    if (!slot) {
        slot.reset(new Counter);
        recordInstrumentName(slot.get(), name);
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto &slot = i.gauges[name];
    if (!slot)
        slot.reset(new Gauge);
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<double> upperEdges)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto &slot = i.histograms[name];
    if (!slot) {
        slot.reset(new Histogram(std::move(upperEdges)));
        recordInstrumentName(slot.get(), name);
    }
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    MetricsSnapshot snap;
    for (const auto &[name, c] : i.counters)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : i.gauges)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : i.histograms) {
        HistogramSnapshot hs;
        hs.edges = h->edges();
        hs.buckets = h->bucketCounts();
        hs.count = h->count();
        hs.sum = h->sum();
        snap.histograms[name] = std::move(hs);
    }
    return snap;
}

MetricsSnapshot
MetricsSnapshot::since(const MetricsSnapshot &baseline) const
{
    MetricsSnapshot delta;
    for (const auto &[name, v] : counters) {
        const auto it = baseline.counters.find(name);
        const uint64_t base =
            it != baseline.counters.end() ? it->second : 0;
        delta.counters[name] = v >= base ? v - base : v;
    }
    delta.gauges = gauges;
    for (const auto &[name, h] : histograms) {
        HistogramSnapshot d = h;
        const auto it = baseline.histograms.find(name);
        if (it != baseline.histograms.end() &&
            it->second.buckets.size() == h.buckets.size()) {
            for (size_t i = 0; i < d.buckets.size(); ++i)
                d.buckets[i] -= std::min(it->second.buckets[i],
                                         d.buckets[i]);
            d.count -= std::min(it->second.count, d.count);
            d.sum -= it->second.sum;
        }
        delta.histograms[name] = std::move(d);
    }
    return delta;
}

// ---- Export --------------------------------------------------------

std::string
PipelineTelemetry::traceJson() const
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char num[64];
    for (const SpanRecord &s : spans) {
        if (!first)
            out += ',';
        first = false;
        out += "\n{\"name\":";
        appendJsonString(out, s.name);
        out += ",\"cat\":\"hifi\",\"ph\":\"X\",\"ts\":";
        std::snprintf(num, sizeof(num), "%.3f",
                      static_cast<double>(s.startNs) / 1000.0);
        out += num;
        out += ",\"dur\":";
        std::snprintf(num, sizeof(num), "%.3f",
                      static_cast<double>(s.durationNs) / 1000.0);
        out += num;
        std::snprintf(num, sizeof(num),
                      ",\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u}}",
                      s.tid, s.depth);
        out += num;
    }
    out += "\n]}\n";
    return out;
}

std::string
PipelineTelemetry::metricsJson() const
{
    std::string out = "{\n \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : metrics.counters) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        appendJsonString(out, name);
        out += ": " + std::to_string(v);
    }
    out += "\n },\n \"gauges\": {";
    first = true;
    for (const auto &[name, v] : metrics.gauges) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        appendJsonString(out, name);
        out += ": " + formatDouble(v);
    }
    out += "\n },\n \"histograms\": {";
    first = true;
    for (const auto &[name, h] : metrics.histograms) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        appendJsonString(out, name);
        out += ": {\"edges\": [";
        for (size_t i = 0; i < h.edges.size(); ++i)
            out += (i ? "," : "") + formatDouble(h.edges[i]);
        out += "], \"counts\": [";
        for (size_t i = 0; i < h.buckets.size(); ++i)
            out += (i ? "," : "") + std::to_string(h.buckets[i]);
        out += "], \"count\": " + std::to_string(h.count) +
            ", \"sum\": " + formatDouble(h.sum) + "}";
    }
    out += "\n },\n \"stage_wall_ns\": {";
    first = true;
    for (const auto &[name, t] : stageWallNs) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        appendJsonString(out, name);
        out += ": {\"count\": " + std::to_string(t.count) +
            ", \"wall_ns\": " + std::to_string(t.wallNs) + "}";
    }
    out += "\n }\n}\n";
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        common::warn("telemetry", "cannot open '" + path +
                     "' for writing");
        return false;
    }
    out << text;
    return static_cast<bool>(out);
}

// ---- Session -------------------------------------------------------

namespace
{

/// Register / deregister one session; keeps the `sole` cache and the
/// global enable flag consistent with the active set.
void
registerSession(uint64_t id)
{
    ActiveSessions &active = activeSessions();
    std::lock_guard<std::mutex> lock(active.mu);
    if (active.ids.empty())
        clearTrace(); // no reader left for stale records
    active.ids.push_back(id);
    active.sole.store(active.ids.size() == 1 ? active.ids.front() : 0,
                      std::memory_order_relaxed);
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
deregisterSession(uint64_t id)
{
    ActiveSessions &active = activeSessions();
    std::lock_guard<std::mutex> lock(active.mu);
    active.ids.erase(
        std::remove(active.ids.begin(), active.ids.end(), id),
        active.ids.end());
    active.sole.store(active.ids.size() == 1 ? active.ids.front() : 0,
                      std::memory_order_relaxed);
    if (active.ids.empty())
        detail::g_enabled.store(false, std::memory_order_relaxed);
}

/// Merge every thread's routed deltas for `id` into one snapshot
/// (erasing them from the buffers), with gauges copied from the
/// current registry values (they are instantaneous, like since()).
MetricsSnapshot
drainRoutedDeltas(uint64_t id)
{
    std::map<const Counter *, uint64_t> counters;
    std::map<const Histogram *, HistogramAccum> histograms;
    {
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mu);
        for (ThreadBuffer *buf : reg.buffers) {
            std::lock_guard<std::mutex> blk(buf->mu);
            const auto it = buf->deltas.find(id);
            if (it == buf->deltas.end())
                continue;
            for (const auto &[c, n] : it->second.counters)
                counters[c] += n;
            for (const auto &[h, acc] : it->second.histograms) {
                HistogramAccum &dst = histograms[h];
                if (dst.buckets.empty())
                    dst.buckets.assign(acc.buckets.size(), 0);
                for (size_t i = 0; i < acc.buckets.size(); ++i)
                    dst.buckets[i] += acc.buckets[i];
                dst.count += acc.count;
                dst.sum += acc.sum;
            }
            buf->deltas.erase(it);
        }
    }

    MetricsSnapshot snap;
    for (const auto &[c, n] : counters) {
        const std::string name = lookupInstrumentName(c);
        if (!name.empty())
            snap.counters[name] = n;
    }
    for (const auto &[h, acc] : histograms) {
        const std::string name = lookupInstrumentName(h);
        if (name.empty())
            continue;
        HistogramSnapshot hs;
        hs.edges = h->edges();
        hs.buckets = acc.buckets;
        hs.count = acc.count;
        hs.sum = acc.sum;
        snap.histograms[name] = std::move(hs);
    }
    snap.gauges = registry().snapshot().gauges;
    return snap;
}

} // namespace

Session::Session()
{
    id_ = activeSessions().nextId.fetch_add(1);
    startNs_ = nowNs();
    baseline_ = registry().snapshot();
    registerSession(id_);
}

Session::~Session()
{
    if (!finished_)
        deregisterSession(id_);
}

std::shared_ptr<const PipelineTelemetry>
Session::finish(const TelemetryConfig &config)
{
    if (finished_)
        return result_;
    finished_ = true;
    deregisterSession(id_);

    auto out = std::make_shared<PipelineTelemetry>();
    {
        // Claim only this session's records; concurrent sessions keep
        // theirs buffered for their own finish().
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mu);
        for (ThreadBuffer *buf : reg.buffers) {
            std::lock_guard<std::mutex> blk(buf->mu);
            auto keep = buf->records.begin();
            for (SpanRecord &rec : buf->records) {
                if (rec.session == id_) {
                    rec.startNs = rec.startNs > startNs_
                        ? rec.startNs - startNs_
                        : 0;
                    out->spans.push_back(rec);
                } else {
                    *keep++ = rec;
                }
            }
            buf->records.erase(keep, buf->records.end());
        }
    }
    std::sort(out->spans.begin(), out->spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.depth < b.depth;
              });
    for (const SpanRecord &s : out->spans) {
        StageTiming &t = out->stageWallNs[s.name];
        ++t.count;
        t.wallNs += s.durationNs;
    }
    // A session that was ever bound to a thread collects the routed
    // per-session deltas (safe under concurrency); an unbound one
    // keeps the legacy whole-registry baseline diff.
    out->metrics = bound_.load(std::memory_order_relaxed)
        ? drainRoutedDeltas(id_)
        : registry().snapshot().since(baseline_);

    if (!config.tracePath.empty())
        writeTextFile(config.tracePath, out->traceJson());
    if (!config.metricsPath.empty())
        writeTextFile(config.metricsPath, out->metricsJson());

    result_ = out;
    return result_;
}

// ---- Minimal JSON parser (for trace validation) --------------------

namespace
{

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after the JSON document");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_ && error_->empty())
            *error_ = message + " (at byte " +
                std::to_string(pos_) + ")";
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (c == 't' || c == 'f')
            return parseKeyword(out);
        if (c == 'n')
            return parseKeyword(out);
        return parseNumber(out);
    }

    bool
    parseKeyword(JsonValue &out)
    {
        auto match = [&](const char *kw) {
            const size_t n = std::string(kw).size();
            if (text_.compare(pos_, n, kw) != 0)
                return false;
            pos_ += n;
            return true;
        };
        if (match("true")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (match("false")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (match("null")) {
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return fail("invalid keyword");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("invalid number");
        pos_ += static_cast<size_t>(end - start);
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text_[pos_] != '"')
            return fail("expected '\"'");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                      if (pos_ + 4 > text_.size())
                          return fail("truncated \\u escape");
                      for (int i = 0; i < 4; ++i)
                          if (!std::isxdigit(static_cast<unsigned char>(
                                  text_[pos_ + i])))
                              return fail("invalid \\u escape");
                      // Non-ASCII code points degrade to '?'; the
                      // validator only needs ASCII span names.
                      out += '?';
                      pos_ += 4;
                      break;
                  }
                  default:
                    return fail("invalid escape character");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            out.arr.emplace_back();
            skipWs();
            if (!parseValue(out.arr.back()))
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            if (!parseValue(out.obj[key]))
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

bool
checkFail(std::string *error, const std::string &message)
{
    if (error && error->empty())
        *error = message;
    return false;
}

} // namespace

bool
validateChromeTrace(const std::string &json,
                    const TraceCheckOptions &options,
                    std::string *error, TraceStats *stats)
{
    if (error)
        error->clear();
    JsonValue root;
    JsonParser parser(json, error);
    if (!parser.parse(root))
        return false;
    if (root.kind != JsonValue::Kind::Object)
        return checkFail(error, "trace root must be an object");
    const auto it = root.obj.find("traceEvents");
    if (it == root.obj.end() ||
        it->second.kind != JsonValue::Kind::Array)
        return checkFail(error,
                         "missing or non-array 'traceEvents'");

    struct Interval
    {
        double ts, end;
        std::string name;
    };
    std::map<double, std::vector<Interval>> perTid;
    std::map<std::string, size_t> nameCounts;

    for (const JsonValue &ev : it->second.arr) {
        if (ev.kind != JsonValue::Kind::Object)
            return checkFail(error, "trace event is not an object");
        auto field = [&](const char *key) -> const JsonValue * {
            const auto f = ev.obj.find(key);
            return f == ev.obj.end() ? nullptr : &f->second;
        };
        const JsonValue *name = field("name");
        const JsonValue *ph = field("ph");
        if (!name || name->kind != JsonValue::Kind::String ||
            name->str.empty())
            return checkFail(error, "event missing a string 'name'");
        if (!ph || ph->kind != JsonValue::Kind::String ||
            ph->str != "X")
            return checkFail(error, "event '" + name->str +
                             "' is not a ph=\"X\" complete event");
        for (const char *key : {"ts", "dur", "pid", "tid"}) {
            const JsonValue *v = field(key);
            if (!v || v->kind != JsonValue::Kind::Number)
                return checkFail(error, "event '" + name->str +
                                 "' missing numeric '" + key + "'");
        }
        const double ts = field("ts")->number;
        const double dur = field("dur")->number;
        if (ts < 0.0 || dur < 0.0)
            return checkFail(error, "event '" + name->str +
                             "' has negative ts or dur");
        ++nameCounts[name->str];
        perTid[field("tid")->number].push_back(
            {ts, ts + dur, name->str});
    }

    // Span nesting: on one thread, intervals are disjoint or
    // contained — never partially overlapping.  The tolerance covers
    // the microsecond rounding of the writer (3 decimals = 1 ns).
    constexpr double kEps = 0.002;
    for (auto &[tid, spans] : perTid) {
        std::sort(spans.begin(), spans.end(),
                  [](const Interval &a, const Interval &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      return a.end > b.end;
                  });
        std::vector<const Interval *> stack;
        for (const Interval &s : spans) {
            while (!stack.empty() &&
                   s.ts >= stack.back()->end - kEps)
                stack.pop_back();
            if (!stack.empty() && s.end > stack.back()->end + kEps)
                return checkFail(
                    error, "span '" + s.name + "' partially overlaps "
                    "'" + stack.back()->name + "' on tid " +
                    std::to_string(static_cast<long long>(tid)));
            stack.push_back(&s);
        }
    }

    if (nameCounts.size() < options.minDistinctNames)
        return checkFail(error, "only " +
                         std::to_string(nameCounts.size()) +
                         " distinct span names, need >= " +
                         std::to_string(options.minDistinctNames));
    for (const std::string &prefix : options.requiredPrefixes) {
        bool found = false;
        for (const auto &[n, cnt] : nameCounts)
            if (n.compare(0, prefix.size(), prefix) == 0) {
                found = true;
                break;
            }
        if (!found)
            return checkFail(error, "no span name with prefix '" +
                             prefix + "'");
    }

    if (stats) {
        stats->events = 0;
        for (const auto &[n, cnt] : nameCounts)
            stats->events += cnt;
        stats->distinctNames = nameCounts.size();
        stats->names.clear();
        for (const auto &[n, cnt] : nameCounts)
            stats->names.push_back(n);
    }
    return true;
}

// ---- Process memory ------------------------------------------------

namespace
{

/// Parse a "Vm...:  <n> kB" line from /proc/self/status; 0 when the
/// key is absent (non-Linux, or a kernel without the field).
size_t
procStatusKb(const char *key)
{
#if defined(__linux__)
    std::ifstream in("/proc/self/status");
    if (!in)
        return 0;
    std::string line;
    const size_t key_len = std::strlen(key);
    while (std::getline(in, line)) {
        if (line.compare(0, key_len, key) != 0)
            continue;
        return static_cast<size_t>(
            std::strtoull(line.c_str() + key_len, nullptr, 10));
    }
#else
    (void)key;
#endif
    return 0;
}

} // namespace

size_t
peakRssBytes()
{
    return procStatusKb("VmHWM:") * 1024;
}

size_t
currentRssBytes()
{
    return procStatusKb("VmRSS:") * 1024;
}

size_t
heapAllocatedBytes()
{
#if defined(__GLIBC__)
    return mallinfo2().uordblks;
#else
    return 0;
#endif
}

void
reportPeakRssAtExit()
{
    static bool registered = false;
    if (registered)
        return;
    registered = true;
    std::atexit([] {
        const size_t peak = peakRssBytes();
        if (peak == 0)
            return; // no procfs on this platform
        std::fprintf(stderr, "peak RSS: %.1f MiB\n",
                     static_cast<double>(peak) /
                         (1024.0 * 1024.0));
    });
}

void
recordMemoryGauges()
{
    registry()
        .gauge("mem.peak_rss_bytes")
        .set(static_cast<double>(peakRssBytes()));
    registry()
        .gauge("mem.rss_bytes")
        .set(static_cast<double>(currentRssBytes()));
    registry()
        .gauge("mem.heap_allocated_bytes")
        .set(static_cast<double>(heapAllocatedBytes()));
}

} // namespace telemetry
} // namespace hifi
