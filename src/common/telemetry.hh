/**
 * @file
 * Zero-overhead-when-disabled tracing and metrics for the pipeline.
 *
 * Two instruments, one switch:
 *
 *  - **Spans**: RAII `Span` objects mark a named interval on the
 *    calling thread.  Records land in per-thread buffers (no shared
 *    mutable hot state; the only lock is a per-buffer mutex that is
 *    uncontended except during the final drain), nest arbitrarily,
 *    and export as Chrome `trace_event` JSON, so a trace opens
 *    directly in Perfetto / chrome://tracing.
 *  - **Metrics**: a process-global registry of named counters, gauges
 *    and fixed-bucket histograms.  All updates are atomic;
 *    registration is mutex-protected but call sites cache the
 *    returned reference (instruments are never deallocated while the
 *    registry lives).
 *
 * The determinism contract: telemetry only *reads* the computation —
 * clocks and counters live entirely outside the seed-pure data path,
 * so every seeded result is bitwise identical with telemetry on or
 * off, at any thread count (asserted by tests/test_telemetry.cc).
 * When disabled (the default), every instrumentation site reduces to
 * one relaxed atomic load and a predictable branch.
 *
 * Collection is scoped by a `Session`: construction clears the trace
 * buffers, snapshots the metric baselines and flips the enable flag;
 * finish() flips it back, drains the buffers and returns (optionally
 * writes) the run's trace and metric deltas.  Sessions are
 * process-global and non-reentrant — a second concurrent Session
 * observes and records into the same stream (documented limitation;
 * the pipeline runs them sequentially).
 */

#ifndef HIFI_COMMON_TELEMETRY_HH
#define HIFI_COMMON_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hifi
{
namespace telemetry
{

// ---- The switch ----------------------------------------------------

namespace detail
{
extern std::atomic<bool> g_enabled;
} // namespace detail

/// True while a collection session is active.  Relaxed load: the
/// disabled fast path is exactly this branch.
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

// ---- Span tracing --------------------------------------------------

/** One completed span, as drained from a thread buffer. */
struct SpanRecord
{
    const char *name = "";  ///< static string literal
    uint32_t tid = 0;       ///< small dense per-thread id
    uint32_t depth = 0;     ///< nesting depth on its thread
    uint64_t startNs = 0;   ///< ns since session start
    uint64_t durationNs = 0;
};

/**
 * RAII tracing span.  When telemetry is disabled construction and
 * destruction are a flag check each; when enabled the destructor
 * appends one record to the calling thread's buffer.
 *
 * @param name must be a string literal (or otherwise outlive the
 *             session); the record stores the pointer, not a copy.
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (enabled())
            begin(name);
    }

    ~Span()
    {
        if (active_)
            end();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void begin(const char *name);
    void end();

    const char *name_ = nullptr;
    uint64_t startNs_ = 0;
    uint32_t depth_ = 0;
    bool active_ = false;
};

// ---- Metrics -------------------------------------------------------

/** Monotonic counter. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram.  Bucket i counts observations with
 * x <= edges[i] (first matching edge); one implicit overflow bucket
 * catches everything above the last edge.  Edges are fixed at
 * registration — re-registering the same name with different edges
 * keeps the first layout.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upperEdges);

    void observe(double x);

    const std::vector<double> &edges() const { return edges_; }

    /// Per-bucket counts, size edges().size() + 1 (last = overflow).
    std::vector<uint64_t> bucketCounts() const;

    uint64_t count() const;
    double sum() const;

  private:
    std::vector<double> edges_;
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::vector<double> edges;
    std::vector<uint64_t> buckets; ///< edges.size() + 1 counts
    uint64_t count = 0;
    double sum = 0.0;
};

/** Point-in-time copy of the whole registry (or a delta of two). */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /// Counter / histogram deltas vs an earlier baseline; gauges keep
    /// their current values (they are instantaneous, not cumulative).
    MetricsSnapshot since(const MetricsSnapshot &baseline) const;
};

/**
 * Process-global metrics registry.  Lookup registers on first use and
 * returns a reference that stays valid for the registry's lifetime;
 * cache it at the call site (e.g. in a function-local static) to keep
 * hot paths off the registration mutex.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> upperEdges);

    MetricsSnapshot snapshot() const;

  private:
    Registry() = default;

    struct Impl;
    Impl &impl() const;
};

/// Shorthand for Registry::global().
inline Registry &
registry()
{
    return Registry::global();
}

// ---- Sessions and export -------------------------------------------

/** What to collect and where to put it; off by default. */
struct TelemetryConfig
{
    /// Master switch; everything below is ignored when false.
    bool enabled = false;

    /// Write the Chrome trace_event JSON here (empty: keep in memory
    /// only, available through PipelineTelemetry::traceJson()).
    std::string tracePath;

    /// Write the metrics JSON (this run's deltas) here.
    std::string metricsPath;

    /// Write the QC audit trail JSON here (robust acquisition only;
    /// see scope::qcAuditJson).
    std::string qcAuditPath;
};

/** Wall-clock accounting of one span name. */
struct StageTiming
{
    uint64_t count = 0;
    uint64_t wallNs = 0;
};

/** Everything one collection session produced. */
struct PipelineTelemetry
{
    std::vector<SpanRecord> spans;
    MetricsSnapshot metrics; ///< deltas over the session

    /// Total wall time per span name, aggregated from `spans`.
    std::map<std::string, StageTiming> stageWallNs;

    /// Chrome trace_event JSON ("X" complete events, ts/dur in us).
    std::string traceJson() const;

    /// Counters / gauges / histograms as a JSON object.
    std::string metricsJson() const;
};

/**
 * RAII collection scope.  Construction clears the span buffers,
 * snapshots the metrics baseline and enables collection; finish()
 * (or destruction) disables it.  finish() drains the spans, computes
 * metric deltas and writes the files named by `config`.
 */
class Session
{
  public:
    Session();
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /// End collection and package the results (idempotent: the
    /// second call returns the same object).
    std::shared_ptr<const PipelineTelemetry>
    finish(const TelemetryConfig &config);

  private:
    MetricsSnapshot baseline_;
    std::shared_ptr<const PipelineTelemetry> result_;
    bool finished_ = false;
};

/// Drop all buffered span records (used by tests and Session).
void clearTrace();

/// Write `text` to `path`; returns false (and warns) on I/O failure.
bool writeTextFile(const std::string &path, const std::string &text);

// ---- Trace validation ----------------------------------------------

/** Options for validateChromeTrace. */
struct TraceCheckOptions
{
    /// Minimum number of distinct span names.
    size_t minDistinctNames = 1;

    /// Name prefixes that must each appear on at least one span
    /// (e.g. {"fab", "scope"} matches "fab.voxelize").
    std::vector<std::string> requiredPrefixes;
};

/** What the validator found. */
struct TraceStats
{
    size_t events = 0;
    size_t distinctNames = 0;
    std::vector<std::string> names; ///< sorted distinct names
};

/**
 * Validate a Chrome trace_event JSON document: well-formed JSON, a
 * `traceEvents` array of "X" events with string `name` and numeric
 * `ts` / `dur` / `pid` / `tid`, per-thread spans properly nested
 * (intervals on one tid are disjoint or contained, never partially
 * overlapping), plus the checks in `options`.  Returns true on
 * success; on failure `error` (when non-null) explains the first
 * violation.  `stats` (when non-null) is filled on success.
 */
bool validateChromeTrace(const std::string &json,
                         const TraceCheckOptions &options = {},
                         std::string *error = nullptr,
                         TraceStats *stats = nullptr);

} // namespace telemetry
} // namespace hifi

#endif // HIFI_COMMON_TELEMETRY_HH
