/**
 * @file
 * Zero-overhead-when-disabled tracing and metrics for the pipeline.
 *
 * Two instruments, one switch:
 *
 *  - **Spans**: RAII `Span` objects mark a named interval on the
 *    calling thread.  Records land in per-thread buffers (no shared
 *    mutable hot state; the only lock is a per-buffer mutex that is
 *    uncontended except during the final drain), nest arbitrarily,
 *    and export as Chrome `trace_event` JSON, so a trace opens
 *    directly in Perfetto / chrome://tracing.
 *  - **Metrics**: a process-global registry of named counters, gauges
 *    and fixed-bucket histograms.  All updates are atomic;
 *    registration is mutex-protected but call sites cache the
 *    returned reference (instruments are never deallocated while the
 *    registry lives).
 *
 * The determinism contract: telemetry only *reads* the computation —
 * clocks and counters live entirely outside the seed-pure data path,
 * so every seeded result is bitwise identical with telemetry on or
 * off, at any thread count (asserted by tests/test_telemetry.cc).
 * When disabled (the default), every instrumentation site reduces to
 * one relaxed atomic load and a predictable branch.
 *
 * Collection is scoped by a `Session`.  Sessions may now run
 * concurrently (the campaign service traces every job): each session
 * has a unique id, span records are tagged with the session that owns
 * them, and finish() drains only that session's records.  Attribution
 * rules:
 *
 *  - A thread bound via `SessionBind` tags its spans and metric
 *    deltas with the bound session.  The thread pool propagates the
 *    submitting thread's binding to its workers, so fan-outs stay
 *    attributed to the job that launched them.
 *  - An unbound thread attributes to the *sole* active session when
 *    exactly one is active (the classic single-session flow needs no
 *    binding and behaves exactly as before); with several concurrent
 *    sessions, unbound records are unattributed and dropped.
 *  - Metric deltas: an unbound session computes registry deltas from
 *    its construction-time baseline (the legacy behaviour).  A
 *    session that was ever bound collects per-thread routed deltas
 *    instead, so two concurrent jobs cannot corrupt each other's
 *    counts.  Gauges stay global last-write-wins either way.
 */

#ifndef HIFI_COMMON_TELEMETRY_HH
#define HIFI_COMMON_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hifi
{
namespace telemetry
{

// ---- The switch ----------------------------------------------------

class Counter;
class Histogram;
class Session;

namespace detail
{
extern std::atomic<bool> g_enabled;

/// Accumulate a counter increment into the calling thread's routed
/// delta store for its bound session; no-op when the thread is
/// unbound.  Only called while telemetry is enabled.
void routeCounterAdd(const Counter *counter, uint64_t n);

/// Same for one histogram observation.
void routeHistogramObserve(const Histogram *histogram, double x);

/// Session id the calling thread is bound to (0 = unbound).
uint64_t currentSessionBinding();

/// RAII re-application of a binding captured with
/// currentSessionBinding() on another thread (used by the thread
/// pool to attribute worker-side records to the submitting job).
class ScopedSessionBinding
{
  public:
    explicit ScopedSessionBinding(uint64_t session);
    ~ScopedSessionBinding();

    ScopedSessionBinding(const ScopedSessionBinding &) = delete;
    ScopedSessionBinding &operator=(const ScopedSessionBinding &) =
        delete;

  private:
    uint64_t previous_ = 0;
};
} // namespace detail

/// True while a collection session is active.  Relaxed load: the
/// disabled fast path is exactly this branch.
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

// ---- Span tracing --------------------------------------------------

/** One completed span, as drained from a thread buffer. */
struct SpanRecord
{
    const char *name = "";  ///< static string literal
    uint32_t tid = 0;       ///< small dense per-thread id
    uint32_t depth = 0;     ///< nesting depth on its thread
    uint64_t startNs = 0;   ///< ns since session start
    uint64_t durationNs = 0;

    /// Owning session id; 0 while buffered means unattributed (the
    /// record was produced with several sessions active and no
    /// thread binding).  finish() only claims its own records.
    uint64_t session = 0;
};

/**
 * RAII tracing span.  When telemetry is disabled construction and
 * destruction are a flag check each; when enabled the destructor
 * appends one record to the calling thread's buffer.
 *
 * @param name must be a string literal (or otherwise outlive the
 *             session); the record stores the pointer, not a copy.
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (enabled())
            begin(name);
    }

    ~Span()
    {
        if (active_)
            end();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void begin(const char *name);
    void end();

    const char *name_ = nullptr;
    uint64_t startNs_ = 0;
    uint32_t depth_ = 0;
    bool active_ = false;
};

// ---- Metrics -------------------------------------------------------

/** Monotonic counter. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        // Routed per-session delta for bound threads; one TLS load
        // and a predictable branch when the thread is unbound.
        if (enabled())
            detail::routeCounterAdd(this, n);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram.  Bucket i counts observations with
 * x <= edges[i] (first matching edge); one implicit overflow bucket
 * catches everything above the last edge.  Edges are fixed at
 * registration — re-registering the same name with different edges
 * keeps the first layout.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upperEdges);

    void observe(double x);

    const std::vector<double> &edges() const { return edges_; }

    /// Per-bucket counts, size edges().size() + 1 (last = overflow).
    std::vector<uint64_t> bucketCounts() const;

    uint64_t count() const;
    double sum() const;

  private:
    std::vector<double> edges_;
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::vector<double> edges;
    std::vector<uint64_t> buckets; ///< edges.size() + 1 counts
    uint64_t count = 0;
    double sum = 0.0;
};

/** Point-in-time copy of the whole registry (or a delta of two). */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /// Counter / histogram deltas vs an earlier baseline; gauges keep
    /// their current values (they are instantaneous, not cumulative).
    MetricsSnapshot since(const MetricsSnapshot &baseline) const;
};

/**
 * Process-global metrics registry.  Lookup registers on first use and
 * returns a reference that stays valid for the registry's lifetime;
 * cache it at the call site (e.g. in a function-local static) to keep
 * hot paths off the registration mutex.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> upperEdges);

    MetricsSnapshot snapshot() const;

  private:
    Registry() = default;

    struct Impl;
    Impl &impl() const;
};

/// Shorthand for Registry::global().
inline Registry &
registry()
{
    return Registry::global();
}

// ---- Process memory ------------------------------------------------

/**
 * Peak resident set size of this process in bytes (the kernel's
 * high-water mark, VmHWM in /proc/self/status).  0 on platforms
 * without procfs.  This is the number the bench harnesses record so
 * memory regressions are tracked alongside time.
 */
size_t peakRssBytes();

/// Current resident set size in bytes (VmRSS); 0 without procfs.
size_t currentRssBytes();

/**
 * Register an atexit hook that prints "peak RSS: N MiB" to stderr
 * when the process ends (covering every return path, including early
 * failure exits).  Idempotent; every bench harness calls this first
 * thing in main so memory is recorded alongside time.  No output on
 * platforms without procfs.
 */
void reportPeakRssAtExit();

/**
 * Bytes currently handed out by the allocator (glibc mallinfo2
 * uordblks); 0 on other C libraries.  Unlike RSS this shrinks when
 * memory is freed, so peakRssBytes() - heapAllocatedBytes() exposes
 * high-water transients that RSS alone hides.
 */
size_t heapAllocatedBytes();

/// Refresh the "mem.peak_rss_bytes", "mem.rss_bytes" and
/// "mem.heap_allocated_bytes" gauges from the sources above.
void recordMemoryGauges();

// ---- Sessions and export -------------------------------------------

/** What to collect and where to put it; off by default. */
struct TelemetryConfig
{
    /// Master switch; everything below is ignored when false.
    bool enabled = false;

    /// Write the Chrome trace_event JSON here (empty: keep in memory
    /// only, available through PipelineTelemetry::traceJson()).
    std::string tracePath;

    /// Write the metrics JSON (this run's deltas) here.
    std::string metricsPath;

    /// Write the QC audit trail JSON here (robust acquisition only;
    /// see scope::qcAuditJson).
    std::string qcAuditPath;
};

/** Wall-clock accounting of one span name. */
struct StageTiming
{
    uint64_t count = 0;
    uint64_t wallNs = 0;
};

/** Everything one collection session produced. */
struct PipelineTelemetry
{
    std::vector<SpanRecord> spans;
    MetricsSnapshot metrics; ///< deltas over the session

    /// Total wall time per span name, aggregated from `spans`.
    std::map<std::string, StageTiming> stageWallNs;

    /// Chrome trace_event JSON ("X" complete events, ts/dur in us).
    std::string traceJson() const;

    /// Counters / gauges / histograms as a JSON object.
    std::string metricsJson() const;
};

/**
 * RAII collection scope.  Construction registers the session as
 * active (clearing stale span buffers when it is the first one),
 * snapshots the metrics baseline and enables collection; finish()
 * (or destruction) deregisters it, disabling collection when no
 * session remains.  finish() drains this session's spans, computes
 * metric deltas and writes the files named by `config`.  Concurrent
 * sessions are supported — see the file comment for the attribution
 * rules.
 */
class Session
{
  public:
    Session();
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /// Unique id of this session (never 0).
    uint64_t id() const { return id_; }

    /// End collection and package the results (idempotent: the
    /// second call returns the same object).
    std::shared_ptr<const PipelineTelemetry>
    finish(const TelemetryConfig &config);

  private:
    friend class SessionBind;

    MetricsSnapshot baseline_;
    std::shared_ptr<const PipelineTelemetry> result_;
    uint64_t id_ = 0;
    uint64_t startNs_ = 0;
    std::atomic<bool> bound_{false};
    bool finished_ = false;
};

/**
 * Bind the calling thread to a session: spans ended and counter /
 * histogram updates made on this thread (and on pool workers running
 * fan-outs it submits) are attributed to the session, even while
 * other sessions run concurrently on other threads.  Restores the
 * previous binding on destruction.
 */
class SessionBind
{
  public:
    explicit SessionBind(Session &session);
    ~SessionBind();

    SessionBind(const SessionBind &) = delete;
    SessionBind &operator=(const SessionBind &) = delete;

  private:
    uint64_t previous_ = 0;
};

/// Drop all buffered span records (used by tests and Session).
void clearTrace();

/// Write `text` to `path`; returns false (and warns) on I/O failure.
bool writeTextFile(const std::string &path, const std::string &text);

// ---- Trace validation ----------------------------------------------

/** Options for validateChromeTrace. */
struct TraceCheckOptions
{
    /// Minimum number of distinct span names.
    size_t minDistinctNames = 1;

    /// Name prefixes that must each appear on at least one span
    /// (e.g. {"fab", "scope"} matches "fab.voxelize").
    std::vector<std::string> requiredPrefixes;
};

/** What the validator found. */
struct TraceStats
{
    size_t events = 0;
    size_t distinctNames = 0;
    std::vector<std::string> names; ///< sorted distinct names
};

/**
 * Validate a Chrome trace_event JSON document: well-formed JSON, a
 * `traceEvents` array of "X" events with string `name` and numeric
 * `ts` / `dur` / `pid` / `tid`, per-thread spans properly nested
 * (intervals on one tid are disjoint or contained, never partially
 * overlapping), plus the checks in `options`.  Returns true on
 * success; on failure `error` (when non-null) explains the first
 * violation.  `stats` (when non-null) is filled on success.
 */
bool validateChromeTrace(const std::string &json,
                         const TraceCheckOptions &options = {},
                         std::string *error = nullptr,
                         TraceStats *stats = nullptr);

} // namespace telemetry
} // namespace hifi

#endif // HIFI_COMMON_TELEMETRY_HH
