#include "scope/sem.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hh"
#include "common/simd.hh"

#include "fab/voxelizer.hh"

#include "image/noise.hh"

#if HIFI_SIMD_AVX2_COMPILED
#include <immintrin.h>
#endif

namespace hifi
{
namespace scope
{

namespace
{

#if HIFI_SIMD_AVX2_COMPILED

/**
 * Four adjacent Y pixels of one SEM output row in lockstep.  Each lane
 * keeps its own accumulator and walks x in the scalar order, so every
 * pixel's sum is the identical sequential chain of double adds the
 * scalar loop performs; only lanes are parallel, never the reduction.
 *
 * Material decode: fab::voxelMaterial rounds with std::lround (ties
 * away from zero).  Voxel codes are small non-negative reals, so
 * trunc(v + 0.5) in double — exact at these magnitudes — picks the
 * same code for every in-range value, and all out-of-range codes
 * collapse to index 0, which IS Material::Oxide, matching the scalar
 * fallback.
 */
HIFI_AVX2_TARGET inline void
semRowQuadAvx2(const float *base, int nx, size_t x0, size_t x1,
               const double *shaded, double count, float *out)
{
    const __m128i lane_off =
        _mm_set_epi32(3 * nx, 2 * nx, 1 * nx, 0);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m128i zero32 = _mm_setzero_si128();
    const __m128i maxCode =
        _mm_set1_epi32(static_cast<int>(fab::kNumMaterials) - 1);
    // Mask-gather with an all-ones mask == plain gather, but avoids
    // GCC's spurious maybe-uninitialized warning on the pass-through
    // operand of the unmasked intrinsic.
    const __m128 all_ps =
        _mm_castsi128_ps(_mm_set1_epi32(-1));
    const __m256d all_pd =
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    __m256d sum = _mm256_setzero_pd();
    for (size_t x = x0; x < x1; ++x) {
        const __m128 v = _mm_mask_i32gather_ps(
            _mm_setzero_ps(), base + x, lane_off, all_ps, 4);
        const __m256d c =
            _mm256_add_pd(_mm256_cvtps_pd(v), half);
        __m128i code = _mm256_cvttpd_epi32(c);
        const __m128i bad = _mm_or_si128(
            _mm_cmplt_epi32(code, zero32),
            _mm_cmpgt_epi32(code, maxCode));
        code = _mm_andnot_si128(bad, code);
        sum = _mm256_add_pd(
            sum, _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                          shaded, code, all_pd, 8));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, sum);
    for (int j = 0; j < 4; ++j)
        out[j] = static_cast<float>(lanes[j] / count);
}

#endif // HIFI_SIMD_AVX2_COMPILED

} // namespace

double
materialContrast(fab::Material material, models::Detector detector)
{
    using fab::Material;
    if (detector == models::Detector::Se) {
        // SE contrast follows conductivity.
        switch (material) {
          case Material::Oxide:
            return 0.12;
          case Material::Silicon:
            return 0.40;
          case Material::Polysilicon:
            return 0.55;
          case Material::Tungsten:
            return 0.78;
          case Material::Copper:
            return 0.92;
          case Material::CapacitorMetal:
            return 0.85;
          default:
            break;
        }
    } else {
        // BSE contrast follows the mean atomic number.
        switch (material) {
          case Material::Oxide:
            return 0.10;
          case Material::Silicon:
            return 0.30;
          case Material::Polysilicon:
            return 0.42;
          case Material::Tungsten:
            return 0.95;
          case Material::Copper:
            return 0.70;
          case Material::CapacitorMetal:
            return 0.58;
          default:
            break;
        }
    }
    throw std::invalid_argument("materialContrast: unknown material");
}

ContrastLut
contrastLut(models::Detector detector)
{
    ContrastLut lut;
    for (size_t m = 0; m < fab::kNumMaterials; ++m)
        lut[m] =
            materialContrast(static_cast<fab::Material>(m), detector);
    return lut;
}

fab::Material
classifyIntensity(double intensity, models::Detector detector,
                  bool exclude_capacitor)
{
    return classifyIntensity(intensity, contrastLut(detector),
                             exclude_capacitor);
}

fab::Material
classifyIntensity(double intensity, const ContrastLut &lut,
                  bool exclude_capacitor)
{
    fab::Material best = fab::Material::Oxide;
    double best_err = 1e9;
    for (size_t m = 0; m < fab::kNumMaterials; ++m) {
        const auto mat = static_cast<fab::Material>(m);
        if (exclude_capacitor && mat == fab::Material::CapacitorMetal)
            continue;
        const double err = std::abs(lut[m] - intensity);
        if (err < best_err) {
            best_err = err;
            best = mat;
        }
    }
    return best;
}

image::Image2D
semImageClean(const image::Volume3D &materials, size_t x0,
              size_t slice_voxels, const SemParams &params)
{
    if (x0 >= materials.nx())
        throw std::out_of_range("semImageClean: x0 out of range");
    if (slice_voxels == 0)
        throw std::invalid_argument("semImageClean: zero slice");

    // Sample-dependent SE contrast compression (Section IV-B): on
    // vendors B and C the SE signal barely separates the materials,
    // which is why those chips were imaged with BSE.
    const bool se = params.detector == models::Detector::Se;
    const double q = se ? params.seQuality : 1.0;
    const double pivot = 0.45;

    // Hoist the per-voxel contrast switch AND the shading arithmetic:
    // shaded[m] is exactly the `pivot + (c - pivot) * q` the inner
    // loop used to recompute, so the per-voxel sums are bitwise
    // unchanged.
    const ContrastLut lut = contrastLut(params.detector);
    std::array<double, fab::kNumMaterials> shaded;
    for (size_t m = 0; m < fab::kNumMaterials; ++m)
        shaded[m] = pivot + (lut[m] - pivot) * q;

    const size_t x1 = std::min(materials.nx(), x0 + slice_voxels);
    image::Image2D img(materials.ny(), materials.nz());
    // Each output row (one z) only reads the material volume and
    // writes its own pixels: row-band parallel, scheduling-invariant.
    common::parallelFor(0, materials.nz(), 4,
                        [&](size_t z0, size_t z1) {
        const size_t ny = materials.ny();
        for (size_t z = z0; z < z1; ++z) {
            size_t y = 0;
#if HIFI_SIMD_AVX2_COMPILED
            if (common::simd::avx2()) {
                for (; y + 4 <= ny; y += 4) {
                    semRowQuadAvx2(
                        materials.data() +
                            (z * ny + y) * materials.nx(),
                        static_cast<int>(materials.nx()), x0, x1,
                        shaded.data(),
                        static_cast<double>(x1 - x0), &img.at(y, z));
                }
            }
#endif
            for (; y < ny; ++y) {
                double sum = 0.0;
                for (size_t x = x0; x < x1; ++x) {
                    sum += shaded[static_cast<size_t>(
                        fab::voxelMaterial(materials.at(x, y, z)))];
                }
                img.at(y, z) = static_cast<float>(
                    sum / static_cast<double>(x1 - x0));
            }
        }
    });
    return img;
}

image::Image2D
semImage(const image::Volume3D &materials, size_t x0,
         size_t slice_voxels, const SemParams &params,
         common::Rng &rng)
{
    image::Image2D img =
        semImageClean(materials, x0, slice_voxels, params);
    const double electrons = params.electronsPerUs * params.dwellUs;
    // One draw from the caller's generator seeds the whole frame; the
    // per-row counter-seeded streams inside addSensorNoise make the
    // noise field independent of thread scheduling.
    image::addSensorNoise(img, electrons, params.readNoise,
                          rng.next());
    return img;
}

} // namespace scope
} // namespace hifi
