#include "scope/sem.hh"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hh"

#include "fab/voxelizer.hh"

#include "image/noise.hh"

namespace hifi
{
namespace scope
{

double
materialContrast(fab::Material material, models::Detector detector)
{
    using fab::Material;
    if (detector == models::Detector::Se) {
        // SE contrast follows conductivity.
        switch (material) {
          case Material::Oxide:
            return 0.12;
          case Material::Silicon:
            return 0.40;
          case Material::Polysilicon:
            return 0.55;
          case Material::Tungsten:
            return 0.78;
          case Material::Copper:
            return 0.92;
          case Material::CapacitorMetal:
            return 0.85;
          default:
            break;
        }
    } else {
        // BSE contrast follows the mean atomic number.
        switch (material) {
          case Material::Oxide:
            return 0.10;
          case Material::Silicon:
            return 0.30;
          case Material::Polysilicon:
            return 0.42;
          case Material::Tungsten:
            return 0.95;
          case Material::Copper:
            return 0.70;
          case Material::CapacitorMetal:
            return 0.58;
          default:
            break;
        }
    }
    throw std::invalid_argument("materialContrast: unknown material");
}

ContrastLut
contrastLut(models::Detector detector)
{
    ContrastLut lut;
    for (size_t m = 0; m < fab::kNumMaterials; ++m)
        lut[m] =
            materialContrast(static_cast<fab::Material>(m), detector);
    return lut;
}

fab::Material
classifyIntensity(double intensity, models::Detector detector,
                  bool exclude_capacitor)
{
    return classifyIntensity(intensity, contrastLut(detector),
                             exclude_capacitor);
}

fab::Material
classifyIntensity(double intensity, const ContrastLut &lut,
                  bool exclude_capacitor)
{
    fab::Material best = fab::Material::Oxide;
    double best_err = 1e9;
    for (size_t m = 0; m < fab::kNumMaterials; ++m) {
        const auto mat = static_cast<fab::Material>(m);
        if (exclude_capacitor && mat == fab::Material::CapacitorMetal)
            continue;
        const double err = std::abs(lut[m] - intensity);
        if (err < best_err) {
            best_err = err;
            best = mat;
        }
    }
    return best;
}

image::Image2D
semImageClean(const image::Volume3D &materials, size_t x0,
              size_t slice_voxels, const SemParams &params)
{
    if (x0 >= materials.nx())
        throw std::out_of_range("semImageClean: x0 out of range");
    if (slice_voxels == 0)
        throw std::invalid_argument("semImageClean: zero slice");

    // Sample-dependent SE contrast compression (Section IV-B): on
    // vendors B and C the SE signal barely separates the materials,
    // which is why those chips were imaged with BSE.
    const bool se = params.detector == models::Detector::Se;
    const double q = se ? params.seQuality : 1.0;
    const double pivot = 0.45;

    // Hoist the per-voxel contrast switch AND the shading arithmetic:
    // shaded[m] is exactly the `pivot + (c - pivot) * q` the inner
    // loop used to recompute, so the per-voxel sums are bitwise
    // unchanged.
    const ContrastLut lut = contrastLut(params.detector);
    std::array<double, fab::kNumMaterials> shaded;
    for (size_t m = 0; m < fab::kNumMaterials; ++m)
        shaded[m] = pivot + (lut[m] - pivot) * q;

    const size_t x1 = std::min(materials.nx(), x0 + slice_voxels);
    image::Image2D img(materials.ny(), materials.nz());
    // Each output row (one z) only reads the material volume and
    // writes its own pixels: row-band parallel, scheduling-invariant.
    common::parallelFor(0, materials.nz(), 4,
                        [&](size_t z0, size_t z1) {
        for (size_t z = z0; z < z1; ++z) {
            for (size_t y = 0; y < materials.ny(); ++y) {
                double sum = 0.0;
                for (size_t x = x0; x < x1; ++x) {
                    sum += shaded[static_cast<size_t>(
                        fab::voxelMaterial(materials.at(x, y, z)))];
                }
                img.at(y, z) = static_cast<float>(
                    sum / static_cast<double>(x1 - x0));
            }
        }
    });
    return img;
}

image::Image2D
semImage(const image::Volume3D &materials, size_t x0,
         size_t slice_voxels, const SemParams &params,
         common::Rng &rng)
{
    image::Image2D img =
        semImageClean(materials, x0, slice_voxels, params);
    const double electrons = params.electronsPerUs * params.dwellUs;
    // One draw from the caller's generator seeds the whole frame; the
    // per-row counter-seeded streams inside addSensorNoise make the
    // noise field independent of thread scheduling.
    image::addSensorNoise(img, electrons, params.readNoise,
                          rng.next());
    return img;
}

} // namespace scope
} // namespace hifi
