#include "scope/prep.hh"

namespace hifi
{
namespace scope
{

double
PrepPlan::prepMinutes() const
{
    double total = 0.0;
    for (const auto &s : steps)
        total += s.minutes;
    return total;
}

double
PrepPlan::identificationHours() const
{
    if (matsVisible) {
        // Optical microscope session: pick the widest logic strip
        // around a MAT.
        return 0.5;
    }
    return blindSearch.hoursSpent;
}

PrepPlan
prepareChip(const models::ChipSpec &chip)
{
    PrepPlan plan;
    plan.matsVisible = chip.matsVisible;

    plan.steps.push_back(
        {"desolder from DIMM", "400 C heat gun", 10.0});
    plan.steps.push_back(
        {"remove epoxy package", "heat gun, mechanical", 20.0});
    plan.steps.push_back(
        {"decap residue", "sulfuric acid at 140 C", 45.0});
    plan.steps.push_back(
        {"optical inspection", "AX10 Imager.M2: banks + logic pad",
         15.0});

    if (!plan.matsVisible) {
        // Top layer only: blind FIB cross sections (Fig. 6).
        plan.blindSearch = roiSearch(chip);
    }
    return plan;
}

} // namespace scope
} // namespace hifi
