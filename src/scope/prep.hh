/**
 * @file
 * Sample preparation (Section IV-A, Fig. 5): desolder the chip from
 * the DIMM with a heat gun, strip the epoxy package, finish with the
 * sulfuric-acid decap, then locate the ROI.
 *
 * On some chips the decap exposes the lower layers, making the MATs
 * optically visible (Table I column "MATs"); those skip the blind
 * cross-section search and identify the ROI under the optical
 * microscope in minutes.  The others need the Fig. 6 blind search.
 */

#ifndef HIFI_SCOPE_PREP_HH
#define HIFI_SCOPE_PREP_HH

#include <string>
#include <vector>

#include "models/chip_data.hh"
#include "scope/roi_search.hh"

namespace hifi
{
namespace scope
{

/** One preparation step. */
struct PrepStep
{
    std::string name;
    std::string parameters; ///< e.g. "400 C heat gun"
    double minutes = 0.0;
};

/** Full preparation + ROI identification plan for one chip. */
struct PrepPlan
{
    std::vector<PrepStep> steps;

    /// MATs optically visible after decap (Table I).
    bool matsVisible = false;

    /// Blind search result; only run when MATs are not visible.
    RoiSearchResult blindSearch;

    double prepMinutes() const;

    /// Total identification time: optical minutes or blind-search
    /// hours (paper: <= 2 h per chip either way).
    double identificationHours() const;
};

/// Build the preparation plan and run the appropriate ROI search.
PrepPlan prepareChip(const models::ChipSpec &chip);

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_PREP_HH
