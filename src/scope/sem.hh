/**
 * @file
 * SEM image formation (Section IV).
 *
 * Each material has a nominal detected intensity that depends on the
 * detector: secondary electrons (SE) respond to conductivity, back-
 * scattered electrons (BSE) to atomic number.  Shot noise scales with
 * dwell time (3 us vs 6 us in the paper); additive detector noise is
 * Gaussian.  The beam interaction volume averages the material over
 * the FIB slice thickness, which is what later allows sub-slice edge
 * interpolation during measurement.
 */

#ifndef HIFI_SCOPE_SEM_HH
#define HIFI_SCOPE_SEM_HH

#include <array>

#include "common/rng.hh"
#include "fab/materials.hh"
#include "image/image2d.hh"
#include "image/volume3d.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace scope
{

/// Nominal detected intensity of a material under a detector.
double materialContrast(fab::Material material,
                        models::Detector detector);

/// Per-material contrast table, indexed by the Material enum value.
using ContrastLut = std::array<double, fab::kNumMaterials>;

/**
 * materialContrast for every material under one detector, built once
 * so per-pixel/per-voxel loops index a table instead of re-running the
 * contrast switch.  lut[m] == materialContrast(Material(m), detector)
 * exactly.
 */
ContrastLut contrastLut(models::Detector detector);

/**
 * Classify an observed intensity to the nearest material contrast.
 * Inverse of materialContrast; used by the RE segmentation stage.
 *
 * @param exclude_capacitor drop the capacitor electrode material from
 *        the candidates; the SA region has none, and under BSE its
 *        contrast sits between copper and polysilicon, which would
 *        swallow blurred wire pixels.
 */
fab::Material classifyIntensity(double intensity,
                                models::Detector detector,
                                bool exclude_capacitor = false);

/**
 * classifyIntensity against a prebuilt contrast table — same result,
 * but callers classifying many pixels (the segmentation stage) build
 * the table once instead of re-deriving every contrast per pixel.
 */
fab::Material classifyIntensity(double intensity,
                                const ContrastLut &lut,
                                bool exclude_capacitor = false);

/** SEM acquisition parameters. */
struct SemParams
{
    models::Detector detector = models::Detector::Se;
    double dwellUs = 3.0;

    /// Full-scale detected electrons per us of dwell.
    double electronsPerUs = 300.0;

    /// Additive detector (readout) noise sigma.
    double readNoise = 0.05;

    /**
     * SE contrast quality of the sample (models::ChipSpec::seQuality).
     * For the SE detector, contrasts are compressed toward their mean
     * by this factor; BSE is unaffected.
     */
    double seQuality = 1.0;
};

/**
 * Image the cross-section of a material volume at voxel position
 * `x0`, averaging the interaction volume over `sliceVoxels` voxels
 * along X.  Output pixels are (Y, Z).
 */
image::Image2D semImage(const image::Volume3D &materials, size_t x0,
                        size_t slice_voxels, const SemParams &params,
                        common::Rng &rng);

/// Noise-free version (for ground-truth comparisons).
image::Image2D semImageClean(const image::Volume3D &materials,
                             size_t x0, size_t slice_voxels,
                             const SemParams &params);

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_SEM_HH
