#include "scope/roi_search.hh"

#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace scope
{

namespace
{

/// Fold a coordinate into [0, period).
double
fold(double v, double period)
{
    const double m = std::fmod(v, period);
    return m < 0.0 ? m + period : m;
}

/**
 * Find the width of the logic strip in one scan direction.
 *
 * @param is_logic  predicate classifying a coordinate
 * @param sections  incremented per simulated cross section
 */
double
measureLogicStrip(const models::ChipSpec &chip,
                  bool (*is_logic)(const models::ChipSpec &, double),
                  const RoiSearchParams &params, size_t &sections)
{
    // Coarse scan until the morphology changes to logic.
    double x = 0.0;
    const double limit = 1e7; // 10 mm: far beyond any tile period
    while (!is_logic(chip, x)) {
        x += params.coarseStepNm;
        ++sections;
        if (x > limit)
            throw std::runtime_error("roiSearch: no logic found");
    }

    // Bisect the leading edge (last MAT position before x).
    double lo = x - params.coarseStepNm, hi = x;
    while (hi - lo > params.refineNm) {
        const double mid = 0.5 * (lo + hi);
        ++sections;
        if (is_logic(chip, mid))
            hi = mid;
        else
            lo = mid;
    }
    const double start = hi;

    // Walk forward to find the trailing edge, then bisect it.
    double fwd = start;
    while (is_logic(chip, fwd)) {
        fwd += params.coarseStepNm;
        ++sections;
    }
    lo = fwd - params.coarseStepNm;
    hi = fwd;
    while (hi - lo > params.refineNm) {
        const double mid = 0.5 * (lo + hi);
        ++sections;
        if (is_logic(chip, mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo - start + params.refineNm * 0.5;
}

bool
logicAlongBitlines(const models::ChipSpec &chip, double x)
{
    return regionAlongBitlines(chip, x) != RegionKind::Mat;
}

bool
logicAlongWordlines(const models::ChipSpec &chip, double y)
{
    return regionAlongWordlines(chip, y) != RegionKind::Mat;
}

} // namespace

RegionKind
regionAlongBitlines(const models::ChipSpec &chip, double x_nm)
{
    const double period = chip.matHeightNm + chip.saHeightNm;
    return fold(x_nm, period) < chip.matHeightNm ? RegionKind::Mat
                                                 : RegionKind::SaLogic;
}

RegionKind
regionAlongWordlines(const models::ChipSpec &chip, double y_nm)
{
    const double period = chip.matWidthNm + chip.rowDriverWidthNm;
    return fold(y_nm, period) < chip.matWidthNm
        ? RegionKind::Mat
        : RegionKind::RowDriverLogic;
}

RoiSearchResult
roiSearch(const models::ChipSpec &chip, const RoiSearchParams &params)
{
    RoiSearchParams p = params;
    if (p.coarseStepNm <= 0.0) {
        p.coarseStepNm = std::max(
            2500.0,
            0.7 * std::min(chip.rowDriverWidthNm, chip.saHeightNm));
    }

    RoiSearchResult result;
    size_t sections = 0;

    // Direction 1 (Fig. 6): along the wordline axis, the logic strip
    // is the row drivers.
    result.w1Nm = measureLogicStrip(chip, &logicAlongWordlines, p,
                                    sections);
    // Direction 2: perpendicular, the logic strip is the SA region.
    result.w2Nm = measureLogicStrip(chip, &logicAlongBitlines, p,
                                    sections);

    result.saIsSecondDirection = result.w2Nm > result.w1Nm;
    result.crossSections = sections;
    result.hoursSpent =
        static_cast<double>(sections) * p.minutesPerSection / 60.0;
    return result;
}

} // namespace scope
} // namespace hifi
