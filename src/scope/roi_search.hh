/**
 * @file
 * Blind ROI identification (Section IV-A, Fig. 6).
 *
 * For chips whose MATs are not visible after decap, the paper locates
 * the SA region by stepping blind FIB cross sections across a bank:
 * capacitor-free morphology marks a logic strip; scanning in one
 * direction crosses the row-driver strips (width W1), scanning in the
 * perpendicular direction crosses the SA strips (width W2 > W1), so
 * the wider logic region is identified as the SAs.
 *
 * The chip tile model comes straight from the measured geometry:
 * period matHeight + saHeight along the bitline axis, period
 * matWidth + rowDriverWidth along the wordline axis.
 */

#ifndef HIFI_SCOPE_ROI_SEARCH_HH
#define HIFI_SCOPE_ROI_SEARCH_HH

#include <cstddef>

#include "models/chip_data.hh"

namespace hifi
{
namespace scope
{

/// What a blind cross section at a given position shows.
enum class RegionKind { Mat, SaLogic, RowDriverLogic };

/// Region along the bitline axis (MAT / SA strips alternate).
RegionKind regionAlongBitlines(const models::ChipSpec &chip,
                               double x_nm);

/// Region along the wordline axis (MAT / row-driver strips).
RegionKind regionAlongWordlines(const models::ChipSpec &chip,
                                double y_nm);

/** Result of the two-direction blind search. */
struct RoiSearchResult
{
    double w1Nm = 0.0; ///< logic width found in the first direction
    double w2Nm = 0.0; ///< logic width found perpendicular
    bool saIsSecondDirection = false; ///< W2 > W1 -> SAs found there

    size_t crossSections = 0; ///< blind sections spent
    double hoursSpent = 0.0;  ///< <= 2 h per chip in the paper

    /// The recovered SA-strip width; compare to chip.saHeightNm.
    double saWidthNm() const
    {
        return saIsSecondDirection ? w2Nm : w1Nm;
    }
};

/** Search parameters. */
struct RoiSearchParams
{
    /// Coarse stepping distance between blind sections (nm);
    /// <= 0 picks 0.7x the narrowest logic strip (the analyst scales
    /// the stride to the expected feature size so no strip is
    /// stepped over).
    double coarseStepNm = 0.0;

    /// Boundary bisection resolution (nm).
    double refineNm = 100.0;

    /// Analyst + instrument minutes per blind cross section.
    double minutesPerSection = 2.0;
};

/**
 * Run the blind two-direction search on a chip: step until a logic
 * region is found in each direction, bisect its edges, and pick the
 * wider strip as the SA region.
 */
RoiSearchResult roiSearch(const models::ChipSpec &chip,
                          const RoiSearchParams &params = {});

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_ROI_SEARCH_HH
