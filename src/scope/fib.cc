#include "scope/fib.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/telemetry.hh"
#include "image/noise.hh"
#include "image/registration.hh"

namespace hifi
{
namespace scope
{

namespace
{

/// Count a per-fault-kind QC decision ("qc.<decision>.<fault>").
/// Only called when telemetry is enabled; the registry lookup is
/// per-slice, not per-pixel, so the string build is cheap enough.
void
countDecision(const char *decision, int fault_kind, uint64_t n = 1)
{
    telemetry::registry()
        .counter(std::string("qc.") + decision + "." +
                 faultName(static_cast<FaultKind>(fault_kind)))
        .add(n);
}

/// Dedicated RNG substream for the stage-drift walk (far away from
/// the per-slice attempt streams, which start at 0).
constexpr uint64_t kDriftStream = ~0ull;

/// Substreams per slice: kMaxAttemptsPerSlice attempts, each with a
/// fault stream (even) and a frame-noise stream (odd).
constexpr uint64_t kSliceStreamStride = 2 * kMaxAttemptsPerSlice;

/// One mean-reverting bounded drift step shared by both acquirers.
long
driftStep(long drift, double probability, long max_px,
          common::Rng &rng)
{
    if (rng.uniform() >= probability)
        return drift;
    // Mean reversion: more likely to step back toward zero the
    // further out the stage has wandered.
    const double p_out = 0.5 /
        (1.0 + std::abs(static_cast<double>(drift)) /
             static_cast<double>(max_px));
    const long delta = (rng.uniform() < p_out) ? 1 : -1;
    const long next = drift + (drift >= 0 ? delta : -delta);
    return std::clamp(next, -max_px, max_px);
}

} // namespace

std::optional<common::Error>
validate(const FibSemParams &params)
{
    using common::Error;
    using common::ErrorCode;
    if (params.sliceVoxels == 0)
        return Error{ErrorCode::InvalidArgument,
                     "FibSemParams: sliceVoxels must be > 0"};
    if (!(params.driftProbability >= 0.0) ||
        !(params.driftProbability <= 1.0))
        return Error{ErrorCode::InvalidArgument,
                     "FibSemParams: driftProbability outside [0, 1]"};
    if (params.maxDriftPx < 1)
        return Error{ErrorCode::InvalidArgument,
                     "FibSemParams: maxDriftPx must be >= 1"};
    if (!(params.sem.dwellUs > 0.0))
        return Error{ErrorCode::InvalidArgument,
                     "SemParams: dwellUs must be > 0"};
    if (!(params.sem.electronsPerUs > 0.0))
        return Error{ErrorCode::InvalidArgument,
                     "SemParams: electronsPerUs must be > 0"};
    if (params.sem.readNoise < 0.0)
        return Error{ErrorCode::InvalidArgument,
                     "SemParams: readNoise must be >= 0"};
    if (!(params.sem.seQuality > 0.0) || params.sem.seQuality > 1.0)
        return Error{ErrorCode::InvalidArgument,
                     "SemParams: seQuality outside (0, 1]"};
    return std::nullopt;
}

std::optional<common::Error>
validate(const RecoveryParams &params)
{
    using common::Error;
    using common::ErrorCode;
    if (params.maxRetries + 1 > kMaxAttemptsPerSlice)
        return Error{ErrorCode::InvalidArgument,
                     "RecoveryParams: maxRetries must be < " +
                         std::to_string(kMaxAttemptsPerSlice)};
    if (params.cleanCacheCapacity < 1)
        return Error{ErrorCode::InvalidArgument,
                     "RecoveryParams: cleanCacheCapacity must be "
                     ">= 1"};
    const image::QcThresholds &qc = params.qc;
    if (qc.miBins < 2)
        return Error{ErrorCode::InvalidArgument,
                     "QcThresholds: miBins must be >= 2"};
    if (qc.history < 1)
        return Error{ErrorCode::InvalidArgument,
                     "QcThresholds: history must be >= 1"};
    if (qc.maxNeighborShiftPx < 0 || qc.shiftSearchPx < 1)
        return Error{ErrorCode::InvalidArgument,
                     "QcThresholds: shift bounds must be >= 0 / >= 1"};
    if (qc.shiftSearchPx <= qc.maxNeighborShiftPx)
        return Error{ErrorCode::FailedPrecondition,
                     "QcThresholds: shiftSearchPx must exceed "
                     "maxNeighborShiftPx or excursions are "
                     "undetectable"};
    return std::nullopt;
}

// ---- Clean-frame LRU cache -----------------------------------------

CleanFrameCache::CleanFrameCache(size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

image::Image2D
CleanFrameCache::fetch(uint64_t key,
                       const std::function<image::Image2D()> &render)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            if (telemetry::enabled())
                telemetry::registry()
                    .counter("sem.clean_cache.hit")
                    .add(1);
            return it->second->second;
        }
    }
    // Render outside the lock: the value is a pure function of the
    // key, so two threads racing on the same miss both produce the
    // identical frame and either insert wins.
    image::Image2D frame = render();
    if (telemetry::enabled())
        telemetry::registry().counter("sem.clean_cache.miss").add(1);
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(key) == index_.end()) {
        lru_.emplace_front(key, frame);
        index_[key] = lru_.begin();
        while (lru_.size() > capacity_) {
            index_.erase(lru_.back().first);
            lru_.pop_back();
            ++evictions_;
            if (telemetry::enabled())
                telemetry::registry()
                    .counter("sem.clean_cache.evicted")
                    .add(1);
        }
    }
    return frame;
}

size_t
CleanFrameCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

uint64_t
CleanFrameCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

namespace
{

/// FNV-1a mix for clean-frame cache keys.
uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    h ^= v;
    return h * 1099511628211ull;
}

/// Digest of everything a clean frame depends on besides the volume:
/// mill position, slice thickness and the SEM imaging parameters.
uint64_t
cleanFrameKey(uint64_t volume_key, size_t x, size_t slice_voxels,
              const SemParams &sem)
{
    uint64_t h = 1469598103934665603ull;
    h = fnvMix(h, volume_key);
    h = fnvMix(h, static_cast<uint64_t>(x));
    h = fnvMix(h, static_cast<uint64_t>(slice_voxels));
    h = fnvMix(h, static_cast<uint64_t>(sem.detector));
    uint64_t bits = 0;
    const double fields[] = {sem.dwellUs, sem.electronsPerUs,
                             sem.readNoise, sem.seQuality};
    for (const double f : fields) {
        static_assert(sizeof(bits) == sizeof(f), "bit pun");
        __builtin_memcpy(&bits, &f, sizeof(bits));
        h = fnvMix(h, bits);
    }
    return h;
}

} // namespace

image::SliceStack
acquire(const image::Volume3D &materials, const FibSemParams &params,
        common::Rng &rng)
{
    if (params.sliceVoxels == 0)
        throw std::invalid_argument("acquire: zero slice thickness");

    const telemetry::Span span("scope.acquire");
    image::SliceStack stack;
    stack.sliceThicknessNm = 0.0; // caller-level metadata; see below

    long drift_y = 0, drift_z = 0;
    for (size_t x = 0; x + params.sliceVoxels <= materials.nx();
         x += params.sliceVoxels) {
        if (x > 0) {
            drift_y = driftStep(drift_y, params.driftProbability,
                                params.maxDriftPx, rng);
            drift_z = driftStep(drift_z, params.driftProbability,
                                params.maxDriftPx, rng);
        }
        const telemetry::Span frame_span("scope.sem_image");
        image::Image2D img =
            semImage(materials, x, params.sliceVoxels, params.sem, rng);
        stack.slices.push_back(img.shifted(drift_y, drift_z));
        stack.trueDrift.emplace_back(drift_y, drift_z);
    }
    return stack;
}

// ---- Streaming windows ---------------------------------------------

SliceWindowing::SliceWindowing(size_t window, WindowConsumer sink)
    : window_(window ? window : kStreamWindowSlices),
      sink_(std::move(sink))
{
}

void
SliceWindowing::push(StreamedSlice &&slice)
{
    if (current_.slices.empty())
        current_.begin = slice.index;
    current_.slices.push_back(std::move(slice));
    if (current_.slices.size() >= window_)
        flush();
}

void
SliceWindowing::flush()
{
    if (current_.slices.empty())
        return;
    SliceWindow w = std::move(current_);
    current_ = SliceWindow{};
    sink_(std::move(w));
}

// ---- Robust acquisition (streaming core) ---------------------------

StreamAcquisitionStats
acquireRobustStreamed(const image::Volume3D &materials,
                      const FibSemParams &params,
                      const FaultParams &faults,
                      const RecoveryParams &recovery, uint64_t seed,
                      const SliceConsumer &sink,
                      CleanFrameCache *sharedCleanFrames,
                      uint64_t volumeKey)
{
    if (const auto err = validate(params))
        throw std::invalid_argument("acquireRobust: " + err->message);
    if (const auto err = validate(faults))
        throw std::invalid_argument("acquireRobust: " + err->message);
    if (const auto err = validate(recovery))
        throw std::invalid_argument("acquireRobust: " + err->message);

    const telemetry::Span span("scope.acquire");
    StreamAcquisitionStats out;

    std::vector<size_t> positions;
    for (size_t x = 0; x + params.sliceVoxels <= materials.nx();
         x += params.sliceVoxels)
        positions.push_back(x);
    if (positions.empty())
        return out;
    out.slices = positions.size();

    // The drift walk is drawn from its own substream up front, so it
    // is a pure function of the seed no matter how many re-imaging
    // attempts individual slices need.
    std::vector<std::pair<long, long>> drift(positions.size(),
                                             {0, 0});
    {
        common::Rng drift_rng(seed, kDriftStream);
        long dy = 0, dz = 0;
        for (size_t s = 1; s < positions.size(); ++s) {
            dy = driftStep(dy, params.driftProbability,
                           params.maxDriftPx, drift_rng);
            dz = driftStep(dz, params.driftProbability,
                           params.maxDriftPx, drift_rng);
            drift[s] = {dy, dz};
        }
    }

    const double electrons =
        params.sem.electronsPerUs * params.sem.dwellUs;
    const size_t max_attempts = recovery.maxRetries + 1;
    image::QcMonitor monitor(recovery.qc);

    // QC checks that compare against neighbours/history rather than
    // measuring the frame itself.  A *content* change in the sample
    // trips these exactly like an imaging fault would — but unlike a
    // fault it reproduces identically on a re-image.  When a retry is
    // flagged only by these checks and agrees with the previous
    // attempt of the same slice, the anomaly is confirmed as real
    // content and the slice is accepted (re-anchoring the baselines).
    constexpr unsigned kContentFlags =
        image::kQcStripes | image::kQcDefocus | image::kQcLowMi;

    // Between two noisy images of the same face the MI fluctuates a
    // few percent, and for near-identical adjacent slices it is
    // statistically tied with the MI to the reference — so "attempts
    // agree" needs slack or it degenerates into a coin flip.
    constexpr double kAttemptAgreementRatio = 0.85;

    // Clean-frame cache: re-imaging attempts (and skip-overshoot
    // collisions) at the same mill position re-render the identical
    // deterministic clean frame, so cache the rendered faces.  Noise
    // and faults are still applied per attempt.  A shared cache (the
    // campaign service) spans jobs; otherwise a private bounded LRU
    // covers this acquisition alone.
    std::optional<CleanFrameCache> local_cache;
    CleanFrameCache *clean_cache = sharedCleanFrames;
    if (clean_cache == nullptr && recovery.reuseCleanFrames)
        clean_cache =
            &local_cache.emplace(recovery.cleanCacheCapacity);

    // Streaming recovery state.  A budget-exhausted slice cannot be
    // finalized until its nearest accepted *right* neighbour exists,
    // so consecutive failures are held back and resolved as a run —
    // the same nearest-accepted-neighbour blend the in-RAM pass
    // computed, produced in strictly increasing index order.  The
    // held-back set is the failure run plus one retained accepted
    // frame, not the stack.
    std::vector<StreamedSlice> pending;
    image::Image2D last_accepted_frame;
    std::pair<long, long> last_accepted_drift{0, 0};
    bool have_accepted = false;
    double weight = 0.0;

    const auto emitSlice = [&](StreamedSlice &&s) {
        if (!s.provenance.unrecoverable)
            weight += s.provenance.interpolated ? 0.5 : 1.0;
        sink(std::move(s));
    };

    // Finalize the pending failure run against the just-accepted
    // right neighbour (null at end of stream).  Matches the dense
    // interpolation pass: blend when both neighbours exist, copy the
    // single neighbour otherwise, unrecoverable when neither does.
    const auto resolvePending = [&](const image::Image2D *right_frame,
                                    const std::pair<long, long>
                                        *right_drift) {
        if (pending.empty())
            return;
        const telemetry::Span interp_span("scope.interpolate");
        for (StreamedSlice &p : pending) {
            if (have_accepted && right_frame != nullptr) {
                const image::Image2D &a = last_accepted_frame;
                const image::Image2D &b = *right_frame;
                image::Image2D blend(a.width(), a.height());
                for (size_t i = 0; i < blend.size(); ++i)
                    blend.data()[i] =
                        0.5f * (a.data()[i] + b.data()[i]);
                p.frame = std::move(blend);
                p.drift = {(last_accepted_drift.first +
                            right_drift->first) /
                               2,
                           (last_accepted_drift.second +
                            right_drift->second) /
                               2};
            } else if (have_accepted) {
                p.frame = last_accepted_frame;
                p.drift = last_accepted_drift;
            } else if (right_frame != nullptr) {
                p.frame = *right_frame;
                p.drift = *right_drift;
            } else {
                p.provenance.unrecoverable = true;
                p.decision.unrecoverable = true;
                ++out.slicesUnrecoverable;
                if (telemetry::enabled())
                    countDecision("unrecoverable",
                                  p.provenance.injectedFault);
                emitSlice(std::move(p));
                continue;
            }
            p.provenance.interpolated = true;
            p.decision.interpolated = true;
            ++out.slicesInterpolated;
            out.interpolatedSlices.push_back(p.index);
            if (telemetry::enabled())
                countDecision("interpolate",
                              p.provenance.injectedFault);
            emitSlice(std::move(p));
        }
        pending.clear();
    };

    for (size_t s = 0; s < positions.size(); ++s) {
        const telemetry::Span slice_span("scope.slice");
        image::SliceProvenance prov;
        image::Image2D frame;
        image::QcMetrics qc;
        std::pair<long, long> applied = drift[s];
        bool skip_active = false;
        bool ok = false;
        image::Image2D prev_attempt;
        SliceDecision decision;
        decision.slice = s;

        for (size_t a = 0; a < max_attempts; ++a) {
            // All randomness of attempt (s, a) comes from two
            // counter-seeded substreams: fault placement (even) and
            // frame noise (odd).  Pure function of (seed, s, a).
            common::Rng fault_rng(
                seed, kSliceStreamStride * s + 2 * a);
            FaultKind kind = sampleFaultKind(faults, fault_rng);
            if (kind == FaultKind::SliceSkip) {
                // The mill only runs once: a double mill on the first
                // attempt corrupts every attempt; sampled on a retry
                // it is a no-op (re-imaging does not re-mill).
                if (a == 0)
                    skip_active = true;
                kind = FaultKind::None;
            }

            size_t x = positions[s];
            if (skip_active) {
                const size_t overshoot =
                    faults.skipOvershootSlices * params.sliceVoxels;
                x = std::min(x + overshoot,
                             materials.nx() - params.sliceVoxels);
            }

            image::Image2D img;
            {
                const telemetry::Span image_span("scope.sem_image");
                if (recovery.reuseCleanFrames && clean_cache) {
                    img = clean_cache->fetch(
                        cleanFrameKey(volumeKey, x,
                                      params.sliceVoxels, params.sem),
                        [&] {
                            return semImageClean(materials, x,
                                                 params.sliceVoxels,
                                                 params.sem);
                        });
                } else {
                    img = semImageClean(materials, x,
                                        params.sliceVoxels,
                                        params.sem);
                }
                const uint64_t frame_seed =
                    common::Rng(seed,
                                kSliceStreamStride * s + 2 * a + 1)
                        .next();
                image::addSensorNoise(img, electrons,
                                      params.sem.readNoise,
                                      frame_seed);
                applyImagingFault(img, kind, faults, fault_rng);
            }

            std::pair<long, long> shift = drift[s];
            if (kind == FaultKind::DriftExcursion) {
                const auto ex = sampleExcursion(
                    faults, params.maxDriftPx, fault_rng);
                shift.first += ex.first;
                shift.second += ex.second;
            }
            frame = img.shifted(shift.first, shift.second);
            {
                const telemetry::Span qc_span("image.qc");
                qc = monitor.evaluate(frame);
            }

            // Persistence check: the anomaly survived a re-image of
            // the same face and the two attempts agree with each
            // other better than with the stale reference — real
            // sample content, not an imaging fault.
            bool content_confirmed = false;
            if (qc.flagged() && a > 0 &&
                (qc.flags & ~kContentFlags) == 0) {
                const double mi_attempts = image::mutualInformation(
                    prev_attempt, frame, recovery.qc.miBins);
                const double stripe_rms =
                    image::profileDifferenceRms(
                        image::smoothedColumnProfile(prev_attempt),
                        image::smoothedColumnProfile(frame));
                content_confirmed = mi_attempts >=
                        kAttemptAgreementRatio * qc.miVsPrev &&
                    stripe_rms <= recovery.qc.maxStripeScore;
            }

            const FaultKind attempt_fault =
                skip_active ? FaultKind::SliceSkip : kind;
            if (a == 0) {
                prov.injectedFault =
                    static_cast<int>(attempt_fault);
                prov.firstAttemptFlagged = qc.flagged();
                prov.firstAttemptFlags = qc.flags;
            }
            prov.attempts = a + 1;
            applied = shift;

            QcAttemptRecord attempt_rec;
            attempt_rec.attempt = a;
            attempt_rec.fault = static_cast<int>(attempt_fault);
            attempt_rec.metrics = qc;
            attempt_rec.contentConfirmed = content_confirmed;
            attempt_rec.accepted =
                !qc.flagged() || content_confirmed;
            decision.attempts.push_back(attempt_rec);

            if (!qc.flagged() || content_confirmed) {
                prov.acceptedFault = static_cast<int>(attempt_fault);
                ok = true;
                break;
            }
            prev_attempt = frame; // keep: the last attempt's frame
                                  // still lands in the stack below
        }

        if (ok) {
            monitor.accept(frame, qc);
        } else {
            prov.accepted = false;
            monitor.noteRejected();
        }
        if (prov.attempts > 1)
            ++out.slicesRetried;
        out.retries += prov.attempts - 1;
        if (prov.injectedFault != 0) {
            ++out.faultsInjected;
            if (prov.firstAttemptFlagged)
                ++out.faultsDetected;
        }
        if (telemetry::enabled()) {
            if (ok)
                countDecision("accept", prov.injectedFault);
            if (prov.attempts > 1)
                countDecision("retry", prov.injectedFault,
                              prov.attempts - 1);
        }
        decision.injectedFault = prov.injectedFault;
        decision.accepted = ok;

        StreamedSlice streamed;
        streamed.index = s;
        streamed.frame = std::move(frame);
        streamed.drift = applied;
        streamed.provenance = prov;
        streamed.qc = qc;
        streamed.decision = std::move(decision);

        if (ok) {
            resolvePending(&streamed.frame, &streamed.drift);
            last_accepted_frame = streamed.frame;
            last_accepted_drift = streamed.drift;
            have_accepted = true;
            emitSlice(std::move(streamed));
        } else if (!recovery.interpolate) {
            // No interpolation policy: the flagged frame is kept and
            // the slice finalizes (as unrecoverable) immediately.
            streamed.provenance.unrecoverable = true;
            streamed.decision.unrecoverable = true;
            ++out.slicesUnrecoverable;
            if (telemetry::enabled())
                countDecision("unrecoverable",
                              streamed.provenance.injectedFault);
            emitSlice(std::move(streamed));
        } else {
            pending.push_back(std::move(streamed));
        }
    }

    // Failures with no accepted slice to their right resolve against
    // the left neighbour alone (or become unrecoverable).
    resolvePending(nullptr, nullptr);

    out.qcConfidence =
        weight / static_cast<double>(positions.size());
    return out;
}

RobustAcquisition
acquireRobust(const image::Volume3D &materials,
              const FibSemParams &params, const FaultParams &faults,
              const RecoveryParams &recovery, uint64_t seed,
              CleanFrameCache *sharedCleanFrames, uint64_t volumeKey)
{
    RobustAcquisition out;
    out.stack.sliceThicknessNm = 0.0; // caller-level metadata

    StreamAcquisitionStats stats = acquireRobustStreamed(
        materials, params, faults, recovery, seed,
        [&out](StreamedSlice &&s) {
            out.stack.slices.push_back(std::move(s.frame));
            out.stack.trueDrift.push_back(s.drift);
            out.stack.provenance.push_back(s.provenance);
            out.qc.push_back(s.qc);
            out.audit.push_back(std::move(s.decision));
        },
        sharedCleanFrames, volumeKey);

    out.slicesRetried = stats.slicesRetried;
    out.retries = stats.retries;
    out.slicesInterpolated = stats.slicesInterpolated;
    out.slicesUnrecoverable = stats.slicesUnrecoverable;
    out.faultsInjected = stats.faultsInjected;
    out.faultsDetected = stats.faultsDetected;
    out.qcConfidence = stats.qcConfidence;
    out.interpolatedSlices = std::move(stats.interpolatedSlices);
    return out;
}

namespace
{

void
appendFlagNames(std::string &out, unsigned flags)
{
    static const std::pair<unsigned, const char *> kNames[] = {
        {image::kQcLowSnr, "low_snr"},
        {image::kQcSaturation, "saturation"},
        {image::kQcDeadRows, "dead_rows"},
        {image::kQcStripes, "stripes"},
        {image::kQcDefocus, "defocus"},
        {image::kQcLowMi, "low_mi"},
        {image::kQcShift, "shift"},
    };
    out += '[';
    bool first = true;
    for (const auto &[bit, name] : kNames) {
        if (!(flags & bit))
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += name;
        out += '"';
    }
    out += ']';
}

void
appendNum(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // namespace

std::string
qcAuditJson(const std::vector<SliceDecision> &audit)
{
    std::string out = "{\"slices\":[";
    for (size_t i = 0; i < audit.size(); ++i) {
        const SliceDecision &d = audit[i];
        out += i ? ",\n " : "\n ";
        out += "{\"slice\":" + std::to_string(d.slice) +
            ",\"injected_fault\":\"" +
            faultName(static_cast<FaultKind>(d.injectedFault)) +
            "\",\"accepted\":" + (d.accepted ? "true" : "false") +
            ",\"interpolated\":" +
            (d.interpolated ? "true" : "false") +
            ",\"unrecoverable\":" +
            (d.unrecoverable ? "true" : "false") + ",\"attempts\":[";
        for (size_t a = 0; a < d.attempts.size(); ++a) {
            const QcAttemptRecord &att = d.attempts[a];
            out += a ? ",\n  " : "\n  ";
            out += "{\"attempt\":" + std::to_string(att.attempt) +
                ",\"fault\":\"" +
                faultName(static_cast<FaultKind>(att.fault)) +
                "\",\"flags\":";
            appendFlagNames(out, att.metrics.flags);
            out += ",\"snr\":";
            appendNum(out, att.metrics.snr);
            out += ",\"focus\":";
            appendNum(out, att.metrics.focusScore);
            out += ",\"saturation\":";
            appendNum(out, att.metrics.saturationFraction);
            out += ",\"dead_rows\":";
            appendNum(out, att.metrics.deadRowFraction);
            out += ",\"stripe\":";
            appendNum(out, att.metrics.stripeScore);
            out += ",\"mi_vs_prev\":";
            appendNum(out, att.metrics.miVsPrev);
            out += ",\"shift\":[" +
                std::to_string(att.metrics.shiftX) + "," +
                std::to_string(att.metrics.shiftY) + "]";
            out += ",\"content_confirmed\":";
            out += att.contentConfirmed ? "true" : "false";
            out += ",\"accepted\":";
            out += att.accepted ? "true" : "false";
            out += "}";
        }
        out += "]}";
    }
    out += "\n]}\n";
    return out;
}

CampaignCost
campaignCost(const models::ChipSpec &chip)
{
    CampaignCost cost;
    // Square ROI of the Table I area; the imaged stack face is the
    // ROI width by a ~2 um deep IC cross-section.
    const double side_um = std::sqrt(chip.roiAreaUm2);
    const double stack_depth_um = 2.0;

    cost.slices = static_cast<size_t>(
        std::ceil(side_um * 1000.0 / chip.sliceNm));
    const double px_w = side_um * 1000.0 / chip.pixelResNm;
    const double px_h = stack_depth_um * 1000.0 / chip.pixelResNm;
    cost.pixelsPerImage = px_w * px_h;

    // Mill time grows with the cross-section width; 18 s per um of
    // face width reproduces the paper's >24 h for the 100 um^2 scans.
    cost.millSecondsPerSlice = 18.0 * side_um;
    cost.imageSecondsPerSlice =
        cost.pixelsPerImage * chip.dwellUs * 1e-6;
    cost.secondsPerSlice =
        cost.millSecondsPerSlice + cost.imageSecondsPerSlice;
    cost.totalHours = static_cast<double>(cost.slices) *
        cost.secondsPerSlice / 3600.0;
    return cost;
}

void
chargeRetries(CampaignCost &cost, size_t retries)
{
    cost.reimagedSlices += retries;
    const double hours = static_cast<double>(retries) *
        cost.imageSecondsPerSlice / 3600.0;
    cost.retryHours += hours;
    cost.totalHours += hours;
}

} // namespace scope
} // namespace hifi
