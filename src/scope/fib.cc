#include "scope/fib.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace scope
{

image::SliceStack
acquire(const image::Volume3D &materials, const FibSemParams &params,
        common::Rng &rng)
{
    if (params.sliceVoxels == 0)
        throw std::invalid_argument("acquire: zero slice thickness");

    image::SliceStack stack;
    stack.sliceThicknessNm = 0.0; // caller-level metadata; see below

    long drift_y = 0, drift_z = 0;
    auto step = [&](long drift) {
        if (rng.uniform() >= params.driftProbability)
            return drift;
        // Mean reversion: more likely to step back toward zero the
        // further out the stage has wandered.
        const double p_out = 0.5 /
            (1.0 + std::abs(static_cast<double>(drift)) /
                 static_cast<double>(params.maxDriftPx));
        const long delta = (rng.uniform() < p_out) ? 1 : -1;
        const long next = drift + (drift >= 0 ? delta : -delta);
        return std::clamp(next, -params.maxDriftPx, params.maxDriftPx);
    };
    for (size_t x = 0; x + params.sliceVoxels <= materials.nx();
         x += params.sliceVoxels) {
        if (x > 0) {
            drift_y = step(drift_y);
            drift_z = step(drift_z);
        }
        image::Image2D img =
            semImage(materials, x, params.sliceVoxels, params.sem, rng);
        stack.slices.push_back(img.shifted(drift_y, drift_z));
        stack.trueDrift.emplace_back(drift_y, drift_z);
    }
    return stack;
}

CampaignCost
campaignCost(const models::ChipSpec &chip)
{
    CampaignCost cost;
    // Square ROI of the Table I area; the imaged stack face is the
    // ROI width by a ~2 um deep IC cross-section.
    const double side_um = std::sqrt(chip.roiAreaUm2);
    const double stack_depth_um = 2.0;

    cost.slices = static_cast<size_t>(
        std::ceil(side_um * 1000.0 / chip.sliceNm));
    const double px_w = side_um * 1000.0 / chip.pixelResNm;
    const double px_h = stack_depth_um * 1000.0 / chip.pixelResNm;
    cost.pixelsPerImage = px_w * px_h;

    // Mill time grows with the cross-section width; 18 s per um of
    // face width reproduces the paper's >24 h for the 100 um^2 scans.
    const double mill_s = 18.0 * side_um;
    const double image_s = cost.pixelsPerImage * chip.dwellUs * 1e-6;
    cost.secondsPerSlice = mill_s + image_s;
    cost.totalHours = static_cast<double>(cost.slices) *
        cost.secondsPerSlice / 3600.0;
    return cost;
}

} // namespace scope
} // namespace hifi
