#include "scope/postprocess.hh"

#include "common/telemetry.hh"

namespace hifi
{
namespace scope
{

PostprocessResult
postprocess(const image::SliceStack &stack,
            const PostprocessParams &params)
{
    const telemetry::Span span("scope.postprocess");

    // Degenerate stacks are well-defined no-ops rather than crashes:
    // an empty stack yields an empty volume with no shifts, and a
    // single-slice stack (which has no neighbour to register against)
    // gets the identity shift and a zero residual.
    if (stack.slices.empty())
        return {};

    // 1. Edge-preserving denoise per slice.
    std::vector<image::Image2D> denoised;
    denoised.reserve(stack.slices.size());
    {
        const telemetry::Span denoise_span("image.denoise");
        for (const auto &slice : stack.slices) {
            switch (params.algo) {
              case DenoiseAlgo::SplitBregman:
                denoised.push_back(
                    image::denoiseSplitBregman(slice, params.tv));
                break;
              case DenoiseAlgo::Chambolle:
                denoised.push_back(
                    image::denoiseChambolle(slice, params.tv));
                break;
              case DenoiseAlgo::None:
                denoised.push_back(slice);
                break;
            }
        }
    }

    // 2. Chained mutual-information alignment.
    PostprocessResult result;
    {
        const telemetry::Span register_span("image.register");
        result.shifts = image::alignStack(denoised, params.mi);
        if (stack.trueDrift.size() == result.shifts.size() &&
            !stack.trueDrift.empty()) {
            result.alignmentResidualPx = image::alignmentResidual(
                result.shifts, stack.trueDrift);
        }
    }

    // 3. Assemble the volume with the recovered corrections.
    {
        const telemetry::Span assemble_span("image.assemble");
        result.volume =
            image::assembleVolume(denoised, result.shifts);
    }
    return result;
}

} // namespace scope
} // namespace hifi
