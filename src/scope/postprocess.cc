#include "scope/postprocess.hh"

#include <utility>

#include "common/parallel.hh"
#include "common/telemetry.hh"

namespace hifi
{
namespace scope
{

namespace
{

image::Image2D
denoiseOne(const image::Image2D &slice, const PostprocessParams &p)
{
    switch (p.algo) {
      case DenoiseAlgo::SplitBregman:
        return image::denoiseSplitBregman(slice, p.tv);
      case DenoiseAlgo::Chambolle:
        return image::denoiseChambolle(slice, p.tv);
      case DenoiseAlgo::None:
        break;
    }
    return slice;
}

} // namespace

PostprocessResult
postprocess(const image::SliceStack &stack,
            const PostprocessParams &params)
{
    const telemetry::Span span("scope.postprocess");

    // Degenerate stacks are well-defined no-ops rather than crashes:
    // an empty stack yields an empty volume with no shifts, and a
    // single-slice stack (which has no neighbour to register against)
    // gets the identity shift and a zero residual.
    if (stack.slices.empty())
        return {};

    // 1. Edge-preserving denoise per slice.
    std::vector<image::Image2D> denoised;
    denoised.reserve(stack.slices.size());
    {
        const telemetry::Span denoise_span("image.denoise");
        for (const auto &slice : stack.slices)
            denoised.push_back(denoiseOne(slice, params));
    }

    // 2. Chained mutual-information alignment.
    PostprocessResult result;
    {
        const telemetry::Span register_span("image.register");
        result.shifts = image::alignStack(denoised, params.mi);
        if (stack.trueDrift.size() == result.shifts.size() &&
            !stack.trueDrift.empty()) {
            result.alignmentResidualPx = image::alignmentResidual(
                result.shifts, stack.trueDrift);
        }
    }

    // 3. Assemble the volume with the recovered corrections.
    {
        const telemetry::Span assemble_span("image.assemble");
        result.volume =
            image::assembleVolume(denoised, result.shifts);
    }
    return result;
}

// ---- Streaming chain -----------------------------------------------

StreamingPostprocessor::StreamingPostprocessor(
    size_t expectedSlices, image::TileStore &store,
    const PostprocessParams &params, size_t tileEdge,
    size_t dirtyBudgetBytes, size_t windowSlices)
    : store_(store), params_(params), expected_(expectedSlices),
      tileEdge_(tileEdge), dirtyBudget_(dirtyBudgetBytes),
      window_(windowSlices ? windowSlices : kStreamWindowSlices)
{
    shifts_.reserve(expectedSlices);
    trueDrift_.reserve(expectedSlices);
}

std::optional<common::Error>
StreamingPostprocessor::push(
    image::Image2D &&frame,
    std::optional<std::pair<long, long>> trueDrift)
{
    if (finished_)
        return common::Error{common::ErrorCode::FailedPrecondition,
                             "StreamingPostprocessor: push after "
                             "finish"};
    if (pushed_ >= expected_)
        return common::Error{
            common::ErrorCode::InvalidArgument,
            "StreamingPostprocessor: more slices than promised (" +
                std::to_string(expected_) + ")"};

    // The volume's (Y, Z) extent comes from the first frame.
    if (volume_.empty()) {
        auto vol = image::TiledVolume3D::create(
            expected_, frame.width(), frame.height(), store_,
            tileEdge_, dirtyBudget_);
        if (!vol.ok())
            return vol.error();
        volume_ = vol.takeValue();
    }

    if (trueDrift)
        trueDrift_.push_back(*trueDrift);
    raw_.push_back(std::move(frame));
    ++pushed_;
    if (raw_.size() >= window_)
        return drainWindow();
    return std::nullopt;
}

std::optional<common::Error>
StreamingPostprocessor::drainWindow()
{
    if (raw_.empty())
        return std::nullopt;
    const size_t n = raw_.size();

    // 1. Denoise the window (independent per slice — same calls and
    //    chunking as the dense chain, so thread-count invariant).
    std::vector<image::Image2D> den(n);
    {
        const telemetry::Span denoise_span("image.denoise");
        common::parallelFor(0, n, 1, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i)
                den[i] = denoiseOne(raw_[i], params_);
        });
    }

    // 2. Pairwise MI registration against each slice's predecessor
    //    (the previous window's last denoised slice anchors i == 0),
    //    then the sequential chained accumulation of alignStack.
    std::vector<std::pair<long, long>> pairwise(n, {0, 0});
    {
        const telemetry::Span register_span("image.register");
        common::parallelFor(0, n, 1, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i) {
                if (i == 0 && !havePrev_)
                    continue; // global slice 0: identity shift
                const image::Image2D &fixed =
                    i == 0 ? prevDenoised_ : den[i - 1];
                pairwise[i] =
                    image::registerShiftMi(fixed, den[i], params_.mi);
            }
        });
        for (size_t i = 0; i < n; ++i) {
            if (assembled_ + i > 0) {
                accX_ += -pairwise[i].first;
                accY_ += -pairwise[i].second;
            }
            shifts_.emplace_back(accX_, accY_);
        }
    }

    // 3. Assemble the corrected slices into the tiled volume.
    {
        const telemetry::Span assemble_span("image.assemble");
        for (size_t i = 0; i < n; ++i) {
            const auto &shift = shifts_[assembled_ + i];
            const image::Image2D corrected =
                den[i].shifted(-shift.first, -shift.second);
            if (auto err =
                    volume_.setCrossSection(assembled_ + i, corrected))
                return err;
        }
    }

    prevDenoised_ = std::move(den.back());
    havePrev_ = true;
    assembled_ += n;
    raw_.clear();
    return std::nullopt;
}

common::Result<StreamedPostprocessResult>
StreamingPostprocessor::finish()
{
    using R = common::Result<StreamedPostprocessResult>;
    if (finished_)
        return R::failure(common::ErrorCode::FailedPrecondition,
                          "StreamingPostprocessor: already finished");
    finished_ = true;
    if (pushed_ != expected_)
        return R::failure(common::ErrorCode::FailedPrecondition,
                          "StreamingPostprocessor: got " +
                              std::to_string(pushed_) +
                              " slices, promised " +
                              std::to_string(expected_));
    if (auto err = drainWindow())
        return R(*err);

    StreamedPostprocessResult result;
    if (!volume_.empty()) {
        if (auto err = volume_.sealAll())
            return R(*err);
        result.volume = std::move(volume_);
    }
    result.shifts = std::move(shifts_);
    if (trueDrift_.size() == result.shifts.size() &&
        !trueDrift_.empty()) {
        result.alignmentResidualPx =
            image::alignmentResidual(result.shifts, trueDrift_);
    }
    return R(std::move(result));
}

common::Result<StreamedPostprocessResult>
postprocessStreamed(const image::SliceStack &stack,
                    image::TileStore &store,
                    const PostprocessParams &params, size_t tileEdge,
                    size_t dirtyBudgetBytes, size_t windowSlices)
{
    using R = common::Result<StreamedPostprocessResult>;
    const telemetry::Span span("scope.postprocess");
    StreamingPostprocessor pp(stack.slices.size(), store, params,
                              tileEdge, dirtyBudgetBytes,
                              windowSlices);
    const bool have_truth =
        stack.trueDrift.size() == stack.slices.size();
    for (size_t i = 0; i < stack.slices.size(); ++i) {
        image::Image2D frame = stack.slices[i];
        std::optional<std::pair<long, long>> drift;
        if (have_truth)
            drift = stack.trueDrift[i];
        if (auto err = pp.push(std::move(frame), drift))
            return R(*err);
    }
    return pp.finish();
}

} // namespace scope
} // namespace hifi
