/**
 * @file
 * Seeded FIB/SEM fault injection (§IV-B/IV-C pathologies).
 *
 * Real acquisition campaigns fight curtaining stripes, charging
 * blooms, focus loss, detector dropout, double-mill slice skips and
 * stage-drift excursions; this module injects those pathologies into
 * the simulated acquisition so the QC/recovery layer can be exercised
 * and scored against known ground truth.
 *
 * Determinism contract: every random choice — whether a fault occurs,
 * which kind, and its magnitude/placement — is drawn from a
 * counter-seeded `common::Rng` substream that is a pure function of
 * (seed, slice index, attempt).  Fault placement therefore never
 * depends on thread count, retry history of other slices, or call
 * order, and re-imaging attempt `a` of slice `s` is reproducible in
 * isolation.
 */

#ifndef HIFI_SCOPE_FAULTS_HH
#define HIFI_SCOPE_FAULTS_HH

#include <cstdint>
#include <optional>
#include <utility>

#include "common/result.hh"
#include "common/rng.hh"
#include "image/image2d.hh"

namespace hifi
{
namespace scope
{

/// Injected acquisition pathology (stored as int in SliceProvenance).
enum class FaultKind
{
    None = 0,
    Curtaining,     ///< vertical low-frequency intensity bands
    Charging,       ///< regional brightness saturation (bloom)
    FocusLoss,      ///< defocus blur
    DetectorDropout, ///< dead rows or a fully blank frame
    SliceSkip,      ///< double mill: the face overshoots the target
    DriftExcursion, ///< stage jump beyond the re-registration bound
};

const char *faultName(FaultKind kind);

/** Fault model: per-slice rates and magnitudes. */
struct FaultParams
{
    /// Master switch; disabled keeps the acquisition fault-free (and
    /// the pipeline bit-identical to the legacy path).
    bool enabled = false;

    // Per-attempt occurrence probabilities (at most one fault per
    // attempt; SliceSkip can only occur on the first attempt since a
    // re-image does not re-mill).
    double curtainingProbability = 0.03;
    double chargingProbability = 0.03;
    double focusLossProbability = 0.03;
    double dropoutProbability = 0.02;
    double sliceSkipProbability = 0.02;
    double driftExcursionProbability = 0.02;

    // Magnitudes.
    double curtainDepth = 0.35;     ///< peak multiplicative dimming
    double curtainPeriodFrac = 0.3; ///< stripe period / image width
    double chargeValue = 1.2;       ///< detector-rail value of a bloom
    double chargeAreaFrac = 0.25;   ///< bloom area / image area
    size_t blurRadius = 2;          ///< defocus box-blur radius (px)
    double dropoutRowFraction = 0.12; ///< dead-row band height
    double blankFrameFraction = 0.25; ///< dropouts that kill the frame
    size_t skipOvershootSlices = 2; ///< extra slices milled through
    long excursionPx = 3;           ///< jump beyond maxDriftPx

    /// Sum of the per-attempt fault probabilities.
    double totalProbability() const;

    /// Uniformly scale every occurrence probability (benchmarking).
    FaultParams scaled(double factor) const;
};

/// Domain check; nullopt when valid.
std::optional<common::Error> validate(const FaultParams &params);

/**
 * Sample which fault (if any) strikes one imaging attempt.  Consumes
 * one uniform draw; magnitude draws for the sampled fault come from
 * the same generator afterwards, so a single counter-seeded Rng per
 * (slice, attempt) covers both.
 */
FaultKind sampleFaultKind(const FaultParams &params,
                          common::Rng &rng);

/// Multiplicative vertical banding with random phase.
void applyCurtaining(image::Image2D &img, const FaultParams &params,
                     common::Rng &rng);

/// Saturate a random rectangular region at the detector rail.
void applyCharging(image::Image2D &img, const FaultParams &params,
                   common::Rng &rng);

/// Box blur of radius params.blurRadius (edge-clamped).
void applyFocusLoss(image::Image2D &img, const FaultParams &params);

/// Zero a random row band, or the whole frame for a blank dropout.
void applyDetectorDropout(image::Image2D &img,
                          const FaultParams &params,
                          common::Rng &rng);

/**
 * Apply an imaging fault in place.  None, SliceSkip and
 * DriftExcursion are no-ops here: skips change which face is imaged
 * and excursions change the applied shift, both handled by the
 * acquisition loop.
 */
void applyImagingFault(image::Image2D &img, FaultKind kind,
                       const FaultParams &params, common::Rng &rng);

/// Random (dy, dz) stage jump of magnitude maxDriftPx + excursionPx
/// .. maxDriftPx + excursionPx + 2 with random signs/axis split.
std::pair<long, long> sampleExcursion(const FaultParams &params,
                                      long max_drift_px,
                                      common::Rng &rng);

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_FAULTS_HH
