/**
 * @file
 * FIB/SEM volumetric acquisition: repeated slicing with stage drift,
 * imaging each exposed cross section (Section IV-B), and the
 * acquisition-cost model that reproduces the paper's >24 h scans for
 * the 100 um^2 ROIs.
 */

#ifndef HIFI_SCOPE_FIB_HH
#define HIFI_SCOPE_FIB_HH

#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>

#include "common/result.hh"
#include "common/rng.hh"
#include "image/qc.hh"
#include "image/volume3d.hh"
#include "scope/faults.hh"
#include "scope/sem.hh"

namespace hifi
{
namespace scope
{

/** Acquisition parameters for one volumetric scan. */
struct FibSemParams
{
    SemParams sem;

    /// Slice thickness in voxels of the source volume.
    size_t sliceVoxels = 4;

    /// Per-slice probability of a one-pixel stage drift step on each
    /// axis.  Drift is a mean-reverting bounded walk: the instrument's
    /// periodic re-registration keeps it within +-maxDriftPx.
    double driftProbability = 0.15;

    /// Drift bound (pixels) on each axis.
    long maxDriftPx = 3;
};

/// Domain check for acquisition parameters; nullopt when valid.
std::optional<common::Error> validate(const FibSemParams &params);

/**
 * Acquire a slice stack from a material volume.  Slice i images the
 * cross section at x = i * sliceVoxels, drifted by the accumulated
 * stage drift and corrupted by SEM noise.  The ground-truth drifts
 * are recorded in the returned stack for validation.
 */
image::SliceStack acquire(const image::Volume3D &materials,
                          const FibSemParams &params,
                          common::Rng &rng);

/** Recovery policy for the QC-driven robust acquisition loop. */
struct RecoveryParams
{
    /// Extra imaging attempts allowed per slice after a QC flag.
    /// Bounded by kMaxAttemptsPerSlice - 1 (RNG substream stride).
    size_t maxRetries = 2;

    /// Replace budget-exhausted slices with a neighbour blend; when
    /// false (or no accepted neighbour exists) the slice is marked
    /// unrecoverable and the last attempt's frame is kept.
    bool interpolate = true;

    /// QC detector thresholds.
    image::QcThresholds qc;

    /**
     * Reuse the clean SEM frame across re-imaging attempts at an
     * unchanged mill position.  semImageClean is a pure function of
     * (volume, x, sliceVoxels, sem), so a retry of the same face
     * renders the identical frame — the cache returns that exact
     * frame and only the per-attempt noise/fault overlay is redone.
     * Bitwise-identical output either way (asserted in
     * tests/test_fab_scope.cc); hit/miss/eviction counts are
     * reported through the "sem.clean_cache.hit" / ".miss" /
     * ".evicted" telemetry counters.
     */
    bool reuseCleanFrames = true;

    /**
     * Capacity (distinct mill positions) of the clean-frame cache
     * used when no shared cache is passed to acquireRobust.  Cached
     * entries are exact pure-function outputs, so any capacity >= 1
     * yields bitwise-identical acquisitions; larger caches only
     * change the hit rate.  Must be >= 1 (validated).
     */
    size_t cleanCacheCapacity = 4;
};

/**
 * Bounded LRU cache of clean SEM frames, shareable across concurrent
 * acquisitions (the campaign service hands one instance to every
 * job).  Keys are content digests (volume identity x mill position x
 * imaging params), values are the exact semImageClean outputs, so a
 * hit returns a bitwise-identical frame and the cache can never
 * change a result — only skip a render.  Thread-safe; eviction is
 * least-recently-used.  Counters: "sem.clean_cache.hit" / ".miss" /
 * ".evicted".
 */
class CleanFrameCache
{
  public:
    explicit CleanFrameCache(size_t capacity = 4);

    /// Frame for `key`, rendered with `render` on a miss.
    image::Image2D fetch(uint64_t key,
                         const std::function<image::Image2D()> &render);

    size_t size() const;
    size_t capacity() const { return capacity_; }

    /// Lifetime eviction count (also mirrored into telemetry).
    uint64_t evictions() const;

  private:
    mutable std::mutex mu_;
    size_t capacity_ = 4;
    uint64_t evictions_ = 0;
    std::list<std::pair<uint64_t, image::Image2D>> lru_;
    std::map<uint64_t,
             std::list<std::pair<uint64_t, image::Image2D>>::iterator>
        index_;
};

/// Fixed RNG substream stride: attempts per slice are capped at this.
constexpr size_t kMaxAttemptsPerSlice = 8;

/// Domain check; nullopt when valid.
std::optional<common::Error> validate(const RecoveryParams &params);

/** One imaging attempt in the QC audit trail. */
struct QcAttemptRecord
{
    size_t attempt = 0; ///< 0-based attempt index
    int fault = 0;      ///< FaultKind sampled for this attempt
    image::QcMetrics metrics;

    /// QC-flagged anomaly that persisted across a re-image and was
    /// confirmed as real sample content (see acquireRobust).
    bool contentConfirmed = false;

    /// This attempt's frame was accepted into the stack.
    bool accepted = false;
};

/**
 * Per-slice decision record: which attempts ran, what every QC metric
 * measured, what the verdict was, and the injected-fault ground truth
 * (simulator-only).  Seed-pure and always collected on the robust
 * path — inspection never perturbs the result — and exportable as
 * JSON via qcAuditJson().
 */
struct SliceDecision
{
    size_t slice = 0;
    int injectedFault = 0; ///< FaultKind of the first attempt
    std::vector<QcAttemptRecord> attempts;

    bool accepted = false;       ///< some attempt passed QC
    bool interpolated = false;   ///< replaced by a neighbour blend
    bool unrecoverable = false;  ///< kept flagged frame, no recovery
};

/// JSON export of an audit trail (one object per slice, attempts with
/// full metric values and named flags).
std::string qcAuditJson(const std::vector<SliceDecision> &audit);

/** Outcome of a robust acquisition: the stack plus the recovery log. */
struct RobustAcquisition
{
    /// Acquired stack; stack.provenance records per-slice truth.
    image::SliceStack stack;

    /// QC metrics of the finally accepted (or kept) attempt per slice.
    std::vector<image::QcMetrics> qc;

    size_t slicesRetried = 0;      ///< slices needing > 1 attempt
    size_t retries = 0;            ///< total extra attempts charged
    size_t slicesInterpolated = 0; ///< neighbour-blended slices
    size_t slicesUnrecoverable = 0;
    size_t faultsInjected = 0; ///< slices with a faulty first attempt
    size_t faultsDetected = 0; ///< of those, flagged by QC

    /// Aggregate trust score in [0, 1]: clean/retried slices weigh 1,
    /// interpolated 0.5, unrecoverable 0.
    double qcConfidence = 1.0;

    /// Indices of the interpolated slices (deterministic given seed).
    std::vector<size_t> interpolatedSlices;

    /// Per-slice decision audit trail (one entry per slice, in slice
    /// order); a pure function of the seed like everything above.
    std::vector<SliceDecision> audit;
};

/**
 * One finalized slice emitted by the streaming acquisition: the frame
 * content is final (recovery — re-imaging, neighbour interpolation —
 * already applied), so a consumer can denoise/register/assemble it
 * immediately and never hold the whole stack.
 */
struct StreamedSlice
{
    size_t index = 0;
    image::Image2D frame;
    std::pair<long, long> drift{0, 0}; ///< ground-truth drift
    image::SliceProvenance provenance;
    image::QcMetrics qc;  ///< metrics of the finally kept attempt
    SliceDecision decision;
};

/// Consumer of finalized slices; called in strictly increasing index
/// order.
using SliceConsumer = std::function<void(StreamedSlice &&)>;

/**
 * Contiguous run of finalized slices handed downstream as one work
 * item.  Streaming consumers that fan per-slice work into the
 * batched transient solver should take whole windows so tile
 * streaming never shrinks BatchSimulator lane occupancy.
 */
struct SliceWindow
{
    size_t begin = 0;
    std::vector<StreamedSlice> slices;
};

using WindowConsumer = std::function<void(SliceWindow &&)>;

/// Default streaming window width, matched to the transient solver's
/// default lane batch (circuit::TranParams::batchLanes = 8) so a
/// window maps onto full SIMD lane groups.
constexpr size_t kStreamWindowSlices = 8;

/**
 * Adapter that groups a per-slice stream into contiguous
 * SliceWindows of `window` slices.  flush() (idempotent) emits the
 * final short window; the destructor does NOT flush, so an
 * error-path unwind never feeds a consumer half a window.
 */
class SliceWindowing
{
  public:
    SliceWindowing(size_t window, WindowConsumer sink);

    void push(StreamedSlice &&slice);
    void flush();

    /// The per-slice consumer face of this adapter.
    SliceConsumer consumer()
    {
        return [this](StreamedSlice &&s) { push(std::move(s)); };
    }

  private:
    size_t window_;
    WindowConsumer sink_;
    SliceWindow current_;
};

/** Aggregate counters of a streamed acquisition (the fields of
 * RobustAcquisition that are not per-slice). */
struct StreamAcquisitionStats
{
    size_t slices = 0;
    size_t slicesRetried = 0;
    size_t retries = 0;
    size_t slicesInterpolated = 0;
    size_t slicesUnrecoverable = 0;
    size_t faultsInjected = 0;
    size_t faultsDetected = 0;
    double qcConfidence = 1.0;
    std::vector<size_t> interpolatedSlices;
};

/**
 * Streaming core of the robust acquisition: identical imaging, QC,
 * retry and interpolation decisions to acquireRobust (which is now a
 * thin collector over this function), but slices are handed to
 * `sink` as soon as their content is final instead of accumulating
 * in a stack.  The held-back working set is bounded by the longest
 * run of consecutive QC-failed slices (each must wait for its right
 * accepted neighbour before its interpolation can be computed) plus
 * the last accepted frame — O(1) in the common case, never the whole
 * volume.  Bitwise-identical outputs to acquireRobust by
 * construction (asserted in tests/test_volume.cc).
 */
StreamAcquisitionStats
acquireRobustStreamed(const image::Volume3D &materials,
                      const FibSemParams &params,
                      const FaultParams &faults,
                      const RecoveryParams &recovery, uint64_t seed,
                      const SliceConsumer &sink,
                      CleanFrameCache *sharedCleanFrames = nullptr,
                      uint64_t volumeKey = 0);

/**
 * Fault-aware acquisition with QC-driven re-imaging (the production
 * path; `acquire` remains the pristine fault-free reference).  Every
 * slice is imaged, checked by the QC detector, and re-imaged up to
 * `recovery.maxRetries` times while flagged; slices that exhaust the
 * budget fall back to neighbour interpolation or are marked
 * unrecoverable.  All randomness — drift walk, frame noise, fault
 * placement — is counter-seeded from `seed`, so the result (including
 * retry counts and interpolated-slice sets) is a pure function of
 * (volume, params, faults, recovery, seed) at any thread count.
 *
 * Throws std::invalid_argument when any parameter set fails
 * validation (use the validate() overloads for typed errors).
 *
 * @param sharedCleanFrames optional shared clean-frame cache; when
 *        null a private cache of recovery.cleanCacheCapacity entries
 *        is used.  Sharing requires `volumeKey` to identify the
 *        material volume so jobs imaging different volumes can never
 *        collide on a cache key.
 */
RobustAcquisition acquireRobust(const image::Volume3D &materials,
                                const FibSemParams &params,
                                const FaultParams &faults,
                                const RecoveryParams &recovery,
                                uint64_t seed,
                                CleanFrameCache *sharedCleanFrames =
                                    nullptr,
                                uint64_t volumeKey = 0);

/** Cost model of a volumetric acquisition campaign. */
struct CampaignCost
{
    size_t slices = 0;
    double pixelsPerImage = 0.0;

    /// Per-slice time split: milling scales with the face width,
    /// imaging with pixel count and dwell.  secondsPerSlice is their
    /// sum (one mill + one image).
    double millSecondsPerSlice = 0.0;
    double imageSecondsPerSlice = 0.0;
    double secondsPerSlice = 0.0;

    /// Re-imaging charged by chargeRetries (image time only: a
    /// re-image does not re-mill).
    size_t reimagedSlices = 0;
    double retryHours = 0.0;

    double totalHours = 0.0;
};

/**
 * Estimate the acquisition cost of a chip's ROI scan from Table I
 * parameters (ROI area, pixel resolution, slice thickness, dwell).
 * Mill time scales with the cross-section width; imaging time with
 * the pixel count and dwell.  A4 and A5 (100 um^2) exceed 24 hours.
 */
CampaignCost campaignCost(const models::ChipSpec &chip);

/// Charge `retries` re-imaged frames (image time only) to a campaign.
void chargeRetries(CampaignCost &cost, size_t retries);

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_FIB_HH
