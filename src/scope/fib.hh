/**
 * @file
 * FIB/SEM volumetric acquisition: repeated slicing with stage drift,
 * imaging each exposed cross section (Section IV-B), and the
 * acquisition-cost model that reproduces the paper's >24 h scans for
 * the 100 um^2 ROIs.
 */

#ifndef HIFI_SCOPE_FIB_HH
#define HIFI_SCOPE_FIB_HH

#include "common/rng.hh"
#include "image/volume3d.hh"
#include "scope/sem.hh"

namespace hifi
{
namespace scope
{

/** Acquisition parameters for one volumetric scan. */
struct FibSemParams
{
    SemParams sem;

    /// Slice thickness in voxels of the source volume.
    size_t sliceVoxels = 4;

    /// Per-slice probability of a one-pixel stage drift step on each
    /// axis.  Drift is a mean-reverting bounded walk: the instrument's
    /// periodic re-registration keeps it within +-maxDriftPx.
    double driftProbability = 0.15;

    /// Drift bound (pixels) on each axis.
    long maxDriftPx = 3;
};

/**
 * Acquire a slice stack from a material volume.  Slice i images the
 * cross section at x = i * sliceVoxels, drifted by the accumulated
 * stage drift and corrupted by SEM noise.  The ground-truth drifts
 * are recorded in the returned stack for validation.
 */
image::SliceStack acquire(const image::Volume3D &materials,
                          const FibSemParams &params,
                          common::Rng &rng);

/** Cost model of a volumetric acquisition campaign. */
struct CampaignCost
{
    size_t slices = 0;
    double pixelsPerImage = 0.0;
    double secondsPerSlice = 0.0;
    double totalHours = 0.0;
};

/**
 * Estimate the acquisition cost of a chip's ROI scan from Table I
 * parameters (ROI area, pixel resolution, slice thickness, dwell).
 * Mill time scales with the cross-section width; imaging time with
 * the pixel count and dwell.  A4 and A5 (100 um^2) exceed 24 hours.
 */
CampaignCost campaignCost(const models::ChipSpec &chip);

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_FIB_HH
