#include "scope/faults.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hifi
{
namespace scope
{

const char *
faultName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::Curtaining:
        return "curtaining";
      case FaultKind::Charging:
        return "charging";
      case FaultKind::FocusLoss:
        return "focus-loss";
      case FaultKind::DetectorDropout:
        return "detector-dropout";
      case FaultKind::SliceSkip:
        return "slice-skip";
      case FaultKind::DriftExcursion:
        return "drift-excursion";
    }
    return "unknown";
}

double
FaultParams::totalProbability() const
{
    return curtainingProbability + chargingProbability +
        focusLossProbability + dropoutProbability +
        sliceSkipProbability + driftExcursionProbability;
}

FaultParams
FaultParams::scaled(double factor) const
{
    FaultParams s = *this;
    s.curtainingProbability *= factor;
    s.chargingProbability *= factor;
    s.focusLossProbability *= factor;
    s.dropoutProbability *= factor;
    s.sliceSkipProbability *= factor;
    s.driftExcursionProbability *= factor;
    return s;
}

std::optional<common::Error>
validate(const FaultParams &params)
{
    using common::Error;
    using common::ErrorCode;
    const double probs[] = {
        params.curtainingProbability, params.chargingProbability,
        params.focusLossProbability, params.dropoutProbability,
        params.sliceSkipProbability,
        params.driftExcursionProbability,
    };
    for (double p : probs) {
        if (!(p >= 0.0) || !(p <= 1.0))
            return Error{ErrorCode::InvalidArgument,
                         "FaultParams: fault probability outside "
                         "[0, 1]"};
    }
    if (params.totalProbability() > 1.0)
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: fault probabilities sum above 1"};
    if (!(params.curtainDepth >= 0.0) || params.curtainDepth > 1.0)
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: curtainDepth outside [0, 1]"};
    if (!(params.curtainPeriodFrac > 0.0))
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: curtainPeriodFrac must be > 0"};
    if (!(params.chargeAreaFrac > 0.0) || params.chargeAreaFrac > 1.0)
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: chargeAreaFrac outside (0, 1]"};
    if (!(params.dropoutRowFraction > 0.0) ||
        params.dropoutRowFraction > 1.0)
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: dropoutRowFraction outside "
                     "(0, 1]"};
    if (!(params.blankFrameFraction >= 0.0) ||
        params.blankFrameFraction > 1.0)
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: blankFrameFraction outside "
                     "[0, 1]"};
    if (params.excursionPx < 1)
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: excursionPx must be >= 1"};
    if (params.skipOvershootSlices < 1)
        return Error{ErrorCode::InvalidArgument,
                     "FaultParams: skipOvershootSlices must be >= 1"};
    return std::nullopt;
}

FaultKind
sampleFaultKind(const FaultParams &params, common::Rng &rng)
{
    if (!params.enabled)
        return FaultKind::None;
    const double u = rng.uniform();
    double acc = params.curtainingProbability;
    if (u < acc)
        return FaultKind::Curtaining;
    acc += params.chargingProbability;
    if (u < acc)
        return FaultKind::Charging;
    acc += params.focusLossProbability;
    if (u < acc)
        return FaultKind::FocusLoss;
    acc += params.dropoutProbability;
    if (u < acc)
        return FaultKind::DetectorDropout;
    acc += params.sliceSkipProbability;
    if (u < acc)
        return FaultKind::SliceSkip;
    acc += params.driftExcursionProbability;
    if (u < acc)
        return FaultKind::DriftExcursion;
    return FaultKind::None;
}

void
applyCurtaining(image::Image2D &img, const FaultParams &params,
                common::Rng &rng)
{
    if (img.empty())
        return;
    const double period = std::max(
        8.0, params.curtainPeriodFrac *
            static_cast<double>(img.width()));
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    std::vector<float> factor(img.width());
    for (size_t x = 0; x < img.width(); ++x) {
        const double band = 0.5 *
            (1.0 + std::sin(2.0 * M_PI *
                                static_cast<double>(x) / period +
                            phase));
        factor[x] = static_cast<float>(
            1.0 - params.curtainDepth * band);
    }
    for (size_t y = 0; y < img.height(); ++y)
        for (size_t x = 0; x < img.width(); ++x)
            img.at(x, y) *= factor[x];
}

void
applyCharging(image::Image2D &img, const FaultParams &params,
              common::Rng &rng)
{
    if (img.empty())
        return;
    const double side = std::sqrt(params.chargeAreaFrac);
    const size_t rw = std::max<size_t>(
        1, static_cast<size_t>(
               side * static_cast<double>(img.width())));
    const size_t rh = std::max<size_t>(
        1, static_cast<size_t>(
               side * static_cast<double>(img.height())));
    const size_t x0 = static_cast<size_t>(
        rng.below(img.width() - rw + 1));
    const size_t y0 = static_cast<size_t>(
        rng.below(img.height() - rh + 1));
    img.fillRect(static_cast<long>(x0), static_cast<long>(y0),
                 static_cast<long>(x0 + rw),
                 static_cast<long>(y0 + rh),
                 static_cast<float>(params.chargeValue));
}

void
applyFocusLoss(image::Image2D &img, const FaultParams &params)
{
    const long r = static_cast<long>(params.blurRadius);
    if (r <= 0 || img.empty())
        return;
    const double inv = 1.0 / static_cast<double>(2 * r + 1);

    // Separable edge-clamped box blur: horizontal then vertical.
    image::Image2D tmp(img.width(), img.height());
    for (size_t y = 0; y < img.height(); ++y) {
        for (size_t x = 0; x < img.width(); ++x) {
            double sum = 0.0;
            for (long d = -r; d <= r; ++d)
                sum += img.clampedAt(static_cast<long>(x) + d,
                                     static_cast<long>(y));
            tmp.at(x, y) = static_cast<float>(sum * inv);
        }
    }
    for (size_t y = 0; y < img.height(); ++y) {
        for (size_t x = 0; x < img.width(); ++x) {
            double sum = 0.0;
            for (long d = -r; d <= r; ++d)
                sum += tmp.clampedAt(static_cast<long>(x),
                                     static_cast<long>(y) + d);
            img.at(x, y) = static_cast<float>(sum * inv);
        }
    }
}

void
applyDetectorDropout(image::Image2D &img, const FaultParams &params,
                     common::Rng &rng)
{
    if (img.empty())
        return;
    if (rng.uniform() < params.blankFrameFraction) {
        img.fill(0.0f);
        return;
    }
    const size_t rows = std::max<size_t>(
        1, static_cast<size_t>(
               params.dropoutRowFraction *
               static_cast<double>(img.height())));
    const size_t y0 = static_cast<size_t>(
        rng.below(img.height() - std::min(rows, img.height()) + 1));
    img.fillRect(0, static_cast<long>(y0),
                 static_cast<long>(img.width()),
                 static_cast<long>(y0 + rows), 0.0f);
}

void
applyImagingFault(image::Image2D &img, FaultKind kind,
                  const FaultParams &params, common::Rng &rng)
{
    switch (kind) {
      case FaultKind::Curtaining:
        applyCurtaining(img, params, rng);
        break;
      case FaultKind::Charging:
        applyCharging(img, params, rng);
        break;
      case FaultKind::FocusLoss:
        applyFocusLoss(img, params);
        break;
      case FaultKind::DetectorDropout:
        applyDetectorDropout(img, params, rng);
        break;
      case FaultKind::None:
      case FaultKind::SliceSkip:
      case FaultKind::DriftExcursion:
        break;
    }
}

std::pair<long, long>
sampleExcursion(const FaultParams &params, long max_drift_px,
                common::Rng &rng)
{
    const long mag = max_drift_px + params.excursionPx +
        static_cast<long>(rng.below(3));
    // Put the jump on one axis (FIB stage slips are axis-aligned);
    // the other axis gets a small spill of 0 or 1.
    const long spill = static_cast<long>(rng.below(2));
    const long sy = rng.uniform() < 0.5 ? -1 : 1;
    const long sz = rng.uniform() < 0.5 ? -1 : 1;
    if (rng.uniform() < 0.5)
        return {sy * mag, sz * spill};
    return {sy * spill, sz * mag};
}

} // namespace scope
} // namespace hifi
