/**
 * @file
 * Image post-processing chain (Section IV-C): denoise each slice with
 * an edge-preserving TV filter, align the stack slice-to-slice with
 * mutual information, and assemble the planar-viewable volume.
 */

#ifndef HIFI_SCOPE_POSTPROCESS_HH
#define HIFI_SCOPE_POSTPROCESS_HH

#include <optional>
#include <utility>
#include <vector>

#include "common/result.hh"
#include "image/denoise.hh"
#include "image/registration.hh"
#include "image/tiled_volume.hh"
#include "image/volume3d.hh"
#include "scope/fib.hh"

namespace hifi
{
namespace scope
{

/// Which TV denoiser to run (both are supported, as in the paper).
enum class DenoiseAlgo { SplitBregman, Chambolle, None };

/** Post-processing parameters. */
struct PostprocessParams
{
    DenoiseAlgo algo = DenoiseAlgo::Chambolle;
    image::TvParams tv{0.05, 50};
    image::MiParams mi{32, 6};
};

/** Post-processing output. */
struct PostprocessResult
{
    image::Volume3D volume;

    /// Recovered per-slice shifts relative to slice 0.
    std::vector<std::pair<long, long>> shifts;

    /// Mean pixel residual vs the stack's ground-truth drift.
    double alignmentResidualPx = 0.0;

    /// Paper requirement: residual below 0.77% of the slice height.
    bool meetsAlignmentBudget(size_t slice_height_px) const
    {
        return alignmentResidualPx <=
            0.0077 * static_cast<double>(slice_height_px);
    }
};

/// Run the full chain on an acquired stack.
PostprocessResult postprocess(const image::SliceStack &stack,
                              const PostprocessParams &params = {});

/** Streaming post-processing output: the volume stays tiled. */
struct StreamedPostprocessResult
{
    /// Assembled volume, sealed into its tile store (no owned voxel
    /// memory; call toDense() to opt back into an in-core volume).
    image::TiledVolume3D volume;

    /// Recovered per-slice shifts relative to slice 0.
    std::vector<std::pair<long, long>> shifts;

    /// Mean pixel residual vs the streamed ground-truth drift.
    double alignmentResidualPx = 0.0;

    /// Paper requirement: residual below 0.77% of the slice height.
    bool meetsAlignmentBudget(size_t slice_height_px) const
    {
        return alignmentResidualPx <=
            0.0077 * static_cast<double>(slice_height_px);
    }
};

/**
 * Push-based post-processing: consumes slices in acquisition order
 * and runs the identical denoise → chained-MI-register → assemble
 * chain over a bounded window, writing each corrected slice straight
 * into a TiledVolume3D instead of accumulating the stack.
 *
 * Bit-identity: the per-slice denoise calls, the pairwise
 * registrations, the sequential shift accumulation and the per-slice
 * assembly writes are exactly those of `postprocess` — only the
 * buffering changes — so the result is bitwise identical to the
 * in-RAM chain at any window size, tile size, budget and thread
 * count (asserted by tests/test_volume.cc).  The working set is one
 * window of raw + denoised frames, the previous window's last
 * denoised slice (the registration anchor) and the volume's dirty
 * tile budget.
 */
class StreamingPostprocessor
{
  public:
    /**
     * @param expectedSlices  total slices that will be pushed (the
     *                        volume's X extent)
     * @param store           tile store backing the assembled volume
     * @param windowSlices    slices buffered per drain; 0 = the
     *                        batch-solver-matched kStreamWindowSlices
     */
    StreamingPostprocessor(
        size_t expectedSlices, image::TileStore &store,
        const PostprocessParams &params = {},
        size_t tileEdge = image::TiledVolume3D::kDefaultTileEdge,
        size_t dirtyBudgetBytes = 0,
        size_t windowSlices = kStreamWindowSlices);

    /// Feed the next slice (strictly in order 0, 1, 2, ...).  A
    /// disengaged trueDrift marks ground truth unavailable, which
    /// suppresses the residual exactly like a short trueDrift vector
    /// does in the dense chain.
    std::optional<common::Error>
    push(image::Image2D &&frame,
         std::optional<std::pair<long, long>> trueDrift);

    /// Drain buffered slices, seal the volume and finalize.  Typed
    /// FailedPrecondition when fewer slices arrived than promised.
    common::Result<StreamedPostprocessResult> finish();

  private:
    std::optional<common::Error> drainWindow();

    image::TileStore &store_;
    PostprocessParams params_;
    size_t expected_ = 0;
    size_t tileEdge_ = 0;
    size_t dirtyBudget_ = 0;
    size_t window_ = kStreamWindowSlices;

    size_t pushed_ = 0;    ///< slices received
    size_t assembled_ = 0; ///< slices written into the volume
    std::vector<image::Image2D> raw_; ///< current window buffer
    image::Image2D prevDenoised_;     ///< registration anchor
    bool havePrev_ = false;
    long accX_ = 0, accY_ = 0; ///< chained shift accumulator

    image::TiledVolume3D volume_;
    std::vector<std::pair<long, long>> shifts_;
    std::vector<std::pair<long, long>> trueDrift_;
    bool finished_ = false;
};

/**
 * Stack-in, tiled-volume-out convenience wrapper over
 * StreamingPostprocessor (used by tests and the memory-budgeted
 * pipeline when the stack already exists).
 */
common::Result<StreamedPostprocessResult> postprocessStreamed(
    const image::SliceStack &stack, image::TileStore &store,
    const PostprocessParams &params = {},
    size_t tileEdge = image::TiledVolume3D::kDefaultTileEdge,
    size_t dirtyBudgetBytes = 0,
    size_t windowSlices = kStreamWindowSlices);

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_POSTPROCESS_HH
