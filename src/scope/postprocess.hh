/**
 * @file
 * Image post-processing chain (Section IV-C): denoise each slice with
 * an edge-preserving TV filter, align the stack slice-to-slice with
 * mutual information, and assemble the planar-viewable volume.
 */

#ifndef HIFI_SCOPE_POSTPROCESS_HH
#define HIFI_SCOPE_POSTPROCESS_HH

#include <utility>
#include <vector>

#include "image/denoise.hh"
#include "image/registration.hh"
#include "image/volume3d.hh"

namespace hifi
{
namespace scope
{

/// Which TV denoiser to run (both are supported, as in the paper).
enum class DenoiseAlgo { SplitBregman, Chambolle, None };

/** Post-processing parameters. */
struct PostprocessParams
{
    DenoiseAlgo algo = DenoiseAlgo::Chambolle;
    image::TvParams tv{0.05, 50};
    image::MiParams mi{32, 6};
};

/** Post-processing output. */
struct PostprocessResult
{
    image::Volume3D volume;

    /// Recovered per-slice shifts relative to slice 0.
    std::vector<std::pair<long, long>> shifts;

    /// Mean pixel residual vs the stack's ground-truth drift.
    double alignmentResidualPx = 0.0;

    /// Paper requirement: residual below 0.77% of the slice height.
    bool meetsAlignmentBudget(size_t slice_height_px) const
    {
        return alignmentResidualPx <=
            0.0077 * static_cast<double>(slice_height_px);
    }
};

/// Run the full chain on an acquired stack.
PostprocessResult postprocess(const image::SliceStack &stack,
                              const PostprocessParams &params = {});

} // namespace scope
} // namespace hifi

#endif // HIFI_SCOPE_POSTPROCESS_HH
