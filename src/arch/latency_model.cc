#include "arch/latency_model.hh"

#include <cmath>
#include <stdexcept>

#include "common/rng.hh"
#include "eval/overheads.hh"
#include "models/papers.hh"

namespace hifi
{
namespace arch
{

double
averageReadLatencyNs(const dram::Timings &timings,
                     const StreamParams &stream)
{
    if (stream.accesses == 0 || stream.rows < 2)
        throw std::invalid_argument("averageReadLatencyNs: bad stream");

    common::Rng rng(stream.seed);
    size_t open_row = 0;
    double total = 0.0;
    for (size_t i = 0; i < stream.accesses; ++i) {
        const bool hit = rng.uniform() < stream.rowHitRate;
        if (hit) {
            total += timings.tCcd;
        } else {
            // Row conflict: close the open row, open another.
            size_t row = rng.below(stream.rows);
            if (row == open_row)
                row = (row + 1) % stream.rows;
            open_row = row;
            total += timings.tRp + timings.tRcd + timings.tCcd;
        }
    }
    return total / static_cast<double>(stream.accesses);
}

const std::vector<Mechanism> &
latencyMechanisms()
{
    static const std::vector<Mechanism> mechanisms = {
        // Row-buffer decoupling: precharge overlaps the access, so
        // conflicts stop paying tRP.
        {"R.B. DEC.", 1.0, 0.05, 1.0},
        // CHARM: asymmetric banks - the hot quarter of rows sits in
        // low-latency segments with ~30% faster activation.
        {"CHARM", 0.70, 1.0, 0.25},
        // PF-DRAM: precharge-free structure removes tRP entirely.
        {"PF-DRAM", 1.0, 0.0, 1.0},
        // CLR-DRAM: low-latency mode cuts activation time for rows
        // configured in reduced-capacity mode (half coverage).
        {"CLR-DRAM", 0.60, 1.0, 0.5},
        // Nov. DRAM: dual-page operation hides half the activations.
        {"Nov. DRAM", 0.55, 1.0, 0.5},
    };
    return mechanisms;
}

std::vector<CostBenefit>
costBenefitAudit(const dram::Timings &baseline,
                 const StreamParams &stream)
{
    const double base = averageReadLatencyNs(baseline, stream);

    std::vector<CostBenefit> out;
    for (const auto &mech : latencyMechanisms()) {
        // Blend covered and uncovered timing components.
        dram::Timings covered = baseline;
        covered.tRcd *= mech.tRcdScale;
        covered.tRp *= mech.tRpScale;
        const double lat_cov = averageReadLatencyNs(covered, stream);
        const double lat = mech.coverage * lat_cov +
            (1.0 - mech.coverage) * base;

        CostBenefit cb;
        cb.paper = mech.paper;
        cb.baselineLatencyNs = base;
        cb.improvedLatencyNs = lat;
        cb.latencyGain = (base - lat) / base;

        const auto &paper = models::paper(mech.paper);
        cb.claimedOverhead = paper.originalEstimate;
        // Corrected overhead: mean realistic fraction over the six
        // chips from the Appendix-B audit.
        const auto audit = eval::auditPaper(paper);
        double sum = 0.0;
        for (const auto &[id, variation] : audit.perChip)
            sum += (variation + 1.0) * paper.originalEstimate;
        cb.correctedOverhead =
            sum / static_cast<double>(audit.perChip.size());

        const auto per_area = [&](double overhead) {
            return overhead > 0.0
                ? cb.latencyGain / (overhead * 100.0)
                : 0.0;
        };
        cb.gainPerAreaClaimed = per_area(cb.claimedOverhead);
        cb.gainPerAreaCorrected = per_area(cb.correctedOverhead);
        out.push_back(cb);
    }
    return out;
}

} // namespace arch
} // namespace hifi
