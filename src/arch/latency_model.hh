/**
 * @file
 * Architecture-level consequence analysis: what the corrected
 * overheads mean for the audited proposals' cost-benefit.
 *
 * The audited papers buy average-latency improvements with SA-region
 * area; HiFi-DRAM corrects the area side (Table II).  This module
 * computes the benefit side with an open-page controller latency
 * model over synthetic address streams, applies each proposal's
 * timing mechanism, and reports gain-per-area under the papers' own
 * estimates vs the corrected ones - the ranking shifts are the
 * actionable output.
 */

#ifndef HIFI_ARCH_LATENCY_MODEL_HH
#define HIFI_ARCH_LATENCY_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/timings.hh"

namespace hifi
{
namespace arch
{

/** Synthetic access-stream parameters. */
struct StreamParams
{
    size_t accesses = 20000;

    /// Probability of hitting the currently open row.
    double rowHitRate = 0.6;

    /// Rows cycled through on misses.
    size_t rows = 512;

    uint64_t seed = 1;
};

/**
 * Average read latency (ns) of an open-page controller on one bank:
 * row hits pay the column access (tCCD); row conflicts pay
 * tRP + tRCD + column.
 */
double averageReadLatencyNs(const dram::Timings &timings,
                            const StreamParams &stream);

/**
 * A proposal's timing mechanism, as a transform on the baseline
 * timings (the benefit side of its trade).
 */
struct Mechanism
{
    std::string paper;

    /// Multipliers on the baseline timing components.
    double tRcdScale = 1.0;
    double tRpScale = 1.0;

    /// Fraction of accesses the mechanism applies to.
    double coverage = 1.0;
};

/// The latency-oriented proposals among the audited papers, with
/// their mechanisms mapped onto the timing model.
const std::vector<Mechanism> &latencyMechanisms();

/** Cost-benefit entry for one proposal. */
struct CostBenefit
{
    std::string paper;

    double baselineLatencyNs = 0.0;
    double improvedLatencyNs = 0.0;

    /// Latency gain fraction (0.08 = 8% faster).
    double latencyGain = 0.0;

    /// Area overhead: the paper's estimate and the audit's.
    double claimedOverhead = 0.0;
    double correctedOverhead = 0.0;

    /// Gain per percent of chip area, before and after correction.
    double gainPerAreaClaimed = 0.0;
    double gainPerAreaCorrected = 0.0;
};

/**
 * Run the cost-benefit audit over the latency mechanisms using the
 * topology-derived baseline timings.
 */
std::vector<CostBenefit> costBenefitAudit(
    const dram::Timings &baseline, const StreamParams &stream = {});

} // namespace arch
} // namespace hifi

#endif // HIFI_ARCH_LATENCY_MODEL_HH
