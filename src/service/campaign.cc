#include "service/campaign.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "scope/fib.hh"
#include "service/checkpoint.hh"

namespace hifi
{
namespace service
{

namespace
{

/// Service instrumentation (global registry; per-job numbers also
/// live in JobStatus so tests can assert without telemetry).
struct ServiceMetrics
{
    telemetry::Counter &submitted;
    telemetry::Counter &completed;
    telemetry::Counter &failed;
    telemetry::Counter &cancelled;
    telemetry::Counter &rejected;
    telemetry::Counter &interrupted;
    telemetry::Counter &degraded;
    telemetry::Counter &retryAttempts;
    telemetry::Counter &watchdogTimeouts;
    telemetry::Counter &checkpointSaved;
    telemetry::Counter &checkpointResumed;
    telemetry::Counter &volumeHit;
    telemetry::Counter &volumeMiss;
    telemetry::Counter &volumeEvicted;
    telemetry::Counter &chaosKills;
    telemetry::Counter &chaosStalls;

    static ServiceMetrics &
    get()
    {
        static ServiceMetrics *m = new ServiceMetrics{
            telemetry::registry().counter("service.jobs.submitted"),
            telemetry::registry().counter("service.jobs.completed"),
            telemetry::registry().counter("service.jobs.failed"),
            telemetry::registry().counter("service.jobs.cancelled"),
            telemetry::registry().counter("service.jobs.rejected"),
            telemetry::registry().counter("service.jobs.interrupted"),
            telemetry::registry().counter("service.jobs.degraded"),
            telemetry::registry().counter("service.retry.attempts"),
            telemetry::registry().counter("service.watchdog.timeouts"),
            telemetry::registry().counter("service.checkpoint.saved"),
            telemetry::registry().counter("service.checkpoint.resumed"),
            telemetry::registry().counter("service.cache.volume.hit"),
            telemetry::registry().counter("service.cache.volume.miss"),
            telemetry::registry().counter("service.cache.volume.evicted"),
            telemetry::registry().counter("service.chaos.kills"),
            telemetry::registry().counter("service.chaos.stalls")};
        return *m;
    }
};

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out)
        if (!(std::isalnum(static_cast<unsigned char>(c)) ||
              c == '-' || c == '_' || c == '.'))
            c = '_';
    return out;
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Backoff:
        return "backoff";
      case JobState::Interrupted:
        return "interrupted";
      case JobState::Completed:
        return "completed";
      case JobState::Failed:
        return "failed";
      case JobState::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

struct CampaignService::Impl
{
    /** One job's full record.  Plain fields are guarded by `mu`;
     *  the atomics are touched from the watchdog / cancel paths. */
    struct Job
    {
        uint64_t id = 0;
        std::string name;
        core::PipelineConfig config; // seed already namespaced
        uint64_t fabKey = 0;

        JobState state = JobState::Queued;
        size_t attempts = 0;
        size_t stagesRun = 0;
        size_t checkpointsSaved = 0;
        size_t resumes = 0;
        size_t chaosKills = 0;
        size_t timeouts = 0;
        core::Stage cursor = core::Stage::Fab;
        double costHours = 0.0;

        std::shared_ptr<core::PipelineReport> report;
        uint64_t digest = 0;
        bool degraded = false;
        std::optional<common::Error> error;

        std::atomic<bool> cancelRequested{false};
        std::atomic<bool> timedOut{false};
        std::atomic<uint64_t> stageStartNs{0}; // 0: not in a stage
    };

    ServiceConfig cfg;

    mutable std::mutex mu;
    std::condition_variable cvQueue; ///< workers wait for work
    std::condition_variable cvState; ///< job-state / backoff waiters
    std::map<uint64_t, std::unique_ptr<Job>> jobs;
    std::deque<Job *> queue;
    uint64_t nextId = 1;
    uint64_t submissions = 0;
    size_t active = 0; ///< jobs neither terminal nor interrupted
    double queuedHours = 0.0;
    bool stopping = false;

    std::vector<std::thread> workers;
    std::thread watchdog;

    std::optional<scope::CleanFrameCache> cleanFrames;

    /// Tile store backing v2 (tile-referencing) checkpoints and the
    /// spill tier of memory-budgeted jobs; null when checkpointing
    /// is disabled.
    std::shared_ptr<image::TileStore> tileStore;

    /// Content-addressed post-Fab cache: fabDigest -> StagedState
    /// snapshot (cursor at Acquire, materials aliased).  LRU.
    std::list<std::pair<uint64_t,
                        std::shared_ptr<const core::StagedState>>>
        volLru;
    std::map<uint64_t, decltype(volLru)::iterator> volIndex;

    explicit Impl(ServiceConfig config) : cfg(std::move(config))
    {
        if (cfg.workers == 0)
            cfg.workers = 1;
        if (cfg.cleanFrameCacheCapacity > 0)
            cleanFrames.emplace(cfg.cleanFrameCacheCapacity);
        if (!cfg.checkpointDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(cfg.checkpointDir,
                                                ec);
            image::TileStoreConfig tc;
            tc.dir = cfg.checkpointDir + "/tiles";
            tc.budgetBytes = cfg.tileCacheBytes;
            tileStore =
                std::make_shared<image::TileStore>(std::move(tc));
        }
        workers.reserve(cfg.workers);
        for (size_t i = 0; i < cfg.workers; ++i)
            workers.emplace_back([this] { workerLoop(); });
        if (cfg.stageTimeoutSec > 0.0)
            watchdog = std::thread([this] { watchdogLoop(); });
    }

    std::string
    checkpointPath(const Job &j) const
    {
        if (cfg.checkpointDir.empty())
            return {};
        return cfg.checkpointDir + "/job-" + sanitizeName(j.name) +
            ".ckpt";
    }

    // ---- Worker fleet ---------------------------------------------

    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
            cvQueue.wait(lock, [&] {
                return stopping || !queue.empty();
            });
            if (stopping)
                return;
            Job *j = queue.front();
            queue.pop_front();
            if (j->cancelRequested.load()) {
                finishLocked(*j, JobState::Cancelled);
                continue;
            }
            j->state = JobState::Running;
            lock.unlock();
            processJob(*j);
            lock.lock();
        }
    }

    /// Terminal (or interrupted) transition; callers hold `mu`.
    void
    finishLocked(Job &j, JobState state)
    {
        j.state = state;
        --active;
        queuedHours -= j.costHours;
        ServiceMetrics &m = ServiceMetrics::get();
        switch (state) {
          case JobState::Completed:
            m.completed.add(1);
            if (j.degraded)
                m.degraded.add(1);
            break;
          case JobState::Failed:
            m.failed.add(1);
            break;
          case JobState::Cancelled:
            if (!j.error)
                j.error = common::Error{
                    common::ErrorCode::Cancelled,
                    "job '" + j.name + "' cancelled"};
            m.cancelled.add(1);
            break;
          case JobState::Interrupted:
            m.interrupted.add(1);
            break;
          default:
            break;
        }
        cvState.notify_all();
    }

    /// One attempt's outcome.
    struct Attempt
    {
        enum Kind
        {
            Ok,   ///< report ready
            Fail, ///< typed error (retry decided by the caller)
            Stop, ///< service shutting down; checkpoint persisted
        };
        Kind kind = Fail;
        common::Error error;
        core::PipelineReport report;
    };

    void
    processJob(Job &j)
    {
        // Per-job telemetry scope: spans/metric deltas produced by
        // this worker (and the pool threads it fans out to) are
        // attributed to this job's session.  Declared before the
        // bind so the bind is released first.
        std::optional<telemetry::Session> session;
        std::optional<telemetry::SessionBind> bind;
        if (j.config.telemetry.enabled) {
            session.emplace();
            bind.emplace(*session);
        }

        const std::string ckpt = checkpointPath(j);
        for (size_t attempt = 1;; ++attempt) {
            {
                std::lock_guard<std::mutex> lock(mu);
                ++j.attempts;
                if (attempt > 1)
                    ServiceMetrics::get().retryAttempts.add(1);
            }
            Attempt out = runAttempt(j, attempt, ckpt);

            std::unique_lock<std::mutex> lock(mu);
            if (out.kind == Attempt::Ok) {
                if (session) {
                    lock.unlock();
                    out.report.telemetry =
                        session->finish(j.config.telemetry);
                    if (!j.config.telemetry.qcAuditPath.empty())
                        telemetry::writeTextFile(
                            j.config.telemetry.qcAuditPath,
                            scope::qcAuditJson(out.report.qcAudit));
                    session.reset();
                    bind.reset();
                    lock.lock();
                }
                j.digest = core::reportDigest(out.report);
                j.degraded = out.report.degraded;
                j.report = std::make_shared<core::PipelineReport>(
                    std::move(out.report));
                j.cursor = core::Stage::Done;
                // Remove the checkpoint before the terminal
                // transition: anyone woken by wait() must not find a
                // stale checkpoint for a completed job.
                if (!ckpt.empty()) {
                    lock.unlock();
                    removeCheckpoint(ckpt);
                    lock.lock();
                }
                finishLocked(j, JobState::Completed);
                return;
            }
            if (out.kind == Attempt::Stop) {
                finishLocked(j, JobState::Interrupted);
                return;
            }
            if (j.cancelRequested.load() ||
                out.error.code == common::ErrorCode::Cancelled) {
                j.error = std::move(out.error);
                finishLocked(j, JobState::Cancelled);
                return;
            }
            const bool retryable =
                common::isTransient(out.error.code) &&
                attempt < cfg.retry.maxAttempts;
            if (!retryable) {
                j.error = std::move(out.error);
                finishLocked(j, JobState::Failed);
                return;
            }

            // Exponential backoff with deterministic jitter.
            j.state = JobState::Backoff;
            double delayMs = cfg.retry.backoffBaseMs;
            for (size_t a = 1; a < attempt; ++a)
                delayMs *= cfg.retry.backoffFactor;
            common::Rng jitter(cfg.retry.seed,
                               (j.id << 8) | attempt);
            delayMs *= 1.0 +
                cfg.retry.jitterFrac * (jitter.uniform() - 0.5);
            common::warn("service: job '" + j.name + "' attempt " +
                         std::to_string(attempt) + " failed (" +
                         common::errorCodeName(out.error.code) +
                         "), retrying in " +
                         std::to_string(delayMs) + " ms");
            cvState.wait_for(
                lock,
                std::chrono::microseconds(
                    static_cast<long long>(delayMs * 1000.0)),
                [&] {
                    return stopping || j.cancelRequested.load();
                });
            if (stopping) {
                finishLocked(j, JobState::Interrupted);
                return;
            }
            if (j.cancelRequested.load()) {
                finishLocked(j, JobState::Cancelled);
                return;
            }
            j.state = JobState::Running;
        }
    }

    Attempt
    runAttempt(Job &j, size_t attempt, const std::string &ckpt)
    {
        ServiceMetrics &m = ServiceMetrics::get();
        Attempt out;
        core::StagedState state;
        bool haveState = false;

        // 1. Resume from the newest checkpoint when one exists.
        if (!ckpt.empty()) {
            auto loaded = loadCheckpoint(ckpt, j.config, tileStore);
            if (loaded.ok()) {
                state = loaded.takeValue();
                haveState = true;
                if (state.next != core::Stage::Fab) {
                    m.checkpointResumed.add(1);
                    std::lock_guard<std::mutex> lock(mu);
                    ++j.resumes;
                }
            } else if (loaded.error().code !=
                       common::ErrorCode::NotFound) {
                common::warn("service: job '" + j.name +
                             "': discarding checkpoint (" +
                             loaded.error().message + ")");
                removeCheckpoint(ckpt);
            }
        }

        // 2. Fresh start, possibly satisfied by the fab cache.
        if (!haveState) {
            auto init = core::initStagedRun(j.config);
            if (!init.ok()) {
                out.error = init.error();
                return out;
            }
            state = init.takeValue();
            if (cfg.volumeCacheCapacity > 0) {
                std::lock_guard<std::mutex> lock(mu);
                const auto it = volIndex.find(j.fabKey);
                if (it != volIndex.end()) {
                    volLru.splice(volLru.begin(), volLru,
                                  it->second);
                    state = *it->second->second;
                    m.volumeHit.add(1);
                } else {
                    m.volumeMiss.add(1);
                }
            }
        }

        if (cleanFrames) {
            state.cleanFrames = &*cleanFrames;
            state.volumeKey = j.fabKey;
        }
        if (tileStore)
            state.tileStore = tileStore; // spill beside checkpoints

        // 3. Stage loop: run, record, cache, checkpoint, (chaos).
        while (state.next != core::Stage::Done) {
            if (j.cancelRequested.load()) {
                out.error = common::Error{
                    common::ErrorCode::Cancelled,
                    "job '" + j.name + "' cancelled at stage " +
                        core::stageName(state.next)};
                return out;
            }
            {
                std::lock_guard<std::mutex> lock(mu);
                if (stopping) {
                    out.kind = Attempt::Stop;
                    return out;
                }
            }

            const core::Stage stage = state.next;
            j.timedOut.store(false);
            j.stageStartNs.store(nowNs());
            const auto err = core::runStage(j.config, state);
            {
                std::lock_guard<std::mutex> lock(mu);
                ++j.stagesRun;
                j.cursor = state.next;
            }
            if (err) {
                j.stageStartNs.store(0);
                out.error = *err;
                return out;
            }

            if (stage == core::Stage::Fab &&
                cfg.volumeCacheCapacity > 0)
                storeFabSnapshot(j.fabKey, state);

            if (!ckpt.empty() && state.next != core::Stage::Done) {
                if (const auto serr = saveCheckpoint(
                        ckpt, j.config, state, tileStore)) {
                    common::warn("service: job '" + j.name +
                                 "': checkpoint failed (" +
                                 serr->message + ")");
                } else {
                    m.checkpointSaved.add(1);
                    std::lock_guard<std::mutex> lock(mu);
                    ++j.checkpointsSaved;
                }
            }

            // Deterministic chaos at the stage boundary (after the
            // checkpoint, so a "crash" resumes from this stage).
            if (cfg.chaos.enabled &&
                state.next != core::Stage::Done) {
                common::Rng chaos(
                    cfg.chaos.seed ^ j.config.seed,
                    (static_cast<uint64_t>(stage) << 8) | attempt);
                const double u = chaos.uniform();
                if (u < cfg.chaos.killProbability) {
                    m.chaosKills.add(1);
                    {
                        std::lock_guard<std::mutex> lock(mu);
                        ++j.chaosKills;
                    }
                    j.stageStartNs.store(0);
                    out.error = common::Error{
                        common::ErrorCode::Internal,
                        "chaos: injected crash after stage " +
                            std::string(core::stageName(stage))};
                    return out;
                }
                if (u < cfg.chaos.killProbability +
                        cfg.chaos.stallProbability) {
                    m.chaosStalls.add(1);
                    stallTicks(j);
                }
            }
            j.stageStartNs.store(0);

            if (j.timedOut.load()) {
                m.watchdogTimeouts.add(1);
                {
                    std::lock_guard<std::mutex> lock(mu);
                    ++j.timeouts;
                }
                out.error = common::Error{
                    common::ErrorCode::DeadlineExceeded,
                    "stage " + std::string(core::stageName(stage)) +
                        " of job '" + j.name +
                        "' exceeded the watchdog deadline"};
                return out;
            }
        }

        out.kind = Attempt::Ok;
        out.report = std::move(state.report);
        return out;
    }

    /// Chaos stall: sleep in 1 ms ticks so the watchdog (or a
    /// cancel/shutdown) can cut it short.
    void
    stallTicks(Job &j)
    {
        const uint64_t t0 = nowNs();
        const auto budget =
            static_cast<uint64_t>(cfg.chaos.stallMs * 1.0e6);
        while (nowNs() - t0 < budget) {
            if (j.timedOut.load() || j.cancelRequested.load())
                return;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (stopping)
                    return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }

    /// Insert a copy of the post-Fab state into the LRU (no-op when
    /// the key is already present).
    void
    storeFabSnapshot(uint64_t key, const core::StagedState &state)
    {
        auto snap = std::make_shared<core::StagedState>(state);
        snap->cleanFrames = nullptr; // rebound per job on reuse
        snap->volumeKey = 0;
        snap->tileStore.reset();
        std::lock_guard<std::mutex> lock(mu);
        if (volIndex.count(key))
            return;
        volLru.emplace_front(key, std::move(snap));
        volIndex[key] = volLru.begin();
        while (volLru.size() > cfg.volumeCacheCapacity) {
            volIndex.erase(volLru.back().first);
            volLru.pop_back();
            ServiceMetrics::get().volumeEvicted.add(1);
        }
    }

    /// Status snapshot of one job; callers hold `mu`.
    static JobStatus
    makeStatus(const Job &j)
    {
        JobStatus s;
        s.id = j.id;
        s.name = j.name;
        s.state = j.state;
        s.attempts = j.attempts;
        s.stagesRun = j.stagesRun;
        s.checkpointsSaved = j.checkpointsSaved;
        s.resumes = j.resumes;
        s.chaosKills = j.chaosKills;
        s.timeouts = j.timeouts;
        s.cursor = j.cursor;
        s.effectiveSeed = j.config.seed;
        s.costHours = j.costHours;
        s.reportDigest = j.digest;
        s.degraded = j.degraded;
        s.error = j.error;
        return s;
    }

    // ---- Watchdog -------------------------------------------------

    void
    watchdogLoop()
    {
        const auto deadlineNs =
            static_cast<uint64_t>(cfg.stageTimeoutSec * 1.0e9);
        std::unique_lock<std::mutex> lock(mu);
        while (!stopping) {
            cvState.wait_for(lock, std::chrono::milliseconds(5),
                             [&] { return stopping; });
            if (stopping)
                return;
            for (auto &[id, j] : jobs) {
                const uint64_t start = j->stageStartNs.load();
                if (start != 0 && nowNs() - start > deadlineNs)
                    j->timedOut.store(true);
            }
        }
    }
};

// ---- Public API ----------------------------------------------------

CampaignService::CampaignService(ServiceConfig config)
    : impl_(new Impl(std::move(config)))
{}

CampaignService::~CampaignService()
{
    shutdown();
}

common::Result<uint64_t>
CampaignService::submit(const std::string &name,
                        const core::PipelineConfig &config)
{
    using R = common::Result<uint64_t>;
    ServiceMetrics &m = ServiceMetrics::get();
    Impl &im = *impl_;

    if (const auto err = core::validateConfig(config)) {
        m.rejected.add(1);
        return R(*err);
    }

    // Table-I admission: the cost model is cheap and needs only the
    // chip spec, so estimate before touching the queue.
    const models::ChipSpec &chip = models::chip(config.chipId);
    const double costHours = scope::campaignCost(chip).totalHours;
    if (im.cfg.maxJobHours > 0.0 &&
        costHours > im.cfg.maxJobHours) {
        m.rejected.add(1);
        return R::failure(
            common::ErrorCode::ResourceExhausted,
            "job '" + name + "' estimated at " +
                std::to_string(costHours) +
                " h exceeds the per-job budget of " +
                std::to_string(im.cfg.maxJobHours) + " h");
    }

    std::unique_lock<std::mutex> lock(im.mu);
    for (;;) {
        if (im.stopping) {
            m.rejected.add(1);
            return R::failure(common::ErrorCode::FailedPrecondition,
                              "service is shut down");
        }
        const bool queueFull = im.active >= im.cfg.maxQueueDepth;
        const bool budgetFull = im.cfg.maxQueuedHours > 0.0 &&
            im.queuedHours + costHours > im.cfg.maxQueuedHours;
        if (!queueFull && !budgetFull)
            break;
        if (!im.cfg.blockWhenFull) {
            m.rejected.add(1);
            return R::failure(
                common::ErrorCode::ResourceExhausted,
                queueFull
                    ? "queue depth limit of " +
                        std::to_string(im.cfg.maxQueueDepth) +
                        " reached"
                    : "queued campaign budget of " +
                        std::to_string(im.cfg.maxQueuedHours) +
                        " h reached");
        }
        im.cvState.wait(lock);
    }

    auto job = std::make_unique<Impl::Job>();
    job->id = im.nextId++;
    job->name = name;
    job->config = config;
    if (im.cfg.seedNamespace != 0)
        job->config.seed =
            common::Rng(im.cfg.seedNamespace, im.submissions).next();
    ++im.submissions;
    job->fabKey = fabDigest(job->config);
    job->costHours = costHours;

    const uint64_t id = job->id;
    Impl::Job *raw = job.get();
    im.jobs.emplace(id, std::move(job));
    im.queue.push_back(raw);
    ++im.active;
    im.queuedHours += costHours;
    m.submitted.add(1);
    im.cvQueue.notify_one();
    return R(uint64_t{id});
}

bool
CampaignService::cancel(uint64_t id)
{
    Impl &im = *impl_;
    std::lock_guard<std::mutex> lock(im.mu);
    const auto it = im.jobs.find(id);
    if (it == im.jobs.end())
        return false;
    Impl::Job &j = *it->second;
    if (isTerminal(j.state) || j.state == JobState::Interrupted)
        return false;
    j.cancelRequested.store(true);
    if (j.state == JobState::Queued) {
        for (auto qit = im.queue.begin(); qit != im.queue.end();
             ++qit) {
            if (*qit == &j) {
                im.queue.erase(qit);
                break;
            }
        }
        im.finishLocked(j, JobState::Cancelled);
    } else {
        im.cvState.notify_all(); // interrupt a backoff wait
    }
    return true;
}

JobStatus
CampaignService::status(uint64_t id) const
{
    const Impl &im = *impl_;
    std::lock_guard<std::mutex> lock(im.mu);
    return Impl::makeStatus(*im.jobs.at(id));
}

std::vector<JobStatus>
CampaignService::statuses() const
{
    const Impl &im = *impl_;
    std::lock_guard<std::mutex> lock(im.mu);
    std::vector<JobStatus> out;
    out.reserve(im.jobs.size());
    for (const auto &[id, j] : im.jobs)
        out.push_back(Impl::makeStatus(*j));
    return out;
}

common::Result<core::PipelineReport>
CampaignService::result(uint64_t id) const
{
    using R = common::Result<core::PipelineReport>;
    const Impl &im = *impl_;
    std::lock_guard<std::mutex> lock(im.mu);
    const auto it = im.jobs.find(id);
    if (it == im.jobs.end())
        return R::failure(common::ErrorCode::NotFound,
                          "unknown job id " + std::to_string(id));
    const Impl::Job &j = *it->second;
    if (j.state == JobState::Completed)
        return R(core::PipelineReport(*j.report));
    if (j.error)
        return R(*j.error);
    return R::failure(common::ErrorCode::FailedPrecondition,
                      "job '" + j.name + "' is " +
                          jobStateName(j.state));
}

bool
CampaignService::wait(uint64_t id, double timeoutSec)
{
    Impl &im = *impl_;
    std::unique_lock<std::mutex> lock(im.mu);
    const auto it = im.jobs.find(id);
    if (it == im.jobs.end())
        return false;
    Impl::Job &j = *it->second;
    const auto settled = [&] {
        return isTerminal(j.state) ||
            j.state == JobState::Interrupted || im.stopping;
    };
    if (timeoutSec < 0.0)
        im.cvState.wait(lock, settled);
    else
        im.cvState.wait_for(
            lock,
            std::chrono::microseconds(
                static_cast<long long>(timeoutSec * 1.0e6)),
            settled);
    return isTerminal(j.state);
}

void
CampaignService::drain()
{
    Impl &im = *impl_;
    std::unique_lock<std::mutex> lock(im.mu);
    im.cvState.wait(lock, [&] {
        return im.active == 0 || im.stopping;
    });
}

void
CampaignService::shutdown()
{
    Impl &im = *impl_;
    {
        std::lock_guard<std::mutex> lock(im.mu);
        if (im.stopping)
            return;
        im.stopping = true;
    }
    im.cvQueue.notify_all();
    im.cvState.notify_all();
    for (auto &w : im.workers)
        w.join();
    im.workers.clear();
    if (im.watchdog.joinable())
        im.watchdog.join();
}

size_t
CampaignService::queueDepth() const
{
    const Impl &im = *impl_;
    std::lock_guard<std::mutex> lock(im.mu);
    return im.active;
}

std::string
CampaignService::healthJson() const
{
    const Impl &im = *impl_;
    std::map<std::string, size_t> states;
    size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(im.mu);
        depth = im.active;
        for (const auto &[id, j] : im.jobs)
            ++states[jobStateName(j->state)];
    }
    const telemetry::MetricsSnapshot snap =
        telemetry::registry().snapshot();
    std::ostringstream os;
    os << "{\"queueDepth\":" << depth << ",\"jobs\":{";
    bool first = true;
    for (const auto &[name, n] : states) {
        os << (first ? "" : ",") << "\"" << name << "\":" << n;
        first = false;
    }
    os << "},\"counters\":{";
    first = true;
    for (const auto &[name, v] : snap.counters) {
        if (name.rfind("service.", 0) != 0 &&
            name.rfind("sem.clean_cache.", 0) != 0)
            continue;
        os << (first ? "" : ",") << "\"" << name << "\":" << v;
        first = false;
    }
    os << "}}";
    return os.str();
}

} // namespace service
} // namespace hifi
