/**
 * @file
 * Fault-tolerant campaign service: a long-running, multi-tenant
 * front-end to the HiFi-DRAM pipeline.
 *
 * Research campaigns run many pipeline configurations for hours
 * (Table I: a single 100 um^2 ROI scan exceeds 24 h), so the service
 * wraps the staged pipeline (core/stages.hh) with the operational
 * machinery a batch of such jobs needs:
 *
 *  - a bounded job queue with worker threads, admission control from
 *    the Table-I cost model, and backpressure (typed
 *    ResourceExhausted rejection or blocking submit);
 *  - per-job robustness: a watchdog that flags stage-deadline
 *    overruns, bounded retries with exponential backoff and
 *    deterministic jitter, cooperative cancellation — every failure
 *    is a typed common::Error classified by common::isTransient;
 *  - crash-safe progress: a checkpoint after every completed stage
 *    (service/checkpoint.hh); a killed service replays only the
 *    unfinished stages on restart, and the resumed report is
 *    bitwise-identical to an uninterrupted run;
 *  - shared bounded caches: a content-addressed post-Fab volume
 *    cache (jobs with the same fab identity skip the fab stage) and
 *    a shared scope::CleanFrameCache for the acquisition stage —
 *    both exact, so sharing never changes a report;
 *  - observability: "service.*" counters in the global telemetry
 *    registry and a healthJson() snapshot.
 *
 * Determinism: job seeds come from a counter-seeded namespace
 * (common::Rng(namespace, submissionIndex)), stage bodies are pure,
 * and chaos injection (testing only) is counter-seeded per
 * (job, stage, attempt) — so a whole campaign, including its
 * failures, retries and resumes, replays bit-for-bit.
 */

#ifndef HIFI_SERVICE_CAMPAIGN_HH
#define HIFI_SERVICE_CAMPAIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "core/stages.hh"

namespace hifi
{
namespace service
{

/** Bounded-retry policy with exponential backoff and jitter. */
struct RetryPolicy
{
    /// Total attempts per job (first try included).  Transient
    /// failures (common::isTransient) retry until this is spent;
    /// permanent ones fail immediately.
    size_t maxAttempts = 3;

    double backoffBaseMs = 20.0; ///< delay before the 2nd attempt
    double backoffFactor = 2.0;  ///< multiplier per further attempt

    /// Full-width fractional jitter: the delay is scaled by a
    /// deterministic factor in [1 - j/2, 1 + j/2] drawn from
    /// Rng(seed, job<<8 | attempt), decorrelating retry storms
    /// without losing replayability.
    double jitterFrac = 0.25;

    uint64_t seed = 0x7e7271ull;
};

/** Deterministic failure injection for soak tests (off by default). */
struct ChaosOptions
{
    bool enabled = false;

    /// Probability that the service "crashes" a job at a stage
    /// boundary (after the checkpoint is saved): the attempt aborts
    /// with a transient Internal error and the retry resumes from
    /// the checkpoint, exercising the recovery path.
    double killProbability = 0.2;

    /// Probability of a stall at a stage boundary (sleeps in small
    /// cancellable ticks), exercising the watchdog.
    double stallProbability = 0.0;

    double stallMs = 50.0;

    /// Chaos decisions are drawn from Rng(seed ^ jobSeed,
    /// stage << 8 | attempt): a fixed seed replays the same kills.
    uint64_t seed = 0xc4405ull;
};

/** Service-wide configuration. */
struct ServiceConfig
{
    size_t workers = 2;

    /// Queue bound (jobs admitted but not yet terminal).  Submits
    /// beyond it are rejected with ResourceExhausted, or block when
    /// `blockWhenFull` is set.
    size_t maxQueueDepth = 64;
    bool blockWhenFull = false;

    /// Admission control from the Table-I cost model: reject any job
    /// whose estimated campaign exceeds `maxJobHours`, and reject
    /// (backpressure) when the summed cost of non-terminal jobs
    /// would exceed `maxQueuedHours`.  0 disables either check.
    double maxJobHours = 0.0;
    double maxQueuedHours = 0.0;

    RetryPolicy retry;

    /// Watchdog deadline per pipeline stage (seconds); a stage
    /// overrun fails the attempt with DeadlineExceeded (transient,
    /// so it retries).  0 disables the watchdog.
    double stageTimeoutSec = 0.0;

    /// Directory for per-job checkpoints; empty disables
    /// checkpointing (retries then restart from scratch — still
    /// deterministic, just slower).  A content-addressed tile store
    /// lives in "<checkpointDir>/tiles": checkpoints reference
    /// artifact voxels by tile digest instead of embedding them, and
    /// memory-budgeted jobs spill their volumes into the same store.
    std::string checkpointDir;

    /// Resident budget (bytes) of the checkpoint tile store's LRU —
    /// the memory the service may spend caching recently used tiles;
    /// the disk tier under checkpointDir is unbounded.
    size_t tileCacheBytes = 256ull << 20;

    /// Capacity of the content-addressed post-Fab volume cache
    /// (entries; 0 disables).  Keyed by fabDigest, exact by
    /// construction.
    size_t volumeCacheCapacity = 2;

    /// Capacity of the shared clean-frame cache handed to every
    /// acquisition (distinct mill positions; 0 gives each job its
    /// private per-acquisition cache).
    size_t cleanFrameCacheCapacity = 0;

    /**
     * Seed namespace: when non-zero, job i's config.seed is replaced
     * by Rng(seedNamespace, i).next() at submission — tenants get
     * decorrelated, reproducible seed streams without coordinating
     * seeds.  0 keeps each submitted config's own seed.
     */
    uint64_t seedNamespace = 0;

    ChaosOptions chaos;
};

/** Job lifecycle states. */
enum class JobState
{
    Queued,      ///< admitted, waiting for a worker
    Running,     ///< a worker is executing stages
    Backoff,     ///< waiting out a retry delay
    Interrupted, ///< service shut down mid-job; checkpoint on disk
    Completed,   ///< report ready
    Failed,      ///< typed terminal error
    Cancelled,   ///< cancelled before completion
};

const char *jobStateName(JobState state);

/// True for states a job can no longer leave.
inline bool
isTerminal(JobState s)
{
    return s == JobState::Completed || s == JobState::Failed ||
        s == JobState::Cancelled;
}

/** Point-in-time status of one job. */
struct JobStatus
{
    uint64_t id = 0;
    std::string name;
    JobState state = JobState::Queued;

    size_t attempts = 0;        ///< attempts started so far
    size_t stagesRun = 0;       ///< stage executions (all attempts)
    size_t checkpointsSaved = 0;
    size_t resumes = 0;         ///< attempts seeded from a checkpoint
    size_t chaosKills = 0;      ///< injected crashes survived
    size_t timeouts = 0;        ///< watchdog deadline overruns

    core::Stage cursor = core::Stage::Fab; ///< next stage to run

    uint64_t effectiveSeed = 0; ///< seed after namespace mapping
    double costHours = 0.0;     ///< Table-I campaign estimate

    /// Set when state == Completed.
    uint64_t reportDigest = 0;
    bool degraded = false;

    /// Set when state == Failed (and for cancelled jobs).
    std::optional<common::Error> error;
};

/**
 * The campaign service.  Thread-safe; one instance owns its worker
 * fleet, watchdog, queue and caches.  Destruction (or shutdown())
 * stops the workers at the next stage boundary — in-flight jobs are
 * checkpointed and marked Interrupted, and a new service pointed at
 * the same checkpoint directory resumes them where they stopped.
 */
class CampaignService
{
  public:
    explicit CampaignService(ServiceConfig config);
    ~CampaignService();

    CampaignService(const CampaignService &) = delete;
    CampaignService &operator=(const CampaignService &) = delete;

    /**
     * Validate, apply the seed namespace, and enqueue a job.  `name`
     * keys the checkpoint file, so resubmitting the same name and
     * config to a service sharing the checkpoint directory resumes
     * the earlier progress.  Typed failures: validateConfig errors
     * pass through; queue/cost rejections are ResourceExhausted.
     * Returns the job id.
     */
    common::Result<uint64_t> submit(const std::string &name,
                                    const core::PipelineConfig &config);

    /// Request cooperative cancellation; the job stops at the next
    /// stage boundary (queued jobs cancel immediately).  False when
    /// the id is unknown or the job is already terminal.
    bool cancel(uint64_t id);

    /// Status snapshot (throws std::out_of_range on unknown id).
    JobStatus status(uint64_t id) const;

    /// Status of every job, in submission order.
    std::vector<JobStatus> statuses() const;

    /// Completed report (copy), or the job's typed terminal error;
    /// FailedPrecondition when the job is not terminal yet.
    common::Result<core::PipelineReport> result(uint64_t id) const;

    /// Block until the job is terminal (or `timeoutSec` elapses when
    /// >= 0).  Returns whether the job is terminal.
    bool wait(uint64_t id, double timeoutSec = -1.0);

    /// Block until every submitted job is terminal.
    void drain();

    /**
     * Stop the fleet: workers finish (and checkpoint) their current
     * stage, running jobs become Interrupted, queued jobs stay
     * Queued.  Idempotent; the destructor calls it.
     */
    void shutdown();

    /// Jobs admitted and not yet terminal.
    size_t queueDepth() const;

    /// Health/metrics snapshot as JSON: queue depth, per-state job
    /// counts, and the "service.*" counters.
    std::string healthJson() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace service
} // namespace hifi

#endif // HIFI_SERVICE_CAMPAIGN_HH
