#include "service/checkpoint.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "image/tiled_volume.hh"

namespace hifi
{
namespace service
{

namespace
{

constexpr uint64_t kMagic = 0x48494649434b5031ull; // "HIFICKP1"
constexpr uint32_t kVersion = 1;      ///< artifact voxels inline
constexpr uint32_t kVersionTiled = 2; ///< artifacts as tile digests

// ---- Byte-stream primitives ---------------------------------------
// Native-endian binary encoding: a checkpoint resumes on the machine
// that wrote it (the service's crash-restart story), not across
// architectures.  The trailing digest catches torn writes; the config
// digest catches resumes under a different job configuration.

struct Writer
{
    std::string out;

    void
    u64(uint64_t v)
    {
        out.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }

    void u32(uint32_t v)
    {
        out.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }

    void u8(uint8_t v) { out.push_back(static_cast<char>(v)); }

    void
    d(double v)
    {
        out.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }

    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        out.append(s);
    }

    void
    rect(const common::Rect &r)
    {
        d(r.x0);
        d(r.y0);
        d(r.x1);
        d(r.y1);
    }

    void
    floats(const std::vector<float> &v)
    {
        u64(v.size());
        out.append(reinterpret_cast<const char *>(v.data()),
                   v.size() * sizeof(float));
    }
};

struct Reader
{
    const std::string &in;
    size_t pos = 0;
    bool ok = true;

    explicit Reader(const std::string &bytes) : in(bytes) {}

    bool
    take(void *dst, size_t n)
    {
        if (!ok || in.size() - pos < n) {
            ok = false;
            return false;
        }
        std::memcpy(dst, in.data() + pos, n);
        pos += n;
        return true;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    uint8_t
    u8()
    {
        uint8_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    double
    d()
    {
        double v = 0;
        take(&v, sizeof(v));
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    std::string
    str()
    {
        const uint64_t n = u64();
        if (!ok || in.size() - pos < n) {
            ok = false;
            return {};
        }
        std::string s(in.data() + pos, n);
        pos += n;
        return s;
    }

    common::Rect
    rect()
    {
        common::Rect r;
        r.x0 = d();
        r.y0 = d();
        r.x1 = d();
        r.y1 = d();
        return r;
    }

    std::vector<float>
    floats()
    {
        const uint64_t n = u64();
        if (!ok || in.size() - pos < n * sizeof(float) ||
            n > in.size()) {
            ok = false;
            return {};
        }
        std::vector<float> v(n);
        std::memcpy(v.data(), in.data() + pos, n * sizeof(float));
        pos += n * sizeof(float);
        return v;
    }
};

uint64_t
fnv(const char *data, size_t n, uint64_t h = 1469598103934665603ull)
{
    for (size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

// ---- Config identity ----------------------------------------------

void
writeFabIdentity(Writer &w, const core::PipelineConfig &c)
{
    w.str(c.chipId);
    w.u64(c.pairs);
    w.u64(c.stackedSas);
    w.u64(c.seed);
    w.u64(static_cast<uint64_t>(c.corner));
    w.d(c.voxelNm);
    w.u64(c.defects.seed);
    w.u64(c.defects.bitlineShorts);
    w.u64(c.defects.bitlineOpens);
    w.u64(c.defects.missingVias);
    w.u64(c.defects.particles);
    w.d(c.defects.particleDiameterNm);
}

void
writeConfigIdentity(Writer &w, const core::PipelineConfig &c)
{
    writeFabIdentity(w, c);
    w.u64(static_cast<uint64_t>(c.denoise));
    w.d(c.driftProbability);
    w.i64(c.detectorOverride);

    const scope::FaultParams &f = c.faults;
    w.u8(f.enabled);
    w.d(f.curtainingProbability);
    w.d(f.chargingProbability);
    w.d(f.focusLossProbability);
    w.d(f.dropoutProbability);
    w.d(f.sliceSkipProbability);
    w.d(f.driftExcursionProbability);
    w.d(f.curtainDepth);
    w.d(f.curtainPeriodFrac);
    w.d(f.chargeValue);
    w.d(f.chargeAreaFrac);
    w.u64(f.blurRadius);
    w.d(f.dropoutRowFraction);
    w.d(f.blankFrameFraction);
    w.u64(f.skipOvershootSlices);
    w.i64(f.excursionPx);

    // Result-affecting recovery policy only: reuseCleanFrames and the
    // cache capacity are bit-identity-neutral by contract and must
    // not invalidate a checkpoint.
    const scope::RecoveryParams &r = c.recovery;
    w.u64(r.maxRetries);
    w.u8(r.interpolate);
    const image::QcThresholds &q = r.qc;
    w.d(q.minSnr);
    w.d(q.saturationLevel);
    w.d(q.maxSaturationFraction);
    w.d(q.maxDeadRowFraction);
    w.d(q.maxStripeScore);
    w.d(q.minFocusRatio);
    w.d(q.minMiRatio);
    w.i64(q.maxNeighborShiftPx);
    w.i64(q.shiftSearchPx);
    w.u64(q.miBins);
    w.u64(q.history);
}

// ---- Report -------------------------------------------------------

void
writeReport(Writer &w, const core::PipelineReport &r)
{
    w.str(r.chipId);
    w.u64(static_cast<uint64_t>(r.trueTopology));
    w.u64(static_cast<uint64_t>(r.extractedTopology));
    w.u8(r.topologyCorrect);
    w.u64(r.trueCommonGateStrips);
    w.u64(r.extractedCommonGateStrips);
    w.u64(r.trueDevices);
    w.u64(r.extractedDevices);
    w.u64(r.bitlinesFound);
    w.u64(r.bitlinesTrue);
    w.u8(r.crossCouplingConsistent);
    w.str(r.matchedTemplate);
    w.d(r.matchScore);
    w.u64(r.slices);
    w.d(r.alignmentResidualPx);
    w.u8(r.alignmentBudgetMet);

    w.u64(r.roles.size());
    for (const auto &[role, rec] : r.roles) {
        w.u64(static_cast<uint64_t>(role));
        w.d(rec.trueW);
        w.d(rec.trueL);
        w.d(rec.measuredW);
        w.d(rec.measuredL);
    }
    w.d(r.maxDimErrorNm);

    w.u64(r.slicesRetried);
    w.u64(r.retries);
    w.u64(r.slicesInterpolated);
    w.u64(r.interpolatedSlices.size());
    for (const size_t s : r.interpolatedSlices)
        w.u64(s);
    w.u64(r.slicesUnrecoverable);
    w.u64(r.faultsInjected);
    w.u64(r.faultsDetected);
    w.d(r.qcConfidence);
    w.u8(r.degraded);

    const scope::CampaignCost &c = r.campaign;
    w.u64(c.slices);
    w.d(c.pixelsPerImage);
    w.d(c.millSecondsPerSlice);
    w.d(c.imageSecondsPerSlice);
    w.d(c.secondsPerSlice);
    w.u64(c.reimagedSlices);
    w.d(c.retryHours);
    w.d(c.totalHours);

    const core::SiliconDefectReport &sd = r.siliconDefects;
    w.u64(sd.planted.size());
    for (const auto &p : sd.planted) {
        w.u64(static_cast<uint64_t>(p.planted.kind));
        w.rect(p.planted.footprint);
        w.i64(p.planted.bitlineA);
        w.i64(p.planted.bitlineB);
        w.u8(p.detected);
    }
    w.u64(sd.detected.size());
    for (const auto &d : sd.detected) {
        w.u64(static_cast<uint64_t>(d.kind));
        w.rect(d.where);
        w.i64(d.bitlineA);
        w.i64(d.bitlineB);
    }
    w.u64(sd.matched);
    w.u64(sd.spurious);

    const re::RegionAnalysis &a = r.analysis;
    w.u64(static_cast<uint64_t>(a.topology));
    w.u64(a.commonGateStrips);
    w.u64(a.bitlines.size());
    for (const auto &b : a.bitlines)
        w.rect(b);
    w.u64(a.devices.size());
    for (const auto &dev : a.devices) {
        w.u64(static_cast<uint64_t>(dev.role));
        w.rect(dev.gate);
        w.d(dev.wNm);
        w.d(dev.lNm);
        w.i64(dev.bitline);
        w.i64(dev.couplesTo);
    }
    w.u64(a.defects.size());
    for (const auto &d : a.defects) {
        w.u64(static_cast<uint64_t>(d.kind));
        w.rect(d.where);
        w.i64(d.bitlineA);
        w.i64(d.bitlineB);
    }

    w.u64(r.qcAudit.size());
    for (const auto &dec : r.qcAudit) {
        w.u64(dec.slice);
        w.i64(dec.injectedFault);
        w.u8(dec.accepted);
        w.u8(dec.interpolated);
        w.u8(dec.unrecoverable);
        w.u64(dec.attempts.size());
        for (const auto &att : dec.attempts) {
            w.u64(att.attempt);
            w.i64(att.fault);
            w.u8(att.contentConfirmed);
            w.u8(att.accepted);
            const image::QcMetrics &m = att.metrics;
            w.d(m.snr);
            w.d(m.focusScore);
            w.d(m.saturationFraction);
            w.d(m.deadRowFraction);
            w.d(m.stripeScore);
            w.d(m.miVsPrev);
            w.i64(m.shiftX);
            w.i64(m.shiftY);
            w.u64(m.flags);
        }
    }
}

core::PipelineReport
readReport(Reader &rd)
{
    core::PipelineReport r;
    r.chipId = rd.str();
    r.trueTopology = static_cast<models::Topology>(rd.u64());
    r.extractedTopology = static_cast<models::Topology>(rd.u64());
    r.topologyCorrect = rd.u8();
    r.trueCommonGateStrips = rd.u64();
    r.extractedCommonGateStrips = rd.u64();
    r.trueDevices = rd.u64();
    r.extractedDevices = rd.u64();
    r.bitlinesFound = rd.u64();
    r.bitlinesTrue = rd.u64();
    r.crossCouplingConsistent = rd.u8();
    r.matchedTemplate = rd.str();
    r.matchScore = rd.d();
    r.slices = rd.u64();
    r.alignmentResidualPx = rd.d();
    r.alignmentBudgetMet = rd.u8();

    const uint64_t roles = rd.u64();
    for (uint64_t i = 0; rd.ok && i < roles; ++i) {
        const auto role = static_cast<models::Role>(rd.u64());
        core::RoleRecovery rec;
        rec.trueW = rd.d();
        rec.trueL = rd.d();
        rec.measuredW = rd.d();
        rec.measuredL = rd.d();
        r.roles[role] = rec;
    }
    r.maxDimErrorNm = rd.d();

    r.slicesRetried = rd.u64();
    r.retries = rd.u64();
    r.slicesInterpolated = rd.u64();
    const uint64_t interp = rd.u64();
    for (uint64_t i = 0; rd.ok && i < interp; ++i)
        r.interpolatedSlices.push_back(rd.u64());
    r.slicesUnrecoverable = rd.u64();
    r.faultsInjected = rd.u64();
    r.faultsDetected = rd.u64();
    r.qcConfidence = rd.d();
    r.degraded = rd.u8();

    scope::CampaignCost &c = r.campaign;
    c.slices = rd.u64();
    c.pixelsPerImage = rd.d();
    c.millSecondsPerSlice = rd.d();
    c.imageSecondsPerSlice = rd.d();
    c.secondsPerSlice = rd.d();
    c.reimagedSlices = rd.u64();
    c.retryHours = rd.d();
    c.totalHours = rd.d();

    core::SiliconDefectReport &sd = r.siliconDefects;
    const uint64_t planted = rd.u64();
    for (uint64_t i = 0; rd.ok && i < planted; ++i) {
        core::DefectOutcome out;
        out.planted.kind = static_cast<fab::DefectKind>(rd.u64());
        out.planted.footprint = rd.rect();
        out.planted.bitlineA = rd.i64();
        out.planted.bitlineB = rd.i64();
        out.detected = rd.u8();
        sd.planted.push_back(out);
    }
    const uint64_t detected = rd.u64();
    for (uint64_t i = 0; rd.ok && i < detected; ++i) {
        re::DetectedDefect d;
        d.kind = static_cast<fab::DefectKind>(rd.u64());
        d.where = rd.rect();
        d.bitlineA = rd.i64();
        d.bitlineB = rd.i64();
        sd.detected.push_back(d);
    }
    sd.matched = rd.u64();
    sd.spurious = rd.u64();

    re::RegionAnalysis &a = r.analysis;
    a.topology = static_cast<models::Topology>(rd.u64());
    a.commonGateStrips = rd.u64();
    const uint64_t bitlines = rd.u64();
    for (uint64_t i = 0; rd.ok && i < bitlines; ++i)
        a.bitlines.push_back(rd.rect());
    const uint64_t devices = rd.u64();
    for (uint64_t i = 0; rd.ok && i < devices; ++i) {
        re::ExtractedDevice dev;
        dev.role = static_cast<models::Role>(rd.u64());
        dev.gate = rd.rect();
        dev.wNm = rd.d();
        dev.lNm = rd.d();
        dev.bitline = rd.i64();
        dev.couplesTo = rd.i64();
        a.devices.push_back(dev);
    }
    const uint64_t adefects = rd.u64();
    for (uint64_t i = 0; rd.ok && i < adefects; ++i) {
        re::DetectedDefect d;
        d.kind = static_cast<fab::DefectKind>(rd.u64());
        d.where = rd.rect();
        d.bitlineA = rd.i64();
        d.bitlineB = rd.i64();
        a.defects.push_back(d);
    }

    const uint64_t audit = rd.u64();
    for (uint64_t i = 0; rd.ok && i < audit; ++i) {
        scope::SliceDecision dec;
        dec.slice = rd.u64();
        dec.injectedFault = static_cast<int>(rd.i64());
        dec.accepted = rd.u8();
        dec.interpolated = rd.u8();
        dec.unrecoverable = rd.u8();
        const uint64_t attempts = rd.u64();
        for (uint64_t j = 0; rd.ok && j < attempts; ++j) {
            scope::QcAttemptRecord att;
            att.attempt = rd.u64();
            att.fault = static_cast<int>(rd.i64());
            att.contentConfirmed = rd.u8();
            att.accepted = rd.u8();
            image::QcMetrics &m = att.metrics;
            m.snr = rd.d();
            m.focusScore = rd.d();
            m.saturationFraction = rd.d();
            m.deadRowFraction = rd.d();
            m.stripeScore = rd.d();
            m.miVsPrev = rd.d();
            m.shiftX = static_cast<long>(rd.i64());
            m.shiftY = static_cast<long>(rd.i64());
            m.flags = static_cast<unsigned>(rd.u64());
            dec.attempts.push_back(att);
        }
        r.qcAudit.push_back(dec);
    }
    return r;
}

// ---- Artifacts ----------------------------------------------------

void
writeImage(Writer &w, const image::Image2D &img)
{
    w.u64(img.width());
    w.u64(img.height());
    w.floats(img.data());
}

image::Image2D
readImage(Reader &rd)
{
    const uint64_t width = rd.u64();
    const uint64_t height = rd.u64();
    std::vector<float> data = rd.floats();
    if (!rd.ok || data.size() != width * height) {
        rd.ok = false;
        return {};
    }
    image::Image2D img(width, height);
    img.data() = std::move(data);
    return img;
}

void
writeVolume(Writer &w, const image::Volume3D &v)
{
    w.u64(v.nx());
    w.u64(v.ny());
    w.u64(v.nz());
    const size_t n = v.nx() * v.ny() * v.nz();
    w.u64(n);
    w.out.append(reinterpret_cast<const char *>(v.data()),
                 n * sizeof(float));
}

std::shared_ptr<image::Volume3D>
readVolume(Reader &rd)
{
    const uint64_t nx = rd.u64();
    const uint64_t ny = rd.u64();
    const uint64_t nz = rd.u64();
    std::vector<float> data = rd.floats();
    if (!rd.ok || data.size() != nx * ny * nz) {
        rd.ok = false;
        return nullptr;
    }
    auto v = std::make_shared<image::Volume3D>(nx, ny, nz);
    for (size_t x = 0; x < nx; ++x)
        for (size_t y = 0; y < ny; ++y)
            for (size_t z = 0; z < nz; ++z)
                v->at(x, y, z) = data[(z * ny + y) * nx + x];
    return v;
}

/// Per-slice metadata shared by the inline and tiled stack formats.
void
writeStackMeta(Writer &w, const image::SliceStack &s)
{
    w.u64(s.trueDrift.size());
    for (const auto &[dy, dz] : s.trueDrift) {
        w.i64(dy);
        w.i64(dz);
    }
    w.u64(s.provenance.size());
    for (const auto &p : s.provenance) {
        w.i64(p.injectedFault);
        w.u8(p.firstAttemptFlagged);
        w.u64(p.firstAttemptFlags);
        w.u64(p.attempts);
        w.i64(p.acceptedFault);
        w.u8(p.accepted);
        w.u8(p.interpolated);
        w.u8(p.unrecoverable);
    }
    w.d(s.sliceThicknessNm);
    w.d(s.pixelResolutionNm);
}

void
writeStack(Writer &w, const image::SliceStack &s)
{
    w.u64(s.slices.size());
    for (const auto &img : s.slices)
        writeImage(w, img);
    writeStackMeta(w, s);
}

void
readStackMeta(Reader &rd, image::SliceStack &s)
{
    const uint64_t drifts = rd.u64();
    for (uint64_t i = 0; rd.ok && i < drifts; ++i) {
        const long dy = static_cast<long>(rd.i64());
        const long dz = static_cast<long>(rd.i64());
        s.trueDrift.emplace_back(dy, dz);
    }
    const uint64_t prov = rd.u64();
    for (uint64_t i = 0; rd.ok && i < prov; ++i) {
        image::SliceProvenance p;
        p.injectedFault = static_cast<int>(rd.i64());
        p.firstAttemptFlagged = rd.u8();
        p.firstAttemptFlags = static_cast<unsigned>(rd.u64());
        p.attempts = rd.u64();
        p.acceptedFault = static_cast<int>(rd.i64());
        p.accepted = rd.u8();
        p.interpolated = rd.u8();
        p.unrecoverable = rd.u8();
        s.provenance.push_back(p);
    }
    s.sliceThicknessNm = rd.d();
    s.pixelResolutionNm = rd.d();
}

std::shared_ptr<image::SliceStack>
readStack(Reader &rd)
{
    auto s = std::make_shared<image::SliceStack>();
    const uint64_t slices = rd.u64();
    for (uint64_t i = 0; rd.ok && i < slices; ++i)
        s->slices.push_back(readImage(rd));
    readStackMeta(rd, *s);
    return rd.ok ? s : nullptr;
}

/// Artifact tags (which stage payload follows the report).
enum ArtifactTag : uint8_t
{
    kArtifactNone = 0,
    kArtifactMaterials = 1,
    kArtifactStack = 2,
    kArtifactProcessed = 3,

    /// v2 only: the postprocessed volume stays tiled across the
    /// resume (stageAnalyze re-pins it from the store on demand).
    kArtifactProcessedTiled = 4,
};

// ---- Tiled (v2) artifacts ------------------------------------------
// Voxels live in the content-addressed tile store; the checkpoint
// image holds dimensions + tile digests.  A corrupted or missing tile
// surfaces as DataLoss when fetched — the same taxonomy as a torn
// checkpoint file, and never a silent resume.

/// The store owns tile durability; a digest it cannot serve while a
/// checkpoint references it is lost data, not a lookup miss.
common::Error
asTileLoss(common::Error err)
{
    if (err.code == common::ErrorCode::NotFound)
        err.code = common::ErrorCode::DataLoss;
    err.message = "checkpoint: " + err.message;
    return err;
}

void
writeTileGrid(Writer &w, size_t nx, size_t ny, size_t nz, size_t edge,
              const std::vector<uint64_t> &digests)
{
    w.u64(nx);
    w.u64(ny);
    w.u64(nz);
    w.u64(edge);
    w.u64(digests.size());
    for (const uint64_t d : digests)
        w.u64(d);
}

std::optional<common::Error>
writeVolumeTiled(Writer &w, const image::Volume3D &v,
                 image::TileStore &tiles)
{
    auto tiled = image::TiledVolume3D::fromDense(v, tiles);
    if (!tiled.ok())
        return tiled.error();
    image::TiledVolume3D tv = tiled.takeValue();
    auto digests = tv.digests();
    if (!digests.ok())
        return digests.error();
    writeTileGrid(w, v.nx(), v.ny(), v.nz(), tv.tileEdge(),
                  digests.value());
    return std::nullopt;
}

common::Result<image::TiledVolume3D>
readTiledVolume(Reader &rd, image::TileStore &tiles)
{
    using R = common::Result<image::TiledVolume3D>;
    const uint64_t nx = rd.u64();
    const uint64_t ny = rd.u64();
    const uint64_t nz = rd.u64();
    const uint64_t edge = rd.u64();
    const uint64_t count = rd.u64();
    if (!rd.ok || count > rd.in.size())
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: truncated tile grid");
    std::vector<uint64_t> digests;
    digests.reserve(count);
    for (uint64_t i = 0; rd.ok && i < count; ++i)
        digests.push_back(rd.u64());
    if (!rd.ok)
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: truncated tile grid");
    auto tv = image::TiledVolume3D::fromDigests(
        nx, ny, nz, edge, std::move(digests), tiles);
    if (!tv.ok())
        return R(asTileLoss(tv.error()));
    return tv;
}

common::Result<std::shared_ptr<image::Volume3D>>
readVolumeTiled(Reader &rd, image::TileStore &tiles)
{
    using R = common::Result<std::shared_ptr<image::Volume3D>>;
    auto tv = readTiledVolume(rd, tiles);
    if (!tv.ok())
        return R(tv.error());
    auto dense = tv.value().toDense();
    if (!dense.ok())
        return R(asTileLoss(dense.error()));
    return R(std::make_shared<image::Volume3D>(dense.takeValue()));
}

std::optional<common::Error>
writeStackTiled(Writer &w, const image::SliceStack &s,
                image::TileStore &tiles)
{
    w.u64(s.slices.size());
    for (const auto &img : s.slices) {
        w.u64(img.width());
        w.u64(img.height());
        auto digest = tiles.put(img.data());
        if (!digest.ok())
            return digest.error();
        w.u64(digest.value());
    }
    writeStackMeta(w, s);
    return std::nullopt;
}

common::Result<std::shared_ptr<image::SliceStack>>
readStackTiled(Reader &rd, image::TileStore &tiles)
{
    using R = common::Result<std::shared_ptr<image::SliceStack>>;
    auto s = std::make_shared<image::SliceStack>();
    const uint64_t slices = rd.u64();
    if (!rd.ok || slices > rd.in.size())
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: truncated stack");
    for (uint64_t i = 0; rd.ok && i < slices; ++i) {
        const uint64_t width = rd.u64();
        const uint64_t height = rd.u64();
        const uint64_t digest = rd.u64();
        if (!rd.ok)
            break;
        auto tile = tiles.fetch(digest);
        if (!tile.ok())
            return R(asTileLoss(tile.error()));
        if (tile.value().size() != width * height)
            return R::failure(
                common::ErrorCode::DataLoss,
                "checkpoint: slice tile size mismatch (expected " +
                    std::to_string(width * height) + " floats, got " +
                    std::to_string(tile.value().size()) + ")");
        image::Image2D img(width, height);
        img.data() = *tile.value();
        s->slices.push_back(std::move(img));
    }
    readStackMeta(rd, *s);
    if (!rd.ok)
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: truncated stack");
    return R(std::move(s));
}

} // namespace

uint64_t
configDigest(const core::PipelineConfig &config)
{
    Writer w;
    writeConfigIdentity(w, config);
    return fnv(w.out.data(), w.out.size());
}

uint64_t
fabDigest(const core::PipelineConfig &config)
{
    Writer w;
    writeFabIdentity(w, config);
    return fnv(w.out.data(), w.out.size());
}

std::string
encodeCheckpoint(const core::PipelineConfig &config,
                 const core::StagedState &state)
{
    Writer w;
    w.u64(kMagic);
    w.u32(kVersion);
    w.u64(configDigest(config));
    w.u32(static_cast<uint32_t>(state.next));
    w.d(state.voxelNm);
    w.d(state.sliceThicknessNm);
    writeReport(w, state.report);

    switch (state.next) {
      case core::Stage::Acquire:
        w.u8(kArtifactMaterials);
        writeVolume(w, *state.materials);
        break;
      case core::Stage::Postprocess:
        w.u8(kArtifactStack);
        writeStack(w, *state.stack);
        break;
      case core::Stage::Analyze:
        if (state.processed) {
            w.u8(kArtifactProcessed);
            writeVolume(w, *state.processed);
        } else if (state.processedTiled) {
            // A tiled artifact in a v1 image has to be materialized;
            // callers on the memory-budgeted path should pass a tile
            // store and get the v2 encoding instead.
            auto dense = state.processedTiled->toDense();
            if (dense.ok()) {
                w.u8(kArtifactProcessed);
                writeVolume(w, dense.value());
            } else {
                w.u8(kArtifactNone);
            }
        } else {
            w.u8(kArtifactNone);
        }
        break;
      default:
        w.u8(kArtifactNone);
        break;
    }

    w.u64(fnv(w.out.data(), w.out.size()));
    return std::move(w.out);
}

common::Result<std::string>
encodeCheckpoint(const core::PipelineConfig &config,
                 const core::StagedState &state,
                 const std::shared_ptr<image::TileStore> &tiles)
{
    using R = common::Result<std::string>;
    if (!tiles)
        return R(encodeCheckpoint(config, state));

    Writer w;
    w.u64(kMagic);
    w.u32(kVersionTiled);
    w.u64(configDigest(config));
    w.u32(static_cast<uint32_t>(state.next));
    w.d(state.voxelNm);
    w.d(state.sliceThicknessNm);
    writeReport(w, state.report);

    switch (state.next) {
      case core::Stage::Acquire:
        w.u8(kArtifactMaterials);
        if (auto err = writeVolumeTiled(w, *state.materials, *tiles))
            return R(*err);
        break;
      case core::Stage::Postprocess:
        w.u8(kArtifactStack);
        if (auto err = writeStackTiled(w, *state.stack, *tiles))
            return R(*err);
        break;
      case core::Stage::Analyze:
        w.u8(kArtifactProcessedTiled);
        if (state.processedTiled) {
            // Usually already sealed into this very store (the
            // service installs its store as state.tileStore before
            // the stages run); only digests a *different* store
            // produced need rehydrating through a dense round trip.
            auto digests = state.processedTiled->digests();
            if (!digests.ok())
                return R(digests.error());
            bool all_here = true;
            for (const uint64_t d : digests.value())
                all_here = all_here && tiles->contains(d);
            if (all_here) {
                writeTileGrid(w, state.processedTiled->nx(),
                              state.processedTiled->ny(),
                              state.processedTiled->nz(),
                              state.processedTiled->tileEdge(),
                              digests.value());
            } else {
                auto dense = state.processedTiled->toDense();
                if (!dense.ok())
                    return R(dense.error());
                if (auto err =
                        writeVolumeTiled(w, dense.value(), *tiles))
                    return R(*err);
            }
        } else {
            if (auto err =
                    writeVolumeTiled(w, *state.processed, *tiles))
                return R(*err);
        }
        break;
      default:
        w.u8(kArtifactNone);
        break;
    }

    w.u64(fnv(w.out.data(), w.out.size()));
    return R(std::move(w.out));
}

common::Result<core::StagedState>
decodeCheckpoint(const std::string &bytes,
                 const core::PipelineConfig &config,
                 const std::shared_ptr<image::TileStore> &tiles)
{
    using R = common::Result<core::StagedState>;
    if (bytes.size() < sizeof(uint64_t) * 3)
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: truncated file");
    uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
                sizeof(stored));
    if (fnv(bytes.data(), bytes.size() - sizeof(stored)) != stored)
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: payload digest mismatch "
                          "(torn or corrupted file)");

    Reader rd(bytes);
    if (rd.u64() != kMagic)
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: bad magic");
    const uint32_t version = rd.u32();
    if (version != kVersion && version != kVersionTiled)
        return R::failure(common::ErrorCode::FailedPrecondition,
                          "checkpoint: unsupported version");
    if (version == kVersionTiled && !tiles)
        return R::failure(common::ErrorCode::FailedPrecondition,
                          "checkpoint: tile-referencing image needs "
                          "a tile store to decode");
    if (rd.u64() != configDigest(config))
        return R::failure(common::ErrorCode::FailedPrecondition,
                          "checkpoint: written under a different "
                          "configuration");

    core::StagedState state;
    state.next = static_cast<core::Stage>(rd.u32());
    if (state.next > core::Stage::Done)
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: stage cursor out of range");
    state.voxelNm = rd.d();
    state.sliceThicknessNm = rd.d();
    state.report = readReport(rd);

    const uint8_t tag = rd.u8();
    const bool tiled = version == kVersionTiled;
    switch (tag) {
      case kArtifactNone:
        break;
      case kArtifactMaterials:
        if (tiled) {
            auto v = readVolumeTiled(rd, *tiles);
            if (!v.ok())
                return R(v.error());
            state.materials = v.takeValue();
        } else {
            state.materials = readVolume(rd);
        }
        break;
      case kArtifactStack:
        if (tiled) {
            auto s = readStackTiled(rd, *tiles);
            if (!s.ok())
                return R(s.error());
            state.stack = s.takeValue();
        } else {
            state.stack = readStack(rd);
        }
        break;
      case kArtifactProcessed:
        state.processed = readVolume(rd);
        break;
      case kArtifactProcessedTiled: {
        if (!tiled)
            return R::failure(common::ErrorCode::DataLoss,
                              "checkpoint: tiled artifact tag in a "
                              "v1 image");
        // Resume re-pins: the volume references the store's tiles
        // and fetches them when the Analyze stage reads, instead of
        // re-reading every voxel here.
        auto tv = readTiledVolume(rd, *tiles);
        if (!tv.ok())
            return R(tv.error());
        state.processedTiled =
            std::make_shared<image::TiledVolume3D>(tv.takeValue());
        state.tileStore = tiles;
        break;
      }
      default:
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: unknown artifact tag");
    }
    if (!rd.ok)
        return R::failure(common::ErrorCode::DataLoss,
                          "checkpoint: truncated payload");
    return R(std::move(state));
}

std::optional<common::Error>
saveCheckpoint(const std::string &path,
               const core::PipelineConfig &config,
               const core::StagedState &state,
               const std::shared_ptr<image::TileStore> &tiles)
{
    auto encoded = encodeCheckpoint(config, state, tiles);
    if (!encoded.ok())
        return encoded.error();
    const std::string bytes = encoded.takeValue();
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return common::Error{common::ErrorCode::Internal,
                                 "checkpoint: cannot open " + tmp};
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out)
            return common::Error{common::ErrorCode::Internal,
                                 "checkpoint: short write to " + tmp};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return common::Error{common::ErrorCode::Internal,
                             "checkpoint: rename to " + path +
                                 " failed"};
    return std::nullopt;
}

common::Result<core::StagedState>
loadCheckpoint(const std::string &path,
               const core::PipelineConfig &config,
               const std::shared_ptr<image::TileStore> &tiles)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return common::Result<core::StagedState>::failure(
            common::ErrorCode::NotFound,
            "checkpoint: no file at " + path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return decodeCheckpoint(bytes, config, tiles);
}

void
removeCheckpoint(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

} // namespace service
} // namespace hifi
