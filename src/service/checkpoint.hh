/**
 * @file
 * Crash-safe checkpointing of staged pipeline runs.
 *
 * After every completed stage the campaign service serializes the
 * `core::StagedState` — stage cursor, partial report, and the one
 * intermediate artifact the remaining stages still need — to a binary
 * checkpoint file, written atomically (temp file + rename).  A service
 * killed mid-job reloads the newest checkpoint on restart and replays
 * only the unfinished stages; because every stage is a pure function
 * of (config, state), the resumed run's report is bitwise-identical
 * to an uninterrupted one (asserted by tests/test_service.cc).
 *
 * Two digests guard a load: the config identity digest (the
 * result-affecting configuration fields) rejects a checkpoint written
 * under a different job configuration, and a trailing FNV-1a payload
 * digest rejects torn or corrupted files.  Both failures come back as
 * typed errors, never as garbage state.
 */

#ifndef HIFI_SERVICE_CHECKPOINT_HH
#define HIFI_SERVICE_CHECKPOINT_HH

#include <memory>
#include <string>

#include "core/stages.hh"
#include "image/tile_store.hh"

namespace hifi
{
namespace service
{

/**
 * Digest of the result-affecting configuration fields: everything a
 * stage body reads (chip, geometry, seed, corner, defects, fault and
 * recovery policies, denoise, overrides) and nothing purely
 * operational (threads, telemetry sinks).  Two configs with equal
 * digests produce bitwise-identical reports, so this is both the
 * checkpoint-compatibility check and the fab-cache key.
 */
uint64_t configDigest(const core::PipelineConfig &config);

/// Fab-stage identity: the configDigest fields that the Fab stage
/// depends on (acquisition/postprocess knobs excluded).  Equal fab
/// digests mean an identical post-Fab state — the service's
/// content-addressed volume cache keys on this.
uint64_t fabDigest(const core::PipelineConfig &config);

/**
 * Serialize `state` for `config` into a byte string (the in-memory
 * checkpoint image).  Serializes only the artifact the cursor still
 * needs, so the image shrinks as the run progresses.  This is the
 * self-contained v1 image: artifact voxels are embedded inline.
 */
std::string encodeCheckpoint(const core::PipelineConfig &config,
                             const core::StagedState &state);

/**
 * Tile-referencing (v2) encoding: artifact voxels are sealed into
 * `tiles` (content-addressed, deduplicated across saves) and the
 * checkpoint image stores only their digests, so repeated saves of
 * an unchanged artifact write almost nothing and the image stays
 * small at every stage.  Typed errors on store I/O failures.
 */
common::Result<std::string>
encodeCheckpoint(const core::PipelineConfig &config,
                 const core::StagedState &state,
                 const std::shared_ptr<image::TileStore> &tiles);

/**
 * Decode a checkpoint image back into a StagedState, verifying the
 * payload digest and the config identity.  Typed failures:
 * DataLoss for truncation/corruption — including a referenced tile
 * that is missing, truncated or fails its digest check —
 * FailedPrecondition for a config mismatch, an unsupported version,
 * or a tile-referencing (v2) image decoded without a tile store.
 * A decoded tiled artifact re-pins lazily: tiles are verified and
 * fetched when the resumed stage reads them, not eagerly here.
 */
common::Result<core::StagedState>
decodeCheckpoint(const std::string &bytes,
                 const core::PipelineConfig &config,
                 const std::shared_ptr<image::TileStore> &tiles = {});

/**
 * Atomically write the checkpoint for (config, state) to `path`:
 * the image is written to "<path>.tmp" and renamed over `path`, so a
 * crash mid-write leaves either the previous checkpoint or none —
 * never a torn file.  With `tiles` the v2 tile-referencing encoding
 * is used.  Typed Internal error on I/O failure.
 */
std::optional<common::Error>
saveCheckpoint(const std::string &path,
               const core::PipelineConfig &config,
               const core::StagedState &state,
               const std::shared_ptr<image::TileStore> &tiles = {});

/**
 * Load and decode the checkpoint at `path`.  NotFound when the file
 * does not exist (callers treat that as "start from scratch"),
 * otherwise the decodeCheckpoint failure taxonomy.
 */
common::Result<core::StagedState>
loadCheckpoint(const std::string &path,
               const core::PipelineConfig &config,
               const std::shared_ptr<image::TileStore> &tiles = {});

/// Remove a checkpoint file if present (best-effort; used after a
/// job completes so a rerun starts fresh).
void removeCheckpoint(const std::string &path);

} // namespace service
} // namespace hifi

#endif // HIFI_SERVICE_CHECKPOINT_HH
