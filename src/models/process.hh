/**
 * @file
 * Process accounting derived from the chip geometry: feature size F
 * (the open-bitline 6F^2 cell has a 2F bitline pitch), cell area,
 * cells per MAT, and the implied chip capacity.
 *
 * The datasets are calibrated to the paper's area aggregates (see
 * DESIGN.md section 4), so the implied capacity carries a documented
 * slack against the nominal Table I capacity: redundancy, on-die ECC
 * (DDR5), dummy structures and the calibration itself.  This module
 * makes that slack visible and bounded instead of hidden.
 */

#ifndef HIFI_MODELS_PROCESS_HH
#define HIFI_MODELS_PROCESS_HH

#include "models/chip_data.hh"

namespace hifi
{
namespace models
{

/** Derived process numbers for one chip. */
struct ProcessInfo
{
    double featureNm = 0.0;   ///< F = bitline pitch / 2
    double cellAreaNm2 = 0.0; ///< 6 F^2
    double wlPitchNm = 0.0;   ///< 3 F

    size_t bitlinesPerMat = 0;
    size_t rowsPerMat = 0;
    double cellsPerMat = 0.0;

    /// Capacity implied by MATs * cells per MAT, in Gbit.
    double impliedGbit = 0.0;

    /// impliedGbit / nominal capacity; the usable fraction after
    /// redundancy/ECC/dummy accounting.
    double capacityRatio = 0.0;
};

/// Derive the process numbers for a chip.
ProcessInfo processInfo(const ChipSpec &chip);

} // namespace models
} // namespace hifi

#endif // HIFI_MODELS_PROCESS_HH
