/**
 * @file
 * Process accounting derived from the chip geometry: feature size F
 * (the open-bitline 6F^2 cell has a 2F bitline pitch), cell area,
 * cells per MAT, and the implied chip capacity.
 *
 * The datasets are calibrated to the paper's area aggregates (see
 * DESIGN.md section 4), so the implied capacity carries a documented
 * slack against the nominal Table I capacity: redundancy, on-die ECC
 * (DDR5), dummy structures and the calibration itself.  This module
 * makes that slack visible and bounded instead of hidden.
 */

#ifndef HIFI_MODELS_PROCESS_HH
#define HIFI_MODELS_PROCESS_HH

#include "models/chip_data.hh"

namespace hifi
{
namespace models
{

/**
 * Process corner of a fabricated wafer.  Typical is the nominal
 * (clean) process the calibrated chip tables describe; Slow and Fast
 * are the classic worst-case corners where drawn critical dimensions
 * come out systematically larger (slow transistors) or smaller (fast)
 * and line-edge roughness grows.
 */
enum class ProcessCorner
{
    Slow = 0,
    Typical,
    Fast,
    NumCorners
};

const char *cornerName(ProcessCorner corner);

/**
 * Process-variation knobs for one fabricated region, derived from a
 * per-vendor corner preset (cornerVariation) or set directly by a
 * scenario generator.  All-zero variation reproduces the clean
 * deterministic fab bit-for-bit; every random draw the fields enable
 * is counter-seeded, so any scenario is a pure function of
 * (seed, params).
 */
struct CornerVariation
{
    ProcessCorner corner = ProcessCorner::Typical;

    /// Systematic critical-dimension bias as a fraction of the drawn
    /// dimension (slow corner > 0, fast corner < 0).
    double cdBiasFrac = 0.0;

    /// Random per-device CD sigma as a fraction of the drawn value.
    double cdSigmaFrac = 0.0;

    /// Line-edge roughness amplitude (nm, 1 sigma) applied by the
    /// voxelizer; scaled per material by fab::lerScale.
    double lerSigmaNm = 0.0;

    /// LER correlation length along an edge (nm).
    double lerCorrLenNm = 40.0;

    /// Cross-wafer CD drift: total fractional CD change across the
    /// region along X (the drawn value at x is scaled by
    /// 1 + cdDriftFracAcross * (x/width - 0.5)).
    double cdDriftFracAcross = 0.0;

    /// Declared measurement-tolerance multiplier for this corner;
    /// re::dimensionToleranceNm folds it into the pipeline tolerance.
    double measureTolScale = 1.0;

    bool enabled() const
    {
        return cdBiasFrac != 0.0 || cdSigmaFrac != 0.0 ||
            lerSigmaNm != 0.0 || cdDriftFracAcross != 0.0;
    }
};

/**
 * Per-vendor corner preset (Section IV-B observes vendor-dependent
 * process behaviour: vendor B/C materials image differently "likely
 * due to manufacturing processes"; the presets give them slightly
 * rougher corners).  Typical is the clean nominal process — all
 * variation off — so existing pipelines stay bit-identical.
 */
CornerVariation cornerVariation(char vendor, ProcessCorner corner);

/** Derived process numbers for one chip. */
struct ProcessInfo
{
    double featureNm = 0.0;   ///< F = bitline pitch / 2
    double cellAreaNm2 = 0.0; ///< 6 F^2
    double wlPitchNm = 0.0;   ///< 3 F

    size_t bitlinesPerMat = 0;
    size_t rowsPerMat = 0;
    double cellsPerMat = 0.0;

    /// Capacity implied by MATs * cells per MAT, in Gbit.
    double impliedGbit = 0.0;

    /// impliedGbit / nominal capacity; the usable fraction after
    /// redundancy/ECC/dummy accounting.
    double capacityRatio = 0.0;
};

/// Derive the process numbers for a chip.
ProcessInfo processInfo(const ChipSpec &chip);

/**
 * Corner-aware derivation: the CD bias of the corner widens (slow) or
 * shrinks (fast) the feature size and everything derived from it,
 * modelling what the same mask set yields at that corner.
 */
ProcessInfo processInfo(const ChipSpec &chip,
                        const CornerVariation &variation);

} // namespace models
} // namespace hifi

#endif // HIFI_MODELS_PROCESS_HH
