/**
 * @file
 * Metadata for the 13 audited research papers (Table II): identifying
 * information, the inaccuracies I1-I5 they exhibit, their original
 * overhead estimate, and which Appendix-B overhead formula applies.
 */

#ifndef HIFI_MODELS_PAPERS_HH
#define HIFI_MODELS_PAPERS_HH

#include <string>
#include <vector>

namespace hifi
{
namespace models
{

/// Sources of research inaccuracy (Section VI-B).
enum class Inaccuracy
{
    I1, ///< no free space for bitlines in the MAT
    I2, ///< no free space for bitlines in the SA region
    I3, ///< assuming an SA circuitry that is not deployed
    I4, ///< assuming an SA physical layout that is not deployed
    I5, ///< not considering offset-cancellation topologies
};

/// Which Appendix-B P_extra formula a paper uses.
enum class OverheadFormula
{
    /// I1/I2 papers: the region (MAT + SA) effectively doubles.
    DoubleArray,

    /// REGA on vendors B and C: one new bitline every three.
    ThirdArray,

    /// REGA on vendor A chips (M2 slack, Appendix A):
    /// MATs * SA_w * (2 iso_ls + 8 (san_ws + sap_ws) / 6).
    RegaTransistor,

    /// R.B. DEC: MATs * SA_w * 2 iso_ls.
    IsolationOnly,

    /// Nov. DRAM: MATs * SA_w * (2 iso_ls + 2 col_ws +
    /// 8 (san_ws + sap_ws)).
    IsoColumnSa,

    /// PF-DRAM: MATs * SA_w * (4 iso_ls + 8 (san_ws + sap_ws)).
    IsoSaImbalancer,

    /// CHARM: MATs * SA_w * SA_h / 4 + 1% of the chip.
    AspectRatio,
};

/** One audited paper. */
struct ResearchPaper
{
    std::string name;    ///< short name used in Table II
    std::string venue;   ///< for the report output
    int year = 0;
    int ddr = 4;         ///< technology the paper evaluated on (3 or 4)

    std::vector<Inaccuracy> inaccuracies;

    /// Original overhead estimate P_oe (fraction of the chip).
    double originalEstimate = 0.0;

    OverheadFormula formula = OverheadFormula::DoubleArray;

    /// Values Table II reports, for EXPERIMENTS.md comparison.
    /// NaN means N/A (paper older than DDR4: only porting applies).
    double paperError = 0.0;
    double paperPortingCost = 0.0;
};

/// All 13 papers in Table II order.
const std::vector<ResearchPaper> &allPapers();

/// Lookup by short name; throws std::out_of_range when missing.
const ResearchPaper &paper(const std::string &name);

/// "I1,2,5"-style rendering of a paper's inaccuracy list.
std::string inaccuracyLabel(const ResearchPaper &paper);

} // namespace models
} // namespace hifi

#endif // HIFI_MODELS_PAPERS_HH
