/**
 * @file
 * Measured chip datasets: the six studied DDR4/DDR5 chips (Table I) and
 * their reverse-engineered geometry (Sections IV-V).
 *
 * The paper publishes aggregate statistics rather than the raw 835
 * measurements, so the per-chip values below are *calibrated*: they are
 * chosen so that the analysis code in src/eval reproduces every
 * aggregate the paper reports.  The anchors, each pinned by a specific
 * paper statistic, are documented next to the constants in
 * chip_data.cc, e.g.:
 *
 *  - DDR4 (MAT+SA)/die fraction averages 0.704 (CoolDRAM's 175x error
 *    from its 0.4% estimate) and MAT/die averages 0.57 ("57% chip
 *    overhead solely for the MAT extension");
 *  - DDR5 (MAT+SA)/die averages 0.676 (CoolDRAM porting cost 168x);
 *  - C4's precharge devices make CROW's width error 938% ("9x") and
 *    its W/L error 562%;
 *  - C4's equalizer makes REM's max length error 101%;
 *  - the MAT-to-SA transition averages 318 nm (DDR4) / 275 nm (DDR5).
 */

#ifndef HIFI_MODELS_CHIP_DATA_HH
#define HIFI_MODELS_CHIP_DATA_HH

#include <optional>
#include <string>
#include <vector>

namespace hifi
{
namespace models
{

/// Functional classes of SA-region transistors (Section V-A).
enum class Role
{
    Nsa = 0,    ///< NMOS latch pair
    Psa,        ///< PMOS latch pair
    Precharge,  ///< common-gate precharge devices
    Equalizer,  ///< classic chips only
    Column,     ///< column multiplexer (first after the MAT)
    Iso,        ///< OCSA isolation devices
    Oc,         ///< OCSA offset-cancellation devices
    Lsa,        ///< LIO sense latch (SA region, not SA circuit)
    NumRoles
};

const std::string &roleName(Role role);

/// SA topology deployed on a chip.
enum class Topology { Classic, Ocsa };

/// SEM detector used for a chip (Table I).
enum class Detector { Se, Bse };

/** Drawn transistor dimensions, nm. */
struct Dims
{
    double w = 0.0;
    double l = 0.0;

    double wOverL() const { return w / l; }
};

/** One studied chip. */
struct ChipSpec
{
    std::string id;       ///< "A4" .. "C5"
    char vendor = 'A';    ///< anonymized vendor letter
    int ddr = 4;          ///< DDR generation (4 or 5)
    int storageGbit = 8;
    int year = 2017;
    double dieAreaMm2 = 0.0;

    // Table I imaging metadata.
    Detector detector = Detector::Se;
    bool matsVisible = false; ///< MATs visible after decap

    /**
     * Relative SE contrast quality of this chip's materials
     * (Section IV-B: SE "does not provide a good contrast" for
     * vendors B and C, "likely due to manufacturing processes", so
     * the paper switched to BSE there).  1.0 = full SE contrast.
     */
    double seQuality = 1.0;
    double pixelResNm = 5.0;
    double sliceNm = 20.0;    ///< FIB slice thickness
    double dwellUs = 3.0;
    double roiAreaUm2 = 30.0;

    Topology topology = Topology::Classic;

    // Region geometry (nm unless noted). X runs along the bitlines
    // (SA height), Y along the MAT edge (SA width).
    size_t mats = 0;          ///< MATs per chip
    double matWidthNm = 0.0;  ///< MAT extent along Y
    double matHeightNm = 0.0; ///< MAT extent along X
    double saHeightNm = 0.0;  ///< SA region strip height (two SAs)
    double rowDriverWidthNm = 0.0; ///< W1 in Fig. 6 (< saHeight)

    double blPitchNm = 0.0;
    double blWidthNm = 0.0;
    double m2WidthNm = 0.0;      ///< ~8x the M1 bitline width
    double transitionNm = 0.0;   ///< MAT-to-SA bitline transition
    double wireHeightNm = 0.0;   ///< smallest wire height observed

    /// Drawn dimensions by role; absent roles are nullopt.
    std::optional<Dims> dims[static_cast<size_t>(Role::NumRoles)];

    const std::optional<Dims> &role(Role r) const
    {
        return dims[static_cast<size_t>(r)];
    }

    /**
     * Effective (layout) size of a role dimension: drawn size plus
     * spacing margins, snapped to a 5 nm grid.  The factor is 1.55 for
     * DDR4 and 1.50 for DDR5 (Section V-B "effective sizes").
     *
     * @param r      transistor role (must be present on this chip)
     * @param length true for the effective length, false for width
     */
    double effective(Role r, bool length) const;

    /**
     * Effective isolation length for overhead formulas.  Chips without
     * ISO devices use scaled precharge dimensions, following the
     * paper's rule in Section VI-C.
     */
    double isoEffectiveLength() const;

    double matAreaNm2() const { return matWidthNm * matHeightNm; }
    double saAreaNm2() const { return matWidthNm * saHeightNm; }
    double dieAreaNm2() const;

    /// MAT area fraction of the die (~0.57 avg on DDR4).
    double matFraction() const;

    /// SA-region area fraction of the die.
    double saFraction() const;

    /// (MAT + SA) fraction (~0.704 DDR4 / ~0.676 DDR5 on average).
    double arrayFraction() const { return matFraction() + saFraction(); }
};

/// All six studied chips, in Table I order (A4,B4,C4,A5,B5,C5).
const std::vector<ChipSpec> &allChips();

/// Lookup by id; throws std::out_of_range for unknown ids.
const ChipSpec &chip(const std::string &id);

/// Non-throwing lookup: nullptr for unknown ids (validation paths).
const ChipSpec *findChip(const std::string &id);

/// The chips of one DDR generation.
std::vector<const ChipSpec *> chipsOfGeneration(int ddr);

} // namespace models
} // namespace hifi

#endif // HIFI_MODELS_CHIP_DATA_HH
