#include "models/papers.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hifi
{
namespace models
{

namespace
{

constexpr double kNa = std::numeric_limits<double>::quiet_NaN();

ResearchPaper
make(const std::string &name, const std::string &venue, int year,
     int ddr, std::vector<Inaccuracy> inacc, double p_oe,
     OverheadFormula formula, double paper_error, double paper_port)
{
    ResearchPaper p;
    p.name = name;
    p.venue = venue;
    p.year = year;
    p.ddr = ddr;
    p.inaccuracies = std::move(inacc);
    p.originalEstimate = p_oe;
    p.formula = formula;
    p.paperError = paper_error;
    p.paperPortingCost = paper_port;
    return p;
}

std::vector<ResearchPaper>
buildPapers()
{
    using I = Inaccuracy;
    using F = OverheadFormula;
    std::vector<ResearchPaper> v;

    // Original overhead estimates (P_oe) for papers that did not state
    // one are back-derived so that the audit reproduces the Table II
    // error/porting values; CoolDRAM's 0.4% is stated in the paper.
    v.push_back(make("CHARM", "ISCA", 2013, 3, {I::I5}, 0.03230,
                     F::AspectRatio, kNa, 0.29));
    v.push_back(make("R.B. DEC.", "ISCA", 2014, 3, {I::I4, I::I5},
                     0.00276, F::IsolationOnly, kNa, -0.25));
    v.push_back(make("AMBIT", "MICRO", 2017, 3, {I::I1, I::I2, I::I5},
                     0.01000, F::DoubleArray, kNa, 68.0));
    v.push_back(make("DrACC", "DAC", 2018, 4, {I::I1, I::I2, I::I5},
                     0.01956, F::DoubleArray, 35.0, 34.0));
    v.push_back(make("Graphide", "GLSVLSI", 2019, 4,
                     {I::I1, I::I2, I::I5}, 0.01280, F::DoubleArray,
                     54.0, 52.0));
    v.push_back(make("In-Mem.Lowcost.", "TCAS-I", 2019, 4,
                     {I::I1, I::I2, I::I5}, 0.009915, F::DoubleArray,
                     70.0, 67.0));
    v.push_back(make("ELP2IM", "HPCA", 2020, 3, {I::I2, I::I3, I::I5},
                     0.00758, F::DoubleArray, kNa, 90.0));
    v.push_back(make("CLR-DRAM", "ISCA", 2020, 4, {I::I2, I::I5},
                     0.03060, F::DoubleArray, 22.0, 21.0));
    v.push_back(make("SIMDRAM", "ASPLOS", 2021, 4,
                     {I::I1, I::I2, I::I5}, 0.009915, F::DoubleArray,
                     70.0, 67.0));
    v.push_back(make("Nov. DRAM", "TCAS-II", 2021, 4, {I::I4, I::I5},
                     0.06244, F::IsoColumnSa, 0.49, 0.001));
    v.push_back(make("PF-DRAM", "ISCA", 2021, 4, {I::I5}, 0.05743,
                     F::IsoSaImbalancer, 0.35, -0.01));
    v.push_back(make("REGA", "S&P", 2023, 4, {I::I2, I::I4, I::I5},
                     0.01804, F::ThirdArray, 8.0, 7.0));
    v.push_back(make("CoolDRAM", "ISLPED", 2023, 4,
                     {I::I1, I::I2, I::I3, I::I5}, 0.00400,
                     F::DoubleArray, 175.0, 168.0));
    return v;
}

} // namespace

const std::vector<ResearchPaper> &
allPapers()
{
    static const std::vector<ResearchPaper> papers = buildPapers();
    return papers;
}

const ResearchPaper &
paper(const std::string &name)
{
    for (const auto &p : allPapers())
        if (p.name == name)
            return p;
    throw std::out_of_range("paper: unknown name " + name);
}

std::string
inaccuracyLabel(const ResearchPaper &paper)
{
    if (paper.inaccuracies.empty())
        return "-";
    std::ostringstream ss;
    ss << "I";
    bool first = true;
    for (const auto &i : paper.inaccuracies) {
        if (!first)
            ss << ",";
        ss << (static_cast<int>(i) + 1);
        first = false;
    }
    return ss.str();
}

} // namespace models
} // namespace hifi
