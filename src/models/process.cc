#include "models/process.hh"

#include <cmath>

namespace hifi
{
namespace models
{

const char *
cornerName(ProcessCorner corner)
{
    switch (corner) {
      case ProcessCorner::Slow:
        return "slow";
      case ProcessCorner::Typical:
        return "typical";
      case ProcessCorner::Fast:
        return "fast";
      default:
        return "unknown";
    }
}

CornerVariation
cornerVariation(char vendor, ProcessCorner corner)
{
    CornerVariation v;
    v.corner = corner;
    if (corner == ProcessCorner::Typical)
        return v; // nominal process: variation off, clean fab

    // Vendor roughness factor: vendor A runs the most mature process;
    // B and C (whose materials already image differently, §IV-B) get
    // progressively rougher corners.
    double rough = 1.0;
    if (vendor == 'B')
        rough = 1.2;
    else if (vendor == 'C')
        rough = 1.4;

    const double sign = corner == ProcessCorner::Slow ? 1.0 : -1.0;
    v.cdBiasFrac = sign * 0.03 * rough;
    v.cdSigmaFrac = 0.012 * rough;
    v.lerSigmaNm = 1.2 * rough;
    v.lerCorrLenNm = 40.0;
    v.cdDriftFracAcross = 0.02 * rough;
    v.measureTolScale = 1.0 + 0.35 * rough;
    return v;
}

ProcessInfo
processInfo(const ChipSpec &chip)
{
    ProcessInfo info;
    info.featureNm = chip.blPitchNm / 2.0;
    info.cellAreaNm2 = 6.0 * info.featureNm * info.featureNm;
    info.wlPitchNm = 3.0 * info.featureNm;

    info.bitlinesPerMat = static_cast<size_t>(
        chip.matWidthNm / chip.blPitchNm);
    info.rowsPerMat = static_cast<size_t>(
        chip.matHeightNm / info.wlPitchNm);
    info.cellsPerMat = static_cast<double>(info.bitlinesPerMat) *
        static_cast<double>(info.rowsPerMat);

    info.impliedGbit = static_cast<double>(chip.mats) *
        info.cellsPerMat / std::pow(2.0, 30);
    info.capacityRatio =
        info.impliedGbit / static_cast<double>(chip.storageGbit);
    return info;
}

ProcessInfo
processInfo(const ChipSpec &chip, const CornerVariation &variation)
{
    ProcessInfo info = processInfo(chip);
    const double scale = 1.0 + variation.cdBiasFrac;
    info.featureNm *= scale;
    info.cellAreaNm2 *= scale * scale;
    info.wlPitchNm *= scale;
    return info;
}

} // namespace models
} // namespace hifi
