#include "models/process.hh"

#include <cmath>

namespace hifi
{
namespace models
{

ProcessInfo
processInfo(const ChipSpec &chip)
{
    ProcessInfo info;
    info.featureNm = chip.blPitchNm / 2.0;
    info.cellAreaNm2 = 6.0 * info.featureNm * info.featureNm;
    info.wlPitchNm = 3.0 * info.featureNm;

    info.bitlinesPerMat = static_cast<size_t>(
        chip.matWidthNm / chip.blPitchNm);
    info.rowsPerMat = static_cast<size_t>(
        chip.matHeightNm / info.wlPitchNm);
    info.cellsPerMat = static_cast<double>(info.bitlinesPerMat) *
        static_cast<double>(info.rowsPerMat);

    info.impliedGbit = static_cast<double>(chip.mats) *
        info.cellsPerMat / std::pow(2.0, 30);
    info.capacityRatio =
        info.impliedGbit / static_cast<double>(chip.storageGbit);
    return info;
}

} // namespace models
} // namespace hifi
