/**
 * @file
 * Dataset export: the paper's core deliverable is the open data
 * (https://comsec.ethz.ch/hifi-dram).  This writes our calibrated
 * equivalents as CSV files a downstream user can load anywhere:
 * chip geometry, transistor dimensions (drawn + effective), the
 * public-model dimensions, and the audited-paper metadata.
 */

#ifndef HIFI_MODELS_EXPORT_HH
#define HIFI_MODELS_EXPORT_HH

#include <string>

namespace hifi
{
namespace models
{

/** Paths of the exported dataset files. */
struct DatasetFiles
{
    std::string chips;       ///< per-chip geometry and metadata
    std::string transistors; ///< per-role drawn + effective dims
    std::string publicModels;
    std::string papers;
};

/**
 * Write the four CSV files under `directory` (which must exist).
 * Returns the paths written.  Throws std::runtime_error on I/O
 * failure.
 */
DatasetFiles exportDataset(const std::string &directory);

} // namespace models
} // namespace hifi

#endif // HIFI_MODELS_EXPORT_HH
