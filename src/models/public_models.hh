/**
 * @file
 * The two public DDR4 sense-amplifier models evaluated in Section VI-A:
 * CROW (2019) with best-guess transistor dimensions and no column
 * transistors, and REM (2022) based on a smaller vendor's 25 nm
 * technology.  Neither models the OCSA topology.
 */

#ifndef HIFI_MODELS_PUBLIC_MODELS_HH
#define HIFI_MODELS_PUBLIC_MODELS_HH

#include <optional>
#include <string>
#include <vector>

#include "models/chip_data.hh"

namespace hifi
{
namespace models
{

/** A published analog DRAM SA model. */
struct PublicModel
{
    std::string name;
    int year = 0;
    std::string basis; ///< provenance note

    std::optional<Dims> dims[static_cast<size_t>(Role::NumRoles)];

    const std::optional<Dims> &role(Role r) const
    {
        return dims[static_cast<size_t>(r)];
    }
};

/// CROW [29]: best-guess dimensions, no column transistors.
const PublicModel &crowModel();

/// REM [68]: real 25 nm DDR4 dimensions from a smaller vendor.
const PublicModel &remModel();

/// Both models, CROW first.
std::vector<const PublicModel *> publicModels();

} // namespace models
} // namespace hifi

#endif // HIFI_MODELS_PUBLIC_MODELS_HH
