#include "models/chip_data.hh"

#include <cmath>
#include <stdexcept>

#include "common/units.hh"

namespace hifi
{
namespace models
{

const std::string &
roleName(Role role)
{
    static const std::string names[] = {
        "nSA", "pSA", "precharge", "equalizer", "column", "iso", "oc",
        "LSA",
    };
    return names[static_cast<size_t>(role)];
}

double
ChipSpec::effective(Role r, bool length) const
{
    const auto &d = role(r);
    if (!d)
        throw std::invalid_argument(
            "ChipSpec::effective: role " + roleName(r) +
            " absent on " + id);
    const double factor = (ddr == 4) ? 1.55 : 1.50;
    const double value = (length ? d->l : d->w) * factor;
    return std::floor(value / 5.0 + 0.5) * 5.0;
}

double
ChipSpec::isoEffectiveLength() const
{
    if (role(Role::Iso))
        return effective(Role::Iso, true);
    // Section VI-C: when no isolation transistor exists, scale from
    // the chip's precharge devices (also common-gate elements).
    return effective(Role::Precharge, true) * 1.4;
}

double
ChipSpec::dieAreaNm2() const
{
    return dieAreaMm2 * units::mm2;
}

double
ChipSpec::matFraction() const
{
    return static_cast<double>(mats) * matAreaNm2() / dieAreaNm2();
}

double
ChipSpec::saFraction() const
{
    return static_cast<double>(mats) * saAreaNm2() / dieAreaNm2();
}

namespace
{

void
setDims(ChipSpec &c, Role r, double w, double l)
{
    c.dims[static_cast<size_t>(r)] = Dims{w, l};
}

std::vector<ChipSpec>
buildChips()
{
    std::vector<ChipSpec> chips;

    // ---------------- A4: vendor A, DDR4, OCSA -----------------------
    {
        ChipSpec c;
        c.id = "A4";
        c.vendor = 'A';
        c.ddr = 4;
        c.storageGbit = 8;
        c.year = 2017;
        c.dieAreaMm2 = 34.0;
        c.detector = Detector::Se;
        c.matsVisible = true;
        c.pixelResNm = 10.4;
        c.sliceNm = 20.0;
        c.dwellUs = 3.0;
        c.roiAreaUm2 = 100.0;
        c.topology = Topology::Ocsa;
        // Area calibration: MAT fraction 0.575, SA fraction 0.135
        // (DDR4 averages 0.575 / 0.128, pinned by the 57% MAT-extension
        // figure and CoolDRAM's 175x).
        c.mats = 15068;
        c.matWidthNm = 42400.0;
        c.matHeightNm = 30600.0;
        c.saHeightNm = 7184.0;
        c.rowDriverWidthNm = 4200.0;
        c.blPitchNm = 39.0;
        c.blWidthNm = 26.0;
        c.m2WidthNm = 208.0;
        c.transitionNm = 330.0;
        c.wireHeightNm = 45.0;
        setDims(c, Role::Nsa, 210, 52);
        setDims(c, Role::Psa, 150, 48);
        setDims(c, Role::Precharge, 260, 39);
        setDims(c, Role::Column, 180, 38);
        setDims(c, Role::Iso, 300, 36);
        setDims(c, Role::Oc, 120, 40);
        setDims(c, Role::Lsa, 240, 45);
        chips.push_back(c);
    }

    // ---------------- B4: vendor B, DDR4, classic ---------------------
    {
        ChipSpec c;
        c.id = "B4";
        c.vendor = 'B';
        c.ddr = 4;
        c.storageGbit = 4;
        c.year = 2022;
        c.dieAreaMm2 = 48.0;
        c.detector = Detector::Bse;
        c.matsVisible = false;
        c.seQuality = 0.45;
        c.pixelResNm = 3.4;
        c.sliceNm = 20.0;
        c.dwellUs = 3.0;
        c.roiAreaUm2 = 30.0;
        c.topology = Topology::Classic;
        // B4 is a low-density 4 Gb part on an older node (hence the
        // classic SA): large MATs, large feature sizes.
        c.mats = 6336;
        c.matWidthNm = 78300.0;
        c.matHeightNm = 56600.0;
        c.saHeightNm = 12094.0;
        c.rowDriverWidthNm = 7000.0;
        c.blPitchNm = 72.0;
        c.blWidthNm = 48.0;
        c.m2WidthNm = 384.0;
        c.transitionNm = 312.0;
        c.wireHeightNm = 40.0;
        setDims(c, Role::Nsa, 260, 60);
        setDims(c, Role::Psa, 190, 55);
        setDims(c, Role::Precharge, 280, 42);
        setDims(c, Role::Equalizer, 250, 62);
        setDims(c, Role::Column, 220, 45);
        setDims(c, Role::Lsa, 300, 55);
        chips.push_back(c);
    }

    // ---------------- C4: vendor C, DDR4, classic ---------------------
    {
        ChipSpec c;
        c.id = "C4";
        c.vendor = 'C';
        c.ddr = 4;
        c.storageGbit = 8;
        c.year = 2018;
        c.dieAreaMm2 = 42.0;
        c.detector = Detector::Bse;
        c.matsVisible = true;
        c.seQuality = 0.50;
        c.pixelResNm = 5.0;
        c.sliceNm = 20.0;
        c.dwellUs = 6.0;
        c.roiAreaUm2 = 30.0;
        c.topology = Topology::Classic;
        c.mats = 17209;
        c.matWidthNm = 43500.0;
        c.matHeightNm = 31700.0;
        c.saHeightNm = 6901.0;
        c.rowDriverWidthNm = 4100.0;
        c.blPitchNm = 40.0;
        c.blWidthNm = 26.5;
        c.m2WidthNm = 212.0;
        c.transitionNm = 312.0;
        c.wireHeightNm = 38.0;
        // C4's precharge devices pin the models' headline errors:
        // CROW width 938% ("9x"), CROW W/L 562%; the equalizer pins
        // REM's max length error (101%).
        setDims(c, Role::Nsa, 190, 48);
        setDims(c, Role::Psa, 135, 46);
        setDims(c, Role::Precharge, 193, 29);
        setDims(c, Role::Equalizer, 170, 60);
        setDims(c, Role::Column, 170, 36);
        setDims(c, Role::Lsa, 230, 42);
        chips.push_back(c);
    }

    // ---------------- A5: vendor A, DDR5, OCSA -----------------------
    {
        ChipSpec c;
        c.id = "A5";
        c.vendor = 'A';
        c.ddr = 5;
        c.storageGbit = 16;
        c.year = 2021;
        c.dieAreaMm2 = 75.0;
        c.detector = Detector::Se;
        c.matsVisible = false;
        c.pixelResNm = 5.2;
        c.sliceNm = 20.0;
        c.dwellUs = 3.0;
        c.roiAreaUm2 = 100.0;
        c.topology = Topology::Ocsa;
        // Vendor A dedicates the largest SA strip (M2-routed second SA
        // set, Appendix A); pins CHARM's 0.45x A-to-C DDR5 variation.
        c.mats = 30371;
        c.matWidthNm = 34800.0;
        c.matHeightNm = 36900.0;
        c.saHeightNm = 10999.0;
        c.rowDriverWidthNm = 6400.0;
        c.blPitchNm = 32.0;
        c.blWidthNm = 21.5;
        c.m2WidthNm = 172.0;
        c.transitionNm = 280.0;
        c.wireHeightNm = 34.0;
        setDims(c, Role::Nsa, 180, 46);
        setDims(c, Role::Psa, 130, 42);
        setDims(c, Role::Precharge, 240, 36);
        setDims(c, Role::Column, 165, 34);
        setDims(c, Role::Iso, 280, 32);
        setDims(c, Role::Oc, 110, 36);
        setDims(c, Role::Lsa, 220, 40);
        chips.push_back(c);
    }

    // ---------------- B5: vendor B, DDR5, OCSA -----------------------
    {
        ChipSpec c;
        c.id = "B5";
        c.vendor = 'B';
        c.ddr = 5;
        c.storageGbit = 16;
        c.year = 2022;
        c.dieAreaMm2 = 68.0;
        c.detector = Detector::Bse;
        c.matsVisible = false;
        c.seQuality = 0.45;
        c.pixelResNm = 4.2;
        c.sliceNm = 10.0;
        c.dwellUs = 6.0;
        c.roiAreaUm2 = 30.0;
        c.topology = Topology::Ocsa;
        c.mats = 31104;
        c.matWidthNm = 33400.0;
        c.matHeightNm = 36000.0;
        c.saHeightNm = 8182.0;
        c.rowDriverWidthNm = 4800.0;
        c.blPitchNm = 32.0;
        c.blWidthNm = 21.5;
        c.m2WidthNm = 172.0;
        c.transitionNm = 272.0;
        c.wireHeightNm = 30.0; // the 30 nm wire height of Section IV-C
        setDims(c, Role::Nsa, 160, 40);
        setDims(c, Role::Psa, 115, 38);
        setDims(c, Role::Precharge, 220, 33);
        setDims(c, Role::Column, 150, 31);
        setDims(c, Role::Iso, 260, 34);
        setDims(c, Role::Oc, 100, 33);
        setDims(c, Role::Lsa, 200, 36);
        chips.push_back(c);
    }

    // ---------------- C5: vendor C, DDR5, classic ---------------------
    {
        ChipSpec c;
        c.id = "C5";
        c.vendor = 'C';
        c.ddr = 5;
        c.storageGbit = 16;
        c.year = 2022;
        c.dieAreaMm2 = 66.0;
        c.detector = Detector::Bse;
        c.matsVisible = true;
        c.seQuality = 0.50;
        c.pixelResNm = 5.0;
        c.sliceNm = 10.0;
        c.dwellUs = 6.0;
        c.roiAreaUm2 = 30.0;
        c.topology = Topology::Classic;
        c.mats = 30792;
        c.matWidthNm = 33400.0;
        c.matHeightNm = 36900.0;
        c.saHeightNm = 6225.0;
        c.rowDriverWidthNm = 3700.0;
        c.blPitchNm = 32.0;
        c.blWidthNm = 21.5;
        c.m2WidthNm = 172.0;
        c.transitionNm = 273.0;
        c.wireHeightNm = 36.0;
        setDims(c, Role::Nsa, 175, 44);
        setDims(c, Role::Psa, 125, 42);
        setDims(c, Role::Precharge, 140, 50);
        setDims(c, Role::Equalizer, 130, 48);
        setDims(c, Role::Column, 155, 33);
        setDims(c, Role::Lsa, 210, 38);
        chips.push_back(c);
    }

    return chips;
}

} // namespace

const std::vector<ChipSpec> &
allChips()
{
    static const std::vector<ChipSpec> chips = buildChips();
    return chips;
}

const ChipSpec &
chip(const std::string &id)
{
    if (const ChipSpec *c = findChip(id))
        return *c;
    throw std::out_of_range("chip: unknown id " + id);
}

const ChipSpec *
findChip(const std::string &id)
{
    for (const auto &c : allChips())
        if (c.id == id)
            return &c;
    return nullptr;
}

std::vector<const ChipSpec *>
chipsOfGeneration(int ddr)
{
    std::vector<const ChipSpec *> out;
    for (const auto &c : allChips())
        if (c.ddr == ddr)
            out.push_back(&c);
    return out;
}

} // namespace models
} // namespace hifi
