#include "models/public_models.hh"

namespace hifi
{
namespace models
{

namespace
{

void
setDims(PublicModel &m, Role r, double w, double l)
{
    m.dims[static_cast<size_t>(r)] = Dims{w, l};
}

PublicModel
buildCrow()
{
    PublicModel m;
    m.name = "CROW";
    m.year = 2019;
    m.basis = "best-guess transistor dimensions; no column transistors";
    // Calibration anchors (Section VI-A): vs. the measured DDR4 chips
    // these dimensions give ~236% average W/L inaccuracy, 562% max
    // (C4 precharge), ~271% average width inaccuracy, 938% max (C4
    // precharge), with length errors below REM's 31% average.
    setDims(m, Role::Nsa, 380, 45);
    setDims(m, Role::Psa, 300, 45);
    setDims(m, Role::Precharge, 2000, 45);
    setDims(m, Role::Equalizer, 350, 45);
    return m;
}

PublicModel
buildRem()
{
    PublicModel m;
    m.name = "REM";
    m.year = 2022;
    m.basis = "25 nm DDR4 dimensions from a smaller vendor (one "
              "generation older than commodity devices)";
    // Calibration anchors: average length inaccuracy ~31% with the
    // maximum (101%) against C4's equalizer.
    setDims(m, Role::Nsa, 300, 62);
    setDims(m, Role::Psa, 220, 58);
    setDims(m, Role::Precharge, 280, 40);
    setDims(m, Role::Equalizer, 260, 120);
    setDims(m, Role::Column, 320, 48);
    return m;
}

} // namespace

const PublicModel &
crowModel()
{
    static const PublicModel m = buildCrow();
    return m;
}

const PublicModel &
remModel()
{
    static const PublicModel m = buildRem();
    return m;
}

std::vector<const PublicModel *>
publicModels()
{
    return {&crowModel(), &remModel()};
}

} // namespace models
} // namespace hifi
