#include "models/export.hh"

#include <fstream>
#include <stdexcept>

#include "models/chip_data.hh"
#include "models/papers.hh"
#include "models/public_models.hh"

namespace hifi
{
namespace models
{

namespace
{

std::ofstream
open(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("exportDataset: cannot open " + path);
    return os;
}

} // namespace

DatasetFiles
exportDataset(const std::string &directory)
{
    DatasetFiles files;
    files.chips = directory + "/hifi_chips.csv";
    files.transistors = directory + "/hifi_transistors.csv";
    files.publicModels = directory + "/hifi_public_models.csv";
    files.papers = directory + "/hifi_papers.csv";

    {
        auto os = open(files.chips);
        os << "id,vendor,ddr,storage_gbit,year,die_mm2,detector,"
              "mats_visible,pixel_nm,slice_nm,dwell_us,roi_um2,"
              "topology,mats,mat_w_nm,mat_h_nm,sa_h_nm,rowdrv_w_nm,"
              "bl_pitch_nm,bl_width_nm,m2_width_nm,transition_nm,"
              "wire_height_nm,mat_fraction,sa_fraction\n";
        for (const auto &c : allChips()) {
            os << c.id << "," << c.vendor << "," << c.ddr << ","
               << c.storageGbit << "," << c.year << "," << c.dieAreaMm2
               << "," << (c.detector == Detector::Se ? "SE" : "BSE")
               << "," << (c.matsVisible ? 1 : 0) << "," << c.pixelResNm
               << "," << c.sliceNm << "," << c.dwellUs << ","
               << c.roiAreaUm2 << ","
               << (c.topology == Topology::Ocsa ? "OCSA" : "classic")
               << "," << c.mats << "," << c.matWidthNm << ","
               << c.matHeightNm << "," << c.saHeightNm << ","
               << c.rowDriverWidthNm << "," << c.blPitchNm << ","
               << c.blWidthNm << "," << c.m2WidthNm << ","
               << c.transitionNm << "," << c.wireHeightNm << ","
               << c.matFraction() << "," << c.saFraction() << "\n";
        }
    }
    {
        auto os = open(files.transistors);
        os << "chip,role,w_nm,l_nm,w_over_l,w_eff_nm,l_eff_nm\n";
        for (const auto &c : allChips()) {
            for (size_t ri = 0;
                 ri < static_cast<size_t>(Role::NumRoles); ++ri) {
                const auto role = static_cast<Role>(ri);
                const auto &d = c.role(role);
                if (!d)
                    continue;
                os << c.id << "," << roleName(role) << "," << d->w
                   << "," << d->l << "," << d->wOverL() << ","
                   << c.effective(role, false) << ","
                   << c.effective(role, true) << "\n";
            }
        }
    }
    {
        auto os = open(files.publicModels);
        os << "model,year,role,w_nm,l_nm,w_over_l\n";
        for (const auto *m : publicModels()) {
            for (size_t ri = 0;
                 ri < static_cast<size_t>(Role::NumRoles); ++ri) {
                const auto role = static_cast<Role>(ri);
                const auto &d = m->role(role);
                if (!d)
                    continue;
                os << m->name << "," << m->year << ","
                   << roleName(role) << "," << d->w << "," << d->l
                   << "," << d->wOverL() << "\n";
            }
        }
    }
    {
        auto os = open(files.papers);
        os << "paper,venue,year,ddr,inaccuracies,original_estimate,"
              "paper_error,paper_porting_cost\n";
        for (const auto &p : allPapers()) {
            os << p.name << "," << p.venue << "," << p.year << ","
               << p.ddr << "," << inaccuracyLabel(p) << ","
               << p.originalEstimate << "," << p.paperError << ","
               << p.paperPortingCost << "\n";
        }
    }
    return files;
}

} // namespace models
} // namespace hifi
