#include "dram/timings.hh"

#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace dram
{

Timings
Timings::fromSimulation(const circuit::SaParams &params,
                        double guardBand)
{
    if (guardBand < 1.0)
        throw std::invalid_argument("Timings: guard band < 1");

    const circuit::SaRun run = circuit::simulateActivation(params);
    if (run.tSense <= 0.0 || !run.latchedCorrectly)
        throw std::runtime_error(
            "Timings::fromSimulation: activation failed");
    const auto &s = run.schedule;

    Timings t;
    t.tRcd = run.tSense * 1e9 * guardBand;
    t.tRas = (s.tRestoreEnd - s.tActivate) * 1e9 * guardBand;

    // tRP: time from the PRE command until both bitlines settle to
    // within 20 mV of Vpre.
    const auto &bl = run.tran.trace("BL");
    const auto &blb = run.tran.trace("BLB");
    double settle = s.tEnd;
    for (size_t i = 0; i < bl.times.size(); ++i) {
        if (bl.times[i] < s.tPrechargeCmd)
            continue;
        if (std::abs(bl.values[i] - params.vpre) < 0.02 &&
            std::abs(blb.values[i] - params.vpre) < 0.02) {
            settle = bl.times[i];
            break;
        }
    }
    t.tRp = (settle - s.tPrechargeCmd) * 1e9 * guardBand;
    t.tCcd = params.tCol * 1e9;
    t.tWr = t.tCcd * 2.0;
    return t;
}

Timings
Timings::forTopology(circuit::SaTopology topology)
{
    // Memoized per topology: the defaults are fixed and the transient
    // simulation behind them is deterministic, so every caller (bank
    // construction, cost-benefit audits, benches) shares one run.
    auto derive = [](circuit::SaTopology topo) {
        circuit::SaParams params;
        params.topology = topo;
        return fromSimulation(params);
    };
    if (topology == circuit::SaTopology::Classic) {
        static const Timings classic =
            derive(circuit::SaTopology::Classic);
        return classic;
    }
    static const Timings ocsa =
        derive(circuit::SaTopology::OffsetCancellation);
    return ocsa;
}

} // namespace dram
} // namespace hifi
