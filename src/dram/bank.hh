/**
 * @file
 * Command-level DRAM bank model, parameterized by the reverse-
 * engineered data: MAT geometry from the chip datasets, timings from
 * the circuit simulation of the deployed SA topology.
 *
 * The bank enforces the JEDEC-style state machine (ACT -> RD/WR ->
 * PRE with tRCD/tRAS/tRP/tCCD/tWR), stores real data, and also
 * exposes the out-of-spec two-row activation of Section VI-D whose
 * per-bit outcome depends on the SA topology (majority-style on
 * classic chips, biased on OCSA chips).
 */

#ifndef HIFI_DRAM_BANK_HH
#define HIFI_DRAM_BANK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dram/timings.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace dram
{

/** Bank configuration. */
struct BankConfig
{
    size_t rows = 512;
    size_t columns = 128; ///< bytes per row

    Timings timings;
    models::Topology topology = models::Topology::Classic;

    /**
     * Cell retention time (ns).  A row not refreshed or activated
     * within this window decays: its data reads back as zeros (the
     * discharged state).  The JEDEC default (64 ms) is far above any
     * test trace; shrink it to exercise retention.
     */
    double retentionNs = 64e6;

    /// Refresh-command row batch (rows refreshed per REF).
    size_t rowsPerRefresh = 8;

    /**
     * Activation-disturbance (Rowhammer) threshold: after this many
     * aggressor activations of a physically adjacent row without an
     * intervening restore of the victim, the victim's weakest cells
     * leak (bit 0 of every byte discharges).  0 disables the model.
     * Out-of-spec experiments on such effects are exactly the
     * studies Section VI-D warns about.
     */
    size_t disturbanceThreshold = 0;

    /**
     * Build from a studied chip: topology from the reverse
     * engineering, timings from the circuit simulation of that
     * topology (cached per topology).
     */
    static BankConfig fromChip(const models::ChipSpec &chip);
};

/** Outcome of issuing a command. */
struct CmdResult
{
    bool accepted = false;
    std::string error;                ///< empty when accepted
    std::optional<uint8_t> data;      ///< read data

    static CmdResult ok() { return {true, {}, std::nullopt}; }

    static CmdResult
    okData(uint8_t value)
    {
        return {true, {}, value};
    }

    static CmdResult
    fail(std::string why)
    {
        return {false, std::move(why), std::nullopt};
    }
};

/** One DRAM bank with timing enforcement and data storage. */
class Bank
{
  public:
    explicit Bank(BankConfig config);

    const BankConfig &config() const { return config_; }

    /// Currently open row, if any.
    std::optional<size_t> openRow() const { return openRow_; }

    /// Count of rejected (timing/state-violating) commands.
    size_t violations() const { return violations_; }

    /// ACT: opens `row`; needs the bank precharged and tRP elapsed.
    CmdResult activate(double t_ns, size_t row);

    /// RD: needs an open row and tRCD elapsed.
    CmdResult read(double t_ns, size_t column);

    /// WR: needs an open row and tRCD elapsed.
    CmdResult write(double t_ns, size_t column, uint8_t value);

    /// PRE: needs tRAS (and tWR after a write) elapsed.
    CmdResult precharge(double t_ns);

    /**
     * REF: refresh the next `rowsPerRefresh` rows (round-robin).
     * Needs the bank precharged.  Rows already decayed are lost
     * (refreshed as zeros), exactly like real DRAM.
     */
    CmdResult refresh(double t_ns);

    /// Rows whose retention window has lapsed at time t.
    size_t decayedRows(double t_ns) const;

    /// Accumulated aggressor exposure of a row (disturbance model).
    size_t exposure(size_t row) const;

    /**
     * Out-of-spec simultaneous two-row activation (Section VI-D,
     * [24]-style).  Both rows end up with the same data:
     * per byte, agreeing bits win; conflicting bits resolve by the
     * topology - classic SAs fall to the mismatch lottery (modeled as
     * the previous bit of row_a), OCSA chips bias toward '1' because
     * charge sharing starts below Vpre.
     */
    CmdResult activateTwoRows(double t_ns, size_t row_a, size_t row_b);

    /// Direct backdoor for tests (no timing checks).
    uint8_t &cell(size_t row, size_t column);

  private:
    bool rowValid(size_t row) const { return row < config_.rows; }

    CmdResult reject(const std::string &why);

    BankConfig config_;
    std::vector<std::vector<uint8_t>> storage_;

    /// Apply decay to a row if its retention lapsed before t.
    void decayIfStale(double t_ns, size_t row);

    std::optional<size_t> openRow_;
    double tAct_ = -1e18;    ///< time of the last ACT
    double tPre_ = -1e18;    ///< time of the last PRE
    double tLastCol_ = -1e18;
    double tLastWrite_ = -1e18;
    size_t violations_ = 0;

    /// Bump a victim's exposure and apply the leak when it trips.
    void disturb(size_t victim);

    /// Last restore time per row (ACT or REF).
    std::vector<double> lastRestore_;
    size_t refreshCursor_ = 0;

    /// Aggressor exposure per row since its last restore.
    std::vector<size_t> exposure_;
};

} // namespace dram
} // namespace hifi

#endif // HIFI_DRAM_BANK_HH
