/**
 * @file
 * Multi-bank DRAM device with a text command-trace runner, so
 * workloads can be expressed the way memory-controller studies write
 * them.
 *
 * Trace format, one command per line ('#' starts a comment):
 *
 *   <t_ns> ACT  <bank> <row>
 *   <t_ns> RD   <bank> <column>
 *   <t_ns> WR   <bank> <column> <value>
 *   <t_ns> PRE  <bank>
 *   <t_ns> REF  <bank>
 *   <t_ns> ACT2 <bank> <rowA> <rowB>   (out-of-spec, Section VI-D)
 */

#ifndef HIFI_DRAM_DEVICE_HH
#define HIFI_DRAM_DEVICE_HH

#include <iosfwd>
#include <vector>

#include "dram/bank.hh"

namespace hifi
{
namespace dram
{

/** Statistics of a trace run. */
struct TraceStats
{
    size_t commands = 0;
    size_t accepted = 0;
    size_t rejected = 0;
    std::vector<uint8_t> readData; ///< data of accepted reads
    std::vector<std::string> errors;
};

/** A DRAM device: identical banks sharing a configuration. */
class Device
{
  public:
    Device(size_t banks, BankConfig config);

    size_t numBanks() const { return banks_.size(); }
    Bank &bank(size_t index) { return banks_.at(index); }
    const Bank &bank(size_t index) const { return banks_.at(index); }

    /**
     * Run a command trace; commands must be time-ordered.  Malformed
     * lines throw std::runtime_error; rejected commands are counted
     * and their errors recorded.
     */
    TraceStats runTrace(std::istream &trace);

  private:
    std::vector<Bank> banks_;
};

} // namespace dram
} // namespace hifi

#endif // HIFI_DRAM_DEVICE_HH
