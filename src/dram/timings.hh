/**
 * @file
 * DRAM timing parameters derived from the analog substrate.
 *
 * The reverse-engineered topology determines the activation events
 * (Figs. 2c / 9b) and therefore the command timings: on OCSA chips the
 * offset-cancellation and pre-sensing phases lengthen tRCD and tRAS.
 * `fromSimulation` measures the timings by actually running the
 * transient testbench, closing the loop from imaging to architecture.
 */

#ifndef HIFI_DRAM_TIMINGS_HH
#define HIFI_DRAM_TIMINGS_HH

#include "circuit/sense_amp.hh"
#include "models/chip_data.hh"

namespace hifi
{
namespace dram
{

/** Core timing parameters, in nanoseconds. */
struct Timings
{
    double tRcd = 14.0; ///< ACT to first RD/WR
    double tRas = 32.0; ///< ACT to PRE (restore complete)
    double tRp = 14.0;  ///< PRE to next ACT
    double tCcd = 4.0;  ///< column-to-column
    double tWr = 12.0;  ///< last WR data to PRE

    /**
     * Derive the timings from transient simulation of the given SA
     * parameters: tRCD from the 90%-rail separation point, tRAS from
     * the end of restore, tRP from the precharge settle, with a
     * guard-band factor applied (JEDEC margins).
     */
    static Timings fromSimulation(const circuit::SaParams &params,
                                  double guardBand = 1.25);

    /// Convenience: defaults for a topology (runs the simulation).
    static Timings forTopology(circuit::SaTopology topology);
};

} // namespace dram
} // namespace hifi

#endif // HIFI_DRAM_TIMINGS_HH
