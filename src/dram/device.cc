#include "dram/device.hh"

#include <istream>
#include <sstream>
#include <stdexcept>

namespace hifi
{
namespace dram
{

Device::Device(size_t banks, BankConfig config)
{
    if (banks == 0)
        throw std::invalid_argument("Device: zero banks");
    banks_.reserve(banks);
    for (size_t i = 0; i < banks; ++i)
        banks_.emplace_back(config);
}

TraceStats
Device::runTrace(std::istream &trace)
{
    TraceStats stats;
    std::string line;
    double last_t = -1e18;
    size_t line_no = 0;

    while (std::getline(trace, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        double t;
        std::string op;
        if (!(ss >> t >> op))
            continue; // blank or comment-only line

        auto bad = [&](const std::string &why) {
            throw std::runtime_error(
                "trace line " + std::to_string(line_no) + ": " + why);
        };
        if (t < last_t)
            bad("commands out of time order");
        last_t = t;

        size_t bank_idx = 0;
        if (!(ss >> bank_idx))
            bad("missing bank");
        if (bank_idx >= banks_.size())
            bad("bank out of range");
        Bank &bank = banks_[bank_idx];

        CmdResult result;
        if (op == "ACT") {
            size_t row;
            if (!(ss >> row))
                bad("ACT needs a row");
            result = bank.activate(t, row);
        } else if (op == "RD") {
            size_t col;
            if (!(ss >> col))
                bad("RD needs a column");
            result = bank.read(t, col);
            if (result.accepted && result.data)
                stats.readData.push_back(*result.data);
        } else if (op == "WR") {
            size_t col;
            unsigned value;
            if (!(ss >> col >> value))
                bad("WR needs a column and a value");
            result = bank.write(t, col,
                                static_cast<uint8_t>(value));
        } else if (op == "PRE") {
            result = bank.precharge(t);
        } else if (op == "REF") {
            result = bank.refresh(t);
        } else if (op == "ACT2") {
            size_t ra, rb;
            if (!(ss >> ra >> rb))
                bad("ACT2 needs two rows");
            result = bank.activateTwoRows(t, ra, rb);
        } else {
            bad("unknown command " + op);
        }

        ++stats.commands;
        if (result.accepted) {
            ++stats.accepted;
        } else {
            ++stats.rejected;
            stats.errors.push_back(result.error);
        }
    }
    return stats;
}

} // namespace dram
} // namespace hifi
