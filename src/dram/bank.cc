#include "dram/bank.hh"

#include <sstream>
#include <stdexcept>

namespace hifi
{
namespace dram
{

BankConfig
BankConfig::fromChip(const models::ChipSpec &chip)
{
    BankConfig config;
    config.topology = chip.topology;
    // Rows per MAT from the geometry: wordline pitch ~ 1.5x the
    // bitline pitch in a 6F^2 array.
    config.rows = static_cast<size_t>(
        chip.matHeightNm / (1.5 * chip.blPitchNm));
    config.columns = 128;

    // Timings per topology, derived from the circuit simulation
    // (memoized inside forTopology).
    config.timings = Timings::forTopology(
        chip.topology == models::Topology::Ocsa
            ? circuit::SaTopology::OffsetCancellation
            : circuit::SaTopology::Classic);
    return config;
}

Bank::Bank(BankConfig config) : config_(std::move(config))
{
    if (config_.rows == 0 || config_.columns == 0)
        throw std::invalid_argument("Bank: empty geometry");
    storage_.assign(config_.rows,
                    std::vector<uint8_t>(config_.columns, 0));
    lastRestore_.assign(config_.rows, 0.0);
    exposure_.assign(config_.rows, 0);
}

void
Bank::disturb(size_t victim)
{
    if (config_.disturbanceThreshold == 0 || victim >= config_.rows)
        return;
    if (++exposure_[victim] > config_.disturbanceThreshold) {
        // The weakest cell of every byte leaks toward discharged.
        for (auto &byte : storage_[victim])
            byte &= 0xFE;
    }
}

size_t
Bank::exposure(size_t row) const
{
    return exposure_.at(row);
}

void
Bank::decayIfStale(double t_ns, size_t row)
{
    if (t_ns - lastRestore_[row] > config_.retentionNs) {
        // Cells leak toward the discharged state.
        std::fill(storage_[row].begin(), storage_[row].end(), 0);
    }
}

CmdResult
Bank::refresh(double t_ns)
{
    if (openRow_)
        return reject("REF: bank must be precharged");
    if (t_ns - tPre_ < config_.timings.tRp)
        return reject("REF: tRP violated");
    for (size_t i = 0; i < config_.rowsPerRefresh; ++i) {
        const size_t row = refreshCursor_;
        refreshCursor_ = (refreshCursor_ + 1) % config_.rows;
        decayIfStale(t_ns, row);
        lastRestore_[row] = t_ns; // internal ACT+PRE restores charge
        exposure_[row] = 0;
    }
    return CmdResult::ok();
}

size_t
Bank::decayedRows(double t_ns) const
{
    size_t n = 0;
    for (size_t r = 0; r < config_.rows; ++r)
        if (t_ns - lastRestore_[r] > config_.retentionNs)
            ++n;
    return n;
}

CmdResult
Bank::reject(const std::string &why)
{
    ++violations_;
    return CmdResult::fail(why);
}

CmdResult
Bank::activate(double t_ns, size_t row)
{
    if (!rowValid(row))
        return reject("ACT: row out of range");
    if (openRow_)
        return reject("ACT: bank already has an open row");
    if (t_ns - tPre_ < config_.timings.tRp) {
        std::ostringstream ss;
        ss << "ACT: tRP violated (" << t_ns - tPre_ << " < "
           << config_.timings.tRp << " ns)";
        return reject(ss.str());
    }
    decayIfStale(t_ns, row);
    lastRestore_[row] = t_ns; // activation restores the charge
    exposure_[row] = 0;       // and clears its disturbance exposure
    if (row > 0)
        disturb(row - 1);
    disturb(row + 1);
    openRow_ = row;
    tAct_ = t_ns;
    return CmdResult::ok();
}

CmdResult
Bank::read(double t_ns, size_t column)
{
    if (!openRow_)
        return reject("RD: no open row");
    if (column >= config_.columns)
        return reject("RD: column out of range");
    if (t_ns - tAct_ < config_.timings.tRcd)
        return reject("RD: tRCD violated");
    if (t_ns - tLastCol_ < config_.timings.tCcd)
        return reject("RD: tCCD violated");
    tLastCol_ = t_ns;
    return CmdResult::okData(storage_[*openRow_][column]);
}

CmdResult
Bank::write(double t_ns, size_t column, uint8_t value)
{
    if (!openRow_)
        return reject("WR: no open row");
    if (column >= config_.columns)
        return reject("WR: column out of range");
    if (t_ns - tAct_ < config_.timings.tRcd)
        return reject("WR: tRCD violated");
    if (t_ns - tLastCol_ < config_.timings.tCcd)
        return reject("WR: tCCD violated");
    storage_[*openRow_][column] = value;
    tLastCol_ = t_ns;
    tLastWrite_ = t_ns;
    return CmdResult::ok();
}

CmdResult
Bank::precharge(double t_ns)
{
    if (!openRow_)
        return reject("PRE: no open row");
    if (t_ns - tAct_ < config_.timings.tRas)
        return reject("PRE: tRAS violated");
    if (t_ns - tLastWrite_ < config_.timings.tWr)
        return reject("PRE: tWR violated");
    openRow_.reset();
    tPre_ = t_ns;
    return CmdResult::ok();
}

CmdResult
Bank::activateTwoRows(double t_ns, size_t row_a, size_t row_b)
{
    if (!rowValid(row_a) || !rowValid(row_b) || row_a == row_b)
        return reject("ACT2: bad row pair");
    if (openRow_)
        return reject("ACT2: bank already has an open row");
    if (t_ns - tPre_ < config_.timings.tRp)
        return reject("ACT2: tRP violated");

    // Per-bit charge sharing (Section VI-D): agreeing bits latch
    // their value; conflicting bits depend on the topology.
    for (size_t c = 0; c < config_.columns; ++c) {
        const uint8_t a = storage_[row_a][c];
        const uint8_t b = storage_[row_b][c];
        const uint8_t agree = static_cast<uint8_t>(~(a ^ b));
        uint8_t conflict_resolution;
        if (config_.topology == models::Topology::Ocsa) {
            // Charge sharing starts from the diode-connected level
            // below Vpre: conflicts bias toward '1'.
            conflict_resolution = 0xFF;
        } else {
            // Classic: the residual signal is ~0; the outcome falls
            // to per-SA mismatch.  We model the deterministic part
            // of that lottery as keeping row A's bit.
            conflict_resolution = a;
        }
        const uint8_t result = static_cast<uint8_t>(
            (agree & a) | (~agree & conflict_resolution));
        storage_[row_a][c] = result;
        storage_[row_b][c] = result;
    }
    lastRestore_[row_a] = t_ns;
    lastRestore_[row_b] = t_ns;
    openRow_ = row_a;
    tAct_ = t_ns;
    return CmdResult::ok();
}

uint8_t &
Bank::cell(size_t row, size_t column)
{
    return storage_.at(row).at(column);
}

} // namespace dram
} // namespace hifi
