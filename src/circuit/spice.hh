/**
 * @file
 * SPICE netlist export.
 *
 * The paper open-sources its reverse-engineered circuits; this writer
 * turns any hifi::circuit::Netlist - in particular the SA testbenches
 * rebuilt from reverse-engineered measurements - into a standard
 * SPICE deck (.MODEL level-1 cards, M/R/C/V elements, PWL sources)
 * that ngspice-compatible simulators accept.
 */

#ifndef HIFI_CIRCUIT_SPICE_HH
#define HIFI_CIRCUIT_SPICE_HH

#include <iosfwd>
#include <string>

#include "circuit/netlist.hh"
#include "circuit/sense_amp.hh"

namespace hifi
{
namespace circuit
{

/**
 * Write the netlist as a SPICE deck.  Waveform sources become PWL
 * sources sampled at their breakpoints (approximated with `samples`
 * points over [0, tstop]).
 */
void writeSpice(std::ostream &os, const Netlist &netlist,
                const std::string &title, double tstop_s,
                size_t samples = 200);

/// Convenience: build the SA testbench for `params` and export it.
void writeSaSpiceFile(const std::string &path, const SaParams &params);

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_SPICE_HH
