#include "circuit/waveform.hh"

#include <algorithm>
#include <stdexcept>

namespace hifi
{
namespace circuit
{

Pwl::Pwl(double value)
{
    points_.emplace_back(0.0, value);
}

Pwl &
Pwl::point(double time, double value)
{
    if (!points_.empty() && time < points_.back().first)
        throw std::invalid_argument("Pwl: non-monotonic time");
    points_.emplace_back(time, value);
    return *this;
}

Pwl &
Pwl::step(double time, double value, double ramp)
{
    const double prev = points_.empty() ? 0.0 : points_.back().second;
    point(time, prev);
    point(time + ramp, value);
    return *this;
}

double
Pwl::value(double time) const
{
    if (points_.empty())
        return 0.0;
    if (time <= points_.front().first)
        return points_.front().second;
    if (time >= points_.back().first)
        return points_.back().second;
    // Find the first breakpoint after `time`.
    auto it = std::upper_bound(
        points_.begin(), points_.end(), time,
        [](double t, const std::pair<double, double> &p) {
            return t < p.first;
        });
    const auto &hi = *it;
    const auto &lo = *(it - 1);
    if (hi.first == lo.first)
        return hi.second;
    const double f = (time - lo.first) / (hi.first - lo.first);
    return lo.second + f * (hi.second - lo.second);
}

double
Trace::at(double time) const
{
    if (times.empty())
        return 0.0;
    auto it = std::upper_bound(times.begin(), times.end(), time);
    if (it == times.begin())
        return values.front();
    const size_t idx = static_cast<size_t>(it - times.begin()) - 1;
    return values[idx];
}

double
Trace::final() const
{
    return values.empty() ? 0.0 : values.back();
}

double
Trace::firstCrossUp(double level) const
{
    for (size_t i = 1; i < values.size(); ++i)
        if (values[i - 1] < level && values[i] >= level)
            return times[i];
    return -1.0;
}

double
Trace::firstCrossDown(double level) const
{
    for (size_t i = 1; i < values.size(); ++i)
        if (values[i - 1] > level && values[i] <= level)
            return times[i];
    return -1.0;
}

double
Trace::minValue() const
{
    return values.empty() ? 0.0 :
        *std::min_element(values.begin(), values.end());
}

double
Trace::maxValue() const
{
    return values.empty() ? 0.0 :
        *std::max_element(values.begin(), values.end());
}

} // namespace circuit
} // namespace hifi
