/**
 * @file
 * Sense-amplifier testbench builders and event sequencing.
 *
 * Two topologies, matching the paper's reverse-engineered circuits:
 *
 *  - Classic (Fig. 2b, deployed on B4, C4, C5): cross-coupled latch,
 *    three-transistor precharge/equalizer driven by PEQ, column mux.
 *    Activation events (Fig. 2c): charge sharing -> latch & restore ->
 *    precharge + equalize.
 *
 *  - Offset-cancellation OCSA (Fig. 9a, deployed on A4, A5, B5): adds
 *    two ISO and two OC transistors and two control signals.  The ISO
 *    devices decouple the bitlines from the latch *drains* but not the
 *    gates; the OC devices diode-connect each latch half so per-device
 *    threshold offsets are stored on the bitlines before sensing.
 *    There is no standalone equalizer: equalization happens when ISO
 *    and OC are on simultaneously (Section V-A).  Activation events
 *    (Fig. 9b): offset cancellation -> charge sharing -> pre-sensing
 *    (latching without the bitline load) -> restore -> precharge.
 */

#ifndef HIFI_CIRCUIT_SENSE_AMP_HH
#define HIFI_CIRCUIT_SENSE_AMP_HH

#include <string>
#include <vector>

#include "circuit/netlist.hh"
#include "circuit/solver.hh"

namespace hifi
{
namespace circuit
{

/// SA circuit topology.
enum class SaTopology
{
    Classic,
    OffsetCancellation,
};

const std::string &saTopologyName(SaTopology topology);

/// Column operation performed during the restore window.
enum class ColumnOp
{
    None,  ///< plain activation (ACT ... PRE)
    Read,  ///< pulse Yi and sense the LIO pair
    Write, ///< pulse Yi with driven LIO rails, overpowering the latch
};

/** Transistor sizing of the SA testbench, in nm. */
struct SaSizing
{
    double nsaW = 120.0, nsaL = 40.0;
    double psaW = 90.0, psaL = 40.0;
    double preW = 100.0, preL = 35.0;
    double eqW = 100.0, eqL = 35.0;   ///< classic only
    double colW = 150.0, colL = 35.0;
    double isoW = 140.0, isoL = 35.0; ///< OCSA only
    double ocW = 90.0, ocL = 35.0;    ///< OCSA only
};

/** Electrical and timing parameters of one activation testbench. */
struct SaParams
{
    SaTopology topology = SaTopology::Classic;
    SaSizing sizing;

    double vdd = 1.1;       ///< core array rail (V)
    double vpp = 2.2;       ///< boosted wordline / control level (V)
    double vpre = 0.55;     ///< bitline precharge level, VDD/2

    double cellCapF = 18e-15;  ///< storage capacitor
    double blCapF = 55e-15;    ///< bitline capacitance (per side)
    double senseNodeCapF = 2e-15; ///< OCSA internal node parasitic
    double blResOhm = 2e3;     ///< lumped bitline resistance

    bool storeOne = true;   ///< stored bit

    /**
     * Deterministic latch asymmetry: +delta/2 on Mn1/Mp1 and -delta/2
     * on Mn2/Mp2 threshold voltages.  Monte-Carlo runs instead edit
     * the built netlist per trial.
     */
    double vthMismatch = 0.0;

    /// Column operation during the restore window.
    ColumnOp columnOp = ColumnOp::None;

    /// Data driven on LIO for a write.
    bool writeBit = false;

    /// Yi pulse width (s).
    double tCol = 3e-9;

    /// Write-driver impedance to the LIO rails (ohms).
    double writeDriverOhm = 300.0;

    /**
     * Extra cells on the same bitline whose wordlines fire together
     * with the primary one - the out-of-spec multi-row activation
     * that ComputeDRAM-style in-memory compute relies on
     * (Section VI-D).  Values are the extra cells' stored bits.
     */
    std::vector<bool> extraCells;

    // Phase durations (s).
    double tSettle = 2e-9;
    double tOc = 3e-9;       ///< OCSA offset-cancel phase
    double tShare = 3e-9;    ///< charge-sharing phase
    double tPreSense = 1.5e-9; ///< OCSA pre-sensing phase
    double tRestore = 8e-9;
    double tPrecharge = 5e-9;
};

/** Absolute event times of the built schedule (s). */
struct SaSchedule
{
    double tActivate = 0.0;     ///< ACT command (precharge released)
    double tOcStart = -1.0;     ///< OCSA only
    double tOcEnd = -1.0;       ///< OCSA only
    double tChargeShare = 0.0;  ///< wordline rises
    double tPreSense = -1.0;    ///< OCSA only (latch without load)
    double tLatch = 0.0;        ///< restore drive (classic: SAN/SAP)
    double tColStart = -1.0;    ///< Yi pulse (Read/Write only)
    double tColEnd = -1.0;
    double tRestoreEnd = 0.0;   ///< end of restore phase
    double tPrechargeCmd = 0.0; ///< PRE command
    double tEnd = 0.0;
};

/**
 * Build the activation testbench netlist for the given parameters.
 *
 * Node names: BL, BLB, CN (cell node), SAN, SAP, and for OCSA also
 * SBL/SBLB (latch drain nodes).  Latch devices are named Mn1, Mn2,
 * Mp1, Mp2 for Monte-Carlo threshold editing.
 *
 * @param params   testbench parameters
 * @param schedule filled with the absolute event times
 */
Netlist buildSaTestbench(const SaParams &params, SaSchedule &schedule);

/** Digest of one simulated activation. */
struct SaRun
{
    TranResult tran;
    SaSchedule schedule;

    /// Final BL / BLB / cell voltages at the end of restore.
    double blAtRestore = 0.0;
    double blbAtRestore = 0.0;
    double cellAtRestore = 0.0;

    /// Differential right before the latch/pre-sense fires.
    double signalBeforeLatch = 0.0;

    /// True when BL - BLB carries the stored bit at restore end.
    bool latchedCorrectly = false;

    /// Read op: bit seen on the LIO pair at the end of the Yi pulse
    /// (-1 when no read was scheduled).
    int readBit = -1;

    /// Write op: cell holds the written value at restore end.
    bool writeSucceeded = false;

    /// Time from ACT until |BL-BLB| first exceeds 90% of VDD (s);
    /// negative if it never does.
    double tSense = -1.0;
};

/// Default transient settings sized for the SA testbench.
TranParams defaultSaTran();

/**
 * Reusable activation testbench: the netlist, schedule, and a
 * simulator with its cached matrix structure, built once and reused
 * across many runs.  Monte-Carlo drivers patch device values through
 * netlist() (e.g. the latch vthDelta fields) between simulate()
 * calls; the cached structure stays valid because only values, not
 * topology, change.  Non-copyable (the simulator references the
 * owned netlist).
 */
class SaTestbench
{
  public:
    explicit SaTestbench(const SaParams &params);
    SaTestbench(const SaTestbench &) = delete;
    SaTestbench &operator=(const SaTestbench &) = delete;

    /// Simulate one activation of the (possibly patched) netlist and
    /// analyze it.  `tran.tstop` is overridden by the schedule.
    SaRun simulate(const TranParams &tran = defaultSaTran());

    Netlist &netlist() { return net_; }
    const SaSchedule &schedule() const { return schedule_; }

  private:
    SaParams params_;
    SaSchedule schedule_;
    Netlist net_;
    Simulator sim_;
};

/// Simulate one activation and analyze the result.
SaRun simulateActivation(const SaParams &params,
                         const TranParams &tran = defaultSaTran());

/**
 * Analyze a finished transient run of a testbench built by
 * buildSaTestbench (also used by the Monte-Carlo mismatch driver,
 * which perturbs the netlist between build and run).
 */
SaRun analyzeActivation(const SaParams &params,
                        const SaSchedule &schedule, TranResult tran,
                        double dt);

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_SENSE_AMP_HH
