#include "circuit/sense_amp.hh"

#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace circuit
{

namespace
{

constexpr double kRamp = 2e-10; ///< control edge rise/fall time (s)

MosModel
nmosModel()
{
    MosModel m;
    m.type = MosType::Nmos;
    m.vth = 0.45;
    m.kp = 120e-6;
    m.lambda = 0.05;
    return m;
}

MosModel
pmosModel()
{
    MosModel m;
    m.type = MosType::Pmos;
    m.vth = 0.40;
    m.kp = 50e-6;
    m.lambda = 0.05;
    return m;
}

Mosfet
makeFet(const std::string &name, const MosModel &model, NodeId d,
        NodeId g, NodeId s, double w, double l, double vth_delta = 0.0)
{
    Mosfet fet;
    fet.name = name;
    fet.model = model;
    fet.drain = d;
    fet.gate = g;
    fet.source = s;
    fet.widthNm = w;
    fet.lengthNm = l;
    fet.vthDelta = vth_delta;
    return fet;
}

} // namespace

const std::string &
saTopologyName(SaTopology topology)
{
    static const std::string classic = "classic";
    static const std::string ocsa = "offset-cancellation";
    return topology == SaTopology::Classic ? classic : ocsa;
}

TranParams
defaultSaTran()
{
    TranParams tp;
    tp.dt = 20e-12;
    tp.tstop = 30e-9; // overridden by the builder's schedule
    return tp;
}

Netlist
buildSaTestbench(const SaParams &p, SaSchedule &schedule)
{
    Netlist net;
    const auto &sz = p.sizing;

    // --- Nodes ------------------------------------------------------
    const NodeId bl = net.addNode("BL");
    const NodeId blb = net.addNode("BLB");
    const NodeId blf = net.addNode("BLF"); // far (MAT) end of BL
    const NodeId cn = net.addNode("CN");   // cell storage node
    const NodeId san = net.addNode("SAN");
    const NodeId sap = net.addNode("SAP");
    const NodeId vpre = net.addNode("VPRE");
    const NodeId wl = net.addNode("WL");
    const NodeId peq = net.addNode("PEQ"); // classic PEQ / OCSA PRE
    const NodeId yi = net.addNode("YI");
    const NodeId lio = net.addNode("LIO");
    const NodeId liob = net.addNode("LIOB");

    NodeId sbl = kGround, sblb = kGround, iso = kGround, oc = kGround;
    const bool ocsa = p.topology == SaTopology::OffsetCancellation;
    if (ocsa) {
        sbl = net.addNode("SBL");
        sblb = net.addNode("SBLB");
        iso = net.addNode("ISO");
        oc = net.addNode("OC");
    }

    // --- Schedule ----------------------------------------------------
    SaSchedule s;
    s.tActivate = p.tSettle;
    if (ocsa) {
        s.tOcStart = s.tActivate + 3e-10;
        s.tOcEnd = s.tOcStart + p.tOc;
        s.tChargeShare = s.tOcEnd + 3e-10; // delayed vs. classic (VI-D)
        s.tPreSense = s.tChargeShare + p.tShare;
        s.tLatch = s.tPreSense + p.tPreSense; // restore: ISO closes
    } else {
        s.tChargeShare = s.tActivate + 3e-10;
        s.tLatch = s.tChargeShare + p.tShare;
    }
    if (p.columnOp != ColumnOp::None) {
        // Column access happens once the latch has developed, midway
        // through the restore window.
        s.tColStart = s.tLatch + 0.4 * p.tRestore;
        s.tColEnd = s.tColStart + p.tCol;
    }
    s.tRestoreEnd = s.tLatch + p.tRestore +
        (p.columnOp != ColumnOp::None ? p.tCol : 0.0);
    s.tPrechargeCmd = s.tRestoreEnd;
    s.tEnd = s.tPrechargeCmd + p.tPrecharge;
    schedule = s;

    // --- Passives ----------------------------------------------------
    const double v_init_bit = p.storeOne ? p.vdd : 0.0;
    net.addCapacitor("Ccell", cn, kGround, p.cellCapF, v_init_bit);
    net.addCapacitor("Cbl", bl, kGround, p.blCapF, p.vpre);
    net.addCapacitor("Cblb", blb, kGround, p.blCapF, p.vpre);
    net.addCapacitor("Cblf", blf, kGround, 2e-15, p.vpre);
    net.addCapacitor("Clio", lio, kGround, 5e-15, p.vpre);
    net.addCapacitor("Cliob", liob, kGround, 5e-15, p.vpre);
    net.addResistor("Rbl", blf, bl, p.blResOhm);
    if (ocsa) {
        net.addCapacitor("Csbl", sbl, kGround, p.senseNodeCapF, p.vpre);
        net.addCapacitor("Csblb", sblb, kGround, p.senseNodeCapF,
                         p.vpre);
    }

    // --- Control sources ----------------------------------------------
    net.addVSource("Vpre", vpre, kGround, Pwl(p.vpre));
    Pwl yi_wave(0.0);
    if (p.columnOp != ColumnOp::None) {
        yi_wave.step(s.tColStart, p.vpp, kRamp);
        yi_wave.step(s.tColEnd, 0.0, kRamp);
    }
    net.addVSource("Vyi", yi, kGround, std::move(yi_wave));

    if (p.columnOp == ColumnOp::Write) {
        // Write drivers: low-impedance rails on LIO/LIOB carrying the
        // new data; they overpower the latch through the column mux.
        const NodeId wdrv = net.addNode("WDRV");
        const NodeId wdrvb = net.addNode("WDRVB");
        Pwl w_wave(p.vpre), wb_wave(p.vpre);
        const double v1 = p.writeBit ? p.vdd : 0.0;
        const double v0 = p.writeBit ? 0.0 : p.vdd;
        w_wave.step(s.tColStart - 5e-10, v1, kRamp);
        wb_wave.step(s.tColStart - 5e-10, v0, kRamp);
        net.addVSource("Vwdrv", wdrv, kGround, std::move(w_wave));
        net.addVSource("Vwdrvb", wdrvb, kGround, std::move(wb_wave));
        net.addResistor("Rwdrv", wdrv, lio, p.writeDriverOhm);
        net.addResistor("Rwdrvb", wdrvb, liob, p.writeDriverOhm);
    }

    // Wordline: boosted level, up at charge share, down at precharge.
    Pwl wl_wave(0.0);
    wl_wave.step(s.tChargeShare, p.vpp, kRamp);
    wl_wave.step(s.tPrechargeCmd, 0.0, kRamp);
    net.addVSource("Vwl", wl, kGround, std::move(wl_wave));

    // PEQ / PRE: high at idle, low on ACT, high again on PRE command.
    Pwl peq_wave(p.vpp);
    peq_wave.step(s.tActivate, 0.0, kRamp);
    peq_wave.step(s.tPrechargeCmd + 3e-10, p.vpp, kRamp);
    net.addVSource("Vpeq", peq, kGround, std::move(peq_wave));

    // Latch rails.
    Pwl san_wave(p.vpre);
    Pwl sap_wave(p.vpre);
    if (ocsa) {
        // nSA participates in the offset-cancel phase.
        san_wave.step(s.tOcStart, 0.0, kRamp);
        san_wave.step(s.tOcEnd, p.vpre, kRamp);
        san_wave.step(s.tPreSense, 0.0, kRamp);
        sap_wave.step(s.tPreSense, p.vdd, kRamp);
    } else {
        san_wave.step(s.tLatch, 0.0, kRamp);
        sap_wave.step(s.tLatch, p.vdd, kRamp);
    }
    san_wave.step(s.tPrechargeCmd + 3e-10, p.vpre, kRamp);
    sap_wave.step(s.tPrechargeCmd + 3e-10, p.vpre, kRamp);
    net.addVSource("Vsan", san, kGround, std::move(san_wave));
    net.addVSource("Vsap", sap, kGround, std::move(sap_wave));

    if (ocsa) {
        // ISO: on at idle (equalize path), off during OC/sense, on for
        // restore, on again during precharge.
        Pwl iso_wave(p.vpp);
        iso_wave.step(s.tActivate, 0.0, kRamp);
        iso_wave.step(s.tLatch, p.vpp, kRamp); // restore
        net.addVSource("Viso", iso, kGround, std::move(iso_wave));

        // OC: on at idle, on during the OC phase, off for sensing,
        // on again for equalization at precharge.
        Pwl oc_wave(p.vpp);
        oc_wave.step(s.tOcEnd, 0.0, kRamp);
        oc_wave.step(s.tPrechargeCmd + 3e-10, p.vpp, kRamp);
        net.addVSource("Voc", oc, kGround, std::move(oc_wave));
    }

    // --- Devices -------------------------------------------------------
    const MosModel nm = nmosModel();
    const MosModel pm = pmosModel();
    const double dv = p.vthMismatch * 0.5;

    // Cell access transistor (BCAT in the MATs).
    net.addMosfet(makeFet("Macc", nm, blf, wl, cn, 90.0, 45.0));

    // Extra simultaneously-activated cells (multi-row charge sharing,
    // Section VI-D).
    for (size_t i = 0; i < p.extraCells.size(); ++i) {
        const NodeId cni =
            net.addNode("CN" + std::to_string(i + 2));
        net.addCapacitor("Ccell" + std::to_string(i + 2), cni,
                         kGround, p.cellCapF,
                         p.extraCells[i] ? p.vdd : 0.0);
        net.addMosfet(makeFet("Macc" + std::to_string(i + 2), nm,
                              blf, wl, cni, 90.0, 45.0));
    }

    // Latch.  For OCSA the drains connect to the internal sense nodes;
    // the gates always connect to the bitlines.
    const NodeId dl = ocsa ? sbl : bl;
    const NodeId dr = ocsa ? sblb : blb;
    net.addMosfet(makeFet("Mn1", nm, dl, blb, san, sz.nsaW, sz.nsaL,
                          +dv));
    net.addMosfet(makeFet("Mn2", nm, dr, bl, san, sz.nsaW, sz.nsaL,
                          -dv));
    net.addMosfet(makeFet("Mp1", pm, dl, blb, sap, sz.psaW, sz.psaL,
                          +dv));
    net.addMosfet(makeFet("Mp2", pm, dr, bl, sap, sz.psaW, sz.psaL,
                          -dv));

    // Precharge devices (common gate spanning the region, Section V-C).
    net.addMosfet(makeFet("Mpre1", nm, bl, peq, vpre, sz.preW, sz.preL));
    net.addMosfet(makeFet("Mpre2", nm, blb, peq, vpre, sz.preW,
                          sz.preL));

    if (ocsa) {
        // Isolation: bitline to latch drain.
        net.addMosfet(makeFet("Miso1", nm, bl, iso, sbl, sz.isoW,
                              sz.isoL));
        net.addMosfet(makeFet("Miso2", nm, blb, iso, sblb, sz.isoW,
                              sz.isoL));
        // Offset cancellation: cross-couple latch drain to the
        // opposite bitline (the latch gate side), diode-connecting
        // each half while OC is high.
        net.addMosfet(makeFet("Moc1", nm, sbl, oc, blb, sz.ocW,
                              sz.ocL));
        net.addMosfet(makeFet("Moc2", nm, sblb, oc, bl, sz.ocW,
                              sz.ocL));
    } else {
        // Standalone equalizer (classic only; OCSAs equalize via
        // ISO+OC, Section V-A).
        net.addMosfet(makeFet("Meq", nm, bl, peq, blb, sz.eqW, sz.eqL));
    }

    // Column mux (first elements after the MAT, Section V-C).
    net.addMosfet(makeFet("Mcol1", nm, bl, yi, lio, sz.colW, sz.colL));
    net.addMosfet(makeFet("Mcol2", nm, blb, yi, liob, sz.colW,
                          sz.colL));

    return net;
}

SaTestbench::SaTestbench(const SaParams &params)
    : params_(params), net_(buildSaTestbench(params_, schedule_)),
      sim_(net_)
{
}

SaRun
SaTestbench::simulate(const TranParams &tran)
{
    TranParams tp = tran;
    tp.tstop = schedule_.tEnd;
    return analyzeActivation(params_, schedule_, sim_.run(tp), tp.dt);
}

SaRun
simulateActivation(const SaParams &params, const TranParams &tran)
{
    SaTestbench testbench(params);
    return testbench.simulate(tran);
}

SaRun
analyzeActivation(const SaParams &params, const SaSchedule &schedule,
                  TranResult tran, double dt)
{
    SaRun run;
    run.schedule = schedule;
    run.tran = std::move(tran);

    const Trace &bl = run.tran.trace("BL");
    const Trace &blb = run.tran.trace("BLB");
    const Trace &cn = run.tran.trace("CN");

    const double t_probe = (params.topology == SaTopology::Classic)
        ? run.schedule.tLatch - dt
        : run.schedule.tPreSense - dt;
    run.signalBeforeLatch = bl.at(t_probe) - blb.at(t_probe);

    const double t_restore = run.schedule.tRestoreEnd - dt;
    run.blAtRestore = bl.at(t_restore);
    run.blbAtRestore = blb.at(t_restore);
    run.cellAtRestore = cn.at(t_restore);

    const double diff = run.blAtRestore - run.blbAtRestore;
    const double want = params.storeOne ? 1.0 : -1.0;
    run.latchedCorrectly = diff * want > 0.5 * params.vdd;

    // Column-operation results.
    if (schedule.tColEnd > 0.0) {
        const double t_col = schedule.tColEnd - dt;
        const double dlio = run.tran.trace("LIO").at(t_col) -
            run.tran.trace("LIOB").at(t_col);
        run.readBit = dlio > 0.0 ? 1 : 0;
        const bool want_one = params.columnOp == ColumnOp::Write
            ? params.writeBit
            : params.storeOne;
        run.writeSucceeded = params.columnOp == ColumnOp::Write &&
            ((run.cellAtRestore > 0.7 * params.vdd) == want_one ||
             (run.cellAtRestore < 0.3 * params.vdd) == !want_one);
    }

    // Sense latency: first time |BL-BLB| exceeds 90% of VDD after ACT.
    run.tSense = -1.0;
    for (size_t i = 0; i < bl.times.size(); ++i) {
        if (bl.times[i] < run.schedule.tActivate)
            continue;
        if (std::abs(bl.values[i] - blb.values[i]) >=
            0.9 * params.vdd) {
            run.tSense = bl.times[i] - run.schedule.tActivate;
            break;
        }
    }
    return run;
}

} // namespace circuit
} // namespace hifi
