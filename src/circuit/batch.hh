/**
 * @file
 * Lockstep batched transient engine for Monte-Carlo sweeps.
 *
 * Every sensingYield trial shares one netlist topology, one sparse
 * structure, and one symbolic LU — only the four latch vthDelta values
 * change.  BatchSimulator exploits that: it runs a block of B trials
 * ("lanes") through one time loop with structure-of-arrays workspaces
 * (`values[slot][lane]`, `rhs[row][lane]`), one Newton loop advancing
 * all lanes with per-lane convergence masks, and a batched numeric LU
 * that replays the cached elimination program across lanes
 * (SparseLu::factorLanes / solveLanes).
 *
 * Bit-identical contract: each lane's arithmetic is exactly the scalar
 * Simulator's — same operand order per value, same damped update, same
 * convergence comparison.  A lane that converges is *retired*: its
 * iterate and branch currents freeze, mirroring the scalar early-exit
 * `break`, while the remaining lanes keep iterating.  A lane whose
 * batched factorization hits a negligible pivot re-stamps itself and
 * runs the same dense partial-pivoting fallback as the scalar engine
 * (shared solveDenseCsr).  tests/test_circuit.cc asserts lane-vs-
 * scalar equality bitwise across topologies, batch remainders, and a
 * forced fallback lane.
 */

#ifndef HIFI_CIRCUIT_BATCH_HH
#define HIFI_CIRCUIT_BATCH_HH

#include <cstdint>
#include <vector>

#include "circuit/netlist.hh"
#include "circuit/solver.hh"

namespace hifi
{
namespace circuit
{

/**
 * Batched transient simulator over a fixed netlist.
 *
 * Construction caches the shared MNA structure and sizes the SoA
 * workspaces for up to `maxLanes` lanes; run() solves any block of
 * 1..maxLanes lanes in lockstep.  Per-lane MOSFET threshold offsets
 * are held inside the simulator (setVthDelta) so the shared netlist is
 * never mutated; offsets default to each device's own vthDelta at
 * construction time.  The referenced netlist must outlive the
 * simulator; like the scalar engine, value patches are allowed between
 * runs but topology changes require a new instance.
 */
class BatchSimulator
{
  public:
    BatchSimulator(const Netlist &netlist, size_t maxLanes);

    size_t maxLanes() const { return maxLanes_; }

    /// Set lane `lane`'s threshold offset for netlist MOSFET
    /// `mosfetIndex` (the value scalar runs would put in vthDelta).
    void setVthDelta(size_t lane, size_t mosfetIndex, double delta);

    /**
     * Testing hook: route this lane through the dense fallback on
     * every Newton iteration, making it execute exactly the scalar
     * LinearSolver::Dense arithmetic while its neighbours stay on the
     * batched sparse path.
     */
    void setForceDenseFallback(size_t lane, bool on);

    /**
     * Run `lanes` transients in lockstep and return one TranResult
     * per lane — bitwise identical to `lanes` scalar Simulator runs
     * over the same netlist with the same per-lane vthDelta patches.
     */
    std::vector<TranResult> run(const TranParams &params, size_t lanes);

  private:
    /// Re-stamp lane `lane` into scalar-layout vals/rhs buffers (for
    /// the per-lane dense fallback).
    void restampLane(size_t lane, size_t lanes,
                     const std::vector<double> &base, double *vals,
                     double *rhs);

    /// Portable MOSFET linearization of every active lane into the
    /// SoA work matrix/RHS (exact scalar-restamp arithmetic per lane).
    void stampLanesScalar(size_t lanes, const uint8_t *active);

#if HIFI_SIMD_AVX2_COMPILED
    /**
     * AVX2 form of the lane stamp: four lanes per register, with the
     * MOSFET operating-region branches turned into blends.  Every
     * lane's operation sequence (and therefore rounding) is exactly
     * the scalar form's; retired lanes are stamped too — their SoA
     * columns are dead, and skipping them would only cost a branch.
     */
    HIFI_AVX2_TARGET void stampLanesAvx2(size_t lanes);

    /**
     * AVX2 Newton state update: branch currents, unclamped max-|delta|
     * per lane (written to `maxDelta`), and the damped voltage update.
     * Retired lanes keep their frozen state via blend-masked stores;
     * their maxDelta entries are garbage the caller must ignore.
     * Comparisons are compare+blend (not min/max) so NaN propagation
     * matches the scalar std::clamp / std::max exactly.
     */
    HIFI_AVX2_TARGET void updateLanesAvx2(size_t lanes,
                                          const uint8_t *active,
                                          double maxStepVolts,
                                          double *maxDelta);
#endif

    const Netlist &netlist_;
    MnaStructure st_;
    size_t maxLanes_ = 0;

    std::vector<double> vthDelta_;    ///< [mosfet * maxLanes + lane]
    std::vector<uint8_t> forceDense_; ///< [lane]

    // SoA workspaces, `[slot-or-row * lanes + lane]`, sized for
    // maxLanes at construction and reused across runs.
    std::vector<double> baseVals_;      ///< shared static stamp [slot]
    std::vector<double> baseValsStep0_; ///< IC-pinned variant [slot]
    std::vector<double> baseSplat_;      ///< baseVals_ splatted to SoA
    std::vector<double> baseSplatStep0_; ///< step-0 variant, SoA
    std::vector<double> workVals_;
    std::vector<double> rhsStep_;
    std::vector<double> rhsWork_;
    std::vector<double> x_;
    std::vector<double> v_; ///< [node * lanes + lane], ground row 0
    std::vector<double> capPrev_;
    std::vector<double> capIPrev_;
    std::vector<double> capGeq_; ///< per capacitor (lane-independent)
    std::vector<double> branchCurrents_;
    std::vector<uint8_t> okLanes_;

    // Scalar per-lane scratch for the dense fallback path.
    std::vector<double> laneVals_;
    std::vector<double> laneRhs_;
    std::vector<double> laneX_;
    std::vector<double> denseA_;
    std::vector<double> denseB_;
};

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_BATCH_HH
