/**
 * @file
 * Analog netlist representation for sense-amplifier simulation.
 *
 * Devices: resistor, capacitor, piecewise-linear voltage source, and a
 * level-1 (square law) MOSFET.  That is the standard fidelity used by
 * public DRAM SA models (CROW, REM run SPICE level-appropriate decks);
 * what the paper shows to matter are the W/L ratios fed into the model,
 * which we take from the measured datasets.
 */

#ifndef HIFI_CIRCUIT_NETLIST_HH
#define HIFI_CIRCUIT_NETLIST_HH

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/waveform.hh"

namespace hifi
{
namespace circuit
{

/// Node identifier; node 0 is ground.
using NodeId = int;
constexpr NodeId kGround = 0;

/// MOSFET polarity.
enum class MosType { Nmos, Pmos };

/** Level-1 MOSFET model card. */
struct MosModel
{
    MosType type = MosType::Nmos;

    /// Zero-bias threshold voltage (V); positive for NMOS.
    double vth = 0.45;

    /// Process transconductance k' = mu * Cox (A/V^2).
    double kp = 120e-6;

    /// Channel-length modulation (1/V).
    double lambda = 0.05;
};

/** MOSFET instance: model plus geometry and a mismatch offset. */
struct Mosfet
{
    std::string name;
    MosModel model;
    NodeId drain = kGround;
    NodeId gate = kGround;
    NodeId source = kGround;

    /// Width and length in nm (converted to the W/L ratio internally).
    double widthNm = 100.0;
    double lengthNm = 40.0;

    /// Per-instance threshold shift (V), e.g. from Monte-Carlo mismatch.
    double vthDelta = 0.0;

    double wOverL() const { return widthNm / lengthNm; }
};

struct Resistor
{
    std::string name;
    NodeId a = kGround;
    NodeId b = kGround;
    double ohms = 1.0;
};

struct Capacitor
{
    std::string name;
    NodeId a = kGround;
    NodeId b = kGround;
    double farads = 1e-15;

    /// Initial voltage across (a - b) at t = 0.
    double initialVolts = 0.0;
};

/** Ideal voltage source following a piecewise-linear waveform. */
struct VSource
{
    std::string name;
    NodeId pos = kGround;
    NodeId neg = kGround;
    Pwl waveform;
};

/** A flat analog netlist. */
class Netlist
{
  public:
    Netlist();

    /// Create a named node; returns its id.
    NodeId addNode(const std::string &name);

    /// Node count including ground.
    size_t numNodes() const { return nodeNames_.size(); }

    const std::string &nodeName(NodeId id) const;

    /// Find a node id by name; throws std::out_of_range if missing.
    NodeId node(const std::string &name) const;

    void addResistor(const std::string &name, NodeId a, NodeId b,
                     double ohms);
    void addCapacitor(const std::string &name, NodeId a, NodeId b,
                      double farads, double initial_volts = 0.0);
    void addVSource(const std::string &name, NodeId pos, NodeId neg,
                    Pwl waveform);
    /// Adds a MOSFET and returns its index (for later mismatch edits).
    size_t addMosfet(Mosfet mosfet);

    /**
     * Mutable access to one MOSFET for value patches between solver
     * runs (e.g. Monte-Carlo vthDelta edits); the index is the one
     * addMosfet returned.  Throws std::out_of_range on a bad index.
     */
    Mosfet &mosfet(size_t index) { return mosfets_.at(index); }

    const std::vector<Resistor> &resistors() const { return resistors_; }
    const std::vector<Capacitor> &capacitors() const
    {
        return capacitors_;
    }
    const std::vector<VSource> &vsources() const { return vsources_; }
    const std::vector<Mosfet> &mosfets() const { return mosfets_; }
    std::vector<Mosfet> &mosfets() { return mosfets_; }

  private:
    void checkNode(NodeId id) const;

    std::vector<std::string> nodeNames_;
    std::vector<Resistor> resistors_;
    std::vector<Capacitor> capacitors_;
    std::vector<VSource> vsources_;
    std::vector<Mosfet> mosfets_;
};

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_NETLIST_HH
