/**
 * @file
 * Monte-Carlo threshold-mismatch analysis of sensing yield.
 *
 * The latching reliability of a SA is set by manufacturing asymmetries
 * between the cross-coupled transistors (Section II-A).  Following the
 * Pelgrom model, the per-device threshold spread is
 * sigma_Vth = A_VT / sqrt(W * L); larger W/L ratios therefore sense
 * more reliably, which is why the paper calls models with inflated
 * transistor dimensions "optimistic" (Section VI-A).  Offset
 * cancellation compensates the latch asymmetry, which this module
 * demonstrates quantitatively.
 */

#ifndef HIFI_CIRCUIT_MISMATCH_HH
#define HIFI_CIRCUIT_MISMATCH_HH

#include <cstdint>

#include "circuit/sense_amp.hh"
#include "common/rng.hh"

namespace hifi
{
namespace circuit
{

/** Monte-Carlo parameters. */
struct MismatchParams
{
    /// Pelgrom coefficient in V*nm (3 mV*um = 3 V*nm).
    double avtVnm = 3.0;

    size_t trials = 100;

    /**
     * Trial t samples its offsets from the counter-seeded stream
     * (seed, t), so the yield is a pure function of this seed — the
     * trial loop parallelizes without changing any result.
     */
    uint64_t seed = 12345;
};

/// Threshold sigma (V) for a device of the given W x L (nm).
double vthSigma(double w_nm, double l_nm, double avt_vnm);

/** Yield over the Monte-Carlo trials. */
struct YieldResult
{
    size_t trials = 0;
    size_t failures = 0;

    double failureRate() const
    {
        return trials ? static_cast<double>(failures) /
            static_cast<double>(trials) : 0.0;
    }

    /// Mean |signal before latch| across trials (V).
    double meanSignal = 0.0;
};

/**
 * Run `params.trials` activations with random threshold offsets on the
 * four latch devices and count incorrect latches.
 */
YieldResult sensingYield(const SaParams &base,
                         const MismatchParams &params,
                         const TranParams &tran = defaultSaTran());

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_MISMATCH_HH
