#include "circuit/dual_sa.hh"

#include <cmath>

namespace hifi
{
namespace circuit
{

namespace
{

constexpr double kRamp = 2e-10;

MosModel
nmos()
{
    return {MosType::Nmos, 0.45, 120e-6, 0.05};
}

MosModel
pmos()
{
    return {MosType::Pmos, 0.40, 50e-6, 0.05};
}

Mosfet
fet(const std::string &name, const MosModel &model, NodeId d, NodeId g,
    NodeId s, double w, double l)
{
    Mosfet m;
    m.name = name;
    m.model = model;
    m.drain = d;
    m.gate = g;
    m.source = s;
    m.widthNm = w;
    m.lengthNm = l;
    return m;
}

} // namespace

Netlist
buildDualSaTestbench(const DualSaParams &params, SaSchedule &schedule)
{
    const SaParams &p = params.base;
    const auto &sz = p.sizing;

    Netlist net;

    // Shared control nodes: one PEQ gate strip, one SAN/SAP rail pair,
    // one wordline driver (SA B's row is simply not selected).
    const NodeId wl = net.addNode("WL");
    const NodeId peq = net.addNode("PEQ");
    const NodeId san = net.addNode("SAN");
    const NodeId sap = net.addNode("SAP");
    const NodeId vpre = net.addNode("VPRE");

    SaSchedule s;
    s.tActivate = p.tSettle;
    s.tChargeShare = s.tActivate + 3e-10;
    s.tLatch = s.tChargeShare + p.tShare;
    s.tRestoreEnd = s.tLatch + p.tRestore;
    s.tPrechargeCmd = s.tRestoreEnd;
    s.tEnd = s.tPrechargeCmd + p.tPrecharge;

    net.addVSource("Vpre", vpre, kGround, Pwl(p.vpre));
    Pwl wl_wave(0.0);
    wl_wave.step(s.tChargeShare, p.vpp, kRamp);
    wl_wave.step(s.tPrechargeCmd, 0.0, kRamp);
    net.addVSource("Vwl", wl, kGround, std::move(wl_wave));
    Pwl peq_wave(p.vpp);
    peq_wave.step(s.tActivate, 0.0, kRamp);
    peq_wave.step(s.tPrechargeCmd + 3e-10, p.vpp, kRamp);
    net.addVSource("Vpeq", peq, kGround, std::move(peq_wave));
    Pwl san_wave(p.vpre), sap_wave(p.vpre);
    san_wave.step(s.tLatch, 0.0, kRamp);
    sap_wave.step(s.tLatch, p.vdd, kRamp);
    san_wave.step(s.tPrechargeCmd + 3e-10, p.vpre, kRamp);
    sap_wave.step(s.tPrechargeCmd + 3e-10, p.vpre, kRamp);
    net.addVSource("Vsan", san, kGround, std::move(san_wave));
    net.addVSource("Vsap", sap, kGround, std::move(sap_wave));

    // Two classic SAs on the shared rails.
    auto add_sa = [&](const std::string &tag, bool bit,
                      bool has_selected_row) {
        const NodeId bl = net.addNode(tag + "_BL");
        const NodeId blb = net.addNode(tag + "_BLB");
        net.addCapacitor(tag + "Cbl", bl, kGround, p.blCapF, p.vpre);
        net.addCapacitor(tag + "Cblb", blb, kGround, p.blCapF,
                         p.vpre);
        if (has_selected_row) {
            const NodeId cn = net.addNode(tag + "_CN");
            net.addCapacitor(tag + "Ccell", cn, kGround, p.cellCapF,
                             bit ? p.vdd : 0.0);
            net.addMosfet(fet(tag + "Macc", nmos(), bl, wl, cn, 90,
                              45));
        }
        // A tiny structural asymmetry so the rowless SA's latch does
        // not sit on an unstable equilibrium forever.
        Mosfet mn1 = fet(tag + "Mn1", nmos(), bl, blb, san, sz.nsaW,
                         sz.nsaL);
        mn1.vthDelta = 2e-3;
        net.addMosfet(mn1);
        net.addMosfet(fet(tag + "Mn2", nmos(), blb, bl, san, sz.nsaW,
                          sz.nsaL));
        net.addMosfet(fet(tag + "Mp1", pmos(), bl, blb, sap, sz.psaW,
                          sz.psaL));
        net.addMosfet(fet(tag + "Mp2", pmos(), blb, bl, sap, sz.psaW,
                          sz.psaL));
        net.addMosfet(fet(tag + "Mpre1", nmos(), bl, peq, vpre,
                          sz.preW, sz.preL));
        net.addMosfet(fet(tag + "Mpre2", nmos(), blb, peq, vpre,
                          sz.preW, sz.preL));
        net.addMosfet(fet(tag + "Meq", nmos(), bl, peq, blb, sz.eqW,
                          sz.eqL));
    };
    add_sa("A", params.bitA, true);
    add_sa("B", params.bitB, !params.activateOnlyA);

    schedule = s;
    return net;
}

DualSaRun
simulateSharedControl(const DualSaParams &params,
                      const TranParams &tran)
{
    const SaParams &p = params.base;
    SaSchedule s;
    Netlist net = buildDualSaTestbench(params, s);

    TranParams tp = tran;
    tp.tstop = s.tEnd;
    Simulator sim(net);

    DualSaRun run;
    run.schedule = s;
    run.tran = sim.run(tp);

    const double t_probe = s.tRestoreEnd - tp.dt;
    const double a_diff = run.tran.trace("A_BL").at(t_probe) -
        run.tran.trace("A_BLB").at(t_probe);
    run.aLatchedCorrectly =
        a_diff * (params.bitA ? 1.0 : -1.0) > 0.5 * p.vdd;

    run.bSeparation = std::abs(run.tran.trace("B_BL").at(t_probe) -
                               run.tran.trace("B_BLB").at(t_probe));
    run.bDisturbed = run.bSeparation > 0.5 * p.vdd;
    return run;
}

} // namespace circuit
} // namespace hifi
