#include "circuit/solver.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/telemetry.hh"

namespace hifi
{
namespace circuit
{

namespace
{

/// Below this dimension LinearSolver::Auto picks the dense engine.
constexpr size_t kSparseCutoff = 8;

/// Pivot magnitude below which a factorization is treated as singular.
constexpr double kPivotTiny = 1e-18;

std::string
upperCased(std::string text)
{
    for (auto &ch : text)
        ch = static_cast<char>(
            std::toupper(static_cast<unsigned char>(ch)));
    return text;
}

} // namespace

const Trace &
TranResult::trace(const std::string &node) const
{
    auto it = traces.find(node);
    if (it == traces.end())
        throw std::out_of_range("TranResult::trace: no node " + node);
    return it->second;
}

double
TranResult::sourceEnergy(const std::string &source_name) const
{
    const Trace &i = trace("I(" + source_name + ")");

    // Resolve the source's voltage trace through the upper-cased name
    // index ("Vpre" drives node "VPRE"; "Vsan" drives node "SAN" via
    // the name without its leading 'V').  Built once per result; both
    // the index build and the old per-call scan iterate the trace map
    // in the same order, so the first case-insensitive match wins
    // either way.
    if (upperIndex_.empty())
        for (const auto &[name, tr] : traces)
            upperIndex_.emplace(upperCased(name), &tr);

    const Trace *v = nullptr;
    auto it = upperIndex_.find(upperCased(source_name));
    if (it == upperIndex_.end() && source_name.size() > 1)
        it = upperIndex_.find(upperCased(source_name.substr(1)));
    if (it != upperIndex_.end())
        v = it->second;
    if (!v)
        throw std::out_of_range(
            "sourceEnergy: cannot locate the voltage trace for " +
            source_name);

    double energy = 0.0;
    for (size_t k = 1; k < i.times.size(); ++k) {
        const double dt = i.times[k] - i.times[k - 1];
        const double p0 = v->values[k - 1] * i.values[k - 1];
        const double p1 = v->values[k] * i.values[k];
        energy += 0.5 * (p0 + p1) * dt;
    }
    return energy;
}

std::vector<double>
solveDense(std::vector<std::vector<double>> &a, std::vector<double> &b)
{
    const size_t n = a.size();
    if (n == 0 || b.size() != n)
        throw std::invalid_argument("solveDense: bad dimensions");

    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        double best = std::abs(a[col][col]);
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > best) {
                best = std::abs(a[row][col]);
                pivot = row;
            }
        }
        if (best < kPivotTiny)
            throw std::runtime_error("solveDense: singular matrix");
        if (pivot != col) {
            std::swap(a[pivot], a[col]);
            std::swap(b[pivot], b[col]);
        }
        // Eliminate below.
        for (size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (size_t k = i + 1; k < n; ++k)
            sum -= a[i][k] * x[k];
        x[i] = sum / a[i][i];
    }
    return x;
}

// --- SparseLu --------------------------------------------------------

void
SparseLu::analyze(size_t dim,
                  const std::vector<std::pair<int, int>> &entries)
{
    if (dim == 0)
        throw std::invalid_argument("SparseLu: empty system");
    dim_ = dim;
    const int n = static_cast<int>(dim);

    // Dense boolean working pattern: fine for the tens-of-nodes MNA
    // systems this targets, and only touched here (once per structure).
    std::vector<uint8_t> pat(dim * dim, 0);
    for (const auto &[r, c] : entries) {
        if (r < 0 || c < 0 || r >= n || c >= n)
            throw std::invalid_argument("SparseLu: entry out of range");
        pat[static_cast<size_t>(r) * dim + static_cast<size_t>(c)] = 1;
    }
    auto at = [&](int r, int c) -> uint8_t & {
        return pat[static_cast<size_t>(r) * dim +
                   static_cast<size_t>(c)];
    };

    // Symbolic Markowitz with a static pivot order.  Pivots prefer
    // diagonal or structurally symmetric entries: on MNA matrices the
    // dangerous numerically-vanishing entries (MOSFET gate couplings
    // in cutoff) are exactly the structurally one-sided ones.
    std::vector<uint8_t> rowActive(dim, 1), colActive(dim, 1);
    std::vector<int> pivRow(dim, -1), pivCol(dim, -1);
    std::vector<int> rowCount(dim), colCount(dim);
    for (int k = 0; k < n; ++k) {
        std::fill(rowCount.begin(), rowCount.end(), 0);
        std::fill(colCount.begin(), colCount.end(), 0);
        for (int r = 0; r < n; ++r) {
            if (!rowActive[r])
                continue;
            for (int c = 0; c < n; ++c) {
                if (!colActive[c] || !at(r, c))
                    continue;
                ++rowCount[r];
                ++colCount[c];
            }
        }
        long best = std::numeric_limits<long>::max();
        int bi = -1, bj = -1;
        bool bestDiag = false;
        for (int pass = 0; pass < 2 && bi < 0; ++pass) {
            for (int r = 0; r < n; ++r) {
                if (!rowActive[r])
                    continue;
                for (int c = 0; c < n; ++c) {
                    if (!colActive[c] || !at(r, c))
                        continue;
                    const bool diag = r == c;
                    if (pass == 0 && !diag && !at(c, r))
                        continue; // pass 0: diagonal/symmetric only
                    const long cost =
                        static_cast<long>(rowCount[r] - 1) *
                        static_cast<long>(colCount[c] - 1);
                    if (cost < best ||
                        (cost == best && diag && !bestDiag)) {
                        best = cost;
                        bi = r;
                        bj = c;
                        bestDiag = diag;
                    }
                }
            }
        }
        if (bi < 0)
            throw std::invalid_argument(
                "SparseLu: structurally singular pattern");
        pivRow[k] = bi;
        pivCol[k] = bj;

        // Fill-in of this elimination step.
        for (int r = 0; r < n; ++r) {
            if (!rowActive[r] || r == bi || !at(r, bj))
                continue;
            for (int c = 0; c < n; ++c) {
                if (!colActive[c] || c == bj || !at(bi, c))
                    continue;
                at(r, c) = 1;
            }
        }
        rowActive[bi] = 0;
        colActive[bj] = 0;
    }

    // CSR layout of the full (post-fill) pattern.
    rowPtr_.assign(dim + 1, 0);
    colIdx_.clear();
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c)
            if (at(r, c))
                colIdx_.push_back(c);
        rowPtr_[static_cast<size_t>(r) + 1] =
            static_cast<int>(colIdx_.size());
    }

    // Compile the elimination into flat index programs.  The final
    // pattern restricted to the rows/cols still active at step k is
    // exactly the evolving pattern at step k (fill never touches
    // eliminated rows or columns), so replaying over it is consistent.
    std::vector<int> stepOfCol(dim, -1);
    for (int k = 0; k < n; ++k)
        stepOfCol[pivCol[k]] = k;

    steps_.clear();
    rowOps_.clear();
    pairTarget_.clear();
    pairSrc_.clear();
    uSlots_.clear();
    uVars_.clear();
    rowActive.assign(dim, 1);
    colActive.assign(dim, 1);
    std::vector<int> prSlots, prCols;
    for (int k = 0; k < n; ++k) {
        const int i = pivRow[k], j = pivCol[k];
        Step st;
        st.pivotSlot = slot(i, j);
        st.pivotRow = i;
        st.pivotCol = j;

        prSlots.clear();
        prCols.clear();
        for (int idx = rowPtr_[i]; idx < rowPtr_[i + 1]; ++idx) {
            const int c = colIdx_[idx];
            if (colActive[c] && c != j) {
                prSlots.push_back(idx);
                prCols.push_back(c);
            }
        }

        st.rowOpBegin = static_cast<int>(rowOps_.size());
        for (int r = 0; r < n; ++r) {
            if (!rowActive[r] || r == i)
                continue;
            const int fs = slot(r, j);
            if (fs < 0)
                continue;
            RowOp op;
            op.factorSlot = fs;
            op.row = r;
            op.pairBegin = static_cast<int>(pairTarget_.size());
            for (size_t q = 0; q < prSlots.size(); ++q) {
                pairTarget_.push_back(slot(r, prCols[q]));
                pairSrc_.push_back(prSlots[q]);
            }
            op.pairEnd = static_cast<int>(pairTarget_.size());
            rowOps_.push_back(op);
        }
        st.rowOpEnd = static_cast<int>(rowOps_.size());

        st.uBegin = static_cast<int>(uSlots_.size());
        for (int idx = rowPtr_[i]; idx < rowPtr_[i + 1]; ++idx) {
            const int c = colIdx_[idx];
            if (c != j && stepOfCol[c] > k) {
                uSlots_.push_back(idx);
                uVars_.push_back(c);
            }
        }
        st.uEnd = static_cast<int>(uSlots_.size());
        steps_.push_back(st);

        rowActive[i] = 0;
        colActive[j] = 0;
    }
    scratch_.assign(dim, 0.0);
}

int
SparseLu::slot(int row, int col) const
{
    if (row < 0 || col < 0 || row >= static_cast<int>(dim_) ||
        col >= static_cast<int>(dim_))
        return -1;
    const auto begin = colIdx_.begin() + rowPtr_[row];
    const auto end = colIdx_.begin() + rowPtr_[row + 1];
    const auto it = std::lower_bound(begin, end, col);
    if (it == end || *it != col)
        return -1;
    return static_cast<int>(it - colIdx_.begin());
}

bool
SparseLu::factor(double *values)
{
    for (const Step &st : steps_) {
        const double p = values[st.pivotSlot];
        if (std::abs(p) < kPivotTiny)
            return false;
        const double inv = 1.0 / p;
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            const double f = values[op.factorSlot] * inv;
            values[op.factorSlot] = f;
            for (int q = op.pairBegin; q < op.pairEnd; ++q)
                values[pairTarget_[q]] -= f * values[pairSrc_[q]];
        }
    }
    return true;
}

void
SparseLu::solve(const double *values, const double *b, double *x)
{
    double *y = scratch_.data();
    std::copy(b, b + dim_, y);
    // Forward: replay the row operations on the RHS.
    for (const Step &st : steps_) {
        const double piv = y[st.pivotRow];
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            y[op.row] -= values[op.factorSlot] * piv;
        }
    }
    // Backward: eliminate unknowns in reverse pivot order.
    for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
        const Step &st = *it;
        double sum = y[st.pivotRow];
        for (int q = st.uBegin; q < st.uEnd; ++q)
            sum -= values[uSlots_[q]] * x[uVars_[q]];
        x[st.pivotCol] = sum / values[st.pivotSlot];
    }
}

// --- MOSFET model ----------------------------------------------------

MosEval
evalMosfet(const Mosfet &m, double vd, double vg, double vs)
{
    const double sign = (m.model.type == MosType::Nmos) ? 1.0 : -1.0;

    // Map to an NMOS-equivalent frame (negate voltages for PMOS).
    double eq_d = sign * vd;
    double eq_g = sign * vg;
    double eq_s = sign * vs;

    // The device is symmetric: operate on (high, low) terminals.
    const bool swapped = eq_d < eq_s;
    if (swapped)
        std::swap(eq_d, eq_s);

    const double vgs = eq_g - eq_s;
    const double vds = eq_d - eq_s;
    const double vth = m.model.vth + m.vthDelta;
    const double beta = m.model.kp * m.wOverL();
    const double vov = vgs - vth;

    double id = 0.0, gm = 0.0, gds = 0.0;
    if (vov <= 0.0) {
        // Cutoff: tiny output conductance keeps the Jacobian regular.
        gds = 1e-12;
        id = gds * vds;
    } else if (vds < vov) {
        // Linear (triode) region.
        id = beta * (vov * vds - 0.5 * vds * vds);
        gm = beta * vds;
        gds = beta * (vov - vds);
    } else {
        // Saturation with channel-length modulation.
        const double lam = m.model.lambda;
        id = 0.5 * beta * vov * vov * (1.0 + lam * vds);
        gm = beta * vov * (1.0 + lam * vds);
        gds = 0.5 * beta * vov * vov * lam;
    }

    // Map back: current into the *actual* drain terminal.
    const double s = swapped ? -1.0 : 1.0;
    MosEval ev;
    ev.id = sign * s * id;
    // d(eq voltage)/d(actual voltage) = sign, and I_D = sign*s*id, so
    // the sign factors cancel into s alone.
    // Under a swap the actual drain is the low terminal of the channel,
    // whose partial is -(gm + gds); the sign factors from the PMOS
    // voltage negation cancel, leaving only the swap factor s.
    ev.dIdVd = s * (swapped ? -(gm + gds) : gds);
    ev.dIdVg = s * gm;
    ev.dIdVs = s * (swapped ? gds : -(gm + gds));
    return ev;
}

// --- Simulator -------------------------------------------------------

namespace
{

long
rowOf(NodeId n)
{
    return n == kGround ? -1 : static_cast<long>(n - 1);
}

} // namespace

Simulator::Simulator(const Netlist &netlist) : netlist_(netlist)
{
    const size_t num_nodes = netlist_.numNodes(); // includes ground
    nv_ = num_nodes - 1;
    ns_ = netlist_.vsources().size();
    dim_ = nv_ + ns_;
    if (dim_ == 0)
        throw std::invalid_argument("Simulator: empty netlist");

    // Structural pattern, mirroring the stamping below.
    std::vector<std::pair<int, int>> entries;
    auto add = [&](long r, long c) {
        if (r >= 0 && c >= 0)
            entries.emplace_back(static_cast<int>(r),
                                 static_cast<int>(c));
    };
    for (size_t n = 0; n < nv_; ++n)
        add(static_cast<long>(n), static_cast<long>(n));
    for (const auto &r : netlist_.resistors()) {
        const long ra = rowOf(r.a), rb = rowOf(r.b);
        add(ra, ra);
        add(rb, rb);
        add(ra, rb);
        add(rb, ra);
    }
    for (const auto &c : netlist_.capacitors()) {
        const long ra = rowOf(c.a), rb = rowOf(c.b);
        add(ra, ra);
        add(rb, rb);
        add(ra, rb);
        add(rb, ra);
    }
    for (const auto &m : netlist_.mosfets()) {
        const long rd = rowOf(m.drain), rg = rowOf(m.gate),
                   rs = rowOf(m.source);
        for (const long row : {rd, rs})
            for (const long col : {rd, rg, rs})
                add(row, col);
    }
    for (size_t si = 0; si < ns_; ++si) {
        const auto &src = netlist_.vsources()[si];
        const long brow = static_cast<long>(nv_ + si);
        const long rp = rowOf(src.pos), rn = rowOf(src.neg);
        add(rp, brow);
        add(brow, rp);
        add(rn, brow);
        add(brow, rn);
    }
    lu_.analyze(dim_, entries);

    // Stamp slot tables over the analyzed pattern.
    auto slot = [&](long r, long c) -> int {
        return (r >= 0 && c >= 0)
            ? lu_.slot(static_cast<int>(r), static_cast<int>(c))
            : -1;
    };
    gminSlots_.resize(nv_);
    for (size_t n = 0; n < nv_; ++n)
        gminSlots_[n] = slot(static_cast<long>(n), static_cast<long>(n));
    resistorSlots_.clear();
    for (const auto &r : netlist_.resistors()) {
        const long ra = rowOf(r.a), rb = rowOf(r.b);
        resistorSlots_.push_back({slot(ra, ra), slot(rb, rb),
                                  slot(ra, rb), slot(rb, ra)});
    }
    capacitorSlots_.clear();
    for (const auto &c : netlist_.capacitors()) {
        const long ra = rowOf(c.a), rb = rowOf(c.b);
        capacitorSlots_.push_back({slot(ra, ra), slot(rb, rb),
                                   slot(ra, rb), slot(rb, ra), ra, rb});
    }
    mosfetSlots_.clear();
    for (const auto &m : netlist_.mosfets()) {
        const long rows[2] = {rowOf(m.drain), rowOf(m.source)};
        const long cols[3] = {rowOf(m.drain), rowOf(m.gate),
                              rowOf(m.source)};
        MosfetSlots ms;
        for (int r = 0; r < 2; ++r) {
            ms.rhs[r] = rows[r];
            for (int c = 0; c < 3; ++c)
                ms.m[r][c] = slot(rows[r], cols[c]);
        }
        mosfetSlots_.push_back(ms);
    }
    sourceSlots_.clear();
    for (size_t si = 0; si < ns_; ++si) {
        const auto &src = netlist_.vsources()[si];
        const long brow = static_cast<long>(nv_ + si);
        const long rp = rowOf(src.pos), rn = rowOf(src.neg);
        sourceSlots_.push_back({slot(rp, brow), slot(brow, rp),
                                slot(rn, brow), slot(brow, rn),
                                nv_ + si});
    }

    // Workspace.
    baseVals_.assign(lu_.slots(), 0.0);
    baseValsStep0_.assign(lu_.slots(), 0.0);
    workVals_.assign(lu_.slots(), 0.0);
    rhsStep_.assign(dim_, 0.0);
    rhsWork_.assign(dim_, 0.0);
    x_.assign(dim_, 0.0);
    v_.assign(num_nodes, 0.0);
    capPrev_.assign(netlist_.capacitors().size(), 0.0);
    capIPrev_.assign(netlist_.capacitors().size(), 0.0);
    capGeq_.assign(netlist_.capacitors().size(), 0.0);
    branchCurrents_.assign(ns_, 0.0);
    denseA_.assign(dim_ * dim_, 0.0);
    denseB_.assign(dim_, 0.0);
}

void
Simulator::assembleBase(const TranParams &params, bool step0,
                        std::vector<double> &base) const
{
    std::fill(base.begin(), base.end(), 0.0);

    // gmin to ground on every node.
    for (size_t n = 0; n < nv_; ++n)
        base[gminSlots_[n]] += params.gmin;

    // Resistors.
    for (size_t ri = 0; ri < resistorSlots_.size(); ++ri) {
        const auto &sl = resistorSlots_[ri];
        const double g = 1.0 / netlist_.resistors()[ri].ohms;
        if (sl.aa >= 0)
            base[sl.aa] += g;
        if (sl.bb >= 0)
            base[sl.bb] += g;
        if (sl.ab >= 0)
            base[sl.ab] -= g;
        if (sl.ba >= 0)
            base[sl.ba] -= g;
    }

    // Capacitor companion conductances (the companion *current* is
    // per-step state and lives in the RHS, not here).  At step 0 the
    // conductance is scaled up to pin the initial condition.
    const double k =
        params.integrator == Integrator::Trapezoidal ? 2.0 : 1.0;
    const double scale = step0 ? 1e3 : 1.0;
    for (size_t ci = 0; ci < capacitorSlots_.size(); ++ci) {
        const auto &sl = capacitorSlots_[ci];
        const double geq =
            scale * k * netlist_.capacitors()[ci].farads / params.dt;
        if (sl.aa >= 0)
            base[sl.aa] += geq;
        if (sl.bb >= 0)
            base[sl.bb] += geq;
        if (sl.ab >= 0)
            base[sl.ab] -= geq;
        if (sl.ba >= 0)
            base[sl.ba] -= geq;
    }

    // Voltage-source incidence.
    for (const auto &sl : sourceSlots_) {
        if (sl.pb >= 0) {
            base[sl.pb] += 1.0;
            base[sl.bp] += 1.0;
        }
        if (sl.nb >= 0) {
            base[sl.nb] -= 1.0;
            base[sl.bn] -= 1.0;
        }
    }
}

void
Simulator::solveDenseFallback(const std::vector<double> &vals)
{
    const size_t n = dim_;
    std::fill(denseA_.begin(), denseA_.end(), 0.0);
    for (size_t row = 0; row < n; ++row) {
        // Scatter the CSR row into the dense scratch.
        // (lu_ keeps the pattern; fill slots hold zeros.)
        for (int idx = lu_.rowPtr()[row]; idx < lu_.rowPtr()[row + 1];
             ++idx)
            denseA_[row * n + static_cast<size_t>(lu_.colIdx()[idx])] =
                vals[static_cast<size_t>(idx)];
    }
    std::copy(rhsWork_.begin(), rhsWork_.end(), denseB_.begin());

    double *a = denseA_.data();
    double *b = denseB_.data();
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        double best = std::abs(a[col * n + col]);
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row * n + col]) > best) {
                best = std::abs(a[row * n + col]);
                pivot = row;
            }
        }
        if (best < kPivotTiny)
            throw std::runtime_error("solveDense: singular matrix");
        if (pivot != col) {
            std::swap_ranges(a + pivot * n, a + (pivot + 1) * n,
                             a + col * n);
            std::swap(b[pivot], b[col]);
        }
        for (size_t row = col + 1; row < n; ++row) {
            const double f = a[row * n + col] / a[col * n + col];
            if (f == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a[row * n + k] -= f * a[col * n + k];
            b[row] -= f * b[col];
        }
    }
    for (size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (size_t k = i + 1; k < n; ++k)
            sum -= a[i * n + k] * x_[k];
        x_[i] = sum / a[i * n + i];
    }
}

TranResult
Simulator::run(const TranParams &params)
{
    const telemetry::Span tspan("solver.tran");
    const bool instrumented = telemetry::enabled();
    size_t lu_refactorizations = 0;
    size_t dense_fallbacks = 0;
    size_t dense_solves = 0;

    const size_t num_nodes = netlist_.numNodes();
    const bool trap = params.integrator == Integrator::Trapezoidal;
    const bool sparse = params.solver == LinearSolver::Sparse ||
        (params.solver == LinearSolver::Auto && dim_ >= kSparseCutoff);

    // Reset the reusable state.
    std::fill(v_.begin(), v_.end(), 0.0);
    const auto &caps = netlist_.capacitors();
    for (size_t ci = 0; ci < caps.size(); ++ci) {
        capPrev_[ci] = caps[ci].initialVolts;
        capIPrev_[ci] = 0.0;
        capGeq_[ci] = (trap ? 2.0 : 1.0) * caps[ci].farads / params.dt;
    }
    assembleBase(params, true, baseValsStep0_);
    assembleBase(params, false, baseVals_);

    const size_t steps =
        static_cast<size_t>(std::ceil(params.tstop / params.dt));

    // Traces with the name lookups hoisted out of the time loop:
    // record through precomputed slots (std::map nodes are stable, so
    // the pointers survive later insertions).
    TranResult result;
    std::vector<Trace *> nodeTrace(num_nodes, nullptr);
    std::vector<Trace *> srcTrace(ns_, nullptr);
    for (size_t n = 1; n < num_nodes; ++n) {
        Trace t;
        t.name = netlist_.nodeName(static_cast<NodeId>(n));
        auto [it, inserted] =
            result.traces.emplace(t.name, std::move(t));
        nodeTrace[n] = &it->second;
    }
    for (size_t si = 0; si < ns_; ++si) {
        Trace t;
        t.name = "I(" + netlist_.vsources()[si].name + ")";
        auto [it, inserted] =
            result.traces.emplace(t.name, std::move(t));
        srcTrace[si] = &it->second;
    }
    for (auto &[name, tr] : result.traces) {
        tr.times.reserve(steps + 1);
        tr.values.reserve(steps + 1);
    }

    const auto &mosfets = netlist_.mosfets();

    // Restamp the MOSFET linearizations (and their RHS contributions)
    // on top of the memcpy-restored static stamp.
    auto restamp = [&]() {
        std::copy(rhsStep_.begin(), rhsStep_.end(), rhsWork_.begin());
        for (size_t mi = 0; mi < mosfets.size(); ++mi) {
            const auto &m = mosfets[mi];
            const auto &sl = mosfetSlots_[mi];
            const double vd = v_[static_cast<size_t>(m.drain)];
            const double vg = v_[static_cast<size_t>(m.gate)];
            const double vs = v_[static_cast<size_t>(m.source)];
            const MosEval ev = evalMosfet(m, vd, vg, vs);

            // Residual current with the Jacobian offset folded in:
            // I(v) ~ I0 + J (v - v0)  =>  rhs -= I0 - J v0.
            const double i0 = ev.id - ev.dIdVd * vd - ev.dIdVg * vg -
                ev.dIdVs * vs;
            const double der[3] = {ev.dIdVd, ev.dIdVg, ev.dIdVs};
            for (int r = 0; r < 2; ++r) {
                if (sl.rhs[r] < 0)
                    continue;
                const double dir = r == 0 ? 1.0 : -1.0;
                for (int c = 0; c < 3; ++c)
                    if (sl.m[r][c] >= 0)
                        workVals_[sl.m[r][c]] += dir * der[c];
                rhsWork_[static_cast<size_t>(sl.rhs[r])] -= dir * i0;
            }
        }
    };

    for (size_t step = 0; step <= steps; ++step) {
        const double t = static_cast<double>(step) * params.dt;
        const double geq_scale = (step == 0) ? 1e3 : 1.0;
        const std::vector<double> &base =
            (step == 0) ? baseValsStep0_ : baseVals_;

        // Per-step RHS: capacitor companion currents and source values.
        std::fill(rhsStep_.begin(), rhsStep_.end(), 0.0);
        for (size_t ci = 0; ci < caps.size(); ++ci) {
            const auto &sl = capacitorSlots_[ci];
            const double geq = geq_scale * capGeq_[ci];
            const double ieq = geq * capPrev_[ci] +
                (trap && step > 0 ? capIPrev_[ci] : 0.0);
            if (sl.ra >= 0)
                rhsStep_[static_cast<size_t>(sl.ra)] += ieq;
            if (sl.rb >= 0)
                rhsStep_[static_cast<size_t>(sl.rb)] -= ieq;
        }
        for (size_t si = 0; si < ns_; ++si)
            rhsStep_[nv_ + si] +=
                netlist_.vsources()[si].waveform.value(t);

        bool converged = false;
        const size_t step_iter_base = result.totalNewtonIterations;
        for (int it = 0; it < params.maxNewton; ++it) {
            ++result.totalNewtonIterations;

            std::copy(base.begin(), base.end(), workVals_.begin());
            restamp();

            if (sparse) {
                if (lu_.factor(workVals_.data())) {
                    ++lu_refactorizations;
                    lu_.solve(workVals_.data(), rhsWork_.data(),
                              x_.data());
                } else {
                    // Numerically bad static pivot: re-stamp (factor
                    // ran in place) and fall back to dense with
                    // partial pivoting for this iteration.
                    ++dense_fallbacks;
                    std::copy(base.begin(), base.end(),
                              workVals_.begin());
                    restamp();
                    solveDenseFallback(workVals_);
                }
            } else {
                ++dense_solves;
                solveDenseFallback(workVals_);
            }

            // Branch currents of the voltage sources.  The MNA branch
            // variable is the current flowing from + through the
            // source to -, i.e. INTO the positive node; the delivered
            // current is its negation.
            for (size_t si = 0; si < ns_; ++si)
                branchCurrents_[si] = -x_[nv_ + si];

            // Damped update and convergence check.
            double max_delta = 0.0;
            for (size_t n = 0; n < nv_; ++n) {
                double delta = x_[n] - v_[n + 1];
                max_delta = std::max(max_delta, std::abs(delta));
                delta = std::clamp(delta, -params.maxStepVolts,
                                   params.maxStepVolts);
                v_[n + 1] += delta;
            }
            if (max_delta < params.tolVolts) {
                converged = true;
                break;
            }
        }
        if (!converged)
            ++result.nonConvergedSteps;
        if (instrumented) {
            static telemetry::Histogram &newton_hist =
                telemetry::registry().histogram(
                    "solver.newton_per_step",
                    {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64});
            newton_hist.observe(static_cast<double>(
                result.totalNewtonIterations - step_iter_base));
        }

        // Accept the step: update capacitor memory and record traces.
        for (size_t ci = 0; ci < caps.size(); ++ci) {
            const auto &c = caps[ci];
            const double v_now = v_[static_cast<size_t>(c.a)] -
                v_[static_cast<size_t>(c.b)];
            if (trap) {
                // i = geq (v_now - v_prev) - i_prev (trapezoidal).
                const double geq = geq_scale * capGeq_[ci];
                const double i_prev = step > 0 ? capIPrev_[ci] : 0.0;
                capIPrev_[ci] = geq * (v_now - capPrev_[ci]) - i_prev;
            }
            capPrev_[ci] = v_now;
        }
        for (size_t n = 1; n < num_nodes; ++n) {
            nodeTrace[n]->times.push_back(t);
            nodeTrace[n]->values.push_back(v_[n]);
        }
        for (size_t si = 0; si < ns_; ++si) {
            srcTrace[si]->times.push_back(t);
            srcTrace[si]->values.push_back(branchCurrents_[si]);
        }
    }

    if (instrumented) {
        telemetry::Registry &reg = telemetry::registry();
        static telemetry::Counter &c_runs =
            reg.counter("solver.runs");
        static telemetry::Counter &c_newton =
            reg.counter("solver.newton_iterations");
        static telemetry::Counter &c_lu =
            reg.counter("solver.lu_refactorizations");
        static telemetry::Counter &c_fallback =
            reg.counter("solver.dense_fallbacks");
        static telemetry::Counter &c_dense =
            reg.counter("solver.dense_solves");
        static telemetry::Counter &c_nonconv =
            reg.counter("solver.nonconverged_steps");
        c_runs.add(1);
        c_newton.add(result.totalNewtonIterations);
        c_lu.add(lu_refactorizations);
        c_fallback.add(dense_fallbacks);
        c_dense.add(dense_solves);
        c_nonconv.add(result.nonConvergedSteps);
    }
    return result;
}

} // namespace circuit
} // namespace hifi
