#include "circuit/solver.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace circuit
{

const Trace &
TranResult::trace(const std::string &node) const
{
    auto it = traces.find(node);
    if (it == traces.end())
        throw std::out_of_range("TranResult::trace: no node " + node);
    return it->second;
}

double
TranResult::sourceEnergy(const std::string &source_name) const
{
    const Trace &i = trace("I(" + source_name + ")");
    // The source's positive node carries its voltage relative to the
    // negative node; for the testbenches all sources are referenced
    // to ground, so the positive-node trace is the source voltage.
    // Find it by matching times with the current trace is not needed:
    // traces share the time base.
    auto upper = [](std::string text) {
        for (auto &ch : text)
            ch = static_cast<char>(std::toupper(
                static_cast<unsigned char>(ch)));
        return text;
    };
    const Trace *v = nullptr;
    // Case-insensitive match of the source name itself ("Vpre" drives
    // node "VPRE"), then of the name without its leading 'V' ("Vsan"
    // drives node "SAN").
    for (const auto &candidate :
         {upper(source_name), source_name.size() > 1
              ? upper(source_name.substr(1))
              : std::string()}) {
        if (v || candidate.empty())
            break;
        for (const auto &[name, tr] : traces) {
            if (upper(name) == candidate) {
                v = &tr;
                break;
            }
        }
    }
    if (!v)
        throw std::out_of_range(
            "sourceEnergy: cannot locate the voltage trace for " +
            source_name);

    double energy = 0.0;
    for (size_t k = 1; k < i.times.size(); ++k) {
        const double dt = i.times[k] - i.times[k - 1];
        const double p0 = v->values[k - 1] * i.values[k - 1];
        const double p1 = v->values[k] * i.values[k];
        energy += 0.5 * (p0 + p1) * dt;
    }
    return energy;
}

std::vector<double>
solveDense(std::vector<std::vector<double>> &a, std::vector<double> &b)
{
    const size_t n = a.size();
    if (n == 0 || b.size() != n)
        throw std::invalid_argument("solveDense: bad dimensions");

    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        double best = std::abs(a[col][col]);
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > best) {
                best = std::abs(a[row][col]);
                pivot = row;
            }
        }
        if (best < 1e-18)
            throw std::runtime_error("solveDense: singular matrix");
        if (pivot != col) {
            std::swap(a[pivot], a[col]);
            std::swap(b[pivot], b[col]);
        }
        // Eliminate below.
        for (size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (size_t k = i + 1; k < n; ++k)
            sum -= a[i][k] * x[k];
        x[i] = sum / a[i][i];
    }
    return x;
}

MosEval
evalMosfet(const Mosfet &m, double vd, double vg, double vs)
{
    const double sign = (m.model.type == MosType::Nmos) ? 1.0 : -1.0;

    // Map to an NMOS-equivalent frame (negate voltages for PMOS).
    double eq_d = sign * vd;
    double eq_g = sign * vg;
    double eq_s = sign * vs;

    // The device is symmetric: operate on (high, low) terminals.
    const bool swapped = eq_d < eq_s;
    if (swapped)
        std::swap(eq_d, eq_s);

    const double vgs = eq_g - eq_s;
    const double vds = eq_d - eq_s;
    const double vth = m.model.vth + m.vthDelta;
    const double beta = m.model.kp * m.wOverL();
    const double vov = vgs - vth;

    double id = 0.0, gm = 0.0, gds = 0.0;
    if (vov <= 0.0) {
        // Cutoff: tiny output conductance keeps the Jacobian regular.
        gds = 1e-12;
        id = gds * vds;
    } else if (vds < vov) {
        // Linear (triode) region.
        id = beta * (vov * vds - 0.5 * vds * vds);
        gm = beta * vds;
        gds = beta * (vov - vds);
    } else {
        // Saturation with channel-length modulation.
        const double lam = m.model.lambda;
        id = 0.5 * beta * vov * vov * (1.0 + lam * vds);
        gm = beta * vov * (1.0 + lam * vds);
        gds = 0.5 * beta * vov * vov * lam;
    }

    // Map back: current into the *actual* drain terminal.
    const double s = swapped ? -1.0 : 1.0;
    MosEval ev;
    ev.id = sign * s * id;
    // d(eq voltage)/d(actual voltage) = sign, and I_D = sign*s*id, so
    // the sign factors cancel into s alone.
    // Under a swap the actual drain is the low terminal of the channel,
    // whose partial is -(gm + gds); the sign factors from the PMOS
    // voltage negation cancel, leaving only the swap factor s.
    ev.dIdVd = s * (swapped ? -(gm + gds) : gds);
    ev.dIdVg = s * gm;
    ev.dIdVs = s * (swapped ? gds : -(gm + gds));
    return ev;
}

Simulator::Simulator(const Netlist &netlist) : netlist_(netlist) {}

TranResult
Simulator::run(const TranParams &params) const
{
    const size_t num_nodes = netlist_.numNodes(); // includes ground
    const size_t nv = num_nodes - 1;              // unknown voltages
    const size_t ns = netlist_.vsources().size(); // branch currents
    const size_t dim = nv + ns;
    if (dim == 0)
        throw std::invalid_argument("Simulator: empty netlist");

    auto row_of = [&](NodeId n) -> long {
        return n == kGround ? -1 : static_cast<long>(n - 1);
    };

    // State.
    std::vector<double> v(num_nodes, 0.0); // node voltages (gnd = 0)
    std::vector<double> cap_prev;          // capacitor voltages at t-h
    std::vector<double> cap_iprev;         // capacitor currents at t-h
    cap_prev.reserve(netlist_.capacitors().size());
    cap_iprev.assign(netlist_.capacitors().size(), 0.0);
    for (const auto &c : netlist_.capacitors())
        cap_prev.push_back(c.initialVolts);
    const bool trap =
        params.integrator == Integrator::Trapezoidal;

    TranResult result;
    for (size_t n = 1; n < num_nodes; ++n) {
        Trace t;
        t.name = netlist_.nodeName(static_cast<NodeId>(n));
        result.traces.emplace(t.name, std::move(t));
    }
    for (const auto &src : netlist_.vsources()) {
        Trace t;
        t.name = "I(" + src.name + ")";
        result.traces.emplace(t.name, std::move(t));
    }
    std::vector<double> branch_currents(ns, 0.0);

    const size_t steps =
        static_cast<size_t>(std::ceil(params.tstop / params.dt));

    std::vector<std::vector<double>> a(dim, std::vector<double>(dim));
    std::vector<double> rhs(dim);

    for (size_t step = 0; step <= steps; ++step) {
        const double t = static_cast<double>(step) * params.dt;
        const double geq_scale = (step == 0) ? 1e3 : 1.0;

        bool converged = false;
        for (int it = 0; it < params.maxNewton; ++it) {
            ++result.totalNewtonIterations;
            for (auto &rowvec : a)
                std::fill(rowvec.begin(), rowvec.end(), 0.0);
            std::fill(rhs.begin(), rhs.end(), 0.0);

            // gmin to ground on every node.
            for (size_t n = 0; n < nv; ++n)
                a[n][n] += params.gmin;

            // Resistors.
            for (const auto &r : netlist_.resistors()) {
                const double g = 1.0 / r.ohms;
                const long ra = row_of(r.a), rb = row_of(r.b);
                if (ra >= 0)
                    a[ra][ra] += g;
                if (rb >= 0)
                    a[rb][rb] += g;
                if (ra >= 0 && rb >= 0) {
                    a[ra][rb] -= g;
                    a[rb][ra] -= g;
                }
            }

            // Capacitors: backward-Euler or trapezoidal companion.
            // At step 0 the companion conductance is scaled up to pin
            // the initial condition (equivalent to a tiny pre-step).
            for (size_t ci = 0; ci < netlist_.capacitors().size();
                 ++ci) {
                const auto &c = netlist_.capacitors()[ci];
                const double k = trap ? 2.0 : 1.0;
                const double geq =
                    geq_scale * k * c.farads / params.dt;
                const double ieq = geq * cap_prev[ci] +
                    (trap && step > 0 ? cap_iprev[ci] : 0.0);
                const long ra = row_of(c.a), rb = row_of(c.b);
                if (ra >= 0) {
                    a[ra][ra] += geq;
                    rhs[ra] += ieq;
                }
                if (rb >= 0) {
                    a[rb][rb] += geq;
                    rhs[rb] -= ieq;
                }
                if (ra >= 0 && rb >= 0) {
                    a[ra][rb] -= geq;
                    a[rb][ra] -= geq;
                }
            }

            // MOSFETs: linearize around the current iterate.
            for (const auto &m : netlist_.mosfets()) {
                const double vd = v[static_cast<size_t>(m.drain)];
                const double vg = v[static_cast<size_t>(m.gate)];
                const double vs = v[static_cast<size_t>(m.source)];
                const MosEval ev = evalMosfet(m, vd, vg, vs);
                const long rd = row_of(m.drain);
                const long rg = row_of(m.gate);
                const long rs = row_of(m.source);

                // Residual current with the Jacobian offset folded in:
                // I(v) ~ I0 + J (v - v0)  =>  rhs -= I0 - J v0.
                const double i0 = ev.id - ev.dIdVd * vd -
                    ev.dIdVg * vg - ev.dIdVs * vs;
                auto stamp_row = [&](long row, double dir) {
                    if (row < 0)
                        return;
                    if (rd >= 0)
                        a[row][rd] += dir * ev.dIdVd;
                    if (rg >= 0)
                        a[row][rg] += dir * ev.dIdVg;
                    if (rs >= 0)
                        a[row][rs] += dir * ev.dIdVs;
                    rhs[row] -= dir * i0;
                };
                stamp_row(rd, +1.0); // current leaves node into drain
                stamp_row(rs, -1.0); // and returns out of the source
            }

            // Voltage sources: branch-current rows.
            for (size_t si = 0; si < netlist_.vsources().size(); ++si) {
                const auto &src = netlist_.vsources()[si];
                const size_t brow = nv + si;
                const long rp = row_of(src.pos), rn = row_of(src.neg);
                if (rp >= 0) {
                    a[rp][brow] += 1.0;
                    a[brow][rp] += 1.0;
                }
                if (rn >= 0) {
                    a[rn][brow] -= 1.0;
                    a[brow][rn] -= 1.0;
                }
                rhs[brow] += src.waveform.value(t);
            }

            auto a_copy = a;
            auto rhs_copy = rhs;
            const std::vector<double> x = solveDense(a_copy, rhs_copy);

            // Branch currents of the voltage sources.  The MNA branch
            // variable is the current flowing from + through the
            // source to -, i.e. INTO the positive node; the delivered
            // current is its negation.
            for (size_t si = 0; si < ns; ++si)
                branch_currents[si] = -x[nv + si];

            // Damped update and convergence check.
            double max_delta = 0.0;
            for (size_t n = 0; n < nv; ++n) {
                double delta = x[n] - v[n + 1];
                max_delta = std::max(max_delta, std::abs(delta));
                delta = std::clamp(delta, -params.maxStepVolts,
                                   params.maxStepVolts);
                v[n + 1] += delta;
            }
            if (max_delta < params.tolVolts) {
                converged = true;
                break;
            }
        }
        if (!converged)
            ++result.nonConvergedSteps;

        // Accept the step: update capacitor memory and record traces.
        for (size_t ci = 0; ci < netlist_.capacitors().size(); ++ci) {
            const auto &c = netlist_.capacitors()[ci];
            const double v_now = v[static_cast<size_t>(c.a)] -
                v[static_cast<size_t>(c.b)];
            if (trap) {
                // i = geq (v_now - v_prev) - i_prev (trapezoidal).
                const double geq =
                    geq_scale * 2.0 * c.farads / params.dt;
                const double i_prev = step > 0 ? cap_iprev[ci] : 0.0;
                cap_iprev[ci] = geq * (v_now - cap_prev[ci]) - i_prev;
            }
            cap_prev[ci] = v_now;
        }
        for (size_t n = 1; n < num_nodes; ++n) {
            auto &tr = result.traces.at(
                netlist_.nodeName(static_cast<NodeId>(n)));
            tr.times.push_back(t);
            tr.values.push_back(v[n]);
        }
        for (size_t si = 0; si < ns; ++si) {
            auto &tr = result.traces.at(
                "I(" + netlist_.vsources()[si].name + ")");
            tr.times.push_back(t);
            tr.values.push_back(branch_currents[si]);
        }
    }
    return result;
}

} // namespace circuit
} // namespace hifi
