#include "circuit/solver.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#if HIFI_SIMD_AVX2_COMPILED
#include <immintrin.h>
#endif

#include "common/telemetry.hh"

namespace hifi
{
namespace circuit
{

namespace
{

/// Pivot magnitude below which a factorization is treated as singular.
constexpr double kPivotTiny = 1e-18;

std::string
upperCased(std::string text)
{
    for (auto &ch : text)
        ch = static_cast<char>(
            std::toupper(static_cast<unsigned char>(ch)));
    return text;
}

} // namespace

const Trace &
TranResult::trace(const std::string &node) const
{
    auto it = traces.find(node);
    if (it == traces.end())
        throw std::out_of_range("TranResult::trace: no node " + node);
    return it->second;
}

double
TranResult::sourceEnergy(const std::string &source_name) const
{
    const Trace &i = trace("I(" + source_name + ")");

    // Resolve the source's voltage trace through the upper-cased name
    // index ("Vpre" drives node "VPRE"; "Vsan" drives node "SAN" via
    // the name without its leading 'V').  Built once per result; both
    // the index build and the old per-call scan iterate the trace map
    // in the same order, so the first case-insensitive match wins
    // either way.
    if (upperIndex_.empty())
        for (const auto &[name, tr] : traces)
            upperIndex_.emplace(upperCased(name), &tr);

    const Trace *v = nullptr;
    auto it = upperIndex_.find(upperCased(source_name));
    if (it == upperIndex_.end() && source_name.size() > 1)
        it = upperIndex_.find(upperCased(source_name.substr(1)));
    if (it != upperIndex_.end())
        v = it->second;
    if (!v)
        throw std::out_of_range(
            "sourceEnergy: cannot locate the voltage trace for " +
            source_name);

    double energy = 0.0;
    for (size_t k = 1; k < i.times.size(); ++k) {
        const double dt = i.times[k] - i.times[k - 1];
        const double p0 = v->values[k - 1] * i.values[k - 1];
        const double p1 = v->values[k] * i.values[k];
        energy += 0.5 * (p0 + p1) * dt;
    }
    return energy;
}

std::vector<double>
solveDense(std::vector<std::vector<double>> &a, std::vector<double> &b)
{
    const size_t n = a.size();
    if (n == 0 || b.size() != n)
        throw std::invalid_argument("solveDense: bad dimensions");

    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        double best = std::abs(a[col][col]);
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > best) {
                best = std::abs(a[row][col]);
                pivot = row;
            }
        }
        if (best < kPivotTiny)
            throw std::runtime_error("solveDense: singular matrix");
        if (pivot != col) {
            std::swap(a[pivot], a[col]);
            std::swap(b[pivot], b[col]);
        }
        // Eliminate below.
        for (size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (size_t k = i + 1; k < n; ++k)
            sum -= a[i][k] * x[k];
        x[i] = sum / a[i][i];
    }
    return x;
}

// --- SparseLu --------------------------------------------------------

void
SparseLu::analyze(size_t dim,
                  const std::vector<std::pair<int, int>> &entries)
{
    if (dim == 0)
        throw std::invalid_argument("SparseLu: empty system");
    dim_ = dim;
    const int n = static_cast<int>(dim);

    // Dense boolean working pattern: fine for the tens-of-nodes MNA
    // systems this targets, and only touched here (once per structure).
    std::vector<uint8_t> pat(dim * dim, 0);
    for (const auto &[r, c] : entries) {
        if (r < 0 || c < 0 || r >= n || c >= n)
            throw std::invalid_argument("SparseLu: entry out of range");
        pat[static_cast<size_t>(r) * dim + static_cast<size_t>(c)] = 1;
    }
    auto at = [&](int r, int c) -> uint8_t & {
        return pat[static_cast<size_t>(r) * dim +
                   static_cast<size_t>(c)];
    };

    // Symbolic Markowitz with a static pivot order.  Pivots prefer
    // diagonal or structurally symmetric entries: on MNA matrices the
    // dangerous numerically-vanishing entries (MOSFET gate couplings
    // in cutoff) are exactly the structurally one-sided ones.
    std::vector<uint8_t> rowActive(dim, 1), colActive(dim, 1);
    std::vector<int> pivRow(dim, -1), pivCol(dim, -1);
    std::vector<int> rowCount(dim), colCount(dim);
    for (int k = 0; k < n; ++k) {
        std::fill(rowCount.begin(), rowCount.end(), 0);
        std::fill(colCount.begin(), colCount.end(), 0);
        for (int r = 0; r < n; ++r) {
            if (!rowActive[r])
                continue;
            for (int c = 0; c < n; ++c) {
                if (!colActive[c] || !at(r, c))
                    continue;
                ++rowCount[r];
                ++colCount[c];
            }
        }
        long best = std::numeric_limits<long>::max();
        int bi = -1, bj = -1;
        bool bestDiag = false;
        for (int pass = 0; pass < 2 && bi < 0; ++pass) {
            for (int r = 0; r < n; ++r) {
                if (!rowActive[r])
                    continue;
                for (int c = 0; c < n; ++c) {
                    if (!colActive[c] || !at(r, c))
                        continue;
                    const bool diag = r == c;
                    if (pass == 0 && !diag && !at(c, r))
                        continue; // pass 0: diagonal/symmetric only
                    const long cost =
                        static_cast<long>(rowCount[r] - 1) *
                        static_cast<long>(colCount[c] - 1);
                    if (cost < best ||
                        (cost == best && diag && !bestDiag)) {
                        best = cost;
                        bi = r;
                        bj = c;
                        bestDiag = diag;
                    }
                }
            }
        }
        if (bi < 0)
            throw std::invalid_argument(
                "SparseLu: structurally singular pattern");
        pivRow[k] = bi;
        pivCol[k] = bj;

        // Fill-in of this elimination step.
        for (int r = 0; r < n; ++r) {
            if (!rowActive[r] || r == bi || !at(r, bj))
                continue;
            for (int c = 0; c < n; ++c) {
                if (!colActive[c] || c == bj || !at(bi, c))
                    continue;
                at(r, c) = 1;
            }
        }
        rowActive[bi] = 0;
        colActive[bj] = 0;
    }

    // CSR layout of the full (post-fill) pattern.
    rowPtr_.assign(dim + 1, 0);
    colIdx_.clear();
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c)
            if (at(r, c))
                colIdx_.push_back(c);
        rowPtr_[static_cast<size_t>(r) + 1] =
            static_cast<int>(colIdx_.size());
    }

    // Compile the elimination into flat index programs.  The final
    // pattern restricted to the rows/cols still active at step k is
    // exactly the evolving pattern at step k (fill never touches
    // eliminated rows or columns), so replaying over it is consistent.
    std::vector<int> stepOfCol(dim, -1);
    for (int k = 0; k < n; ++k)
        stepOfCol[pivCol[k]] = k;

    steps_.clear();
    rowOps_.clear();
    pairTarget_.clear();
    pairSrc_.clear();
    uSlots_.clear();
    uVars_.clear();
    rowActive.assign(dim, 1);
    colActive.assign(dim, 1);
    std::vector<int> prSlots, prCols;
    for (int k = 0; k < n; ++k) {
        const int i = pivRow[k], j = pivCol[k];
        Step st;
        st.pivotSlot = slot(i, j);
        st.pivotRow = i;
        st.pivotCol = j;

        prSlots.clear();
        prCols.clear();
        for (int idx = rowPtr_[i]; idx < rowPtr_[i + 1]; ++idx) {
            const int c = colIdx_[idx];
            if (colActive[c] && c != j) {
                prSlots.push_back(idx);
                prCols.push_back(c);
            }
        }

        st.rowOpBegin = static_cast<int>(rowOps_.size());
        for (int r = 0; r < n; ++r) {
            if (!rowActive[r] || r == i)
                continue;
            const int fs = slot(r, j);
            if (fs < 0)
                continue;
            RowOp op;
            op.factorSlot = fs;
            op.row = r;
            op.pairBegin = static_cast<int>(pairTarget_.size());
            for (size_t q = 0; q < prSlots.size(); ++q) {
                pairTarget_.push_back(slot(r, prCols[q]));
                pairSrc_.push_back(prSlots[q]);
            }
            op.pairEnd = static_cast<int>(pairTarget_.size());
            rowOps_.push_back(op);
        }
        st.rowOpEnd = static_cast<int>(rowOps_.size());

        st.uBegin = static_cast<int>(uSlots_.size());
        for (int idx = rowPtr_[i]; idx < rowPtr_[i + 1]; ++idx) {
            const int c = colIdx_[idx];
            if (c != j && stepOfCol[c] > k) {
                uSlots_.push_back(idx);
                uVars_.push_back(c);
            }
        }
        st.uEnd = static_cast<int>(uSlots_.size());
        steps_.push_back(st);

        rowActive[i] = 0;
        colActive[j] = 0;
    }
    scratch_.assign(dim, 0.0);
}

int
SparseLu::slot(int row, int col) const
{
    if (row < 0 || col < 0 || row >= static_cast<int>(dim_) ||
        col >= static_cast<int>(dim_))
        return -1;
    const auto begin = colIdx_.begin() + rowPtr_[row];
    const auto end = colIdx_.begin() + rowPtr_[row + 1];
    const auto it = std::lower_bound(begin, end, col);
    if (it == end || *it != col)
        return -1;
    return static_cast<int>(it - colIdx_.begin());
}

template <size_t L>
void
SparseLu::factorLanesFixed(double *values, uint8_t *ok)
{
    double inv[L];
    double f[L];
    for (const Step &st : steps_) {
        const double *pv = values + static_cast<size_t>(st.pivotSlot) * L;
        for (size_t l = 0; l < L; ++l) {
            const bool good = ok[l] && std::abs(pv[l]) >= kPivotTiny;
            if (ok[l] && !good)
                ok[l] = 0;
            // Dead lanes get inv = 0: the row operations below then
            // stream every lane branch-free, multiplying dead lanes
            // by zero instead of testing them.
            inv[l] = good ? 1.0 / pv[l] : 0.0;
        }
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            double *fv = values + static_cast<size_t>(op.factorSlot) * L;
            for (size_t l = 0; l < L; ++l) {
                f[l] = fv[l] * inv[l];
                fv[l] = f[l];
            }
            for (int q = op.pairBegin; q < op.pairEnd; ++q) {
                double *tgt =
                    values + static_cast<size_t>(pairTarget_[q]) * L;
                const double *src =
                    values + static_cast<size_t>(pairSrc_[q]) * L;
                for (size_t l = 0; l < L; ++l)
                    tgt[l] -= f[l] * src[l];
            }
        }
    }
}

void
SparseLu::factorLanesVar(double *values, size_t lanes, uint8_t *ok)
{
    const size_t L = lanes;
    std::vector<double> inv(L), f(L);
    for (const Step &st : steps_) {
        const double *pv = values + static_cast<size_t>(st.pivotSlot) * L;
        for (size_t l = 0; l < L; ++l) {
            const bool good = ok[l] && std::abs(pv[l]) >= kPivotTiny;
            if (ok[l] && !good)
                ok[l] = 0;
            inv[l] = good ? 1.0 / pv[l] : 0.0;
        }
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            double *fv = values + static_cast<size_t>(op.factorSlot) * L;
            for (size_t l = 0; l < L; ++l) {
                f[l] = fv[l] * inv[l];
                fv[l] = f[l];
            }
            for (int q = op.pairBegin; q < op.pairEnd; ++q) {
                double *tgt =
                    values + static_cast<size_t>(pairTarget_[q]) * L;
                const double *src =
                    values + static_cast<size_t>(pairSrc_[q]) * L;
                for (size_t l = 0; l < L; ++l)
                    tgt[l] -= f[l] * src[l];
            }
        }
    }
}

#if HIFI_SIMD_AVX2_COMPILED

namespace
{
// Lane groups (of 4 doubles) the AVX2 kernels keep in registers; wider
// batches fall back to the portable forms.
constexpr size_t kMaxLaneGroups = 16;
} // namespace

HIFI_AVX2_TARGET void
SparseLu::factorLanesAvx2(double *values, size_t lanes, uint8_t *ok)
{
    const size_t G = lanes / 4;
    const __m256d tiny = _mm256_set1_pd(kPivotTiny);
    const __m256d absmask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d one = _mm256_set1_pd(1.0);

    // Byte flags -> full-width lane masks, kept in registers across
    // the elimination program and written back at the end.
    __m256d okm[kMaxLaneGroups];
    for (size_t g = 0; g < G; ++g)
        okm[g] = _mm256_castsi256_pd(_mm256_set_epi64x(
            ok[g * 4 + 3] ? -1 : 0, ok[g * 4 + 2] ? -1 : 0,
            ok[g * 4 + 1] ? -1 : 0, ok[g * 4 + 0] ? -1 : 0));

    __m256d inv[kMaxLaneGroups];
    for (const Step &st : steps_) {
        const double *pvp =
            values + static_cast<size_t>(st.pivotSlot) * lanes;
        for (size_t g = 0; g < G; ++g) {
            const __m256d pv = _mm256_loadu_pd(pvp + 4 * g);
            // good = ok && |pivot| >= kPivotTiny (quiet-ordered GE:
            // NaN pivots fail, like the scalar comparison).
            const __m256d good = _mm256_and_pd(
                okm[g], _mm256_cmp_pd(_mm256_and_pd(pv, absmask),
                                      tiny, _CMP_GE_OQ));
            okm[g] = good;
            // Dead lanes get inv = +0.0, the branch-free convention
            // shared with the portable kernels.
            inv[g] =
                _mm256_and_pd(_mm256_div_pd(one, pv), good);
        }
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            double *fvp =
                values + static_cast<size_t>(op.factorSlot) * lanes;
            for (size_t g = 0; g < G; ++g)
                _mm256_storeu_pd(
                    fvp + 4 * g,
                    _mm256_mul_pd(_mm256_loadu_pd(fvp + 4 * g),
                                  inv[g]));
            for (int q = op.pairBegin; q < op.pairEnd; ++q) {
                double *tgt =
                    values + static_cast<size_t>(pairTarget_[q]) *
                        lanes;
                const double *src =
                    values + static_cast<size_t>(pairSrc_[q]) * lanes;
                for (size_t g = 0; g < G; ++g)
                    _mm256_storeu_pd(
                        tgt + 4 * g,
                        _mm256_sub_pd(
                            _mm256_loadu_pd(tgt + 4 * g),
                            _mm256_mul_pd(
                                _mm256_loadu_pd(fvp + 4 * g),
                                _mm256_loadu_pd(src + 4 * g))));
            }
        }
    }
    for (size_t g = 0; g < G; ++g) {
        const int m = _mm256_movemask_pd(okm[g]);
        for (int j = 0; j < 4; ++j)
            ok[g * 4 + j] = static_cast<uint8_t>((m >> j) & 1);
    }
}

HIFI_AVX2_TARGET void
SparseLu::solveLanesAvx2(const double *values, const double *b,
                         double *x, size_t lanes)
{
    double *y = laneScratch_.data();
    std::copy(b, b + dim_ * lanes, y);
    const size_t G = lanes / 4;
    __m256d piv[kMaxLaneGroups];
    for (const Step &st : steps_) {
        const double *py =
            y + static_cast<size_t>(st.pivotRow) * lanes;
        for (size_t g = 0; g < G; ++g)
            piv[g] = _mm256_loadu_pd(py + 4 * g);
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            const double *fv =
                values + static_cast<size_t>(op.factorSlot) * lanes;
            double *ry = y + static_cast<size_t>(op.row) * lanes;
            for (size_t g = 0; g < G; ++g)
                _mm256_storeu_pd(
                    ry + 4 * g,
                    _mm256_sub_pd(
                        _mm256_loadu_pd(ry + 4 * g),
                        _mm256_mul_pd(_mm256_loadu_pd(fv + 4 * g),
                                      piv[g])));
        }
    }
    for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
        const Step &st = *it;
        const double *py =
            y + static_cast<size_t>(st.pivotRow) * lanes;
        const double *pv =
            values + static_cast<size_t>(st.pivotSlot) * lanes;
        double *xo = x + static_cast<size_t>(st.pivotCol) * lanes;
        for (size_t g = 0; g < G; ++g) {
            __m256d sum = _mm256_loadu_pd(py + 4 * g);
            for (int q = st.uBegin; q < st.uEnd; ++q) {
                const double *uv =
                    values + static_cast<size_t>(uSlots_[q]) * lanes;
                const double *xv =
                    x + static_cast<size_t>(uVars_[q]) * lanes;
                sum = _mm256_sub_pd(
                    sum, _mm256_mul_pd(_mm256_loadu_pd(uv + 4 * g),
                                       _mm256_loadu_pd(xv + 4 * g)));
            }
            _mm256_storeu_pd(
                xo + 4 * g,
                _mm256_div_pd(sum, _mm256_loadu_pd(pv + 4 * g)));
        }
    }
}

#endif // HIFI_SIMD_AVX2_COMPILED

void
SparseLu::factorLanes(double *values, size_t lanes, uint8_t *ok)
{
#if HIFI_SIMD_AVX2_COMPILED
    if (lanes % 4 == 0 && lanes / 4 <= kMaxLaneGroups &&
        common::simd::avx2()) {
        factorLanesAvx2(values, lanes, ok);
        return;
    }
#endif
    // Fixed-width instantiations give the compiler constant trip
    // counts on the lane loops (full unroll / vectorization at -O2);
    // other widths run the generic form with identical arithmetic.
    switch (lanes) {
      case 4:
        factorLanesFixed<4>(values, ok);
        return;
      case 8:
        factorLanesFixed<8>(values, ok);
        return;
      case 16:
        factorLanesFixed<16>(values, ok);
        return;
      default:
        factorLanesVar(values, lanes, ok);
        return;
    }
}

template <size_t L>
void
SparseLu::solveLanesFixed(const double *values, const double *b,
                          double *x)
{
    double *y = laneScratch_.data();
    std::copy(b, b + dim_ * L, y);
    double piv[L];
    double sum[L];
    // Forward: replay the row operations on every lane of the RHS.
    for (const Step &st : steps_) {
        const double *py = y + static_cast<size_t>(st.pivotRow) * L;
        for (size_t l = 0; l < L; ++l)
            piv[l] = py[l];
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            const double *fv =
                values + static_cast<size_t>(op.factorSlot) * L;
            double *ry = y + static_cast<size_t>(op.row) * L;
            for (size_t l = 0; l < L; ++l)
                ry[l] -= fv[l] * piv[l];
        }
    }
    // Backward: eliminate unknowns in reverse pivot order.
    for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
        const Step &st = *it;
        const double *py = y + static_cast<size_t>(st.pivotRow) * L;
        for (size_t l = 0; l < L; ++l)
            sum[l] = py[l];
        for (int q = st.uBegin; q < st.uEnd; ++q) {
            const double *uv =
                values + static_cast<size_t>(uSlots_[q]) * L;
            const double *xv = x + static_cast<size_t>(uVars_[q]) * L;
            for (size_t l = 0; l < L; ++l)
                sum[l] -= uv[l] * xv[l];
        }
        const double *pv =
            values + static_cast<size_t>(st.pivotSlot) * L;
        double *xo = x + static_cast<size_t>(st.pivotCol) * L;
        for (size_t l = 0; l < L; ++l)
            xo[l] = sum[l] / pv[l];
    }
}

void
SparseLu::solveLanesVar(const double *values, const double *b,
                        double *x, size_t lanes)
{
    const size_t L = lanes;
    double *y = laneScratch_.data();
    std::copy(b, b + dim_ * L, y);
    std::vector<double> piv(L), sum(L);
    for (const Step &st : steps_) {
        const double *py = y + static_cast<size_t>(st.pivotRow) * L;
        for (size_t l = 0; l < L; ++l)
            piv[l] = py[l];
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            const double *fv =
                values + static_cast<size_t>(op.factorSlot) * L;
            double *ry = y + static_cast<size_t>(op.row) * L;
            for (size_t l = 0; l < L; ++l)
                ry[l] -= fv[l] * piv[l];
        }
    }
    for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
        const Step &st = *it;
        const double *py = y + static_cast<size_t>(st.pivotRow) * L;
        for (size_t l = 0; l < L; ++l)
            sum[l] = py[l];
        for (int q = st.uBegin; q < st.uEnd; ++q) {
            const double *uv =
                values + static_cast<size_t>(uSlots_[q]) * L;
            const double *xv = x + static_cast<size_t>(uVars_[q]) * L;
            for (size_t l = 0; l < L; ++l)
                sum[l] -= uv[l] * xv[l];
        }
        const double *pv =
            values + static_cast<size_t>(st.pivotSlot) * L;
        double *xo = x + static_cast<size_t>(st.pivotCol) * L;
        for (size_t l = 0; l < L; ++l)
            xo[l] = sum[l] / pv[l];
    }
}

void
SparseLu::solveLanes(const double *values, const double *b, double *x,
                     size_t lanes)
{
    if (laneScratch_.size() < dim_ * lanes)
        laneScratch_.resize(dim_ * lanes);
#if HIFI_SIMD_AVX2_COMPILED
    if (lanes % 4 == 0 && lanes / 4 <= kMaxLaneGroups &&
        common::simd::avx2()) {
        solveLanesAvx2(values, b, x, lanes);
        return;
    }
#endif
    switch (lanes) {
      case 4:
        solveLanesFixed<4>(values, b, x);
        return;
      case 8:
        solveLanesFixed<8>(values, b, x);
        return;
      case 16:
        solveLanesFixed<16>(values, b, x);
        return;
      default:
        solveLanesVar(values, b, x, lanes);
        return;
    }
}

bool
SparseLu::factor(double *values)
{
    for (const Step &st : steps_) {
        const double p = values[st.pivotSlot];
        if (std::abs(p) < kPivotTiny)
            return false;
        const double inv = 1.0 / p;
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            const double f = values[op.factorSlot] * inv;
            values[op.factorSlot] = f;
            for (int q = op.pairBegin; q < op.pairEnd; ++q)
                values[pairTarget_[q]] -= f * values[pairSrc_[q]];
        }
    }
    return true;
}

void
SparseLu::solve(const double *values, const double *b, double *x)
{
    double *y = scratch_.data();
    std::copy(b, b + dim_, y);
    // Forward: replay the row operations on the RHS.
    for (const Step &st : steps_) {
        const double piv = y[st.pivotRow];
        for (int oi = st.rowOpBegin; oi < st.rowOpEnd; ++oi) {
            const RowOp &op = rowOps_[oi];
            y[op.row] -= values[op.factorSlot] * piv;
        }
    }
    // Backward: eliminate unknowns in reverse pivot order.
    for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
        const Step &st = *it;
        double sum = y[st.pivotRow];
        for (int q = st.uBegin; q < st.uEnd; ++q)
            sum -= values[uSlots_[q]] * x[uVars_[q]];
        x[st.pivotCol] = sum / values[st.pivotSlot];
    }
}

// --- MOSFET model ----------------------------------------------------

MosEval
evalMosfet(const Mosfet &m, double vd, double vg, double vs)
{
    return evalMosfet(m, m.vthDelta, vd, vg, vs);
}

MosEval
evalMosfet(const Mosfet &m, double vth_delta, double vd, double vg,
           double vs)
{
    const double sign = (m.model.type == MosType::Nmos) ? 1.0 : -1.0;

    // Map to an NMOS-equivalent frame (negate voltages for PMOS).
    double eq_d = sign * vd;
    double eq_g = sign * vg;
    double eq_s = sign * vs;

    // The device is symmetric: operate on (high, low) terminals.
    const bool swapped = eq_d < eq_s;
    if (swapped)
        std::swap(eq_d, eq_s);

    const double vgs = eq_g - eq_s;
    const double vds = eq_d - eq_s;
    const double vth = m.model.vth + vth_delta;
    const double beta = m.model.kp * m.wOverL();
    const double vov = vgs - vth;

    double id = 0.0, gm = 0.0, gds = 0.0;
    if (vov <= 0.0) {
        // Cutoff: tiny output conductance keeps the Jacobian regular.
        gds = 1e-12;
        id = gds * vds;
    } else if (vds < vov) {
        // Linear (triode) region.
        id = beta * (vov * vds - 0.5 * vds * vds);
        gm = beta * vds;
        gds = beta * (vov - vds);
    } else {
        // Saturation with channel-length modulation.
        const double lam = m.model.lambda;
        id = 0.5 * beta * vov * vov * (1.0 + lam * vds);
        gm = beta * vov * (1.0 + lam * vds);
        gds = 0.5 * beta * vov * vov * lam;
    }

    // Map back: current into the *actual* drain terminal.
    const double s = swapped ? -1.0 : 1.0;
    MosEval ev;
    ev.id = sign * s * id;
    // d(eq voltage)/d(actual voltage) = sign, and I_D = sign*s*id, so
    // the sign factors cancel into s alone.
    // Under a swap the actual drain is the low terminal of the channel,
    // whose partial is -(gm + gds); the sign factors from the PMOS
    // voltage negation cancel, leaving only the swap factor s.
    ev.dIdVd = s * (swapped ? -(gm + gds) : gds);
    ev.dIdVg = s * gm;
    ev.dIdVs = s * (swapped ? gds : -(gm + gds));
    return ev;
}

// --- MnaStructure ----------------------------------------------------

namespace
{

long
rowOf(NodeId n)
{
    return n == kGround ? -1 : static_cast<long>(n - 1);
}

} // namespace

MnaStructure::MnaStructure(const Netlist &netlist) : net(netlist)
{
    const size_t num_nodes = net.numNodes(); // includes ground
    nv = num_nodes - 1;
    ns = net.vsources().size();
    dim = nv + ns;
    if (dim == 0)
        throw std::invalid_argument("Simulator: empty netlist");

    // Structural pattern, mirroring the stamping below.
    std::vector<std::pair<int, int>> entries;
    auto add = [&](long r, long c) {
        if (r >= 0 && c >= 0)
            entries.emplace_back(static_cast<int>(r),
                                 static_cast<int>(c));
    };
    for (size_t n = 0; n < nv; ++n)
        add(static_cast<long>(n), static_cast<long>(n));
    for (const auto &r : net.resistors()) {
        const long ra = rowOf(r.a), rb = rowOf(r.b);
        add(ra, ra);
        add(rb, rb);
        add(ra, rb);
        add(rb, ra);
    }
    for (const auto &c : net.capacitors()) {
        const long ra = rowOf(c.a), rb = rowOf(c.b);
        add(ra, ra);
        add(rb, rb);
        add(ra, rb);
        add(rb, ra);
    }
    for (const auto &m : net.mosfets()) {
        const long rd = rowOf(m.drain), rg = rowOf(m.gate),
                   rs = rowOf(m.source);
        for (const long row : {rd, rs})
            for (const long col : {rd, rg, rs})
                add(row, col);
    }
    for (size_t si = 0; si < ns; ++si) {
        const auto &src = net.vsources()[si];
        const long brow = static_cast<long>(nv + si);
        const long rp = rowOf(src.pos), rn = rowOf(src.neg);
        add(rp, brow);
        add(brow, rp);
        add(rn, brow);
        add(brow, rn);
    }
    lu.analyze(dim, entries);

    // Stamp slot tables over the analyzed pattern.
    auto slotOf = [&](long r, long c) -> int {
        return (r >= 0 && c >= 0)
            ? lu.slot(static_cast<int>(r), static_cast<int>(c))
            : -1;
    };
    gminSlots.resize(nv);
    for (size_t n = 0; n < nv; ++n)
        gminSlots[n] =
            slotOf(static_cast<long>(n), static_cast<long>(n));
    resistorSlots.clear();
    for (const auto &r : net.resistors()) {
        const long ra = rowOf(r.a), rb = rowOf(r.b);
        resistorSlots.push_back({slotOf(ra, ra), slotOf(rb, rb),
                                 slotOf(ra, rb), slotOf(rb, ra)});
    }
    capacitorSlots.clear();
    for (const auto &c : net.capacitors()) {
        const long ra = rowOf(c.a), rb = rowOf(c.b);
        capacitorSlots.push_back({slotOf(ra, ra), slotOf(rb, rb),
                                  slotOf(ra, rb), slotOf(rb, ra), ra,
                                  rb});
    }
    mosfetSlots.clear();
    for (const auto &m : net.mosfets()) {
        const long rows[2] = {rowOf(m.drain), rowOf(m.source)};
        const long cols[3] = {rowOf(m.drain), rowOf(m.gate),
                              rowOf(m.source)};
        MosfetSlots ms;
        for (int r = 0; r < 2; ++r) {
            ms.rhs[r] = rows[r];
            for (int c = 0; c < 3; ++c)
                ms.m[r][c] = slotOf(rows[r], cols[c]);
        }
        mosfetSlots.push_back(ms);
    }
    sourceSlots.clear();
    for (size_t si = 0; si < ns; ++si) {
        const auto &src = net.vsources()[si];
        const long brow = static_cast<long>(nv + si);
        const long rp = rowOf(src.pos), rn = rowOf(src.neg);
        sourceSlots.push_back({slotOf(rp, brow), slotOf(brow, rp),
                               slotOf(rn, brow), slotOf(brow, rn),
                               nv + si});
    }
}

void
MnaStructure::assembleBase(const TranParams &params, bool step0,
                           std::vector<double> &base) const
{
    std::fill(base.begin(), base.end(), 0.0);

    // gmin to ground on every node.
    for (size_t n = 0; n < nv; ++n)
        base[gminSlots[n]] += params.gmin;

    // Resistors.
    for (size_t ri = 0; ri < resistorSlots.size(); ++ri) {
        const auto &sl = resistorSlots[ri];
        const double g = 1.0 / net.resistors()[ri].ohms;
        if (sl.aa >= 0)
            base[sl.aa] += g;
        if (sl.bb >= 0)
            base[sl.bb] += g;
        if (sl.ab >= 0)
            base[sl.ab] -= g;
        if (sl.ba >= 0)
            base[sl.ba] -= g;
    }

    // Capacitor companion conductances (the companion *current* is
    // per-step state and lives in the RHS, not here).  At step 0 the
    // conductance is scaled up to pin the initial condition.
    const double k =
        params.integrator == Integrator::Trapezoidal ? 2.0 : 1.0;
    const double scale = step0 ? 1e3 : 1.0;
    for (size_t ci = 0; ci < capacitorSlots.size(); ++ci) {
        const auto &sl = capacitorSlots[ci];
        const double geq =
            scale * k * net.capacitors()[ci].farads / params.dt;
        if (sl.aa >= 0)
            base[sl.aa] += geq;
        if (sl.bb >= 0)
            base[sl.bb] += geq;
        if (sl.ab >= 0)
            base[sl.ab] -= geq;
        if (sl.ba >= 0)
            base[sl.ba] -= geq;
    }

    // Voltage-source incidence.
    for (const auto &sl : sourceSlots) {
        if (sl.pb >= 0) {
            base[sl.pb] += 1.0;
            base[sl.bp] += 1.0;
        }
        if (sl.nb >= 0) {
            base[sl.nb] -= 1.0;
            base[sl.bn] -= 1.0;
        }
    }
}

// --- Simulator -------------------------------------------------------

Simulator::Simulator(const Netlist &netlist)
    : netlist_(netlist), st_(netlist)
{
    // Workspace (sized once here, reused across runs).
    baseVals_.assign(st_.lu.slots(), 0.0);
    baseValsStep0_.assign(st_.lu.slots(), 0.0);
    workVals_.assign(st_.lu.slots(), 0.0);
    rhsStep_.assign(st_.dim, 0.0);
    rhsWork_.assign(st_.dim, 0.0);
    x_.assign(st_.dim, 0.0);
    v_.assign(netlist_.numNodes(), 0.0);
    capPrev_.assign(netlist_.capacitors().size(), 0.0);
    capIPrev_.assign(netlist_.capacitors().size(), 0.0);
    capGeq_.assign(netlist_.capacitors().size(), 0.0);
    branchCurrents_.assign(st_.ns, 0.0);
    denseA_.assign(st_.dim * st_.dim, 0.0);
    denseB_.assign(st_.dim, 0.0);
}

void
solveDenseCsr(const SparseLu &lu, const double *vals,
              const double *rhs, double *x, double *a, double *b)
{
    const size_t n = lu.dim();
    std::fill(a, a + n * n, 0.0);
    for (size_t row = 0; row < n; ++row) {
        // Scatter the CSR row into the dense scratch.
        // (lu keeps the pattern; fill slots hold zeros.)
        for (int idx = lu.rowPtr()[row]; idx < lu.rowPtr()[row + 1];
             ++idx)
            a[row * n + static_cast<size_t>(lu.colIdx()[idx])] =
                vals[static_cast<size_t>(idx)];
    }
    std::copy(rhs, rhs + n, b);

    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        double best = std::abs(a[col * n + col]);
        for (size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row * n + col]) > best) {
                best = std::abs(a[row * n + col]);
                pivot = row;
            }
        }
        if (best < kPivotTiny)
            throw std::runtime_error("solveDense: singular matrix");
        if (pivot != col) {
            std::swap_ranges(a + pivot * n, a + (pivot + 1) * n,
                             a + col * n);
            std::swap(b[pivot], b[col]);
        }
        for (size_t row = col + 1; row < n; ++row) {
            const double f = a[row * n + col] / a[col * n + col];
            if (f == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a[row * n + k] -= f * a[col * n + k];
            b[row] -= f * b[col];
        }
    }
    for (size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (size_t k = i + 1; k < n; ++k)
            sum -= a[i * n + k] * x[k];
        x[i] = sum / a[i * n + i];
    }
}

void
Simulator::solveDenseFallback(const std::vector<double> &vals)
{
    solveDenseCsr(st_.lu, vals.data(), rhsWork_.data(), x_.data(),
                  denseA_.data(), denseB_.data());
}

TranResult
Simulator::run(const TranParams &params)
{
    const telemetry::Span tspan("solver.tran");
    const bool instrumented = telemetry::enabled();
    size_t lu_refactorizations = 0;
    size_t dense_fallbacks = 0;
    size_t dense_solves = 0;

    const size_t num_nodes = netlist_.numNodes();
    const bool trap = params.integrator == Integrator::Trapezoidal;
    const bool sparse = params.solver == LinearSolver::Sparse ||
        (params.solver == LinearSolver::Auto && st_.dim >= kSparseCutoff);

    // Reset the reusable state.
    std::fill(v_.begin(), v_.end(), 0.0);
    const auto &caps = netlist_.capacitors();
    for (size_t ci = 0; ci < caps.size(); ++ci) {
        capPrev_[ci] = caps[ci].initialVolts;
        capIPrev_[ci] = 0.0;
        capGeq_[ci] = (trap ? 2.0 : 1.0) * caps[ci].farads / params.dt;
    }
    st_.assembleBase(params, true, baseValsStep0_);
    st_.assembleBase(params, false, baseVals_);

    const size_t steps =
        static_cast<size_t>(std::ceil(params.tstop / params.dt));

    // Traces with the name lookups hoisted out of the time loop:
    // record through precomputed slots (std::map nodes are stable, so
    // the pointers survive later insertions).
    TranResult result;
    std::vector<Trace *> nodeTrace(num_nodes, nullptr);
    std::vector<Trace *> srcTrace(st_.ns, nullptr);
    for (size_t n = 1; n < num_nodes; ++n) {
        Trace t;
        t.name = netlist_.nodeName(static_cast<NodeId>(n));
        auto [it, inserted] =
            result.traces.emplace(t.name, std::move(t));
        nodeTrace[n] = &it->second;
    }
    for (size_t si = 0; si < st_.ns; ++si) {
        Trace t;
        t.name = "I(" + netlist_.vsources()[si].name + ")";
        auto [it, inserted] =
            result.traces.emplace(t.name, std::move(t));
        srcTrace[si] = &it->second;
    }
    for (auto &[name, tr] : result.traces) {
        tr.times.reserve(steps + 1);
        tr.values.reserve(steps + 1);
    }

    const auto &mosfets = netlist_.mosfets();

    // Restamp the MOSFET linearizations (and their RHS contributions)
    // on top of the memcpy-restored static stamp.
    auto restamp = [&]() {
        std::copy(rhsStep_.begin(), rhsStep_.end(), rhsWork_.begin());
        for (size_t mi = 0; mi < mosfets.size(); ++mi) {
            const auto &m = mosfets[mi];
            const auto &sl = st_.mosfetSlots[mi];
            const double vd = v_[static_cast<size_t>(m.drain)];
            const double vg = v_[static_cast<size_t>(m.gate)];
            const double vs = v_[static_cast<size_t>(m.source)];
            const MosEval ev = evalMosfet(m, vd, vg, vs);

            // Residual current with the Jacobian offset folded in:
            // I(v) ~ I0 + J (v - v0)  =>  rhs -= I0 - J v0.
            const double i0 = ev.id - ev.dIdVd * vd - ev.dIdVg * vg -
                ev.dIdVs * vs;
            const double der[3] = {ev.dIdVd, ev.dIdVg, ev.dIdVs};
            for (int r = 0; r < 2; ++r) {
                if (sl.rhs[r] < 0)
                    continue;
                const double dir = r == 0 ? 1.0 : -1.0;
                for (int c = 0; c < 3; ++c)
                    if (sl.m[r][c] >= 0)
                        workVals_[sl.m[r][c]] += dir * der[c];
                rhsWork_[static_cast<size_t>(sl.rhs[r])] -= dir * i0;
            }
        }
    };

    for (size_t step = 0; step <= steps; ++step) {
        const double t = static_cast<double>(step) * params.dt;
        const double geq_scale = (step == 0) ? 1e3 : 1.0;
        const std::vector<double> &base =
            (step == 0) ? baseValsStep0_ : baseVals_;

        // Per-step RHS: capacitor companion currents and source values.
        std::fill(rhsStep_.begin(), rhsStep_.end(), 0.0);
        for (size_t ci = 0; ci < caps.size(); ++ci) {
            const auto &sl = st_.capacitorSlots[ci];
            const double geq = geq_scale * capGeq_[ci];
            const double ieq = geq * capPrev_[ci] +
                (trap && step > 0 ? capIPrev_[ci] : 0.0);
            if (sl.ra >= 0)
                rhsStep_[static_cast<size_t>(sl.ra)] += ieq;
            if (sl.rb >= 0)
                rhsStep_[static_cast<size_t>(sl.rb)] -= ieq;
        }
        for (size_t si = 0; si < st_.ns; ++si)
            rhsStep_[st_.nv + si] +=
                netlist_.vsources()[si].waveform.value(t);

        bool converged = false;
        const size_t step_iter_base = result.totalNewtonIterations;
        for (int it = 0; it < params.maxNewton; ++it) {
            ++result.totalNewtonIterations;

            std::copy(base.begin(), base.end(), workVals_.begin());
            restamp();

            if (sparse) {
                if (st_.lu.factor(workVals_.data())) {
                    ++lu_refactorizations;
                    st_.lu.solve(workVals_.data(), rhsWork_.data(),
                              x_.data());
                } else {
                    // Numerically bad static pivot: re-stamp (factor
                    // ran in place) and fall back to dense with
                    // partial pivoting for this iteration.
                    ++dense_fallbacks;
                    std::copy(base.begin(), base.end(),
                              workVals_.begin());
                    restamp();
                    solveDenseFallback(workVals_);
                }
            } else {
                ++dense_solves;
                solveDenseFallback(workVals_);
            }

            // Branch currents of the voltage sources.  The MNA branch
            // variable is the current flowing from + through the
            // source to -, i.e. INTO the positive node; the delivered
            // current is its negation.
            for (size_t si = 0; si < st_.ns; ++si)
                branchCurrents_[si] = -x_[st_.nv + si];

            // Damped update and convergence check.
            double max_delta = 0.0;
            for (size_t n = 0; n < st_.nv; ++n) {
                double delta = x_[n] - v_[n + 1];
                max_delta = std::max(max_delta, std::abs(delta));
                delta = std::clamp(delta, -params.maxStepVolts,
                                   params.maxStepVolts);
                v_[n + 1] += delta;
            }
            if (max_delta < params.tolVolts) {
                converged = true;
                break;
            }
        }
        if (!converged)
            ++result.nonConvergedSteps;
        if (instrumented) {
            static telemetry::Histogram &newton_hist =
                telemetry::registry().histogram(
                    "solver.newton_per_step",
                    {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64});
            newton_hist.observe(static_cast<double>(
                result.totalNewtonIterations - step_iter_base));
        }

        // Accept the step: update capacitor memory and record traces.
        for (size_t ci = 0; ci < caps.size(); ++ci) {
            const auto &c = caps[ci];
            const double v_now = v_[static_cast<size_t>(c.a)] -
                v_[static_cast<size_t>(c.b)];
            if (trap) {
                // i = geq (v_now - v_prev) - i_prev (trapezoidal).
                const double geq = geq_scale * capGeq_[ci];
                const double i_prev = step > 0 ? capIPrev_[ci] : 0.0;
                capIPrev_[ci] = geq * (v_now - capPrev_[ci]) - i_prev;
            }
            capPrev_[ci] = v_now;
        }
        for (size_t n = 1; n < num_nodes; ++n) {
            nodeTrace[n]->times.push_back(t);
            nodeTrace[n]->values.push_back(v_[n]);
        }
        for (size_t si = 0; si < st_.ns; ++si) {
            srcTrace[si]->times.push_back(t);
            srcTrace[si]->values.push_back(branchCurrents_[si]);
        }
    }

    if (instrumented) {
        telemetry::Registry &reg = telemetry::registry();
        static telemetry::Counter &c_runs =
            reg.counter("solver.runs");
        static telemetry::Counter &c_newton =
            reg.counter("solver.newton_iterations");
        static telemetry::Counter &c_lu =
            reg.counter("solver.lu_refactorizations");
        static telemetry::Counter &c_fallback =
            reg.counter("solver.dense_fallbacks");
        static telemetry::Counter &c_dense =
            reg.counter("solver.dense_solves");
        static telemetry::Counter &c_nonconv =
            reg.counter("solver.nonconverged_steps");
        c_runs.add(1);
        c_newton.add(result.totalNewtonIterations);
        c_lu.add(lu_refactorizations);
        c_fallback.add(dense_fallbacks);
        c_dense.add(dense_solves);
        c_nonconv.add(result.nonConvergedSteps);
    }
    return result;
}

} // namespace circuit
} // namespace hifi
