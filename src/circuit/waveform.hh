/**
 * @file
 * Control waveforms and simulation traces for the analog SA simulator.
 */

#ifndef HIFI_CIRCUIT_WAVEFORM_HH
#define HIFI_CIRCUIT_WAVEFORM_HH

#include <string>
#include <utility>
#include <vector>

namespace hifi
{
namespace circuit
{

/**
 * Piecewise-linear waveform: (time, value) breakpoints, linear between
 * them, held flat before the first and after the last point.
 *
 * Used to drive control lines (WL, PEQ, ISO, OC, SAN/SAP...) following
 * the event sequences of Fig. 2c and Fig. 9b.
 */
class Pwl
{
  public:
    Pwl() = default;

    /// Constant waveform.
    explicit Pwl(double value);

    /// Append a breakpoint; times must be non-decreasing.
    Pwl &point(double time, double value);

    /// Append a "hold then ramp": keeps the previous value until
    /// `time`, then ramps to `value` over `ramp` seconds.
    Pwl &step(double time, double value, double ramp = 1e-10);

    double value(double time) const;

    bool empty() const { return points_.empty(); }

  private:
    std::vector<std::pair<double, double>> points_;
};

/** Recorded voltage trace of one circuit node. */
struct Trace
{
    std::string name;
    std::vector<double> times;
    std::vector<double> values;

    /// Value at (closest sample before) `time`.
    double at(double time) const;

    /// Last recorded value.
    double final() const;

    /// First time the trace crosses `level` going up (or -1 if never).
    double firstCrossUp(double level) const;

    /// First time the trace crosses `level` going down (or -1 if never).
    double firstCrossDown(double level) const;

    /// Minimum / maximum over the whole trace.
    double minValue() const;
    double maxValue() const;
};

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_WAVEFORM_HH
