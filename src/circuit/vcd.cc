#include "circuit/vcd.hh"

#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace hifi
{
namespace circuit
{

void
writeVcd(std::ostream &os, const TranResult &result,
         const std::string &module_name)
{
    if (result.traces.empty())
        throw std::invalid_argument("writeVcd: no traces");

    // Header.
    os << "$timescale 1ps $end\n";
    os << "$scope module " << module_name << " $end\n";

    // Identifier codes: printable ASCII starting at '!'.
    std::vector<const Trace *> traces;
    std::vector<std::string> ids;
    {
        int code = 33; // '!'
        for (const auto &[name, trace] : result.traces) {
            traces.push_back(&trace);
            std::string id;
            int c = code++;
            while (true) {
                id.push_back(static_cast<char>('!' + (c - 33) % 94));
                c = (c - 33) / 94 + 33;
                if (c == 33)
                    break;
            }
            ids.push_back(id);
            os << "$var real 64 " << id << " " << name << " $end\n";
        }
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    // Value changes.
    const auto &t0 = *traces.front();
    std::vector<double> last(traces.size(),
                             std::numeric_limits<double>::quiet_NaN());
    for (size_t i = 0; i < t0.times.size(); ++i) {
        bool stamped = false;
        for (size_t k = 0; k < traces.size(); ++k) {
            const double v = traces[k]->values[i];
            if (!std::isnan(last[k]) &&
                std::abs(v - last[k]) < 1e-6) {
                continue;
            }
            if (!stamped) {
                os << "#"
                   << static_cast<long long>(
                          std::llround(t0.times[i] * 1e12))
                   << "\n";
                stamped = true;
            }
            os << "r" << v << " " << ids[k] << "\n";
            last[k] = v;
        }
    }
}

void
writeVcdFile(const std::string &path, const TranResult &result,
             const std::string &module_name)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("writeVcdFile: cannot open " + path);
    writeVcd(os, result, module_name);
}

} // namespace circuit
} // namespace hifi
