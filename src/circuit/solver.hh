/**
 * @file
 * Transient analog solver: Modified Nodal Analysis with backward-Euler
 * or trapezoidal integration and Newton-Raphson iteration per timestep.
 *
 * The engine caches everything the netlist topology determines once per
 * Simulator and reuses it across timesteps, Newton iterations, and
 * repeated run() calls (Monte-Carlo trials):
 *
 *  - a **static stamp** holding the device contributions that never
 *    change within a run (gmin, resistors, capacitor companion
 *    conductances, voltage-source incidence), memcpy-restored at the
 *    start of every Newton iteration; only the MOSFET linearizations
 *    and the RHS are restamped;
 *  - a **sparse LU factorization with a cached symbolic phase**: the
 *    fill-in pattern, pivot order, and flattened elimination program
 *    are computed once from the matrix structure, and each Newton
 *    iteration only re-runs the numeric factorization;
 *  - a reusable **workspace** (matrix values, RHS, solution, Newton
 *    iterate, capacitor memory) so the inner loop allocates nothing.
 *
 * Small systems fall back to an in-place dense solve with partial
 * pivoting over the same stamped values (see TranParams::solver).
 * MOSFETs are linearized analytically each Newton iteration.
 */

#ifndef HIFI_CIRCUIT_SOLVER_HH
#define HIFI_CIRCUIT_SOLVER_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "circuit/netlist.hh"
#include "circuit/waveform.hh"
#include "common/simd.hh"

namespace hifi
{
namespace circuit
{

/// Integration method for the transient solver.
enum class Integrator
{
    BackwardEuler, ///< robust, first order (default)
    Trapezoidal,   ///< second order, less numerical damping
};

/// Linear-solve engine for the Newton inner loop.
enum class LinearSolver
{
    Auto,   ///< sparse above a small dimension cutoff, dense below
    Dense,  ///< in-place Gaussian elimination with partial pivoting
    Sparse, ///< cached-symbolic sparse LU (static pivot order)
};

/// Below this dimension LinearSolver::Auto picks the dense engine
/// (shared by the scalar and batched simulators).
inline constexpr size_t kSparseCutoff = 8;

/** Transient analysis parameters. */
struct TranParams
{
    /// Simulation end time (s).
    double tstop = 20e-9;

    /// Fixed timestep (s).
    double dt = 10e-12;

    Integrator integrator = Integrator::BackwardEuler;

    /// Linear-solve engine (Auto: sparse for dim >= 8).
    LinearSolver solver = LinearSolver::Auto;

    /// Conductance from every node to ground, for convergence.
    double gmin = 1e-9;

    /// Newton iteration limit per step.
    int maxNewton = 200;

    /// Newton convergence tolerance on node voltages (V).
    double tolVolts = 1e-6;

    /// Per-iteration voltage-update clamp (V), damps oscillation.
    double maxStepVolts = 0.3;

    /**
     * Monte-Carlo batching width: how many trials the mismatch sweep
     * solves in lockstep per BatchSimulator block (see batch.hh).
     * Each lane runs the exact scalar arithmetic, so results are
     * bitwise identical at any width; <= 1 selects the per-trial
     * scalar engine (the retained reference path).
     */
    int batchLanes = 8;
};

/**
 * Result of a transient run: one trace per non-ground node, plus one
 * per voltage source carrying its branch current (named "I(<name>)",
 * positive flowing out of the positive terminal into the circuit).
 */
struct TranResult
{
    std::map<std::string, Trace> traces;

    const Trace &trace(const std::string &node) const;

    /**
     * Energy delivered by a source over the run (J): the integral of
     * v(t) * i(t) dt using the recorded branch current.
     *
     * The source's voltage trace is resolved case-insensitively from
     * its name ("Vpre" drives node "VPRE") or its name without the
     * leading 'V' ("Vsan" drives node "SAN"), via an upper-cased name
     * index built once per result.  Do not rename traces after the
     * first call.
     */
    double sourceEnergy(const std::string &source_name) const;

    /// Number of Newton iterations summed over all timesteps.
    size_t totalNewtonIterations = 0;

    /// Steps on which Newton failed to converge within the limit.
    size_t nonConvergedSteps = 0;

  private:
    /// Lazy upper-cased-name -> trace index (see sourceEnergy).
    mutable std::map<std::string, const Trace *> upperIndex_;
};

/**
 * Dense linear solve A x = b with partial pivoting.  A is modified.
 * Throws std::runtime_error on a singular matrix.
 */
std::vector<double> solveDense(std::vector<std::vector<double>> &a,
                               std::vector<double> &b);

/**
 * Sparse LU with a cached symbolic factorization.
 *
 * analyze() runs once per matrix structure: it picks a static pivot
 * order (symbolic Markowitz restricted to diagonal or structurally
 * symmetric entries, for numerical safety on MNA matrices), computes
 * the fill-in pattern, and compiles the elimination into flat index
 * programs.  factor() then re-runs only the numeric elimination
 * in-place over a caller-owned value array, and solve() performs the
 * permuted forward/backward substitution.  No allocation happens after
 * analyze().
 */
class SparseLu
{
  public:
    /**
     * Analyze a dim x dim structure given its structural (row, col)
     * entries (duplicates allowed).  Throws std::invalid_argument on
     * an empty/structurally singular pattern.
     */
    void analyze(size_t dim, const std::vector<std::pair<int, int>> &entries);

    size_t dim() const { return dim_; }

    /// Total slots (structural + fill) of the analyzed pattern.
    size_t slots() const { return colIdx_.size(); }

    /**
     * Slot index of entry (row, col) in the value array, or -1 when
     * the entry is outside the analyzed pattern.
     */
    int slot(int row, int col) const;

    /**
     * Numerically factor `values` (size slots(), fill slots zeroed by
     * the caller) in place following the cached pivot order.  Returns
     * false when a pivot is numerically negligible; the values array
     * is then partially overwritten and the caller should fall back
     * to a dense solve of the original matrix.
     */
    bool factor(double *values);

    /**
     * Solve with the last successful factor(): reads `b` (size dim),
     * writes `x` (size dim).  `values` must be the array factor()
     * ran over.
     */
    void solve(const double *values, const double *b, double *x);

    /**
     * Batched numeric factorization over an SoA value block laid out
     * `values[slot * lanes + lane]`: replays the cached elimination
     * program once, streaming every lane through each row operation
     * (accumulate-and-reduce over the lane axis).  Lanes with
     * ok[lane] == 0 on entry are skipped; a lane that hits a
     * numerically negligible pivot gets ok[lane] cleared and its
     * values are garbage from then on (callers re-stamp those lanes
     * for the dense fallback, exactly like the scalar path).  For
     * surviving lanes the per-lane arithmetic — operand order
     * included — is identical to factor(), so the factors are
     * bitwise equal to lanes-many scalar factorizations.
     */
    void factorLanes(double *values, size_t lanes, uint8_t *ok);

    /**
     * Batched substitution over factorLanes() output: `b` and `x`
     * are `[row * lanes + lane]`.  Lanes whose factorization failed
     * produce garbage that callers must ignore.
     */
    void solveLanes(const double *values, const double *b, double *x,
                    size_t lanes);

    /// CSR layout of the analyzed (post-fill) pattern.
    const std::vector<int> &rowPtr() const { return rowPtr_; }
    const std::vector<int> &colIdx() const { return colIdx_; }

  private:
    template <size_t L>
    void factorLanesFixed(double *values, uint8_t *ok);
    void factorLanesVar(double *values, size_t lanes, uint8_t *ok);
    template <size_t L>
    void solveLanesFixed(const double *values, const double *b,
                         double *x);
    void solveLanesVar(const double *values, const double *b,
                       double *x, size_t lanes);
#if HIFI_SIMD_AVX2_COMPILED
    // AVX2 forms of the lane kernels (4 lanes per ymm register,
    // element-wise ops only — bitwise identical to the portable
    // forms).  Selected at runtime when the CPU reports AVX2 and
    // HIFI_SIMD does not force scalar; lanes must be a multiple of 4.
    HIFI_AVX2_TARGET void factorLanesAvx2(double *values, size_t lanes,
                                          uint8_t *ok);
    HIFI_AVX2_TARGET void solveLanesAvx2(const double *values,
                                         const double *b, double *x,
                                         size_t lanes);
#endif

    size_t dim_ = 0;

    // Full (post-fill) pattern in CSR form.
    std::vector<int> rowPtr_;
    std::vector<int> colIdx_;

    // Elimination program (one Step per pivot, in elimination order).
    struct Step
    {
        int pivotSlot;   ///< slot of (pivotRow, pivotCol)
        int pivotRow;    ///< RHS row the pivot equation lives in
        int pivotCol;    ///< unknown eliminated by this step
        int rowOpBegin;  ///< range into rowOps_
        int rowOpEnd;
        int uBegin;      ///< range into uSlots_/uVars_ (U row entries)
        int uEnd;
    };
    struct RowOp
    {
        int factorSlot; ///< slot of (row, pivotCol): holds L after factor
        int row;        ///< RHS row this op updates
        int pairBegin;  ///< range into pairTarget_/pairSrc_
        int pairEnd;
    };
    std::vector<Step> steps_;
    std::vector<RowOp> rowOps_;
    std::vector<int> pairTarget_;
    std::vector<int> pairSrc_;
    std::vector<int> uSlots_;
    std::vector<int> uVars_;

    std::vector<double> scratch_; ///< permuted RHS during solve()
    std::vector<double> laneScratch_; ///< SoA RHS during solveLanes()
};

/**
 * Cached MNA structure shared by the scalar Simulator and the
 * lockstep BatchSimulator: the matrix dimensions, the analyzed
 * symbolic LU, and the stamp slot tables that map every device onto
 * value-array slots and RHS rows.  Built once per netlist topology;
 * both engines then only fill in numbers.
 */
struct MnaStructure
{
    explicit MnaStructure(const Netlist &netlist);

    const Netlist &net; ///< must outlive the structure

    size_t nv = 0;  ///< unknown node voltages
    size_t ns = 0;  ///< voltage-source branch currents
    size_t dim = 0; ///< nv + ns

    SparseLu lu;

    // Stamp slot tables (indices into the value array; -1 = ground).
    std::vector<int> gminSlots;
    struct ResistorSlots
    {
        int aa, bb, ab, ba;
    };
    struct CapacitorSlots
    {
        int aa, bb, ab, ba;
        long ra, rb; ///< RHS rows (-1 = ground)
    };
    struct MosfetSlots
    {
        int m[2][3]; ///< [drain row, source row] x [vd, vg, vs] slots
        long rhs[2]; ///< RHS rows for the drain/source stamp
    };
    struct SourceSlots
    {
        int pb, bp, nb, bn;
        size_t brow; ///< branch row index
    };
    std::vector<ResistorSlots> resistorSlots;
    std::vector<CapacitorSlots> capacitorSlots;
    std::vector<MosfetSlots> mosfetSlots;
    std::vector<SourceSlots> sourceSlots;

    /**
     * Assemble the static stamp (gmin, resistors, capacitor companion
     * conductances, source incidence) into `base` (size lu.slots()).
     * The IC-pinning step-0 variant scales the capacitor companions.
     */
    void assembleBase(const TranParams &params, bool step0,
                      std::vector<double> &base) const;
};

/**
 * Dense solve of the CSR-stamped system: scatters `vals` (laid out by
 * `lu`'s pattern) into the `a` scratch (dim x dim row-major), copies
 * `rhs` into `b`, and runs in-place Gaussian elimination with partial
 * pivoting.  Writes the solution into `x` (size dim).  Throws
 * std::runtime_error on a singular matrix.  This is *the* dense
 * engine: the scalar Simulator's fallback and the per-lane batched
 * fallback both call it, so their arithmetic is identical.
 */
void solveDenseCsr(const SparseLu &lu, const double *vals,
                   const double *rhs, double *x, double *a, double *b);

/**
 * Transient simulator over a fixed netlist.
 *
 * Construction caches the matrix structure, the symbolic LU, the
 * stamp slot tables, and the workspace; run() only fills in numbers.
 * The referenced netlist must outlive the simulator.  Between run()
 * calls the caller may patch device *values* in place (MOSFET
 * vthDelta, source waveforms); adding or removing devices or nodes
 * invalidates the cached structure and requires a new Simulator.
 */
class Simulator
{
  public:
    explicit Simulator(const Netlist &netlist);

    /// Run a transient analysis and record every node voltage.
    TranResult run(const TranParams &params);

  private:
    /// Dense fallback: scatter `vals` + solve; writes x_. Throws when
    /// singular.
    void solveDenseFallback(const std::vector<double> &vals);

    const Netlist &netlist_;
    MnaStructure st_; ///< shared structure (dims, LU, slot tables)

    // Reusable workspace (sized at construction, reused across runs).
    std::vector<double> baseVals_;     ///< static stamp, steady steps
    std::vector<double> baseValsStep0_; ///< static stamp, IC-pinned step
    std::vector<double> workVals_;
    std::vector<double> rhsStep_;
    std::vector<double> rhsWork_;
    std::vector<double> x_;
    std::vector<double> v_;
    std::vector<double> capPrev_;
    std::vector<double> capIPrev_;
    std::vector<double> capGeq_;
    std::vector<double> branchCurrents_;
    std::vector<double> denseA_; ///< dim x dim row-major scratch
    std::vector<double> denseB_;
};

/**
 * Evaluate a level-1 MOSFET: drain current and its partial derivatives
 * with respect to the terminal voltages (vd, vg, vs).
 *
 * Sign convention: `id` is the current flowing from the drain terminal
 * into the device (negative for a conducting PMOS).
 */
struct MosEval
{
    double id;
    double dIdVd;
    double dIdVg;
    double dIdVs;
};

MosEval evalMosfet(const Mosfet &m, double vd, double vg, double vs);

/**
 * Same evaluation with the threshold offset supplied by the caller
 * instead of read from `m.vthDelta`: the batched engine keeps one
 * offset per (device, lane) without mutating the shared netlist.
 * evalMosfet(m, vd, vg, vs) == evalMosfet(m, m.vthDelta, vd, vg, vs)
 * bit for bit.
 */
MosEval evalMosfet(const Mosfet &m, double vth_delta, double vd,
                   double vg, double vs);

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_SOLVER_HH
