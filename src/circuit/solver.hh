/**
 * @file
 * Transient analog solver: Modified Nodal Analysis with backward-Euler
 * integration and Newton-Raphson iteration per timestep.
 *
 * Sized for sense-amplifier testbenches (tens of nodes), it uses a dense
 * Gaussian-elimination solve.  MOSFETs are linearized analytically each
 * Newton iteration; capacitors use backward-Euler companion models.
 */

#ifndef HIFI_CIRCUIT_SOLVER_HH
#define HIFI_CIRCUIT_SOLVER_HH

#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.hh"
#include "circuit/waveform.hh"

namespace hifi
{
namespace circuit
{

/// Integration method for the transient solver.
enum class Integrator
{
    BackwardEuler, ///< robust, first order (default)
    Trapezoidal,   ///< second order, less numerical damping
};

/** Transient analysis parameters. */
struct TranParams
{
    /// Simulation end time (s).
    double tstop = 20e-9;

    /// Fixed timestep (s).
    double dt = 10e-12;

    Integrator integrator = Integrator::BackwardEuler;

    /// Conductance from every node to ground, for convergence.
    double gmin = 1e-9;

    /// Newton iteration limit per step.
    int maxNewton = 200;

    /// Newton convergence tolerance on node voltages (V).
    double tolVolts = 1e-6;

    /// Per-iteration voltage-update clamp (V), damps oscillation.
    double maxStepVolts = 0.3;
};

/**
 * Result of a transient run: one trace per non-ground node, plus one
 * per voltage source carrying its branch current (named "I(<name>)",
 * positive flowing out of the positive terminal into the circuit).
 */
struct TranResult
{
    std::map<std::string, Trace> traces;

    const Trace &trace(const std::string &node) const;

    /**
     * Energy delivered by a source over the run (J): the integral of
     * v(t) * i(t) dt using the recorded branch current.
     */
    double sourceEnergy(const std::string &source_name) const;

    /// Number of Newton iterations summed over all timesteps.
    size_t totalNewtonIterations = 0;

    /// Steps on which Newton failed to converge within the limit.
    size_t nonConvergedSteps = 0;
};

/**
 * Dense linear solve A x = b with partial pivoting.  A is modified.
 * Throws std::runtime_error on a singular matrix.
 */
std::vector<double> solveDense(std::vector<std::vector<double>> &a,
                               std::vector<double> &b);

/** Transient simulator over a fixed netlist. */
class Simulator
{
  public:
    explicit Simulator(const Netlist &netlist);

    /// Run a transient analysis and record every node voltage.
    TranResult run(const TranParams &params) const;

  private:
    const Netlist &netlist_;
};

/**
 * Evaluate a level-1 MOSFET: drain current and its partial derivatives
 * with respect to the terminal voltages (vd, vg, vs).
 *
 * Sign convention: `id` is the current flowing from the drain terminal
 * into the device (negative for a conducting PMOS).
 */
struct MosEval
{
    double id;
    double dIdVd;
    double dIdVg;
    double dIdVs;
};

MosEval evalMosfet(const Mosfet &m, double vd, double vg, double vs);

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_SOLVER_HH
