#include "circuit/batch.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/telemetry.hh"

#if HIFI_SIMD_AVX2_COMPILED
#include <immintrin.h>
#endif

namespace hifi
{
namespace circuit
{

BatchSimulator::BatchSimulator(const Netlist &netlist, size_t maxLanes)
    : netlist_(netlist), st_(netlist), maxLanes_(maxLanes)
{
    if (maxLanes_ == 0)
        throw std::invalid_argument("BatchSimulator: zero lanes");
    const size_t L = maxLanes_;
    const size_t nmos = netlist_.mosfets().size();
    vthDelta_.assign(nmos * L, 0.0);
    for (size_t mi = 0; mi < nmos; ++mi)
        for (size_t l = 0; l < L; ++l)
            vthDelta_[mi * L + l] = netlist_.mosfets()[mi].vthDelta;
    forceDense_.assign(L, 0);

    baseVals_.assign(st_.lu.slots(), 0.0);
    baseValsStep0_.assign(st_.lu.slots(), 0.0);
    workVals_.assign(st_.lu.slots() * L, 0.0);
    rhsStep_.assign(st_.dim * L, 0.0);
    rhsWork_.assign(st_.dim * L, 0.0);
    x_.assign(st_.dim * L, 0.0);
    v_.assign(netlist_.numNodes() * L, 0.0);
    capPrev_.assign(netlist_.capacitors().size() * L, 0.0);
    capIPrev_.assign(netlist_.capacitors().size() * L, 0.0);
    capGeq_.assign(netlist_.capacitors().size(), 0.0);
    branchCurrents_.assign(st_.ns * L, 0.0);
    okLanes_.assign(L, 0);

    laneVals_.assign(st_.lu.slots(), 0.0);
    laneRhs_.assign(st_.dim, 0.0);
    laneX_.assign(st_.dim, 0.0);
    denseA_.assign(st_.dim * st_.dim, 0.0);
    denseB_.assign(st_.dim, 0.0);
}

void
BatchSimulator::setVthDelta(size_t lane, size_t mosfetIndex,
                            double delta)
{
    if (lane >= maxLanes_)
        throw std::out_of_range("BatchSimulator: lane out of range");
    if (mosfetIndex >= netlist_.mosfets().size())
        throw std::out_of_range("BatchSimulator: mosfet out of range");
    vthDelta_[mosfetIndex * maxLanes_ + lane] = delta;
}

void
BatchSimulator::setForceDenseFallback(size_t lane, bool on)
{
    if (lane >= maxLanes_)
        throw std::out_of_range("BatchSimulator: lane out of range");
    forceDense_[lane] = on ? 1 : 0;
}

void
BatchSimulator::restampLane(size_t lane, size_t lanes,
                            const std::vector<double> &base,
                            double *vals, double *rhs)
{
    const size_t L = lanes;
    std::copy(base.begin(), base.end(), vals);
    for (size_t row = 0; row < st_.dim; ++row)
        rhs[row] = rhsStep_[row * L + lane];
    const auto &mosfets = netlist_.mosfets();
    for (size_t mi = 0; mi < mosfets.size(); ++mi) {
        const auto &m = mosfets[mi];
        const auto &sl = st_.mosfetSlots[mi];
        const double vd = v_[static_cast<size_t>(m.drain) * L + lane];
        const double vg = v_[static_cast<size_t>(m.gate) * L + lane];
        const double vs = v_[static_cast<size_t>(m.source) * L + lane];
        const MosEval ev =
            evalMosfet(m, vthDelta_[mi * maxLanes_ + lane], vd, vg, vs);
        const double i0 = ev.id - ev.dIdVd * vd - ev.dIdVg * vg -
            ev.dIdVs * vs;
        const double der[3] = {ev.dIdVd, ev.dIdVg, ev.dIdVs};
        for (int r = 0; r < 2; ++r) {
            if (sl.rhs[r] < 0)
                continue;
            const double dir = r == 0 ? 1.0 : -1.0;
            for (int c = 0; c < 3; ++c)
                if (sl.m[r][c] >= 0)
                    vals[static_cast<size_t>(sl.m[r][c])] +=
                        dir * der[c];
            rhs[static_cast<size_t>(sl.rhs[r])] -= dir * i0;
        }
    }
}

void
BatchSimulator::stampLanesScalar(size_t lanes, const uint8_t *active)
{
    const size_t L = lanes;
    const auto &mosfets = netlist_.mosfets();
    for (size_t mi = 0; mi < mosfets.size(); ++mi) {
        const auto &m = mosfets[mi];
        const auto &sl = st_.mosfetSlots[mi];
        const double *vd_row =
            v_.data() + static_cast<size_t>(m.drain) * L;
        const double *vg_row =
            v_.data() + static_cast<size_t>(m.gate) * L;
        const double *vs_row =
            v_.data() + static_cast<size_t>(m.source) * L;
        const double *delta_row = vthDelta_.data() + mi * maxLanes_;
        for (size_t l = 0; l < L; ++l) {
            if (!active[l])
                continue;
            const double vd = vd_row[l];
            const double vg = vg_row[l];
            const double vs = vs_row[l];
            const MosEval ev =
                evalMosfet(m, delta_row[l], vd, vg, vs);
            const double i0 = ev.id - ev.dIdVd * vd - ev.dIdVg * vg -
                ev.dIdVs * vs;
            const double der[3] = {ev.dIdVd, ev.dIdVg, ev.dIdVs};
            for (int r = 0; r < 2; ++r) {
                if (sl.rhs[r] < 0)
                    continue;
                const double dir = r == 0 ? 1.0 : -1.0;
                for (int c = 0; c < 3; ++c)
                    if (sl.m[r][c] >= 0)
                        workVals_[static_cast<size_t>(sl.m[r][c]) * L +
                                  l] += dir * der[c];
                rhsWork_[static_cast<size_t>(sl.rhs[r]) * L + l] -=
                    dir * i0;
            }
        }
    }
}

#if HIFI_SIMD_AVX2_COMPILED

HIFI_AVX2_TARGET void
BatchSimulator::stampLanesAvx2(size_t lanes)
{
    const size_t L = lanes;
    const size_t G = L / 4;
    const auto &mosfets = netlist_.mosfets();

    const __m256d zero = _mm256_setzero_pd();
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d minus_one = _mm256_set1_pd(-1.0);
    const __m256d gmin = _mm256_set1_pd(1e-12);
    const __m256d signbit = _mm256_castsi256_pd(
        _mm256_set1_epi64x(static_cast<long long>(
            0x8000000000000000ULL)));

    for (size_t mi = 0; mi < mosfets.size(); ++mi) {
        const auto &m = mosfets[mi];
        const auto &sl = st_.mosfetSlots[mi];
        const double sign_s =
            (m.model.type == MosType::Nmos) ? 1.0 : -1.0;
        const double beta_s = m.model.kp * m.wOverL();
        const __m256d sign = _mm256_set1_pd(sign_s);
        const __m256d beta = _mm256_set1_pd(beta_s);
        // The saturation formulas start `0.5 * beta * ...`; the
        // scalar left-association makes (0.5 * beta) one rounding.
        const __m256d halfbeta = _mm256_set1_pd(0.5 * beta_s);
        const __m256d vth0 = _mm256_set1_pd(m.model.vth);
        const __m256d lam = _mm256_set1_pd(m.model.lambda);
        const double *vdp =
            v_.data() + static_cast<size_t>(m.drain) * L;
        const double *vgp =
            v_.data() + static_cast<size_t>(m.gate) * L;
        const double *vsp =
            v_.data() + static_cast<size_t>(m.source) * L;
        const double *dp = vthDelta_.data() + mi * maxLanes_;

        for (size_t g = 0; g < G; ++g) {
            const __m256d vd = _mm256_loadu_pd(vdp + 4 * g);
            const __m256d vg = _mm256_loadu_pd(vgp + 4 * g);
            const __m256d vs = _mm256_loadu_pd(vsp + 4 * g);

            // NMOS-equivalent frame, then the symmetric (high, low)
            // terminal swap as a compare + two blends — exactly the
            // scalar `if (eq_d < eq_s) swap(...)`.
            const __m256d eq_d = _mm256_mul_pd(sign, vd);
            const __m256d eq_g = _mm256_mul_pd(sign, vg);
            const __m256d eq_s = _mm256_mul_pd(sign, vs);
            const __m256d swapm =
                _mm256_cmp_pd(eq_d, eq_s, _CMP_LT_OQ);
            const __m256d hi = _mm256_blendv_pd(eq_d, eq_s, swapm);
            const __m256d lo = _mm256_blendv_pd(eq_s, eq_d, swapm);

            const __m256d vgs = _mm256_sub_pd(eq_g, lo);
            const __m256d vds = _mm256_sub_pd(hi, lo);
            const __m256d vth =
                _mm256_add_pd(vth0, _mm256_loadu_pd(dp + 4 * g));
            const __m256d vov = _mm256_sub_pd(vgs, vth);

            // All three operating regions, then blend by region mask.
            // Each expression mirrors the scalar association; lanes in
            // another region compute dead values that blend away.
            const __m256d id_c = _mm256_mul_pd(gmin, vds);
            const __m256d id_l = _mm256_mul_pd(
                beta,
                _mm256_sub_pd(
                    _mm256_mul_pd(vov, vds),
                    _mm256_mul_pd(_mm256_mul_pd(half, vds), vds)));
            const __m256d gm_l = _mm256_mul_pd(beta, vds);
            const __m256d gds_l =
                _mm256_mul_pd(beta, _mm256_sub_pd(vov, vds));
            const __m256d opl =
                _mm256_add_pd(one, _mm256_mul_pd(lam, vds));
            const __m256d hbvv = _mm256_mul_pd(
                _mm256_mul_pd(halfbeta, vov), vov);
            const __m256d id_s = _mm256_mul_pd(hbvv, opl);
            const __m256d gm_s = _mm256_mul_pd(
                _mm256_mul_pd(beta, vov), opl);
            const __m256d gds_s = _mm256_mul_pd(hbvv, lam);

            const __m256d mcut = _mm256_cmp_pd(vov, zero, _CMP_LE_OQ);
            const __m256d mlin = _mm256_cmp_pd(vds, vov, _CMP_LT_OQ);
            __m256d id = _mm256_blendv_pd(id_s, id_l, mlin);
            id = _mm256_blendv_pd(id, id_c, mcut);
            __m256d gm = _mm256_blendv_pd(gm_s, gm_l, mlin);
            gm = _mm256_blendv_pd(gm, zero, mcut);
            __m256d gds = _mm256_blendv_pd(gds_s, gds_l, mlin);
            gds = _mm256_blendv_pd(gds, gmin, mcut);

            // Back-map into actual-terminal current and derivatives.
            const __m256d sfac =
                _mm256_blendv_pd(one, minus_one, swapm);
            const __m256d ss = _mm256_mul_pd(sign, sfac);
            const __m256d id_out = _mm256_mul_pd(ss, id);
            const __m256d ngg =
                _mm256_xor_pd(_mm256_add_pd(gm, gds), signbit);
            const __m256d dvd = _mm256_mul_pd(
                sfac, _mm256_blendv_pd(gds, ngg, swapm));
            const __m256d dvg = _mm256_mul_pd(sfac, gm);
            const __m256d dvs = _mm256_mul_pd(
                sfac, _mm256_blendv_pd(ngg, gds, swapm));

            // i0 = id - dIdVd*vd - dIdVg*vg - dIdVs*vs (left-assoc).
            __m256d i0 =
                _mm256_sub_pd(id_out, _mm256_mul_pd(dvd, vd));
            i0 = _mm256_sub_pd(i0, _mm256_mul_pd(dvg, vg));
            i0 = _mm256_sub_pd(i0, _mm256_mul_pd(dvs, vs));

            // Scatter: += der / -= i0 for the drain row, the mirror
            // for the source row (dir*x with dir = ±1 is an exact
            // sign flip, so add/sub reproduce the scalar updates).
            const __m256d der[3] = {dvd, dvg, dvs};
            for (int r = 0; r < 2; ++r) {
                if (sl.rhs[r] < 0)
                    continue;
                for (int c = 0; c < 3; ++c) {
                    if (sl.m[r][c] < 0)
                        continue;
                    double *p = workVals_.data() +
                        static_cast<size_t>(sl.m[r][c]) * L + 4 * g;
                    _mm256_storeu_pd(
                        p, r == 0
                               ? _mm256_add_pd(_mm256_loadu_pd(p),
                                               der[c])
                               : _mm256_sub_pd(_mm256_loadu_pd(p),
                                               der[c]));
                }
                double *rw = rhsWork_.data() +
                    static_cast<size_t>(sl.rhs[r]) * L + 4 * g;
                _mm256_storeu_pd(
                    rw, r == 0 ? _mm256_sub_pd(_mm256_loadu_pd(rw), i0)
                               : _mm256_add_pd(_mm256_loadu_pd(rw),
                                               i0));
            }
        }
    }
}

HIFI_AVX2_TARGET void
BatchSimulator::updateLanesAvx2(size_t lanes, const uint8_t *active,
                                double maxStepVolts, double *maxDelta)
{
    const size_t L = lanes;
    const size_t G = L / 4;
    const size_t nv = st_.nv;
    const size_t ns = st_.ns;
    const __m256d absmask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d signbit = _mm256_castsi256_pd(
        _mm256_set1_epi64x(static_cast<long long>(
            0x8000000000000000ULL)));
    const __m256d hiv = _mm256_set1_pd(maxStepVolts);
    const __m256d lov = _mm256_xor_pd(hiv, signbit); // -maxStepVolts

    for (size_t g = 0; g < G; ++g) {
        const __m256d mask = _mm256_castsi256_pd(_mm256_set_epi64x(
            active[g * 4 + 3] ? -1 : 0, active[g * 4 + 2] ? -1 : 0,
            active[g * 4 + 1] ? -1 : 0, active[g * 4 + 0] ? -1 : 0));

        for (size_t si = 0; si < ns; ++si) {
            double *bc = branchCurrents_.data() + si * L + 4 * g;
            const __m256d neu = _mm256_xor_pd(
                _mm256_loadu_pd(x_.data() + (nv + si) * L + 4 * g),
                signbit);
            _mm256_storeu_pd(
                bc, _mm256_blendv_pd(_mm256_loadu_pd(bc), neu, mask));
        }

        __m256d md = _mm256_setzero_pd();
        for (size_t n = 0; n < nv; ++n) {
            double *vp = v_.data() + (n + 1) * L + 4 * g;
            const __m256d vold = _mm256_loadu_pd(vp);
            __m256d delta = _mm256_sub_pd(
                _mm256_loadu_pd(x_.data() + n * L + 4 * g), vold);
            const __m256d ad = _mm256_and_pd(delta, absmask);
            md = _mm256_blendv_pd(md, ad,
                                  _mm256_cmp_pd(md, ad, _CMP_LT_OQ));
            // std::clamp via the same two comparisons it performs
            // (NaN deltas pass through untouched, like the scalar).
            delta = _mm256_blendv_pd(
                delta, lov, _mm256_cmp_pd(delta, lov, _CMP_LT_OQ));
            delta = _mm256_blendv_pd(
                delta, hiv, _mm256_cmp_pd(hiv, delta, _CMP_LT_OQ));
            _mm256_storeu_pd(
                vp, _mm256_blendv_pd(vold, _mm256_add_pd(vold, delta),
                                     mask));
        }
        _mm256_storeu_pd(maxDelta + 4 * g, md);
    }
}

#endif // HIFI_SIMD_AVX2_COMPILED

std::vector<TranResult>
BatchSimulator::run(const TranParams &params, size_t lanes)
{
    if (lanes == 0 || lanes > maxLanes_)
        throw std::invalid_argument("BatchSimulator: bad lane count");

    const telemetry::Span tspan("solver.batch_tran");
    const bool instrumented = telemetry::enabled();
    size_t lu_refactorizations = 0;
    size_t dense_fallbacks = 0;
    size_t dense_solves = 0;
    size_t retired_early = 0;
    size_t newton_total = 0;

    const size_t L = lanes;
    const size_t num_nodes = netlist_.numNodes();
    const size_t nv = st_.nv;
    const size_t ns = st_.ns;
    const size_t dim = st_.dim;
    const size_t slots = st_.lu.slots();
    const bool trap = params.integrator == Integrator::Trapezoidal;
    const bool sparse = params.solver == LinearSolver::Sparse ||
        (params.solver == LinearSolver::Auto && dim >= kSparseCutoff);

    // Reset per-lane state.
    std::fill(v_.begin(), v_.begin() + num_nodes * L, 0.0);
    const auto &caps = netlist_.capacitors();
    for (size_t ci = 0; ci < caps.size(); ++ci) {
        for (size_t l = 0; l < L; ++l) {
            capPrev_[ci * L + l] = caps[ci].initialVolts;
            capIPrev_[ci * L + l] = 0.0;
        }
        capGeq_[ci] = (trap ? 2.0 : 1.0) * caps[ci].farads / params.dt;
    }
    st_.assembleBase(params, true, baseValsStep0_);
    st_.assembleBase(params, false, baseVals_);

    // Splat both static stamps to SoA once: every Newton iteration
    // then restores the work matrix with one memcpy instead of a
    // broadcast loop.
    baseSplat_.resize(slots * L);
    baseSplatStep0_.resize(slots * L);
    for (size_t s = 0; s < slots; ++s) {
        std::fill(baseSplat_.begin() + s * L,
                  baseSplat_.begin() + (s + 1) * L, baseVals_[s]);
        std::fill(baseSplatStep0_.begin() + s * L,
                  baseSplatStep0_.begin() + (s + 1) * L,
                  baseValsStep0_[s]);
    }

    const size_t steps =
        static_cast<size_t>(std::ceil(params.tstop / params.dt));

    // One TranResult per lane, trace lookups hoisted like the scalar
    // engine's.
    std::vector<TranResult> results(L);
    std::vector<std::vector<Trace *>> nodeTrace(L), srcTrace(L);
    for (size_t l = 0; l < L; ++l) {
        nodeTrace[l].assign(num_nodes, nullptr);
        srcTrace[l].assign(ns, nullptr);
        for (size_t n = 1; n < num_nodes; ++n) {
            Trace t;
            t.name = netlist_.nodeName(static_cast<NodeId>(n));
            auto [it, inserted] =
                results[l].traces.emplace(t.name, std::move(t));
            nodeTrace[l][n] = &it->second;
        }
        for (size_t si = 0; si < ns; ++si) {
            Trace t;
            t.name = "I(" + netlist_.vsources()[si].name + ")";
            auto [it, inserted] =
                results[l].traces.emplace(t.name, std::move(t));
            srcTrace[l][si] = &it->second;
        }
        for (auto &[name, tr] : results[l].traces) {
            // Sized up front so the accept phase records by index;
            // the time axis is the same for every trace and step, so
            // it is filled here once (same expression as the per-step
            // `t` below, hence the same doubles).
            tr.times.resize(steps + 1);
            tr.values.resize(steps + 1);
            for (size_t s = 0; s <= steps; ++s)
                tr.times[s] = static_cast<double>(s) * params.dt;
        }
    }

    std::vector<uint8_t> active(L, 0), converged(L, 0);
    std::vector<int> itersUsed(L, 0);
    std::vector<double> laneMaxDelta(L, 0.0);

    for (size_t step = 0; step <= steps; ++step) {
        const double t = static_cast<double>(step) * params.dt;
        const double geq_scale = (step == 0) ? 1e3 : 1.0;
        const std::vector<double> &base =
            (step == 0) ? baseValsStep0_ : baseVals_;
        const std::vector<double> &splat =
            (step == 0) ? baseSplatStep0_ : baseSplat_;

        // Per-step RHS: capacitor companion currents are per lane
        // (the lanes' voltages diverge); source values are shared and
        // splatted.
        std::fill(rhsStep_.begin(), rhsStep_.begin() + dim * L, 0.0);
        for (size_t ci = 0; ci < caps.size(); ++ci) {
            const auto &sl = st_.capacitorSlots[ci];
            const double geq = geq_scale * capGeq_[ci];
            for (size_t l = 0; l < L; ++l) {
                const double ieq = geq * capPrev_[ci * L + l] +
                    (trap && step > 0 ? capIPrev_[ci * L + l] : 0.0);
                if (sl.ra >= 0)
                    rhsStep_[static_cast<size_t>(sl.ra) * L + l] += ieq;
                if (sl.rb >= 0)
                    rhsStep_[static_cast<size_t>(sl.rb) * L + l] -= ieq;
            }
        }
        for (size_t si = 0; si < ns; ++si) {
            const double val =
                netlist_.vsources()[si].waveform.value(t);
            for (size_t l = 0; l < L; ++l)
                rhsStep_[(nv + si) * L + l] += val;
        }

        // Masked Newton loop: all lanes advance in lockstep; a lane
        // that converges retires (its iterate and branch currents
        // freeze, mirroring the scalar early-exit break).
        std::fill(active.begin(), active.end(), 1);
        std::fill(converged.begin(), converged.end(), 0);
        std::fill(itersUsed.begin(), itersUsed.end(), 0);
        size_t num_active = L;

        for (int it = 0; it < params.maxNewton && num_active > 0;
             ++it) {
            // Restore the static stamp for every lane with one copy,
            // then add the MOSFET linearizations at each lane's
            // iterate.  Per lane the value-update order is exactly
            // the scalar restamp's (devices in netlist order).
            std::memcpy(workVals_.data(), splat.data(),
                        slots * L * sizeof(double));
            std::memcpy(rhsWork_.data(), rhsStep_.data(),
                        dim * L * sizeof(double));
#if HIFI_SIMD_AVX2_COMPILED
            if (L % 4 == 0 && common::simd::avx2())
                stampLanesAvx2(L);
            else
                stampLanesScalar(L, active.data());
#else
            stampLanesScalar(L, active.data());
#endif

            if (sparse) {
                for (size_t l = 0; l < L; ++l)
                    okLanes_[l] = (active[l] && !forceDense_[l]) ? 1
                                                                 : 0;
                st_.lu.factorLanes(workVals_.data(), L,
                                   okLanes_.data());
                st_.lu.solveLanes(workVals_.data(), rhsWork_.data(),
                                  x_.data(), L);
                for (size_t l = 0; l < L; ++l) {
                    if (okLanes_[l]) {
                        ++lu_refactorizations;
                        continue;
                    }
                    if (!active[l])
                        continue;
                    // A forced lane emulates the scalar Dense engine;
                    // a lane whose batched factor hit a bad pivot
                    // takes the scalar dense fallback.  Both re-stamp
                    // this lane (its SoA values were consumed by the
                    // factorization) and run the shared dense kernel.
                    if (forceDense_[l])
                        ++dense_solves;
                    else
                        ++dense_fallbacks;
                    restampLane(l, L, base, laneVals_.data(),
                                laneRhs_.data());
                    solveDenseCsr(st_.lu, laneVals_.data(),
                                  laneRhs_.data(), laneX_.data(),
                                  denseA_.data(), denseB_.data());
                    for (size_t row = 0; row < dim; ++row)
                        x_[row * L + l] = laneX_[row];
                }
            } else {
                for (size_t l = 0; l < L; ++l) {
                    if (!active[l])
                        continue;
                    ++dense_solves;
                    restampLane(l, L, base, laneVals_.data(),
                                laneRhs_.data());
                    solveDenseCsr(st_.lu, laneVals_.data(),
                                  laneRhs_.data(), laneX_.data(),
                                  denseA_.data(), denseB_.data());
                    for (size_t row = 0; row < dim; ++row)
                        x_[row * L + l] = laneX_[row];
                }
            }

            // Per-lane branch currents, damped update, convergence.
#if HIFI_SIMD_AVX2_COMPILED
            if (L % 4 == 0 && common::simd::avx2()) {
                updateLanesAvx2(L, active.data(),
                                params.maxStepVolts,
                                laneMaxDelta.data());
                for (size_t l = 0; l < L; ++l) {
                    if (!active[l])
                        continue;
                    ++results[l].totalNewtonIterations;
                    ++newton_total;
                    itersUsed[l] = it + 1;
                    if (laneMaxDelta[l] < params.tolVolts) {
                        converged[l] = 1;
                        active[l] = 0;
                        --num_active;
                    }
                }
                continue;
            }
#endif
            for (size_t l = 0; l < L; ++l) {
                if (!active[l])
                    continue;
                ++results[l].totalNewtonIterations;
                ++newton_total;
                itersUsed[l] = it + 1;
                for (size_t si = 0; si < ns; ++si)
                    branchCurrents_[si * L + l] =
                        -x_[(nv + si) * L + l];
                double max_delta = 0.0;
                for (size_t n = 0; n < nv; ++n) {
                    double delta = x_[n * L + l] - v_[(n + 1) * L + l];
                    max_delta = std::max(max_delta, std::abs(delta));
                    delta = std::clamp(delta, -params.maxStepVolts,
                                       params.maxStepVolts);
                    v_[(n + 1) * L + l] += delta;
                }
                if (max_delta < params.tolVolts) {
                    converged[l] = 1;
                    active[l] = 0;
                    --num_active;
                }
            }
        }

        int step_iters_max = 0;
        for (size_t l = 0; l < L; ++l)
            step_iters_max = std::max(step_iters_max, itersUsed[l]);
        for (size_t l = 0; l < L; ++l) {
            if (!converged[l])
                ++results[l].nonConvergedSteps;
            else if (itersUsed[l] < step_iters_max)
                ++retired_early;
        }
        if (instrumented) {
            static telemetry::Histogram &newton_hist =
                telemetry::registry().histogram(
                    "solver.newton_per_step",
                    {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64});
            for (size_t l = 0; l < L; ++l)
                newton_hist.observe(
                    static_cast<double>(itersUsed[l]));
        }

        // Accept the step per lane: capacitor memory and traces.
        for (size_t ci = 0; ci < caps.size(); ++ci) {
            const auto &c = caps[ci];
            const double *va =
                v_.data() + static_cast<size_t>(c.a) * L;
            const double *vb =
                v_.data() + static_cast<size_t>(c.b) * L;
            for (size_t l = 0; l < L; ++l) {
                const double v_now = va[l] - vb[l];
                if (trap) {
                    const double geq = geq_scale * capGeq_[ci];
                    const double i_prev =
                        step > 0 ? capIPrev_[ci * L + l] : 0.0;
                    capIPrev_[ci * L + l] =
                        geq * (v_now - capPrev_[ci * L + l]) - i_prev;
                }
                capPrev_[ci * L + l] = v_now;
            }
        }
        for (size_t l = 0; l < L; ++l) {
            for (size_t n = 1; n < num_nodes; ++n)
                nodeTrace[l][n]->values[step] = v_[n * L + l];
            for (size_t si = 0; si < ns; ++si)
                srcTrace[l][si]->values[step] =
                    branchCurrents_[si * L + l];
        }
    }

    if (instrumented) {
        telemetry::Registry &reg = telemetry::registry();
        static telemetry::Counter &c_runs = reg.counter("solver.runs");
        static telemetry::Counter &c_newton =
            reg.counter("solver.newton_iterations");
        static telemetry::Counter &c_lu =
            reg.counter("solver.lu_refactorizations");
        static telemetry::Counter &c_fallback =
            reg.counter("solver.dense_fallbacks");
        static telemetry::Counter &c_dense =
            reg.counter("solver.dense_solves");
        static telemetry::Counter &c_nonconv =
            reg.counter("solver.nonconverged_steps");
        static telemetry::Counter &c_lanes =
            reg.counter("solver.batch.lanes");
        static telemetry::Counter &c_retired =
            reg.counter("solver.batch.retired_early");
        size_t nonconv = 0;
        for (size_t l = 0; l < L; ++l)
            nonconv += results[l].nonConvergedSteps;
        c_runs.add(L); // one logical transient per lane
        c_newton.add(newton_total);
        c_lu.add(lu_refactorizations);
        c_fallback.add(dense_fallbacks);
        c_dense.add(dense_solves);
        c_nonconv.add(nonconv);
        c_lanes.add(L);
        c_retired.add(retired_early);
    }
    return results;
}

} // namespace circuit
} // namespace hifi
