/**
 * @file
 * Two sense amplifiers sharing their control lines, as deployed in
 * real chips: the PEQ/PRE gates span the entire SA region and the
 * SAN/SAP rails are common (Section V-A, inaccuracy I3 /
 * Recommendation R2).
 *
 * This testbench demonstrates why proposals that assume *per-SA*
 * control (e.g. precharging one SA while its neighbour latches)
 * cannot work on commodity chips: with shared lines, every control
 * action hits all SAs in the region.
 */

#ifndef HIFI_CIRCUIT_DUAL_SA_HH
#define HIFI_CIRCUIT_DUAL_SA_HH

#include "circuit/sense_amp.hh"

namespace hifi
{
namespace circuit
{

/** Parameters for the shared-control experiment. */
struct DualSaParams
{
    /// Electrical base (topology must be Classic; the OCSA control
    /// sharing is analogous).
    SaParams base;

    /// Stored bits of the two cells.
    bool bitA = true;
    bool bitB = false;

    /// Only SA A's wordline fires; SA B has no selected row.
    bool activateOnlyA = true;
};

/** Outcome of the shared-control run. */
struct DualSaRun
{
    TranResult tran;
    SaSchedule schedule;

    /// SA A latched its cell correctly.
    bool aLatchedCorrectly = false;

    /// SA B's bitlines were dragged away from Vpre by the shared
    /// latch enable even though it had no selected row.
    bool bDisturbed = false;

    /// |B's BL - BLB| right after the shared latch fires (V).
    double bSeparation = 0.0;
};

/**
 * Build the two-SA region netlist and fill in the control schedule.
 * Node names: A_BL/A_BLB/A_CN and B_BL/B_BLB/B_CN; the control nodes
 * (WL, PEQ, SAN, SAP) are single and shared.  Exposed so tests and
 * batched Monte-Carlo sweeps can run the same topology through
 * alternative engines (e.g. BatchSimulator).
 */
Netlist buildDualSaTestbench(const DualSaParams &params,
                             SaSchedule &schedule);

/** Build and simulate the two-SA region (see buildDualSaTestbench). */
DualSaRun simulateSharedControl(const DualSaParams &params,
                                const TranParams &tran =
                                    defaultSaTran());

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_DUAL_SA_HH
