#include "circuit/mismatch.hh"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hh"

namespace hifi
{
namespace circuit
{

double
vthSigma(double w_nm, double l_nm, double avt_vnm)
{
    if (w_nm <= 0.0 || l_nm <= 0.0)
        throw std::invalid_argument("vthSigma: non-positive W or L");
    return avt_vnm / std::sqrt(w_nm * l_nm);
}

YieldResult
sensingYield(const SaParams &base, const MismatchParams &params,
             const TranParams &tran)
{
    // Each trial owns the counter-seeded stream (seed, trial), so the
    // sampled offsets — and therefore the yield — are a pure function
    // of the seed, independent of trial scheduling.  Partials combine
    // in chunk-index order, keeping the double sum deterministic too.
    struct Accum
    {
        size_t failures = 0;
        double signal = 0.0;
    };

    // Chunk grain: the testbench netlist, schedule, and simulator
    // (with its cached matrix structure and symbolic factorization)
    // are built once per chunk; each trial only patches the four
    // latch vthDelta fields in place.  The grain is a fixed constant,
    // so the chunk boundaries — and with them the reduction order —
    // stay independent of the worker thread count.
    constexpr size_t kTrialsPerChunk = 16;

    const Accum total = common::parallelReduce(
        0, params.trials, kTrialsPerChunk, Accum{},
        [&](size_t t0, size_t t1) {
            Accum acc;
            SaTestbench testbench(base);
            Netlist &net = testbench.netlist();

            // The four latch devices, in netlist order (which is also
            // the per-trial RNG sampling order).
            std::vector<size_t> latch;
            std::vector<double> sigma;
            for (size_t i = 0; i < net.mosfets().size(); ++i) {
                const auto &fet = net.mosfets()[i];
                if (fet.name == "Mn1" || fet.name == "Mn2" ||
                    fet.name == "Mp1" || fet.name == "Mp2") {
                    latch.push_back(i);
                    sigma.push_back(vthSigma(fet.widthNm,
                                             fet.lengthNm,
                                             params.avtVnm));
                }
            }

            for (size_t trial = t0; trial < t1; ++trial) {
                common::Rng rng(params.seed, trial);
                for (size_t k = 0; k < latch.size(); ++k)
                    net.mosfet(latch[k]).vthDelta =
                        rng.gaussian(0.0, sigma[k]);

                const SaRun run = testbench.simulate(tran);
                if (!run.latchedCorrectly)
                    ++acc.failures;
                acc.signal += std::abs(run.signalBeforeLatch);
            }
            return acc;
        },
        [](Accum a, Accum b) {
            a.failures += b.failures;
            a.signal += b.signal;
            return a;
        });

    YieldResult result;
    result.trials = params.trials;
    result.failures = total.failures;
    result.meanSignal = params.trials
        ? total.signal / static_cast<double>(params.trials) : 0.0;
    return result;
}

} // namespace circuit
} // namespace hifi
