#include "circuit/mismatch.hh"

#include <cmath>
#include <stdexcept>

namespace hifi
{
namespace circuit
{

double
vthSigma(double w_nm, double l_nm, double avt_vnm)
{
    if (w_nm <= 0.0 || l_nm <= 0.0)
        throw std::invalid_argument("vthSigma: non-positive W or L");
    return avt_vnm / std::sqrt(w_nm * l_nm);
}

YieldResult
sensingYield(const SaParams &base, const MismatchParams &params,
             const TranParams &tran)
{
    common::Rng rng(params.seed);
    YieldResult result;
    result.trials = params.trials;

    double signal_sum = 0.0;
    for (size_t trial = 0; trial < params.trials; ++trial) {
        SaSchedule schedule;
        Netlist net = buildSaTestbench(base, schedule);

        for (auto &fet : net.mosfets()) {
            if (fet.name == "Mn1" || fet.name == "Mn2" ||
                fet.name == "Mp1" || fet.name == "Mp2") {
                const double sigma = vthSigma(
                    fet.widthNm, fet.lengthNm, params.avtVnm);
                fet.vthDelta = rng.gaussian(0.0, sigma);
            }
        }

        TranParams tp = tran;
        tp.tstop = schedule.tEnd;
        Simulator sim(net);
        const SaRun run =
            analyzeActivation(base, schedule, sim.run(tp), tp.dt);

        if (!run.latchedCorrectly)
            ++result.failures;
        signal_sum += std::abs(run.signalBeforeLatch);
    }
    result.meanSignal = params.trials
        ? signal_sum / static_cast<double>(params.trials) : 0.0;
    return result;
}

} // namespace circuit
} // namespace hifi
