#include "circuit/mismatch.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/batch.hh"
#include "common/parallel.hh"

namespace hifi
{
namespace circuit
{

double
vthSigma(double w_nm, double l_nm, double avt_vnm)
{
    if (w_nm <= 0.0 || l_nm <= 0.0)
        throw std::invalid_argument("vthSigma: non-positive W or L");
    return avt_vnm / std::sqrt(w_nm * l_nm);
}

YieldResult
sensingYield(const SaParams &base, const MismatchParams &params,
             const TranParams &tran)
{
    // Each trial owns the counter-seeded stream (seed, trial), so the
    // sampled offsets — and therefore the yield — are a pure function
    // of the seed, independent of trial scheduling.  Partials combine
    // in chunk-index order, keeping the double sum deterministic too.
    struct Accum
    {
        size_t failures = 0;
        double signal = 0.0;
    };

    // Chunk grain: the testbench netlist, schedule, and simulator
    // (with its cached matrix structure and symbolic factorization)
    // are built once per chunk; each trial only patches the four
    // latch vthDelta fields.  The grain is a fixed constant, so the
    // chunk boundaries — and with them the reduction order — stay
    // independent of the worker thread count.
    constexpr size_t kTrialsPerChunk = 16;

    // The four latch devices, in netlist order (which is also the
    // per-trial RNG sampling order).  Every chunk rebuilds the same
    // topology, so this scan runs once on a prototype instead of once
    // per chunk.
    std::vector<size_t> latch;
    std::vector<double> sigma;
    {
        SaSchedule sched;
        const Netlist proto = buildSaTestbench(base, sched);
        for (size_t i = 0; i < proto.mosfets().size(); ++i) {
            const auto &fet = proto.mosfets()[i];
            if (fet.name == "Mn1" || fet.name == "Mn2" ||
                fet.name == "Mp1" || fet.name == "Mp2") {
                latch.push_back(i);
                sigma.push_back(vthSigma(fet.widthNm, fet.lengthNm,
                                         params.avtVnm));
            }
        }
    }

    // Lane count: >1 routes chunks through the lockstep BatchSimulator
    // (bitwise identical per trial); <=1 keeps the per-trial scalar
    // reference path.
    const size_t lanes = tran.batchLanes > 1
        ? static_cast<size_t>(tran.batchLanes) : 1;

    const auto scalarChunk = [&](size_t t0, size_t t1) {
        Accum acc;
        SaTestbench testbench(base);
        Netlist &net = testbench.netlist();
        for (size_t trial = t0; trial < t1; ++trial) {
            common::Rng rng(params.seed, trial);
            for (size_t k = 0; k < latch.size(); ++k)
                net.mosfet(latch[k]).vthDelta =
                    rng.gaussian(0.0, sigma[k]);

            const SaRun run = testbench.simulate(tran);
            if (!run.latchedCorrectly)
                ++acc.failures;
            acc.signal += std::abs(run.signalBeforeLatch);
        }
        return acc;
    };

    const auto batchedChunk = [&](size_t t0, size_t t1) {
        Accum acc;
        SaSchedule sched;
        const Netlist net = buildSaTestbench(base, sched);
        BatchSimulator sim(net, lanes);
        TranParams tp = tran;
        tp.tstop = sched.tEnd;

        for (size_t b0 = t0; b0 < t1; b0 += lanes) {
            const size_t n = std::min(lanes, t1 - b0);
            for (size_t l = 0; l < n; ++l) {
                common::Rng rng(params.seed, b0 + l);
                for (size_t k = 0; k < latch.size(); ++k)
                    sim.setVthDelta(l, latch[k],
                                    rng.gaussian(0.0, sigma[k]));
            }
            std::vector<TranResult> results = sim.run(tp, n);
            for (size_t l = 0; l < n; ++l) {
                const SaRun run = analyzeActivation(
                    base, sched, std::move(results[l]), tp.dt);
                if (!run.latchedCorrectly)
                    ++acc.failures;
                acc.signal += std::abs(run.signalBeforeLatch);
            }
        }
        return acc;
    };

    const Accum total = common::parallelReduce(
        0, params.trials, kTrialsPerChunk, Accum{},
        [&](size_t t0, size_t t1) {
            return lanes > 1 ? batchedChunk(t0, t1)
                             : scalarChunk(t0, t1);
        },
        [](Accum a, Accum b) {
            a.failures += b.failures;
            a.signal += b.signal;
            return a;
        });

    YieldResult result;
    result.trials = params.trials;
    result.failures = total.failures;
    result.meanSignal = params.trials
        ? total.signal / static_cast<double>(params.trials) : 0.0;
    return result;
}

} // namespace circuit
} // namespace hifi
