#include "circuit/mismatch.hh"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hh"

namespace hifi
{
namespace circuit
{

double
vthSigma(double w_nm, double l_nm, double avt_vnm)
{
    if (w_nm <= 0.0 || l_nm <= 0.0)
        throw std::invalid_argument("vthSigma: non-positive W or L");
    return avt_vnm / std::sqrt(w_nm * l_nm);
}

YieldResult
sensingYield(const SaParams &base, const MismatchParams &params,
             const TranParams &tran)
{
    // Each trial owns the counter-seeded stream (seed, trial), so the
    // sampled offsets — and therefore the yield — are a pure function
    // of the seed, independent of trial scheduling.  Partials combine
    // in chunk-index order, keeping the double sum deterministic too.
    struct Accum
    {
        size_t failures = 0;
        double signal = 0.0;
    };

    const Accum total = common::parallelReduce(
        0, params.trials, 1, Accum{},
        [&](size_t t0, size_t t1) {
            Accum acc;
            for (size_t trial = t0; trial < t1; ++trial) {
                common::Rng rng(params.seed, trial);
                SaSchedule schedule;
                Netlist net = buildSaTestbench(base, schedule);

                for (auto &fet : net.mosfets()) {
                    if (fet.name == "Mn1" || fet.name == "Mn2" ||
                        fet.name == "Mp1" || fet.name == "Mp2") {
                        const double sigma = vthSigma(
                            fet.widthNm, fet.lengthNm, params.avtVnm);
                        fet.vthDelta = rng.gaussian(0.0, sigma);
                    }
                }

                TranParams tp = tran;
                tp.tstop = schedule.tEnd;
                Simulator sim(net);
                const SaRun run = analyzeActivation(
                    base, schedule, sim.run(tp), tp.dt);

                if (!run.latchedCorrectly)
                    ++acc.failures;
                acc.signal += std::abs(run.signalBeforeLatch);
            }
            return acc;
        },
        [](Accum a, Accum b) {
            a.failures += b.failures;
            a.signal += b.signal;
            return a;
        });

    YieldResult result;
    result.trials = params.trials;
    result.failures = total.failures;
    result.meanSignal = params.trials
        ? total.signal / static_cast<double>(params.trials) : 0.0;
    return result;
}

} // namespace circuit
} // namespace hifi
