#include "circuit/netlist.hh"

#include <stdexcept>

namespace hifi
{
namespace circuit
{

Netlist::Netlist()
{
    nodeNames_.push_back("gnd");
}

NodeId
Netlist::addNode(const std::string &name)
{
    nodeNames_.push_back(name);
    return static_cast<NodeId>(nodeNames_.size() - 1);
}

const std::string &
Netlist::nodeName(NodeId id) const
{
    return nodeNames_.at(static_cast<size_t>(id));
}

NodeId
Netlist::node(const std::string &name) const
{
    for (size_t i = 0; i < nodeNames_.size(); ++i)
        if (nodeNames_[i] == name)
            return static_cast<NodeId>(i);
    throw std::out_of_range("Netlist::node: unknown node " + name);
}

void
Netlist::checkNode(NodeId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= nodeNames_.size())
        throw std::out_of_range("Netlist: bad node id");
}

void
Netlist::addResistor(const std::string &name, NodeId a, NodeId b,
                     double ohms)
{
    checkNode(a);
    checkNode(b);
    if (ohms <= 0.0)
        throw std::invalid_argument("Netlist: resistor <= 0 ohm");
    resistors_.push_back({name, a, b, ohms});
}

void
Netlist::addCapacitor(const std::string &name, NodeId a, NodeId b,
                      double farads, double initial_volts)
{
    checkNode(a);
    checkNode(b);
    if (farads <= 0.0)
        throw std::invalid_argument("Netlist: capacitor <= 0 F");
    capacitors_.push_back({name, a, b, farads, initial_volts});
}

void
Netlist::addVSource(const std::string &name, NodeId pos, NodeId neg,
                    Pwl waveform)
{
    checkNode(pos);
    checkNode(neg);
    vsources_.push_back({name, pos, neg, std::move(waveform)});
}

size_t
Netlist::addMosfet(Mosfet mosfet)
{
    checkNode(mosfet.drain);
    checkNode(mosfet.gate);
    checkNode(mosfet.source);
    if (mosfet.widthNm <= 0.0 || mosfet.lengthNm <= 0.0)
        throw std::invalid_argument("Netlist: MOSFET W/L <= 0");
    mosfets_.push_back(std::move(mosfet));
    return mosfets_.size() - 1;
}

} // namespace circuit
} // namespace hifi
