/**
 * @file
 * VCD (value change dump) export of transient results, so the SA
 * waveforms can be inspected in GTKWave or any other digital/analog
 * waveform viewer.  Node voltages are emitted as IEEE-1364 `real`
 * variables.
 */

#ifndef HIFI_CIRCUIT_VCD_HH
#define HIFI_CIRCUIT_VCD_HH

#include <iosfwd>
#include <string>

#include "circuit/solver.hh"

namespace hifi
{
namespace circuit
{

/**
 * Write the traces of a transient run as a VCD file with a 1 ps
 * timescale.  Only changed values are emitted per timestep.
 */
void writeVcd(std::ostream &os, const TranResult &result,
              const std::string &module_name = "hifi_sa");

/// Convenience: write to a path; throws std::runtime_error.
void writeVcdFile(const std::string &path, const TranResult &result,
                  const std::string &module_name = "hifi_sa");

} // namespace circuit
} // namespace hifi

#endif // HIFI_CIRCUIT_VCD_HH
