#include "eval/recommendations.hh"

namespace hifi
{
namespace eval
{

const std::vector<Recommendation> &
recommendations()
{
    static const std::vector<Recommendation> recs = {
        {"R1",
         "Estimate overheads including all additions to MATs or SAs, "
         "such as wire connections",
         "I1/I2: neither the MAT nor the SA region has free bitline "
         "tracks; extra wiring forces region extensions"},
        {"R2",
         "Consider the impact on all interconnected SAs",
         "I3: control lines (PEQ, ISO, OC) span the whole region and "
         "are shared across SAs; per-SA control does not exist"},
        {"R3",
         "Consider the physical layout and organization of SA blocks",
         "I4: column transistors come first after the MAT; two "
         "stacked SAs share each strip; common-gate element widths "
         "run perpendicular to latch widths"},
        {"R4",
         "Consider offset-cancellation designs in the evaluation",
         "I5: A4, A5 and B5 deploy OCSAs with extra devices, control "
         "signals, and different event timing"},
    };
    return recs;
}

std::vector<Finding>
checkProposal(const Proposal &proposal, const models::ChipSpec &chip)
{
    std::vector<Finding> findings;

    if (proposal.extraBitlinesPerExisting > 0) {
        findings.push_back(
            {"R1", "I1",
             proposal.name + " adds bitlines; on " + chip.id +
                 " the MAT and SA region are packed at minimum pitch "
                 "(0 free tracks), so the array width doubles"});
    }
    if (proposal.extraWires > 0 && chip.vendor != 'A') {
        findings.push_back(
            {"R1", "I2",
             proposal.name + " routes extra wires through the SA "
                             "region; only vendor A chips have M2 "
                             "slack for that"});
    }
    if (proposal.assumesIndependentPeq) {
        findings.push_back(
            {"R2", "I3",
             "precharge/equalizer gates on " + chip.id +
                 " span the whole region; they cannot be driven per "
                 "SA"});
    }
    if (proposal.assumesIsolationPresent &&
        chip.topology == models::Topology::Classic) {
        findings.push_back(
            {"R2", "I3",
             chip.id + " (classic SA) has no isolation transistors "
                       "to reuse"});
    }
    if (proposal.assumesIsolationPresent &&
        chip.topology == models::Topology::Ocsa) {
        findings.push_back(
            {"R4", "I3",
             chip.id + "'s OCSA isolation devices decouple only the "
                       "latch drains (gates stay connected); they "
                       "differ from the assumed isolation"});
    }
    if (!proposal.placesElementsAfterColumns) {
        findings.push_back(
            {"R3", "I4",
             "column transistors are the first elements after the "
             "MAT on " +
                 chip.id +
                 "; inserting elements before them requires "
                 "reorganizing the SA"});
    }
    if (!proposal.accountsForBothStackedSas) {
        findings.push_back(
            {"R3", "I4",
             chip.id + " places two stacked SAs between MATs; "
                       "bitline-shared additions must be counted for "
                       "both"});
    }
    if (!proposal.modelsOcsa &&
        chip.topology == models::Topology::Ocsa) {
        findings.push_back(
            {"R4", "I5",
             chip.id + " deploys an OCSA; timings (delayed charge "
                       "sharing, pre-sensing) and overheads differ "
                       "from the classic design"});
    }
    return findings;
}

} // namespace eval
} // namespace hifi
