/**
 * @file
 * Sensitivity analysis of the headline conclusions.
 *
 * The calibrated datasets carry measurement uncertainty (the paper's
 * repeated measurements scatter at about half a pixel).  This module
 * perturbs the region geometry by a given relative amount and reports
 * the range each headline number moves over, showing that the
 * conclusions (who is >20x off, who survives) are robust to the
 * measurement error.
 */

#ifndef HIFI_EVAL_SENSITIVITY_HH
#define HIFI_EVAL_SENSITIVITY_HH

#include <string>
#include <vector>

namespace hifi
{
namespace eval
{

/** Range of one audited quantity under geometry perturbation. */
struct SensitivityRange
{
    std::string quantity; ///< e.g. "CoolDRAM error"
    double nominal = 0.0;
    double low = 0.0;  ///< at -perturbation
    double high = 0.0; ///< at +perturbation

    /// Relative half-width of the range.
    double relativeSpan() const
    {
        return nominal != 0.0 ? (high - low) / (2.0 * nominal) : 0.0;
    }
};

/**
 * Perturb every chip's SA-strip height and MAT height by the given
 * relative amount (both directions) and recompute the headline
 * overhead errors.  `perturbation` of 0.05 means +-5%.
 */
std::vector<SensitivityRange> overheadSensitivity(
    double perturbation = 0.05);

} // namespace eval
} // namespace hifi

#endif // HIFI_EVAL_SENSITIVITY_HH
