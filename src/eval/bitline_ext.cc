#include "eval/bitline_ext.hh"

#include <stdexcept>

namespace hifi
{
namespace eval
{

double
bitlineDoublingExtension(double width, double spacing)
{
    if (width <= 0.0 || spacing <= 0.0)
        throw std::invalid_argument(
            "bitlineDoublingExtension: non-positive dimensions");
    // Original pitch per bitline: d + B_w.  After halving the width
    // and doubling the count: 2 * (d + B_w / 2) for the same tracks.
    return 2.0 * (spacing + width / 2.0) / (spacing + width) - 1.0;
}

double
bitlineDoublingExtension()
{
    // B_w = 2 d.
    return bitlineDoublingExtension(2.0, 1.0);
}

double
bitlineDoublingChipOverhead(const models::ChipSpec &chip)
{
    const double ext = bitlineDoublingExtension(
        chip.blWidthNm, chip.blPitchNm - chip.blWidthNm);
    // The extension applies to the SA region and, due to layout
    // requirements, equivalently to the MATs.
    return ext * chip.arrayFraction();
}

double
m2ShrinkFactorForRega(const models::ChipSpec &chip)
{
    if (chip.vendor != 'A')
        throw std::invalid_argument(
            "m2ShrinkFactorForRega: only vendor A routes the second "
            "SA set on M2");
    // Each new connection consumes a wire plus its spacing, i.e. two
    // bitline widths, out of each M2 wire's width budget.  With M2
    // wires ~8x wider than the M1 bitlines this is a 0.25x reduction,
    // matching the paper's Appendix-A evaluation.
    return 2.0 * chip.blWidthNm / chip.m2WidthNm;
}

} // namespace eval
} // namespace hifi
