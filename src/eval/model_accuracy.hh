/**
 * @file
 * Accuracy analysis of public DRAM models against the measured chips
 * (Section VI-A, Figs. 11 and 12).
 *
 * For every SA element present in both a model and a chip we compute
 * the absolute relative error of the W/L ratio, the width, and the
 * length; Fig. 12 reports per-model averages and maxima, separately
 * for the DDR4 chips and (as a portability check) the DDR5 chips.
 */

#ifndef HIFI_EVAL_MODEL_ACCURACY_HH
#define HIFI_EVAL_MODEL_ACCURACY_HH

#include <string>
#include <vector>

#include "models/chip_data.hh"
#include "models/public_models.hh"

namespace hifi
{
namespace eval
{

/** Error of one model element against one chip's measurement. */
struct ElementError
{
    std::string chipId;
    models::Role role = models::Role::Nsa;

    double errWl = 0.0; ///< |model W/L / measured W/L - 1|
    double errW = 0.0;  ///< |model W / measured W - 1|
    double errL = 0.0;  ///< |model L / measured L - 1|
};

/** Aggregate accuracy of one model against one DDR generation. */
struct ModelAccuracy
{
    std::string model;
    int ddr = 4;

    std::vector<ElementError> elements;

    double avgWl = 0.0, maxWl = 0.0;
    double avgW = 0.0, maxW = 0.0;
    double avgL = 0.0, maxL = 0.0;

    /// "chip.role" labels of the maxima.
    std::string maxWlAt, maxWAt, maxLAt;
};

/// Compare a public model to all chips of one generation.
ModelAccuracy evaluateModel(const models::PublicModel &model, int ddr);

/// Fig. 12: both models against both generations (CROW4, REM4,
/// CROW5, REM5).
std::vector<ModelAccuracy> fig12Summary();

/** One bar group of Fig. 11: latch transistor dimensions. */
struct LatchDims
{
    std::string label; ///< chip id or "REM"
    double nsaW = 0.0, nsaL = 0.0;
    double psaW = 0.0, psaL = 0.0;
};

/// Fig. 11 series: the six chips followed by REM.
std::vector<LatchDims> fig11Series();

} // namespace eval
} // namespace hifi

#endif // HIFI_EVAL_MODEL_ACCURACY_HH
