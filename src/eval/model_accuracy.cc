#include "eval/model_accuracy.hh"

#include <cmath>

namespace hifi
{
namespace eval
{

using models::Role;

ModelAccuracy
evaluateModel(const models::PublicModel &model, int ddr)
{
    ModelAccuracy acc;
    acc.model = model.name;
    acc.ddr = ddr;

    double sum_wl = 0.0, sum_w = 0.0, sum_l = 0.0;
    for (const auto *chip : models::chipsOfGeneration(ddr)) {
        for (size_t ri = 0; ri < static_cast<size_t>(Role::NumRoles);
             ++ri) {
            const Role role = static_cast<Role>(ri);
            const auto &mdim = model.role(role);
            const auto &cdim = chip->role(role);
            if (!mdim || !cdim)
                continue;

            ElementError e;
            e.chipId = chip->id;
            e.role = role;
            e.errWl = std::abs(mdim->wOverL() / cdim->wOverL() - 1.0);
            e.errW = std::abs(mdim->w / cdim->w - 1.0);
            e.errL = std::abs(mdim->l / cdim->l - 1.0);

            const std::string at =
                chip->id + "." + models::roleName(role);
            if (e.errWl > acc.maxWl) {
                acc.maxWl = e.errWl;
                acc.maxWlAt = at;
            }
            if (e.errW > acc.maxW) {
                acc.maxW = e.errW;
                acc.maxWAt = at;
            }
            if (e.errL > acc.maxL) {
                acc.maxL = e.errL;
                acc.maxLAt = at;
            }
            sum_wl += e.errWl;
            sum_w += e.errW;
            sum_l += e.errL;
            acc.elements.push_back(std::move(e));
        }
    }
    const auto n = static_cast<double>(acc.elements.size());
    if (n > 0) {
        acc.avgWl = sum_wl / n;
        acc.avgW = sum_w / n;
        acc.avgL = sum_l / n;
    }
    return acc;
}

std::vector<ModelAccuracy>
fig12Summary()
{
    std::vector<ModelAccuracy> out;
    for (int ddr : {4, 5})
        for (const auto *model : models::publicModels())
            out.push_back(evaluateModel(*model, ddr));
    return out;
}

std::vector<LatchDims>
fig11Series()
{
    std::vector<LatchDims> out;
    for (const auto &chip : models::allChips()) {
        LatchDims d;
        d.label = chip.id;
        d.nsaW = chip.role(Role::Nsa)->w;
        d.nsaL = chip.role(Role::Nsa)->l;
        d.psaW = chip.role(Role::Psa)->w;
        d.psaL = chip.role(Role::Psa)->l;
        out.push_back(d);
    }
    const auto &rem = models::remModel();
    LatchDims d;
    d.label = rem.name;
    d.nsaW = rem.role(Role::Nsa)->w;
    d.nsaL = rem.role(Role::Nsa)->l;
    d.psaW = rem.role(Role::Psa)->w;
    d.psaL = rem.role(Role::Psa)->l;
    out.push_back(d);
    return out;
}

} // namespace eval
} // namespace hifi
