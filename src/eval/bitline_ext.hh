/**
 * @file
 * Appendix-A analysis: the cost of adding bitlines even when shrinking
 * the existing ones is assumed possible.
 *
 * Eq. 1 of the paper: with the safe distance d preserved and the
 * bitline width B_w ~= 2 d, doubling the number of bitlines after
 * halving their width still extends the region by
 *
 *   Ext = 2 (B_w/2 + B_w/2) / (B_w/2 + B_w) - 1 = 4/3 - 1 ~= 33%.
 *
 * Because layout requirements force the matching MAT extension, the
 * chip-level overhead is Ext times the chip's (MAT + SA) fraction
 * (~21% on B5).
 */

#ifndef HIFI_EVAL_BITLINE_EXT_HH
#define HIFI_EVAL_BITLINE_EXT_HH

#include "models/chip_data.hh"

namespace hifi
{
namespace eval
{

/**
 * Region extension from doubling bitlines of width `width` with safe
 * distance `spacing`, after shrinking the copies to half width
 * (generalized Eq. 1; with width = 2 * spacing this is 1/3).
 */
double bitlineDoublingExtension(double width, double spacing);

/// Eq. 1's nominal case: B_w = 2 d, evaluating to 1/3.
double bitlineDoublingExtension();

/// Chip-level overhead of the extension on one chip (~0.21 on B5).
double bitlineDoublingChipOverhead(const models::ChipSpec &chip);

/**
 * M2 slack on vendor A chips (Appendix A): the factor by which the M2
 * wires would need to shrink to accommodate REGA's extra connections
 * (the paper evaluates 0.25x, i.e. reducing the wires by a quarter).
 */
double m2ShrinkFactorForRega(const models::ChipSpec &chip);

} // namespace eval
} // namespace hifi

#endif // HIFI_EVAL_BITLINE_EXT_HH
