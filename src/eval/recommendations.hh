/**
 * @file
 * The paper's recommendations for high-fidelity DRAM research
 * (Section VI-E), plus a structured proposal checker that applies
 * them to a described SA-region modification.
 */

#ifndef HIFI_EVAL_RECOMMENDATIONS_HH
#define HIFI_EVAL_RECOMMENDATIONS_HH

#include <string>
#include <vector>

#include "models/chip_data.hh"

namespace hifi
{
namespace eval
{

/** One of the paper's recommendations R1-R4. */
struct Recommendation
{
    std::string id;       ///< "R1".."R4"
    std::string title;
    std::string rationale; ///< the inaccuracy it answers
};

/// The four recommendations of Section VI-E.
const std::vector<Recommendation> &recommendations();

/** A described SA-region modification to check. */
struct Proposal
{
    std::string name = "proposal";

    int extraBitlinesPerExisting = 0; ///< new bitlines per existing
    int extraWires = 0;               ///< other new wires in the SA
    bool assumesIsolationPresent = false;
    bool assumesIndependentPeq = false; ///< per-SA precharge control
    bool placesElementsAfterColumns = false;
    bool modelsOcsa = false;
    bool accountsForBothStackedSas = false;
};

/** One finding of the checker. */
struct Finding
{
    std::string recommendation; ///< which R it comes from
    std::string inaccuracy;     ///< which I it flags ("I1".."I5", "-")
    std::string message;
};

/**
 * Apply the recommendations to a proposal against one chip: returns
 * the violated recommendations with explanations (empty = clean).
 */
std::vector<Finding> checkProposal(const Proposal &proposal,
                                   const models::ChipSpec &chip);

} // namespace eval
} // namespace hifi

#endif // HIFI_EVAL_RECOMMENDATIONS_HH
