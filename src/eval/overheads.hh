/**
 * @file
 * Overhead audit of the 13 research papers (Sections VI-B/C, Table II,
 * Fig. 14, Appendix B).
 *
 * For each paper we compute the realistic per-chip overhead fraction
 * P_chip = P_extra / Chip_area using the Appendix-B formulas, then:
 *
 *  - overhead error = mean over same-generation chips of
 *    (P_chip / P_oe - 1), N/A for pre-DDR4 papers;
 *  - porting cost   = the same mean over the other generation(s):
 *    DDR5 chips for DDR4 papers, all six chips for DDR3 papers.
 */

#ifndef HIFI_EVAL_OVERHEADS_HH
#define HIFI_EVAL_OVERHEADS_HH

#include <map>
#include <string>
#include <vector>

#include "models/chip_data.hh"
#include "models/papers.hh"

namespace hifi
{
namespace eval
{

/**
 * Realistic overhead fraction of applying `paper`'s modification to
 * `chip` (P_chip in Appendix B).
 *
 * REGA is special-cased per Appendix A: on vendor A chips the M2
 * layer has slack for the extra connections, so the transistor-level
 * formula applies instead of the one-bitline-in-three extension.
 */
double overheadFraction(const models::ResearchPaper &paper,
                        const models::ChipSpec &chip);

/** Audit result for one paper. */
struct PaperAudit
{
    const models::ResearchPaper *paper = nullptr;

    /// (P_chip / P_oe - 1) per chip id, all six chips.
    std::map<std::string, double> perChip;

    /// Mean over the paper's own generation; NaN when N/A (DDR3).
    double overheadError = 0.0;

    /// Mean over the porting target generation(s).
    double portingCost = 0.0;
};

/// Audit one paper against all six chips.
PaperAudit auditPaper(const models::ResearchPaper &paper);

/// Table II: audit all 13 papers.
std::vector<PaperAudit> auditAllPapers();

/**
 * Fig. 14 filter: papers whose |error/cost| is below `limit` on at
 * least one chip (the paper omits proposals that are always >10x).
 */
std::vector<PaperAudit> auditUnderLimit(double limit = 10.0);

/**
 * Human-readable Appendix-B formula of a paper's P_extra (including
 * the REGA vendor-A special case when `vendor_a` is set).
 */
std::string overheadFormulaDescription(
    const models::ResearchPaper &paper, bool vendor_a = false);

/**
 * Average chip overhead required by papers affected by I1, "solely
 * for the MAT extension" (Section VI-B reports 57%): the mean MAT
 * fraction of the DDR4 chips.
 */
double i1MatExtensionOverhead();

/**
 * MAT fraction consumed by splitting a MAT with isolation transistors
 * ([58]-style): two MAT-to-SA transitions relative to the MAT height.
 * Averaged per generation this reproduces the Section V-C figures
 * (1.6% DDR4 / 1.1% DDR5 in the paper).
 */
double matSplitOverhead(const models::ChipSpec &chip);

} // namespace eval
} // namespace hifi

#endif // HIFI_EVAL_OVERHEADS_HH
