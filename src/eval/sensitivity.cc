#include "eval/sensitivity.hh"

#include <algorithm>
#include <cmath>

#include "eval/overheads.hh"
#include "models/papers.hh"

namespace hifi
{
namespace eval
{

namespace
{

/// Overhead error of one paper with scaled region geometry.
double
errorWithScale(const models::ResearchPaper &paper, double scale)
{
    double sum = 0.0;
    size_t n = 0;
    for (const auto &chip : models::allChips()) {
        if (paper.ddr == 4 && chip.ddr != 4)
            continue;
        models::ChipSpec scaled = chip;
        scaled.saHeightNm *= scale;
        scaled.matHeightNm *= scale;
        sum += overheadFraction(paper, scaled) /
                paper.originalEstimate -
            1.0;
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace

std::vector<SensitivityRange>
overheadSensitivity(double perturbation)
{
    std::vector<SensitivityRange> out;
    for (const char *name :
         {"CoolDRAM", "CLR-DRAM", "REGA", "PF-DRAM", "AMBIT"}) {
        const auto &paper = models::paper(name);
        SensitivityRange range;
        range.quantity = std::string(name) + " overhead error";
        range.nominal = errorWithScale(paper, 1.0);
        const double a = errorWithScale(paper, 1.0 - perturbation);
        const double b = errorWithScale(paper, 1.0 + perturbation);
        range.low = std::min(a, b);
        range.high = std::max(a, b);
        out.push_back(range);
    }
    return out;
}

} // namespace eval
} // namespace hifi
