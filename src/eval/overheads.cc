#include "eval/overheads.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hifi
{
namespace eval
{

using models::ChipSpec;
using models::OverheadFormula;
using models::ResearchPaper;
using models::Role;

double
overheadFraction(const ResearchPaper &paper, const ChipSpec &chip)
{
    const double die = chip.dieAreaNm2();
    const double mats = static_cast<double>(chip.mats);
    const double sa_w = chip.matWidthNm; // SA region width along Y
    const double iso_ls = chip.isoEffectiveLength();
    const double san_ws = chip.effective(Role::Nsa, false);
    const double sap_ws = chip.effective(Role::Psa, false);
    const double col_ws = chip.effective(Role::Column, false);

    OverheadFormula formula = paper.formula;
    // Appendix A: vendor A routes the second SA set's bitlines on M2
    // with slack, so REGA's extra wiring fits and only the transistor
    // additions cost area there.
    if (paper.name == "REGA" && chip.vendor == 'A')
        formula = OverheadFormula::RegaTransistor;

    switch (formula) {
      case OverheadFormula::DoubleArray:
        return chip.arrayFraction();
      case OverheadFormula::ThirdArray:
        return chip.arrayFraction() / 3.0;
      case OverheadFormula::RegaTransistor: {
        const double ext = 2.0 * iso_ls +
            8.0 * (san_ws + sap_ws) / 6.0;
        return mats * sa_w * ext / die;
      }
      case OverheadFormula::IsolationOnly:
        return mats * sa_w * 2.0 * iso_ls / die;
      case OverheadFormula::IsoColumnSa: {
        const double ext = 2.0 * iso_ls + 2.0 * col_ws +
            8.0 * (san_ws + sap_ws);
        return mats * sa_w * ext / die;
      }
      case OverheadFormula::IsoSaImbalancer: {
        const double ext = 4.0 * iso_ls + 8.0 * (san_ws + sap_ws);
        return mats * sa_w * ext / die;
      }
      case OverheadFormula::AspectRatio:
        return chip.saFraction() / 4.0 + 0.01;
      default:
        throw std::logic_error("overheadFraction: unknown formula");
    }
}

std::string
overheadFormulaDescription(const ResearchPaper &paper, bool vendor_a)
{
    OverheadFormula formula = paper.formula;
    if (paper.name == "REGA" && vendor_a)
        formula = OverheadFormula::RegaTransistor;
    switch (formula) {
      case OverheadFormula::DoubleArray:
        return "P_extra = MAT_area + SA_area (I1/I2: the region "
               "doubles)";
      case OverheadFormula::ThirdArray:
        return "P_extra = (MAT_area + SA_area) / 3 (one new bitline "
               "every three)";
      case OverheadFormula::RegaTransistor:
        return "P_extra = MATs * SA_w * (2 iso_ls + 8 (san_ws + "
               "sap_ws) / 6) (vendor-A M2 slack)";
      case OverheadFormula::IsolationOnly:
        return "P_extra = MATs * SA_w * 2 iso_ls";
      case OverheadFormula::IsoColumnSa:
        return "P_extra = MATs * SA_w * (2 iso_ls + 2 col_ws + "
               "8 (san_ws + sap_ws))";
      case OverheadFormula::IsoSaImbalancer:
        return "P_extra = MATs * SA_w * (4 iso_ls + 8 (san_ws + "
               "sap_ws))";
      case OverheadFormula::AspectRatio:
        return "P_extra = MATs * SA_w * SA_h / 4 + 1% of the chip";
      default:
        return "unknown";
    }
}

PaperAudit
auditPaper(const ResearchPaper &paper)
{
    PaperAudit audit;
    audit.paper = &paper;

    double err_sum = 0.0, port_sum = 0.0;
    size_t err_n = 0, port_n = 0;
    for (const auto &chip : models::allChips()) {
        const double p_chip = overheadFraction(paper, chip);
        const double variation =
            p_chip / paper.originalEstimate - 1.0;
        audit.perChip[chip.id] = variation;

        if (paper.ddr == 4) {
            if (chip.ddr == 4) {
                err_sum += variation;
                ++err_n;
            } else {
                port_sum += variation;
                ++port_n;
            }
        } else {
            // DDR3 paper: no error (original tech not imaged); the
            // porting cost covers all six chips.
            port_sum += variation;
            ++port_n;
        }
    }

    audit.overheadError = err_n
        ? err_sum / static_cast<double>(err_n)
        : std::numeric_limits<double>::quiet_NaN();
    audit.portingCost =
        port_n ? port_sum / static_cast<double>(port_n) : 0.0;
    return audit;
}

std::vector<PaperAudit>
auditAllPapers()
{
    std::vector<PaperAudit> out;
    for (const auto &paper : models::allPapers())
        out.push_back(auditPaper(paper));
    return out;
}

std::vector<PaperAudit>
auditUnderLimit(double limit)
{
    std::vector<PaperAudit> out;
    for (auto &audit : auditAllPapers()) {
        bool any_under = false;
        for (const auto &[id, v] : audit.perChip)
            if (std::abs(v) < limit)
                any_under = true;
        if (any_under)
            out.push_back(std::move(audit));
    }
    return out;
}

double
i1MatExtensionOverhead()
{
    double sum = 0.0;
    size_t n = 0;
    for (const auto *chip : models::chipsOfGeneration(4)) {
        sum += chip->matFraction();
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
matSplitOverhead(const ChipSpec &chip)
{
    return 2.0 * chip.transitionNm / chip.matHeightNm;
}

} // namespace eval
} // namespace hifi
