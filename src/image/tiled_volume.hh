/**
 * @file
 * Out-of-core 3-D float volume: fixed-size cubic tiles backed by a
 * content-addressed TileStore, so the resident working set — not the
 * logical volume — bounds peak memory.
 *
 * The volume mirrors image::Volume3D's reslicing API (crossSection /
 * planarView / planarSlab / setCrossSection) with the same axis
 * convention and, critically, the same per-pixel arithmetic order:
 * every accessor visits voxels in strictly increasing z (then y/x)
 * exactly like the dense loops, so a tiled read is bitwise identical
 * to the dense one at any tile size, budget and thread count
 * (asserted by tests/test_volume.cc).
 *
 * Tile lifecycle: a tile slot is Zero (never written, implicit
 * zeros), Dirty (an owned write buffer), or Sealed (a digest in the
 * TileStore; the buffer has been spilled and dropped).  Writes
 * unseal on demand; a dirty-byte budget seals the least recently
 * written tiles back into the store, which is what keeps a
 * front-to-back assembly's working set to one tile layer.  Border
 * tiles are zero-padded to the full tile cube so tile identity is a
 * pure function of content.
 */

#ifndef HIFI_IMAGE_TILED_VOLUME_HH
#define HIFI_IMAGE_TILED_VOLUME_HH

#include <list>
#include <optional>

#include "image/tile_store.hh"
#include "image/volume3d.hh"

namespace hifi
{
namespace image
{

/** Tiled float volume over a TileStore. */
class TiledVolume3D
{
  public:
    /// Default tile edge: 64^3 floats = 1 MiB per tile, small enough
    /// that a full yz tile layer of the paper's stacks fits a few
    /// hundred MiB, large enough to amortise the store round trips.
    static constexpr size_t kDefaultTileEdge = 64;

    TiledVolume3D() = default;

    /**
     * Create an all-zero volume of (nx, ny, nz) voxels in tiles of
     * `tileEdge`^3 floats.  `dirtyBudgetBytes` bounds the owned write
     * buffers (0 = unbounded): beyond it the least recently written
     * tiles are sealed into `store`.  The store must outlive the
     * volume.  Typed InvalidArgument on zero dimensions or a tile
     * edge of 0 / a dirty budget smaller than one tile.
     */
    static common::Result<TiledVolume3D>
    create(size_t nx, size_t ny, size_t nz, TileStore &store,
           size_t tileEdge = kDefaultTileEdge,
           size_t dirtyBudgetBytes = 0);

    /// Tile a dense volume (used by tests and the checkpoint codec).
    static common::Result<TiledVolume3D>
    fromDense(const Volume3D &dense, TileStore &store,
              size_t tileEdge = kDefaultTileEdge);

    size_t nx() const { return nx_; }
    size_t ny() const { return ny_; }
    size_t nz() const { return nz_; }
    size_t tileEdge() const { return edge_; }
    bool empty() const { return nx_ == 0; }

    /// Owned (unsealed) write-buffer bytes currently held.
    size_t dirtyBytes() const { return dirtyBytes_; }

    // ---- Reads (bitwise identical to the Volume3D loops) ----------

    /// Cross-section at X: image over (Y, Z).  Typed InvalidArgument
    /// out of range; store failures (DataLoss, ...) pass through.
    common::Result<Image2D> crossSection(size_t x) const;

    /// Planar (top-down) view at Z: image over (X, Y).
    common::Result<Image2D> planarView(size_t z) const;

    /// Average planar view over [z0, z1), accumulated per pixel in
    /// increasing z exactly like Volume3D::planarSlab.
    common::Result<Image2D> planarSlab(size_t z0, size_t z1) const;

    /// Single-voxel read (slow; tests and spot checks).
    common::Result<float> at(size_t x, size_t y, size_t z) const;

    /// Materialize the full dense volume (the caller is opting out of
    /// the memory bound, e.g. for the in-core analysis stage).
    common::Result<Volume3D> toDense() const;

    // ---- Writes ---------------------------------------------------

    /// Insert a (Y, Z) cross-section at X, unsealing the touched tile
    /// column and sealing cold tiles beyond the dirty budget.
    std::optional<common::Error> setCrossSection(size_t x,
                                                 const Image2D &img);

    // ---- Sealing / identity ---------------------------------------

    /**
     * Spill every dirty tile into the store (deterministic slot
     * order) and drop the write buffers; zero slots are sealed as the
     * shared all-zero tile.  Afterwards the volume owns no voxel
     * memory and digests() identifies its full content.
     */
    std::optional<common::Error> sealAll();

    /**
     * Per-slot content digests in slot order
     * ((tz * tilesY + ty) * tilesX + tx), valid after sealAll().
     * Together with the dimensions this is the volume's identity —
     * what the checkpoint codec stores instead of voxels.
     */
    common::Result<std::vector<uint64_t>> digests();

    /**
     * Rebuild a volume from dimensions + digests (the checkpoint
     * resume path: tiles re-pin from the store on demand rather than
     * being re-read eagerly).  DataLoss when a digest has no backing
     * tile or fails verification on first access.
     */
    static common::Result<TiledVolume3D>
    fromDigests(size_t nx, size_t ny, size_t nz, size_t tileEdge,
                std::vector<uint64_t> digests, TileStore &store);

    size_t tilesX() const { return tx_; }
    size_t tilesY() const { return ty_; }
    size_t tilesZ() const { return tz_; }

  private:
    enum class SlotState : uint8_t { Zero, Dirty, Sealed };

    struct Slot
    {
        SlotState state = SlotState::Zero;
        std::shared_ptr<std::vector<float>> dirty; ///< Dirty only
        uint64_t digest = 0;                       ///< Sealed only

        /// Position in dirtyLru_; meaningful while state == Dirty.
        std::list<size_t>::iterator lruIt;
    };

    size_t slotIndex(size_t tx, size_t ty, size_t tz) const
    {
        return (tz * ty_ + ty) * tx_ + tx;
    }

    /// Read access to one tile's floats (nullptr floats = all-zero).
    /// `ref` keeps a fetched tile pinned while the caller copies.
    common::Result<const float *> tileFloats(size_t slot,
                                             TileRef &ref) const;

    /// Writable buffer for one tile, unsealing if needed.
    common::Result<std::vector<float> *> tileMutable(size_t slot);

    std::optional<common::Error> sealSlot(size_t slot);
    std::optional<common::Error> enforceDirtyBudget();
    void touchDirty(size_t slot);

    TileStore *store_ = nullptr;
    size_t nx_ = 0, ny_ = 0, nz_ = 0;
    size_t edge_ = 0;
    size_t tx_ = 0, ty_ = 0, tz_ = 0;
    size_t tileBytes_ = 0;
    size_t dirtyBudgetBytes_ = 0;
    size_t dirtyBytes_ = 0;

    std::vector<Slot> slots_;
    std::list<size_t> dirtyLru_; ///< front = most recently written
};

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_TILED_VOLUME_HH
