/**
 * @file
 * Noise models for simulated SEM images.
 *
 * SEM noise is dominated by electron shot noise: the number of detected
 * electrons per pixel is Poisson with mean proportional to dwell time and
 * beam current.  We also model additive detector (Gaussian) noise.
 */

#ifndef HIFI_IMAGE_NOISE_HH
#define HIFI_IMAGE_NOISE_HH

#include "common/rng.hh"
#include "image/image2d.hh"

namespace hifi
{
namespace image
{

/**
 * Apply shot noise: each pixel value v in [0,1] is replaced by
 * Poisson(v * electrons) / electrons.
 *
 * @param electrons mean detected electrons for a full-scale pixel;
 *                  proportional to dwell time (3 us vs 6 us in the paper)
 */
void addShotNoise(Image2D &img, double electrons, common::Rng &rng);

/// Additive zero-mean Gaussian detector noise with given sigma.
void addGaussianNoise(Image2D &img, double sigma, common::Rng &rng);

/**
 * Shot + detector noise in one pass with a counter-seeded RNG stream
 * per pixel row: row y draws from Rng(seed, y), so the noise field is
 * a pure function of (seed, image shape) and identical at any thread
 * count.  This is the parallel-safe path the SEM imager uses;
 * addShotNoise/addGaussianNoise remain for callers that thread one
 * sequential generator through several images.
 *
 * @param electrons  mean detected electrons for a full-scale pixel
 *                   (<= 0 skips the shot-noise term)
 * @param sigma      Gaussian detector-noise sigma (< 0 invalid)
 */
void addSensorNoise(Image2D &img, double electrons, double sigma,
                    uint64_t seed);

/**
 * Estimate the signal-to-noise ratio of a noisy image given its clean
 * reference: SNR = var(clean) / mse(noisy, clean), as a linear ratio.
 */
double snr(const Image2D &noisy, const Image2D &clean);

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_NOISE_HH
