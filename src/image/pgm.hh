/**
 * @file
 * PGM (portable graymap) export for images, so planar views and cross
 * sections can be inspected with any image viewer - the closest
 * equivalent to the paper's published IC images.
 */

#ifndef HIFI_IMAGE_PGM_HH
#define HIFI_IMAGE_PGM_HH

#include <string>

#include "image/image2d.hh"

namespace hifi
{
namespace image
{

/**
 * Write an image as binary PGM (P5), mapping [lo, hi] to [0, 255].
 * With lo == hi the image's own min/max are used.
 * Throws std::runtime_error when the file cannot be written.
 */
void writePgm(const std::string &path, const Image2D &img,
              float lo = 0.0f, float hi = 0.0f);

/// Read back a binary PGM written by writePgm (values scaled to [0,1]).
Image2D readPgm(const std::string &path);

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_PGM_HH
