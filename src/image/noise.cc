#include "image/noise.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hh"

namespace hifi
{
namespace image
{

void
addShotNoise(Image2D &img, double electrons, common::Rng &rng)
{
    if (electrons <= 0.0)
        throw std::invalid_argument("addShotNoise: electrons <= 0");
    for (float &v : img.data()) {
        const double mean = std::max(0.0, static_cast<double>(v)) *
            electrons;
        v = static_cast<float>(
            static_cast<double>(rng.poisson(mean)) / electrons);
    }
}

void
addGaussianNoise(Image2D &img, double sigma, common::Rng &rng)
{
    if (sigma < 0.0)
        throw std::invalid_argument("addGaussianNoise: sigma < 0");
    for (float &v : img.data())
        v += static_cast<float>(rng.gaussian(0.0, sigma));
}

void
addSensorNoise(Image2D &img, double electrons, double sigma,
               uint64_t seed)
{
    if (sigma < 0.0)
        throw std::invalid_argument("addSensorNoise: sigma < 0");
    const size_t w = img.width();
    common::parallelFor(0, img.height(), 4, [&](size_t y0, size_t y1) {
        for (size_t y = y0; y < y1; ++y) {
            common::Rng rng(seed, y);
            for (size_t x = 0; x < w; ++x) {
                float &v = img.at(x, y);
                if (electrons > 0.0) {
                    const double mean =
                        std::max(0.0, static_cast<double>(v)) *
                        electrons;
                    v = static_cast<float>(
                        static_cast<double>(rng.poisson(mean)) /
                        electrons);
                }
                v += static_cast<float>(rng.gaussian(0.0, sigma));
            }
        }
    });
}

double
snr(const Image2D &noisy, const Image2D &clean)
{
    const double m = clean.meanValue();
    double var = 0.0;
    for (float v : clean.data()) {
        const double d = v - m;
        var += d * d;
    }
    var /= static_cast<double>(clean.size());
    const double e = noisy.mse(clean);
    if (e <= 0.0)
        return 1e12;
    return var / e;
}

} // namespace image
} // namespace hifi
