/**
 * @file
 * Mutual-information slice registration (Section IV-C).
 *
 * The paper aligns each FIB/SEM slice to its predecessor with Dragonfly's
 * mutual-information algorithm.  Planar-view fidelity requires residual
 * alignment error below 0.77% of the slice height, so we expose both the
 * pairwise MI search and the full-stack chained alignment, and report the
 * residual against ground truth in tests/benches.
 *
 * Fast path: both images are quantized into bin-index planes *once* per
 * registration, and every candidate offset accumulates an integer joint
 * histogram over those planes.  Bin assignment, counts, and the MI
 * arithmetic are exactly those of the straightforward per-candidate
 * re-quantization, so the scores — and therefore the recovered shifts —
 * are bitwise identical to the reference implementation (which is
 * retained below for the equivalence tests and bench baselines).
 */

#ifndef HIFI_IMAGE_REGISTRATION_HH
#define HIFI_IMAGE_REGISTRATION_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "image/image2d.hh"

namespace hifi
{
namespace image
{

/** Shift-search strategy for registerShiftMi / alignStack. */
enum class MiStrategy
{
    /// Score every offset in the full window.  The default: exact by
    /// construction, and the result the equivalence tests pin down.
    Exhaustive,

    /**
     * Coarse-to-fine: exhaustive search on a downsampled pyramid
     * level, then a small refinement window per finer level.  Several
     * times fewer candidate evaluations at large windows, but a
     * heuristic — a peak that only emerges at full resolution can be
     * missed — which is why it is opt-in rather than the default.
     */
    Pyramid,
};

/** Parameters for the MI shift search. */
struct MiParams
{
    /// Histogram bins per axis for the joint intensity histogram.
    size_t bins = 32;

    /// Search window: shifts in [-maxShift, maxShift] on both axes.
    long maxShift = 8;

    /// Candidate enumeration strategy (Exhaustive unless opted in).
    MiStrategy strategy = MiStrategy::Exhaustive;
};

/**
 * One image pre-quantized into contiguous bin indices (row-major, same
 * layout as the source Image2D).  Building this once per image is what
 * lets the shift search drop the per-candidate re-quantization.
 */
struct QuantizedPlane
{
    size_t width = 0;
    size_t height = 0;
    size_t bins = 0;
    std::vector<uint16_t> idx; ///< bin index per pixel, < bins
};

/**
 * Quantize an image into its bin-index plane using the image's own
 * intensity range — the identical bin assignment the reference MI
 * uses.  Throws for bins < 2 or bins > 65535 (uint16_t indices).
 */
QuantizedPlane quantizePlane(const Image2D &img, size_t bins);

/**
 * Mutual information (nats) between two images of identical shape,
 * computed from a joint histogram over the overlapping region.
 */
double mutualInformation(const Image2D &a, const Image2D &b,
                         size_t bins = 32);

/**
 * MI over the overlap of `a` and `b` when b is conceptually translated
 * by (dx, dy) — the per-candidate score of the shift search, exposed
 * for the equivalence tests.  Fast quantized-plane path.
 */
double mutualInformationAtShift(const Image2D &a, const Image2D &b,
                                long dx, long dy, size_t bins = 32);

/**
 * Reference implementation of mutualInformationAtShift that
 * re-quantizes both images per call (the original algorithm).
 * Retained as the ground truth for the bitwise-equivalence tests and
 * as the bench baseline; not used on the hot path.
 */
double mutualInformationAtShiftReference(const Image2D &a,
                                         const Image2D &b, long dx,
                                         long dy, size_t bins = 32);

/**
 * Find the integer (dx, dy) translation of `moving` that maximizes
 * mutual information with `fixed`.  Ties (within 1e-12) are broken by
 * the smallest |dx| + |dy|, then lexicographically by (dy, dx), so a
 * featureless frame registers at (0, 0) instead of the window corner.
 *
 * @return the shift to *apply to moving* so it best overlays fixed.
 */
std::pair<long, long> registerShiftMi(const Image2D &fixed,
                                      const Image2D &moving,
                                      const MiParams &params = {});

/**
 * Reference exhaustive search scoring every candidate with the
 * re-quantizing MI (same tie-break rule).  Retained for the
 * equivalence tests and the bench baseline.
 */
std::pair<long, long> registerShiftMiReference(
    const Image2D &fixed, const Image2D &moving,
    const MiParams &params = {});

/**
 * Sub-pixel refinement of the best integer shift: fits a parabola to
 * the MI values at the integer optimum and its neighbours on each
 * axis and returns the fractional peak position.  Accuracy ~0.1 px on
 * structured images, which is what the 0.77% alignment budget needs
 * at small slice heights.
 */
std::pair<double, double> registerShiftMiSubpixel(
    const Image2D &fixed, const Image2D &moving,
    const MiParams &params = {});

/**
 * Chained stack alignment: slice i is registered to slice i-1 and the
 * shifts are accumulated, exactly as the paper's per-slice procedure.
 *
 * @return absolute shift of every slice relative to slice 0
 *         (element 0 is always {0, 0})
 */
std::vector<std::pair<long, long>>
alignStack(const std::vector<Image2D> &slices, const MiParams &params = {});

/**
 * Residual alignment error against ground truth drift, as the mean
 * Euclidean pixel distance between recovered and true per-slice shifts
 * (after removing the global offset of slice 0).
 */
double alignmentResidual(
    const std::vector<std::pair<long, long>> &recovered,
    const std::vector<std::pair<long, long>> &truth);

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_REGISTRATION_HH
