/**
 * @file
 * Mutual-information slice registration (Section IV-C).
 *
 * The paper aligns each FIB/SEM slice to its predecessor with Dragonfly's
 * mutual-information algorithm.  Planar-view fidelity requires residual
 * alignment error below 0.77% of the slice height, so we expose both the
 * pairwise MI search and the full-stack chained alignment, and report the
 * residual against ground truth in tests/benches.
 */

#ifndef HIFI_IMAGE_REGISTRATION_HH
#define HIFI_IMAGE_REGISTRATION_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "image/image2d.hh"

namespace hifi
{
namespace image
{

/** Parameters for the MI shift search. */
struct MiParams
{
    /// Histogram bins per axis for the joint intensity histogram.
    size_t bins = 32;

    /// Search window: shifts in [-maxShift, maxShift] on both axes.
    long maxShift = 8;
};

/**
 * Mutual information (nats) between two images of identical shape,
 * computed from a joint histogram over the overlapping region.
 */
double mutualInformation(const Image2D &a, const Image2D &b,
                         size_t bins = 32);

/**
 * Find the integer (dx, dy) translation of `moving` that maximizes
 * mutual information with `fixed`.
 *
 * @return the shift to *apply to moving* so it best overlays fixed.
 */
std::pair<long, long> registerShiftMi(const Image2D &fixed,
                                      const Image2D &moving,
                                      const MiParams &params = {});

/**
 * Sub-pixel refinement of the best integer shift: fits a parabola to
 * the MI values at the integer optimum and its neighbours on each
 * axis and returns the fractional peak position.  Accuracy ~0.1 px on
 * structured images, which is what the 0.77% alignment budget needs
 * at small slice heights.
 */
std::pair<double, double> registerShiftMiSubpixel(
    const Image2D &fixed, const Image2D &moving,
    const MiParams &params = {});

/**
 * Chained stack alignment: slice i is registered to slice i-1 and the
 * shifts are accumulated, exactly as the paper's per-slice procedure.
 *
 * @return absolute shift of every slice relative to slice 0
 *         (element 0 is always {0, 0})
 */
std::vector<std::pair<long, long>>
alignStack(const std::vector<Image2D> &slices, const MiParams &params = {});

/**
 * Residual alignment error against ground truth drift, as the mean
 * Euclidean pixel distance between recovered and true per-slice shifts
 * (after removing the global offset of slice 0).
 */
double alignmentResidual(
    const std::vector<std::pair<long, long>> &recovered,
    const std::vector<std::pair<long, long>> &truth);

} // namespace image
} // namespace hifi

#endif // HIFI_IMAGE_REGISTRATION_HH
